"""Setuptools shim.

The build environment used for this reproduction has no network access and no
``wheel`` package, so PEP 517/660 editable installs (which build a wheel)
cannot run.  Keeping a classic ``setup.py`` alongside ``pyproject.toml`` lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path, which only needs setuptools.
"""

from setuptools import setup

setup()
