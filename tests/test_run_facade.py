"""Tests for the ``repro.run`` facade, ``RunResult`` and the new CLI surface."""

import json

import numpy as np
import pytest

import repro
from repro.cli import build_parser, main
from repro.config import ProblemSpec
from repro.core.solver import TransportSolver
from repro.input_deck import loads, spec_to_deck
from repro.runner import RunResult, run

SMALL = ProblemSpec(nx=3, ny=3, nz=3, angles_per_octant=1, num_groups=2,
                    num_inners=2, num_outers=1)


class TestRunFacade:
    def test_single_rank_returns_run_result(self):
        result = run(SMALL)
        assert isinstance(result, RunResult)
        assert result.num_ranks == 1
        assert result.messages == 0 and result.bytes_exchanged == 0
        assert result.engine == "reference" and result.solver == "ge"
        assert result.scalar_flux.shape == (27, 2, 8)
        assert result.cell_average_flux.shape == (27, 2)
        assert result.total_inners == 2
        assert np.all(result.scalar_flux > 0)

    def test_multi_rank_dispatch(self):
        result = run(SMALL.with_(npex=3, npey=1))
        assert result.num_ranks == 3
        assert result.messages > 0 and result.bytes_exchanged > 0
        assert result.scalar_flux.shape == (27, 2, 8)
        assert result.cell_average_flux.shape == (27, 2)
        assert result.history.total_inners == 2
        assert result.history.num_outers == 1

    def test_matches_transport_solver(self):
        facade = run(SMALL)
        direct = TransportSolver(SMALL).solve()
        np.testing.assert_allclose(facade.scalar_flux, direct.scalar_flux,
                                   rtol=1e-12, atol=1e-12)

    def test_engine_argument_overrides_spec(self):
        result = run(SMALL.with_(engine="reference"), engine="vectorized")
        assert result.engine == "vectorized"

    def test_spec_engine_field_used_by_default(self):
        assert run(SMALL.with_(engine="vectorized")).engine == "vectorized"
        assert run(SMALL).engine == "reference"

    def test_engine_instance_accepted(self):
        result = run(SMALL, engine=repro.get_engine("vectorized"))
        assert result.engine == "vectorized"

    def test_duck_typed_engine_instance_accepted(self):
        # An unregistered instance implementing only sweep_angle must run;
        # the reported engine name falls back to the class name.
        class InlineEngine:
            def sweep_angle(self, *args):
                return repro.get_engine("reference").sweep_angle(*args)

        result = run(SMALL, engine=InlineEngine())
        assert result.engine == "inlineengine"
        np.testing.assert_allclose(result.scalar_flux, run(SMALL).scalar_flux,
                                   rtol=1e-12, atol=1e-12)

    def test_store_angular_flux_single_rank(self):
        result = run(SMALL, store_angular_flux=True)
        assert result.angular_flux is not None
        assert result.angular_flux.shape == (27, 8, 2, 8)
        # Collapsing the bank with the quadrature weights gives the scalar flux.
        quad_weights = np.full(8, 1.0 / 8.0)
        np.testing.assert_allclose(
            result.angular_flux.scalar_flux(quad_weights), result.scalar_flux,
            rtol=1e-12, atol=1e-12,
        )

    def test_store_angular_flux_rejected_multi_rank(self):
        with pytest.raises(ValueError, match="multi-rank"):
            run(SMALL.with_(npex=3), store_angular_flux=True)

    def test_unknown_engine_raises(self):
        with pytest.raises(KeyError):
            run(SMALL, engine="warp-drive")

    def test_num_threads_matches_serial(self):
        serial = run(SMALL)
        threaded = run(SMALL, num_threads=4)
        np.testing.assert_allclose(threaded.scalar_flux, serial.scalar_flux,
                                   rtol=1e-12, atol=1e-12)


class TestRunResultExport:
    @pytest.fixture(scope="class")
    def result(self):
        return run(SMALL)

    @pytest.fixture(scope="class")
    def parallel_result(self):
        return run(SMALL.with_(npex=3, npey=1))

    def test_wall_is_setup_plus_solve(self, result):
        assert result.wall_seconds == pytest.approx(
            result.setup_seconds + result.solve_seconds
        )
        assert result.setup_seconds > 0 and result.solve_seconds > 0

    def test_summary_keys(self, result):
        summary = result.summary()
        for key in ("engine", "solver", "ranks", "cells", "groups",
                    "nodes_per_element", "total_inners", "assembly_seconds",
                    "solve_seconds", "setup_seconds", "wall_seconds",
                    "balance_residual", "mean_flux", "halo_messages"):
            assert key in summary
        assert summary["wall_seconds"] == pytest.approx(
            summary["setup_seconds"] + summary["solve_wall_seconds"]
        )

    def test_to_dict_is_json_safe(self, result, parallel_result):
        for res in (result, parallel_result):
            data = json.loads(res.to_json())
            assert data["cells"] == 27
            assert len(data["leakage"]) == 2
            assert len(data["inner_errors"]) == data["total_inners"]
            assert data["inners_per_outer"] == [2]

    def test_to_dict_include_flux(self, result):
        data = result.to_dict(include_flux=True)
        assert np.asarray(data["scalar_flux"]).shape == (27, 2, 8)
        assert np.asarray(data["cell_average_flux"]).shape == (27, 2)

    def test_to_dict_carries_balance_and_spec(self, result):
        data = result.to_dict()
        assert set(data["balance"]) == {
            "emission", "absorption", "leakage", "scattering_in", "scattering_out"}
        assert len(data["balance"]["emission"]) == 2
        assert data["spec"]["nx"] == 3 and data["spec"]["boundary"]["kind"] == "vacuum"


class TestRunResultRoundTrip:
    @pytest.fixture(scope="class")
    def result(self):
        return run(SMALL)

    @pytest.fixture(scope="class")
    def parallel_result(self):
        return run(SMALL.with_(npex=3, npey=1))

    def test_round_trip_with_flux_is_bit_for_bit(self, result, parallel_result):
        for res in (result, parallel_result):
            loaded = RunResult.from_json(res.to_json(include_flux=True))
            np.testing.assert_array_equal(loaded.scalar_flux, res.scalar_flux)
            np.testing.assert_array_equal(loaded.cell_average_flux, res.cell_average_flux)
            np.testing.assert_array_equal(loaded.leakage, res.leakage)
            np.testing.assert_array_equal(loaded.balance.residual, res.balance.residual)
            assert loaded.history.inner_errors == res.history.inner_errors
            assert loaded.history.inners_per_outer == res.history.inners_per_outer
            assert loaded.spec == res.spec
            assert loaded.num_ranks == res.num_ranks
            assert loaded.engine == res.engine and loaded.solver == res.solver
            # The re-export closes the loop exactly.
            assert loaded.to_dict(include_flux=True) == res.to_dict(include_flux=True)

    def test_round_trip_without_flux(self, result):
        loaded = RunResult.from_dict(json.loads(result.to_json()))
        assert loaded.scalar_flux is None and loaded.cell_average_flux is None
        # mean flux and problem sizes survive through the export/spec.
        assert loaded.mean_flux == result.mean_flux
        summary = loaded.summary()
        assert summary["cells"] == 27 and summary["groups"] == 2
        assert summary["nodes_per_element"] == 8
        assert loaded.to_dict() == result.to_dict()

    def test_flux_less_result_rejects_flux_export(self, result):
        loaded = RunResult.from_json(result.to_json())
        with pytest.raises(ValueError, match="include_flux"):
            loaded.to_dict(include_flux=True)

    def test_angular_flux_never_round_trips(self):
        res = run(SMALL, store_angular_flux=True)
        loaded = RunResult.from_json(res.to_json(include_flux=True))
        assert res.angular_flux is not None and loaded.angular_flux is None

    def test_round_trip_with_telemetry_is_bit_for_bit(self):
        for spec in (SMALL, SMALL.with_(npex=3, npey=1)):
            res = run(spec, telemetry=True)
            loaded = RunResult.from_json(res.to_json(include_flux=True))
            assert loaded.telemetry is not None
            assert loaded.telemetry.phase_seconds == res.telemetry.phase_seconds
            assert loaded.telemetry.counters == res.telemetry.counters
            assert loaded.summary()["phase_seconds"] == res.summary()["phase_seconds"]
            assert loaded.to_dict(include_flux=True) == res.to_dict(include_flux=True)

    def test_uninstrumented_round_trip_carries_no_telemetry(self, result):
        loaded = RunResult.from_json(result.to_json())
        assert loaded.telemetry is None
        assert "telemetry" not in loaded.to_dict()

    def test_from_dict_round_trips_converged_flag(self):
        res = run(SMALL.with_(num_inners=50, num_outers=20,
                              inner_tolerance=1e-6, outer_tolerance=1e-6))
        loaded = RunResult.from_json(res.to_json())
        assert res.history.converged is True
        assert loaded.history.converged is True


class TestTransportResultSummaryFix:
    def test_wall_seconds_includes_setup(self):
        result = TransportSolver(SMALL).solve()
        summary = result.summary()
        assert summary["setup_seconds"] > 0
        assert summary["solve_wall_seconds"] > 0
        assert summary["wall_seconds"] == pytest.approx(
            summary["setup_seconds"] + summary["solve_wall_seconds"]
        )
        assert result.wall_seconds == pytest.approx(
            result.setup_seconds + result.solve_seconds
        )
        # The assemble/solve split keys still report the in-kernel times.
        assert summary["solve_seconds"] == result.timings.solve_seconds


class TestSpecAndDeckEngine:
    def test_spec_default_engine(self):
        assert ProblemSpec().engine == "reference"

    def test_deck_engine_key(self):
        spec = loads("nx=2 ny=2 nz=2 engine=vectorized\n/")
        assert spec.engine == "vectorized"

    def test_deck_round_trip_preserves_engine(self):
        spec = SMALL.with_(engine="vectorized")
        assert loads(spec_to_deck(spec)).engine == "vectorized"


class TestCLIAdditions:
    ARGS = ["run", "--nx", "2", "--ny", "2", "--nz", "2", "--nang", "1",
            "--groups", "1", "--inners", "1"]

    def test_engine_flag(self, capsys):
        assert main(self.ARGS + ["--engine", "vectorized"]) == 0
        assert "vectorized" in capsys.readouterr().out

    def test_threads_flag_parsed(self):
        args = build_parser().parse_args(self.ARGS + ["--threads", "4"])
        assert args.threads == 4

    def test_json_flag(self, capsys):
        assert main(self.ARGS + ["--engine", "vectorized", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["engine"] == "vectorized"
        assert data["cells"] == 8
        assert "wall_seconds" in data and "inner_errors" in data

    def test_json_flag_multi_rank(self, capsys):
        assert main(self.ARGS + ["--npex", "2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ranks"] == 2
        assert data["halo_messages"] > 0

    def test_engines_subcommand(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "reference" in out and "vectorized" in out

    def test_solvers_subcommand(self, capsys):
        assert main(["solvers"]) == 0
        out = capsys.readouterr().out
        assert "ge" in out and "lapack" in out

    def test_deck_engine_respected_and_overridable(self, tmp_path, capsys):
        deck = tmp_path / "d.deck"
        deck.write_text("nx=2 ny=2 nz=2 nang=1 ng=1 iitm=1 oitm=1 engine=vectorized\n/")
        assert main(["run", "--deck", str(deck)]) == 0
        assert "vectorized" in capsys.readouterr().out
        assert main(["run", "--deck", str(deck), "--engine", "reference"]) == 0
        assert "reference" in capsys.readouterr().out

    def test_deck_flags_override_deck_values(self, tmp_path, capsys):
        deck = tmp_path / "d.deck"
        deck.write_text("nx=4 ny=2 nz=2 nang=1 ng=1 iitm=1 oitm=1\n/")
        assert main(["run", "--deck", str(deck), "--npex", "2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ranks"] == 2
        assert main(["run", "--deck", str(deck), "--groups", "3", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["groups"] == 3

    def test_balance_engine_flag(self, capsys):
        assert main(["balance", "--n", "2", "--groups", "1",
                     "--engine", "vectorized"]) == 0
        assert "Particle balance" in capsys.readouterr().out
