"""Unit tests for the trilinear element geometry and precomputed factors."""

import numpy as np
import pytest

from repro.fem.element import ElementGeometry, HexElementFactors, corner_reference_coords
from repro.fem.lagrange import LagrangeHexBasis
from repro.fem.reference import ReferenceElement
from repro.mesh.builder import StructuredGridSpec, build_snap_mesh


def unit_cube_vertices(dx=1.0, dy=1.0, dz=1.0, origin=(0.0, 0.0, 0.0)):
    ref = corner_reference_coords()
    verts = (ref + 1.0) / 2.0 * np.array([dx, dy, dz]) + np.array(origin)
    return verts


class TestElementGeometry:
    def test_reference_coords_ordering(self):
        ref = corner_reference_coords()
        assert ref.shape == (8, 3)
        # x fastest: corners 0 and 1 differ only in x.
        assert ref[1, 0] == -ref[0, 0] and np.allclose(ref[1, 1:], ref[0, 1:])

    def test_identity_like_mapping(self):
        geo = ElementGeometry(corner_reference_coords())
        pts = np.array([[0.0, 0.0, 0.0], [0.5, -0.25, 1.0]])
        assert np.allclose(geo.map_points(pts), pts)
        jac = geo.jacobian(pts)
        assert np.allclose(jac, np.eye(3)[None, :, :])

    def test_volume_of_scaled_box(self):
        ref = ReferenceElement(1)
        geo = ElementGeometry(unit_cube_vertices(dx=2.0, dy=0.5, dz=3.0))
        assert geo.volume(ref) == pytest.approx(3.0)

    def test_centroid(self):
        geo = ElementGeometry(unit_cube_vertices())
        assert np.allclose(geo.centroid(), [0.5, 0.5, 0.5])

    def test_node_positions_linear(self):
        geo = ElementGeometry(unit_cube_vertices())
        basis = LagrangeHexBasis(1)
        pos = geo.node_positions(basis)
        assert pos.shape == (8, 3)
        assert np.allclose(sorted(pos[:, 0].tolist()), [0, 0, 0, 0, 1, 1, 1, 1])

    def test_face_normals_unit_cube(self):
        ref = ReferenceElement(1)
        geo = ElementGeometry(unit_cube_vertices())
        expected = {
            0: [-1, 0, 0], 1: [1, 0, 0],
            2: [0, -1, 0], 3: [0, 1, 0],
            4: [0, 0, -1], 5: [0, 0, 1],
        }
        for face, normal in expected.items():
            normals, weights = geo.face_normal_and_area(face, ref)
            assert np.allclose(normals, np.array(normal)[None, :], atol=1e-12)
            assert weights.sum() == pytest.approx(1.0)  # unit face area

    def test_bad_vertex_shape(self):
        with pytest.raises(ValueError):
            ElementGeometry(np.zeros((7, 3)))


class TestHexElementFactors:
    def test_batch_matches_single_element(self):
        ref = ReferenceElement(2)
        verts = unit_cube_vertices(dx=1.3, dy=0.7, dz=0.9)
        factors = HexElementFactors.build(verts[None, :, :], ref)
        geo = ElementGeometry(verts)
        assert factors.volumes[0] == pytest.approx(geo.volume(ref))
        normals, weights = geo.face_normal_and_area(3, ref)
        assert np.allclose(factors.face_normals[0, 3], normals)
        assert np.allclose(factors.face_weights[0, 3], weights)

    def test_whole_mesh_volume_conserved_under_twist(self):
        spec = StructuredGridSpec(4, 4, 4, 2.0, 2.0, 2.0)
        ref = ReferenceElement(1)
        # Each cross-section is rigidly rotated; the trilinear cells only
        # approximate the sheared geometry, so the total volume is preserved
        # exactly without twist and to a few parts in 1e4 for small twists.
        tolerances = {0.0: 1e-12, 0.001: 1e-4, 0.01: 1e-2}
        for twist, rel in tolerances.items():
            mesh = build_snap_mesh(spec, max_twist=twist)
            factors = HexElementFactors.build(mesh.cell_vertices(), ref)
            assert factors.volumes.sum() == pytest.approx(8.0, rel=rel)
            assert np.all(factors.volumes > 0)

    def test_inverted_element_rejected(self):
        ref = ReferenceElement(1)
        verts = unit_cube_vertices()
        inverted = verts.copy()
        inverted[:, 0] *= -1.0  # mirror -> negative Jacobian
        with pytest.raises(ValueError, match="Jacobian"):
            HexElementFactors.build(inverted[None, :, :], ref)

    def test_physical_gradients_of_linear_function(self):
        # grad of f(x) = a.x reconstructed from nodal values must equal a.
        ref = ReferenceElement(1)
        verts = unit_cube_vertices(dx=1.5, dy=0.8, dz=1.1)
        factors = HexElementFactors.build(verts[None, :, :], ref)
        a = np.array([0.3, -1.2, 2.0])
        geo = ElementGeometry(verts)
        nodal = geo.node_positions(ref.basis) @ a
        grad = np.einsum("qnd,n->qd", factors.grad_phys[0], nodal)
        assert np.allclose(grad, a[None, :], atol=1e-12)

    def test_memory_footprint_positive(self, small_factors):
        assert small_factors.memory_footprint_bytes() > 0
        assert small_factors.num_elements == 27

    def test_normals_are_unit(self, small_factors):
        norms = np.linalg.norm(small_factors.face_normals, axis=-1)
        assert np.allclose(norms, 1.0, atol=1e-12)

    def test_bad_shape(self):
        ref = ReferenceElement(1)
        with pytest.raises(ValueError):
            HexElementFactors.build(np.zeros((3, 7, 3)), ref)
