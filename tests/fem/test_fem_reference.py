"""Unit tests for the tabulated reference element."""

import numpy as np
import pytest

from repro.fem.reference import ReferenceElement, get_reference_element, opposite_face


class TestOppositeFace:
    def test_pairs(self):
        assert [opposite_face(f) for f in range(6)] == [1, 0, 3, 2, 5, 4]

    def test_involution(self):
        for f in range(6):
            assert opposite_face(opposite_face(f)) == f

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            opposite_face(6)


class TestReferenceElement:
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_shapes(self, order):
        ref = ReferenceElement(order)
        n = (order + 1) ** 3
        assert ref.phi_vol.shape == (ref.num_volume_points, n)
        assert ref.dphi_vol.shape == (ref.num_volume_points, n, 3)
        assert ref.phi_face.shape == (6, ref.num_face_points, n)
        assert ref.phi_face_neighbor.shape == (6, ref.num_face_points, n)

    def test_reference_mass_matrix_properties(self, ref_order2):
        mass = ref_order2.reference_mass_matrix()
        # Symmetric positive definite with total mass equal to the volume 8.
        assert np.allclose(mass, mass.T, atol=1e-12)
        assert np.all(np.linalg.eigvalsh(mass) > 0)
        assert mass.sum() == pytest.approx(8.0)

    def test_reference_gradient_integration_by_parts(self, ref_order2):
        # sum_j G[d]_ij = int d(phi_i)/d(xi_d) dV, and summing over i too gives
        # the integral of the derivative of the partition of unity = 0... but
        # integrating a single basis derivative equals its boundary flux; the
        # cheap exact identity is G[d] + G[d]^T = boundary mass term, which for
        # the full sum over i, j collapses to 0 because sum_i phi_i = 1:
        grads = ref_order2.reference_gradient_matrices()
        for d in range(3):
            assert grads[d].sum() == pytest.approx(0.0, abs=1e-10)

    def test_face_trace_partition_of_unity(self, ref_order1):
        for f in range(6):
            assert np.allclose(ref_order1.phi_face[f].sum(axis=1), 1.0, atol=1e-12)
            assert np.allclose(ref_order1.phi_face_neighbor[f].sum(axis=1), 1.0, atol=1e-12)

    def test_face_trace_vanishes_off_face(self, ref_order2):
        # Basis functions of nodes not on a face have zero trace on that face.
        basis = ref_order2.basis
        for f in range(6):
            on_face = set(basis.face_node_indices(f).tolist())
            off_face = [i for i in range(basis.num_nodes) if i not in on_face]
            assert np.allclose(ref_order2.phi_face[f][:, off_face], 0.0, atol=1e-12)

    def test_neighbor_trace_uses_opposite_face(self, ref_order1):
        # The neighbour's trace across face f equals our own trace on the
        # opposite face (conforming, orientation-preserving mesh).
        for f in range(6):
            assert np.allclose(
                ref_order1.phi_face_neighbor[f], ref_order1.phi_face[opposite_face(f)]
            )

    def test_face_ref_points_on_face(self, ref_order1):
        for f in range(6):
            axis, sign = ReferenceElement.face_axis(f), ReferenceElement.face_sign(f)
            assert np.allclose(ref_order1.face_ref_points[f][:, axis], float(sign))

    def test_cached_accessor(self):
        assert get_reference_element(2) is get_reference_element(2)
