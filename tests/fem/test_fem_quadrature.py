"""Unit tests for the Gauss-Legendre quadrature rules."""

import numpy as np
import pytest

from repro.fem.quadrature import (
    GaussLegendre1D,
    QuadratureRule,
    default_num_points,
    face_quadrature,
    volume_quadrature,
)


class TestGaussLegendre1D:
    def test_weights_sum_to_interval_length(self):
        for n in range(1, 8):
            rule = GaussLegendre1D.with_points(n)
            assert rule.weights.sum() == pytest.approx(2.0)

    def test_points_inside_interval_and_sorted(self):
        rule = GaussLegendre1D.with_points(6)
        assert np.all(rule.points > -1.0) and np.all(rule.points < 1.0)
        assert np.all(np.diff(rule.points) > 0)

    def test_polynomial_exactness(self):
        # An n-point rule integrates monomials up to degree 2n - 1 exactly.
        for n in range(1, 6):
            rule = GaussLegendre1D.with_points(n)
            for degree in range(2 * n):
                exact = 0.0 if degree % 2 else 2.0 / (degree + 1)
                assert rule.integrate(lambda x, d=degree: x**d) == pytest.approx(exact, abs=1e-12)

    def test_degree_2n_not_exact(self):
        rule = GaussLegendre1D.with_points(2)
        exact = 2.0 / 5.0
        assert rule.integrate(lambda x: x**4) != pytest.approx(exact, abs=1e-6)

    def test_invalid_point_count(self):
        with pytest.raises(ValueError):
            GaussLegendre1D.with_points(0)


class TestTensorRules:
    def test_volume_rule_weight_sum(self):
        rule = volume_quadrature(order=2)
        assert rule.weights.sum() == pytest.approx(8.0)  # volume of [-1,1]^3
        assert rule.points.shape == (rule.num_points, 3)

    def test_face_rule_weight_sum(self):
        rule = face_quadrature(order=3)
        assert rule.weights.sum() == pytest.approx(4.0)  # area of [-1,1]^2

    def test_default_point_count(self):
        assert default_num_points(1) == 3
        assert default_num_points(4) == 6
        with pytest.raises(ValueError):
            default_num_points(0)

    def test_volume_rule_integrates_separable_polynomial(self):
        rule = volume_quadrature(order=2)
        x, y, z = rule.points[:, 0], rule.points[:, 1], rule.points[:, 2]
        values = (x**2) * (y**2) * (z**2)
        exact = (2.0 / 3.0) ** 3
        assert rule.integrate(values) == pytest.approx(exact, abs=1e-12)

    def test_integrate_rejects_wrong_length(self):
        rule = face_quadrature(order=1)
        with pytest.raises(ValueError):
            rule.integrate(np.ones(rule.num_points + 1))

    def test_explicit_point_count_override(self):
        rule = volume_quadrature(order=1, num_points=5)
        assert rule.num_points == 125

    def test_quadrature_rule_shape_validation(self):
        with pytest.raises(ValueError):
            QuadratureRule(points=np.zeros((4, 2)), weights=np.ones(4), dim=3)
        with pytest.raises(ValueError):
            QuadratureRule(points=np.zeros((4, 3)), weights=np.ones(5), dim=3)

    def test_first_coordinate_fastest(self):
        # Node/point ordering convention: x varies fastest in the flattening.
        rule = volume_quadrature(order=1, num_points=2)
        assert rule.points[0, 0] != rule.points[1, 0]
        assert rule.points[0, 1] == rule.points[1, 1]
        assert rule.points[0, 2] == rule.points[1, 2]
