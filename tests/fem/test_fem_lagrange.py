"""Unit tests for the arbitrary-order Lagrange bases (Table I and Fig. 1)."""

import numpy as np
import pytest

from repro.fem.lagrange import (
    LagrangeBasis1D,
    LagrangeHexBasis,
    matrix_footprint_bytes,
    nodes_per_element,
)


class TestTable1Quantities:
    def test_nodes_per_element_matches_table1(self):
        # Table I: orders 1..5 -> matrix sizes 8, 27, 64, 125, 216.
        assert [nodes_per_element(p) for p in range(1, 6)] == [8, 27, 64, 125, 216]

    def test_footprints_match_table1(self):
        expected_kb = {1: 0.5, 2: 5.7, 3: 32.0, 4: 122.1, 5: 364.5}
        for order, kb in expected_kb.items():
            assert matrix_footprint_bytes(order) / 1024.0 == pytest.approx(kb, abs=0.05)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            nodes_per_element(0)


class TestLagrange1D:
    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    def test_cardinal_property(self, order):
        basis = LagrangeBasis1D.equispaced(order)
        values = basis.evaluate(basis.nodes)
        assert np.allclose(values, np.eye(order + 1), atol=1e-12)

    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    def test_partition_of_unity(self, order):
        basis = LagrangeBasis1D.equispaced(order)
        x = np.linspace(-1, 1, 17)
        assert np.allclose(basis.evaluate(x).sum(axis=1), 1.0, atol=1e-12)

    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_derivative_sums_to_zero(self, order):
        basis = LagrangeBasis1D.equispaced(order)
        x = np.linspace(-1, 1, 9)
        assert np.allclose(basis.derivative(x).sum(axis=1), 0.0, atol=1e-10)

    def test_derivative_matches_finite_difference(self):
        basis = LagrangeBasis1D.equispaced(3)
        x = np.array([-0.3, 0.1, 0.7])
        h = 1e-6
        numeric = (basis.evaluate(x + h) - basis.evaluate(x - h)) / (2 * h)
        assert np.allclose(basis.derivative(x), numeric, atol=1e-6)


class TestLagrangeHex:
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_cardinal_at_nodes(self, order):
        basis = LagrangeHexBasis(order)
        values = basis.evaluate(basis.node_coords)
        assert np.allclose(values, np.eye(basis.num_nodes), atol=1e-11)

    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_partition_of_unity(self, order, rng):
        basis = LagrangeHexBasis(order)
        pts = rng.uniform(-1, 1, size=(20, 3))
        assert np.allclose(basis.evaluate(pts).sum(axis=1), 1.0, atol=1e-11)

    def test_gradient_partition_of_unity(self, rng):
        basis = LagrangeHexBasis(2)
        pts = rng.uniform(-1, 1, size=(10, 3))
        assert np.allclose(basis.gradient(pts).sum(axis=1), 0.0, atol=1e-10)

    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_interpolation_reproduces_polynomials(self, order, rng):
        # A Lagrange basis of order p reproduces any polynomial of degree <= p
        # in each coordinate exactly.
        basis = LagrangeHexBasis(order)
        coeff = rng.normal(size=(order + 1,))

        def f(p):
            return sum(c * p[:, 0] ** k for k, c in enumerate(coeff)) + p[:, 1] ** order - p[:, 2]

        nodal = f(basis.node_coords)
        pts = rng.uniform(-1, 1, size=(15, 3))
        assert np.allclose(basis.interpolate(nodal, pts), f(pts), atol=1e-10)

    def test_face_node_indices_lie_on_face(self):
        basis = LagrangeHexBasis(3)
        for face in range(6):
            idx = basis.face_node_indices(face)
            assert idx.shape == (16,)  # (p+1)^2
            axis = face // 2
            coord = -1.0 if face % 2 == 0 else 1.0
            assert np.allclose(basis.node_coords[idx, axis], coord)

    def test_face_node_indices_match_between_neighbours(self):
        # Node k of face +x and node k of face -x must share (y, z): this is
        # what makes conforming neighbour traces line up.
        basis = LagrangeHexBasis(2)
        plus = basis.face_node_indices(1)
        minus = basis.face_node_indices(0)
        assert np.allclose(basis.node_coords[plus][:, 1:], basis.node_coords[minus][:, 1:])

    def test_face_reference_points(self):
        basis = LagrangeHexBasis(1)
        pts2d = np.array([[0.25, -0.5]])
        pts = basis.face_reference_points(3, pts2d)  # +y face
        assert pts.shape == (1, 3)
        assert pts[0, 1] == 1.0
        assert pts[0, 0] == 0.25 and pts[0, 2] == -0.5

    def test_discontinuous_duplicated_nodes(self):
        # Figure 1b: nodes on a shared face exist once per adjacent element
        # (they are *not* merged); the basis therefore always has (p+1)^3
        # nodes per element regardless of neighbours.
        for order in (1, 2):
            basis = LagrangeHexBasis(order)
            assert basis.num_nodes == (order + 1) ** 3
            face_nodes = basis.face_node_indices(1)
            assert len(set(face_nodes.tolist())) == (order + 1) ** 2

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            LagrangeHexBasis(0)
        basis = LagrangeHexBasis(1)
        with pytest.raises(ValueError):
            basis.face_node_indices(6)
