"""Tests for the v2 streaming backend contract (execute_iter / on_result)."""

import pytest

from repro.campaign import (
    Study,
    WorkItem,
    get_backend,
    iter_backend_results,
    run_study,
)
from repro.config import ProblemSpec

BASE = ProblemSpec(
    nx=2, ny=2, nz=2, angles_per_octant=1, num_groups=1, num_inners=1,
    engine="vectorized",
)


class ReversedStreamBackend:
    """Yields results in reverse index order (out-of-order v2 test double)."""

    def __init__(self, meta=None):
        self.meta = meta

    def execute(self, items, *, jobs=None):  # pragma: no cover - v2 path wins
        raise AssertionError("execute_iter must be preferred")

    def execute_iter(self, items, *, jobs=None):
        serial = get_backend("serial")
        results = list(serial.execute(items, jobs=jobs))
        for item, result in reversed(list(zip(items, results))):
            if self.meta is not None:
                yield item.index, result, dict(self.meta, index=item.index)
            else:
                yield item.index, result


class TestIterBackendResults:
    def test_v2_backend_streams_with_meta(self):
        events = list(
            iter_backend_results(
                ReversedStreamBackend(meta={"worker_id": "w0"}),
                [WorkItem(spec=BASE, index=i) for i in (0, 1)],
            )
        )
        assert [index for index, _r, _m in events] == [1, 0]
        assert all(meta["worker_id"] == "w0" for _i, _r, meta in events)

    def test_two_tuple_events_get_empty_meta(self):
        events = list(
            iter_backend_results(ReversedStreamBackend(), [WorkItem(spec=BASE)])
        )
        assert events[0][2] == {}

    def test_v1_backend_wrapped_in_input_order(self):
        items = [WorkItem(spec=BASE, index=i) for i in (0, 1)]
        events = list(iter_backend_results(get_backend("serial"), items))
        assert [index for index, _r, _m in events] == [0, 1]

    def test_pool_backends_implement_execute_iter(self):
        for name in ("thread", "process", "distributed"):
            assert callable(getattr(get_backend(name), "execute_iter", None)), name

    def test_thread_execute_iter_covers_every_index(self):
        items = [WorkItem(spec=BASE.with_(order=o), index=i) for i, o in enumerate([1, 1])]
        events = list(iter_backend_results(get_backend("thread"), items, jobs=2))
        assert sorted(index for index, _r, _m in events) == [0, 1]


class TestRunStudyV2:
    def test_out_of_order_stream_reassembled_in_declaration_order(self):
        study = Study.grid(BASE, order=[1, 2])
        result = run_study(study, backend=ReversedStreamBackend())
        assert [r.axes["order"] for r in result] == [1, 2]

    def test_on_result_sees_completion_order(self):
        study = Study.grid(BASE, order=[1, 2])
        seen = []
        run_study(study, backend=ReversedStreamBackend(), on_result=lambda r: seen.append(r.index))
        assert seen == [1, 0]

    def test_on_result_fires_for_cached_runs_first(self, tmp_path):
        study = Study.grid(BASE, order=[1, 2])
        run_study(study, backend="serial", store=tmp_path)
        seen = []
        result = run_study(
            study, backend="serial", store=tmp_path, on_result=lambda r: seen.append(r)
        )
        assert [r.index for r in seen] == [0, 1]
        assert all(r.from_cache for r in seen)
        assert result.new_run_count == 0

    def test_meta_lands_in_records(self):
        study = Study.grid(BASE, order=[1])
        result = run_study(study, backend=ReversedStreamBackend(meta={"worker_id": "w7"}))
        record = result.records()[0]
        assert record["worker_id"] == "w7"

    def test_axes_win_over_meta_keys(self):
        study = Study.grid(BASE, order=[1])
        result = run_study(study, backend=ReversedStreamBackend(meta={"order": "bogus"}))
        assert result.records()[0]["order"] == 1

    def test_unknown_index_rejected(self):
        class RogueBackend:
            def execute(self, items, *, jobs=None):
                raise AssertionError

            def execute_iter(self, items, *, jobs=None):
                serial = get_backend("serial")
                (result,) = serial.execute(items, jobs=jobs)
                yield 99, result

        with pytest.raises(RuntimeError, match="unknown run index 99"):
            run_study(Study.grid(BASE, order=[1]), backend=RogueBackend())

    def test_duplicate_index_rejected(self):
        class StutterBackend:
            def execute(self, items, *, jobs=None):
                raise AssertionError

            def execute_iter(self, items, *, jobs=None):
                serial = get_backend("serial")
                (result,) = serial.execute(items, jobs=jobs)
                yield items[0].index, result
                yield items[0].index, result

        with pytest.raises(RuntimeError, match="index 0 twice"):
            run_study(Study.grid(BASE, order=[1]), backend=StutterBackend())

    def test_short_stream_rejected(self):
        class SilentBackend:
            def execute(self, items, *, jobs=None):
                raise AssertionError

            def execute_iter(self, items, *, jobs=None):
                return iter(())

        with pytest.raises(RuntimeError, match="0 results for 1 runs"):
            run_study(Study.grid(BASE, order=[1]), backend=SilentBackend())

    def test_legacy_tuple_payloads_rejected(self):
        # The one-release tuple deprecation window (PR-7) is over: feeding
        # raw (spec, options) tuples into a backend is a clean TypeError.
        serial = get_backend("serial")
        with pytest.raises(TypeError, match="WorkItem"):
            list(serial.execute([(BASE, {}), (BASE.with_(order=2), {})]))
