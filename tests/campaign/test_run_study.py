"""Tests for the run_study facade and the StudyResult tidy-record/pivot API."""

import pytest

import repro
from repro.analysis.figures import (
    block_jacobi_convergence_series,
    measured_scaling_series,
    measured_thread_scaling_study,
)
from repro.analysis.tables import table2_solver_comparison, table2_study
from repro.campaign import Study, run_study
from repro.config import ProblemSpec

BASE = ProblemSpec(nx=3, ny=3, nz=3, angles_per_octant=1, num_groups=2, num_inners=2)


@pytest.fixture(scope="module")
def grid_result():
    return run_study(Study.grid(BASE, engine=["vectorized", "prefactorized"], order=[1, 2]))


class TestStudyResult:
    def test_len_iter_getitem(self, grid_result):
        assert len(grid_result) == 4
        assert [r.index for r in grid_result] == [0, 1, 2, 3]
        assert grid_result[2].axes == {"engine": "prefactorized", "order": 1}

    def test_records_merge_axes_and_summary(self, grid_result):
        records = grid_result.records()
        assert len(records) == 4
        for record in records:
            assert {"engine", "order", "wall_seconds", "mean_flux", "from_cache"} <= set(record)
        # The axis value wins over the summary key of the same name.
        assert records[0]["engine"] == "vectorized"
        assert records[0]["from_cache"] is False

    def test_values(self, grid_result):
        assert grid_result.values("order") == [1, 2, 1, 2]

    def test_pivot(self, grid_result):
        pivot = grid_result.pivot("order", "engine", "mean_flux")
        assert pivot.rows == (1, 2)
        assert pivot.cols == ("vectorized", "prefactorized")
        # Engines agree bit for bit, so the pivot rows are constant.
        assert pivot.at(1, "vectorized") == pivot.at(1, "prefactorized")
        rows = pivot.as_rows()
        assert rows[0][0] == 1 and len(rows[0]) == 3

    def test_series_grouping(self, grid_result):
        grouped = grid_result.series("order", "mean_flux", series_axis="engine")
        assert set(grouped) == {"engine=vectorized", "engine=prefactorized"}
        assert [x for x, _ in grouped["engine=vectorized"]] == [1, 2]

    def test_series_without_axis_uses_study_name(self):
        result = run_study(Study.grid(BASE, order=[1], name="solo"))
        assert list(result.series("order", "mean_flux")) == ["solo"]


class TestAnalysisConsumers:
    def test_table2_study_shape(self):
        study = table2_study(orders=(1, 2), solvers=("ge",))
        assert len(study) == 2
        assert study.axis_names == ["order", "solver"]

    def test_table2_solver_comparison_via_study(self, tmp_path):
        small = BASE
        rows = table2_solver_comparison(
            orders=(1, 2), solvers=("ge", "lapack"), base_spec=small,
            store=tmp_path / "t2",
        )
        assert [(r.order, r.solver) for r in rows] == [
            (1, "ge"), (1, "lapack"), (2, "ge"), (2, "lapack")]
        assert all(r.assemble_solve_seconds > 0 for r in rows)
        # Second invocation resumes from the store: identical table rows
        # except the timings come from the stored runs (same values).
        again = table2_solver_comparison(
            orders=(1, 2), solvers=("ge", "lapack"), base_spec=small,
            store=tmp_path / "t2",
        )
        assert [(r.order, r.solver, r.systems_solved) for r in rows] == [
            (r.order, r.solver, r.systems_solved) for r in again]

    def test_measured_thread_scaling_study(self):
        result = measured_thread_scaling_study(
            BASE, thread_counts=(1, 2), engines=("vectorized",))
        assert len(result) == 2
        assert all(r.spec.octant_parallel for r in result)
        series = measured_scaling_series(result)
        assert series.thread_counts == [1, 2]
        assert list(series.series) == ["engine=vectorized"]
        assert all(v > 0 for v in series.series["engine=vectorized"])

    def test_measured_scaling_series_single_series(self):
        result = measured_thread_scaling_study(BASE, thread_counts=(1,))
        series = measured_scaling_series(result, series_axis=None)
        assert list(series.series) == ["thread-scaling"]

    def test_block_jacobi_convergence_series_via_study(self):
        small = BASE.with_(nx=4, ny=4, nz=4, num_inners=3)
        histories = block_jacobi_convergence_series(
            rank_grids=((1, 1), (2, 1)), base_spec=small)
        assert set(histories) == {"1x1 ranks", "2x1 ranks"}
        assert all(len(errors) == 3 for errors in histories.values())


class TestFacadeExports:
    def test_package_level_api(self):
        assert repro.run_study is run_study
        assert repro.Study is Study
        assert "process" in repro.available_backends()
        assert repro.get_backend("serial").name == "serial"
