"""Tests for the execution-backend registry and the backends' run contract.

The process-backend equivalence test is the acceptance gate of the campaign
subsystem: a study grid sharded across worker processes must reproduce the
serial fluxes and balance bit for bit.
"""

import numpy as np
import pytest

import repro
from repro.campaign import (
    Study,
    available_backends,
    backend_aliases,
    backend_listing,
    get_backend,
    register_backend,
    run_study,
    unregister_backend,
)
from repro.config import ProblemSpec

BASE = ProblemSpec(nx=3, ny=3, nz=3, angles_per_octant=1, num_groups=2, num_inners=2)
GRID = dict(engine=["vectorized", "prefactorized"], order=[1, 2])


class TestRegistry:
    def test_builtins_registered(self):
        assert available_backends() == ["distributed", "process", "serial", "thread"]

    def test_aliases(self):
        assert backend_aliases("process") == ["mp", "processes"]
        assert backend_aliases("distributed") == ["cluster", "spool"]
        assert get_backend("mp") is get_backend("process")
        assert get_backend("sequential") is get_backend("serial")
        assert get_backend("spool") is get_backend("distributed")

    def test_listing_has_descriptions(self):
        rows = {name: desc for name, _aliases, desc in backend_listing()}
        assert "serial" in rows and rows["serial"]

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError, match="warp-drive"):
            get_backend("warp-drive")

    def test_instance_passthrough_and_rejection(self):
        assert get_backend(get_backend("serial")) is get_backend("serial")
        with pytest.raises(TypeError):
            get_backend(object())

    def test_register_and_unregister_custom_backend(self):
        @register_backend("test-custom", aliases=("tc",))
        class CustomBackend:
            """Delegates to serial (registration test only)."""

            def execute(self, points, *, jobs=None):
                return get_backend("serial").execute(points, jobs=jobs)

        try:
            assert "test-custom" in available_backends()
            result = run_study(Study.grid(BASE, order=[1]), backend="tc")
            assert len(result) == 1
        finally:
            unregister_backend("test-custom")
        assert "test-custom" not in available_backends()

    def test_register_rejects_non_backend(self):
        with pytest.raises(TypeError, match="execute"):
            register_backend("broken")(object())


@pytest.fixture(scope="module")
def serial_result():
    return run_study(Study.grid(BASE, **GRID), backend="serial")


class TestBackendEquivalence:
    def _assert_bit_for_bit(self, serial, other):
        assert len(other) == len(serial)
        for a, b in zip(serial, other):
            assert a.axes == b.axes
            np.testing.assert_array_equal(a.result.scalar_flux, b.result.scalar_flux)
            np.testing.assert_array_equal(
                a.result.cell_average_flux, b.result.cell_average_flux
            )
            np.testing.assert_array_equal(a.result.leakage, b.result.leakage)
            np.testing.assert_array_equal(
                a.result.balance.residual, b.result.balance.residual
            )
            assert a.result.history.inner_errors == b.result.history.inner_errors

    def test_process_backend_bit_for_bit_equal_to_serial(self, serial_result):
        process = run_study(Study.grid(BASE, **GRID), backend="process", jobs=2)
        self._assert_bit_for_bit(serial_result, process)

    def test_thread_backend_bit_for_bit_equal_to_serial(self, serial_result):
        threaded = run_study(Study.grid(BASE, **GRID), backend="thread", jobs=2)
        self._assert_bit_for_bit(serial_result, threaded)

    def test_results_in_declaration_order_whatever_the_backend(self, serial_result):
        expected = [
            {"engine": engine, "order": order}
            for engine in GRID["engine"]
            for order in GRID["order"]
        ]
        assert [r.axes for r in serial_result] == expected

    def test_serial_matches_direct_run_facade(self, serial_result):
        direct = repro.run(BASE.with_(engine="vectorized", order=1))
        np.testing.assert_array_equal(
            serial_result[0].result.scalar_flux, direct.scalar_flux
        )

    def test_run_option_axis_forwarded(self):
        result = run_study(Study.grid(BASE, num_threads=[1, 2]), backend="serial")
        np.testing.assert_array_equal(
            result[0].result.scalar_flux, result[1].result.scalar_flux
        )

    def test_empty_study_executes_no_runs(self):
        result = run_study(Study.cases(BASE, []), backend="process")
        assert len(result) == 0 and result.new_run_count == 0

    def test_out_of_range_jobs_clamped_on_all_pool_backends(self):
        # ThreadPoolExecutor/ProcessPoolExecutor reject max_workers <= 0;
        # the backends clamp instead of crashing.
        study = Study.grid(BASE, order=[1])
        for backend in ("thread", "process"):
            result = run_study(study, backend=backend, jobs=0)
            assert result.new_run_count == 1

    def test_backend_result_count_mismatch_detected(self):
        class LossyBackend:
            """Drops the last result (contract-violation test only)."""

            def execute(self, points, *, jobs=None):
                return list(get_backend("serial").execute(points, jobs=jobs))[:-1]

        with pytest.raises(RuntimeError, match="1 results for 2 runs"):
            run_study(Study.grid(BASE, order=[1, 2]), backend=LossyBackend())

    def test_backend_surplus_results_detected(self):
        class ChattyBackend:
            """Duplicates the last result (contract-violation test only)."""

            def execute(self, points, *, jobs=None):
                results = list(get_backend("serial").execute(points, jobs=jobs))
                return results + results[-1:]

        with pytest.raises(RuntimeError, match="> 1 results for 1 runs"):
            run_study(Study.grid(BASE, order=[1]), backend=ChattyBackend())
