"""Tests for [study] deck sections, the unknown-key UX and `unsnap study`."""

import json

import pytest

from repro.cli import main
from repro.input_deck import (
    deck_has_study,
    loads,
    loads_study,
    loads_study_parts,
    parse_axis_option,
    parse_study_deck,
    valid_problem_keys,
    valid_study_keys,
)

STUDY_DECK = """
! base problem
nx=3 ny=3 nz=3
nang=1 ng=2 iitm=2
[study]
engine = vectorized, prefactorized
order  = 1, 2
/
"""


class TestUnknownKeyUX:
    def test_problem_section_error_names_key_and_lists_valid(self):
        with pytest.raises(KeyError) as err:
            loads("nx=3 warp=9\n/")
        message = err.value.args[0]
        assert "'warp'" in message and "[problem]" in message
        for key in ("nx", "engine", "octant_parallel"):
            assert key in message

    def test_study_section_error_names_key_and_lists_valid(self):
        with pytest.raises(KeyError) as err:
            loads_study("nx=3\n[study]\nwarp = 1, 2\n/")
        message = err.value.args[0]
        assert "'warp'" in message and "[study]" in message and "nang" in message

    def test_valid_key_listings(self):
        assert "nang" in valid_problem_keys()
        assert {"nang", "angles_per_octant", "num_threads"} <= set(valid_study_keys())

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError, match=r"\[campaign\]"):
            loads("nx=3\n[campaign]\nengine=vectorized\n/")

    def test_malformed_section_header_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            loads("[study\nengine=vectorized\n/")


class TestStudyDeckParsing:
    def test_deck_has_study(self):
        assert deck_has_study(STUDY_DECK)
        assert not deck_has_study("nx=3\n/")

    def test_loads_rejects_study_decks_with_pointer(self):
        with pytest.raises(ValueError, match="unsnap study"):
            loads(STUDY_DECK)

    def test_loads_study_builds_grid(self):
        study = loads_study(STUDY_DECK)
        assert len(study) == 4
        assert study.base.nx == 3 and study.base.num_groups == 2
        assert study.axis_names == ["engine", "order"]
        assert study.axis_values("engine") == ["vectorized", "prefactorized"]

    def test_loads_study_parts(self):
        base, axes = loads_study_parts(STUDY_DECK)
        assert base.num_inners == 2
        assert axes == {"engine": ["vectorized", "prefactorized"], "order": [1, 2]}

    def test_plain_deck_is_single_run_study(self):
        study = loads_study("nx=3 ny=3 nz=3\n/")
        assert len(study) == 1 and study.points == ({},)

    def test_nthreads_axis_maps_to_run_option(self):
        study = loads_study("nx=3\n[study]\nnthreads = 1, 2\n/")
        assert study.axis_names == ["num_threads"]
        assert [p.run_options for p in study.runs()] == [
            {"num_threads": 1}, {"num_threads": 2}]

    def test_spec_field_names_accepted_as_axis_keys(self):
        study = loads_study("nx=3\n[study]\nnum_groups = 1, 2\n/")
        assert [p.spec.num_groups for p in study.runs()] == [1, 2]

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="duplicate study axis"):
            loads_study("nx=3\n[study]\norder=1,2\norder=3\n/")

    def test_axis_without_values_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            loads_study("nx=3\n[study]\norder =\n/")

    def test_two_axes_on_one_line_rejected_with_rule(self):
        with pytest.raises(ValueError, match="one axis per line"):
            loads_study("nx=3\n[study]\norder=1,2 engine=vectorized\n/")

    def test_parse_study_deck_file(self, tmp_path):
        deck = tmp_path / "grid.deck"
        deck.write_text(STUDY_DECK)
        study = parse_study_deck(deck)
        assert study.name == "grid" and len(study) == 4

    def test_parse_axis_option_typed(self):
        assert parse_axis_option("nx=4,8") == ("nx", [4, 8])
        assert parse_axis_option("engine=vectorized") == ("engine", ["vectorized"])
        assert parse_axis_option("twist=0.0,0.001") == ("max_twist", [0.0, 0.001])
        with pytest.raises(KeyError, match="warp"):
            parse_axis_option("warp=1")


CLI_BASE = ["study", "--nx", "2", "--ny", "2", "--nz", "2", "--nang", "1",
            "--groups", "1", "--inners", "1"]


class TestStudyCLI:
    def test_axis_flags_build_grid(self, capsys):
        assert main(CLI_BASE + ["--axis", "engine=vectorized,prefactorized"]) == 0
        out = capsys.readouterr().out
        assert "2 runs" in out and "vectorized" in out and "prefactorized" in out

    def test_json_records(self, capsys):
        assert main(CLI_BASE + ["--axis", "order=1,2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["study"] == "study"
        assert [r["order"] for r in data["records"]] == [1, 2]
        assert all(r["from_cache"] is False for r in data["records"])

    def test_store_resumes(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = CLI_BASE + ["--axis", "order=1,2", "--store", store, "--json"]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert all(r["from_cache"] is False for r in first["records"])
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert all(r["from_cache"] is True for r in second["records"])
        for a, b in zip(first["records"], second["records"]):
            assert a["mean_flux"] == b["mean_flux"]

    def test_deck_axes_and_flag_override(self, tmp_path, capsys):
        deck = tmp_path / "s.deck"
        deck.write_text(STUDY_DECK)
        assert main(["study", "--deck", str(deck), "--inners", "1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["study"] == "s"
        assert len(data["records"]) == 4
        assert all(r["total_inners"] == 1 for r in data["records"])

    def test_cli_axis_overrides_deck_axis(self, tmp_path, capsys):
        deck = tmp_path / "s.deck"
        deck.write_text(STUDY_DECK)
        assert main(["study", "--deck", str(deck), "--inners", "1",
                     "--axis", "order=1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["records"]) == 2
        assert {r["order"] for r in data["records"]} == {1}

    def test_threads_flag_becomes_axis(self, capsys):
        assert main(CLI_BASE + ["--threads", "2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert [r["num_threads"] for r in data["records"]] == [2]

    def test_unknown_axis_key_is_cli_error(self, capsys):
        assert main(CLI_BASE + ["--axis", "warp=1"]) == 2
        assert "warp" in capsys.readouterr().err

    def test_bad_axis_value_is_cli_error_before_any_run(self, capsys):
        # Unknown engine name on an axis: caught by the up-front validation.
        assert main(CLI_BASE + ["--axis", "engine=typo"]) == 2
        assert "typo" in capsys.readouterr().err
        # Out-of-range spec value: rejected by ProblemSpec validation.
        assert main(CLI_BASE + ["--axis", "order=0"]) == 2
        assert "order" in capsys.readouterr().err
        # Unknown solver name too.
        assert main(CLI_BASE + ["--axis", "solver=nope"]) == 2
        assert "nope" in capsys.readouterr().err

    def test_unknown_backend_is_cli_error(self, capsys):
        assert main(CLI_BASE + ["--backend", "warp-drive"]) == 2
        assert "warp-drive" in capsys.readouterr().err

    def test_run_on_study_deck_points_to_study(self, tmp_path, capsys):
        deck = tmp_path / "s.deck"
        deck.write_text(STUDY_DECK)
        assert main(["run", "--deck", str(deck)]) == 2
        assert "unsnap study" in capsys.readouterr().err

    def test_run_on_deck_with_unknown_key_is_clean_error(self, tmp_path, capsys):
        deck = tmp_path / "typo.deck"
        deck.write_text("nnx=4 ny=2 nz=2\n/")
        assert main(["run", "--deck", str(deck)]) == 2
        err = capsys.readouterr().err
        assert "unknown input deck key 'nnx'" in err and "[problem]" in err

    def test_study_on_deck_with_unknown_key_is_clean_error(self, tmp_path, capsys):
        deck = tmp_path / "typo.deck"
        deck.write_text("nnx=4\n[study]\norder=1,2\n/")
        assert main(["study", "--deck", str(deck)]) == 2
        assert "unknown input deck key 'nnx'" in capsys.readouterr().err

    def test_backends_subcommand(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "serial" in out and "process" in out and "mp" in out

    @pytest.mark.slow
    def test_process_backend_via_cli(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(CLI_BASE + ["--axis", "order=1,2", "--backend", "process",
                                "--jobs", "2", "--store", store, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["records"]) == 2
