"""Tests for ResultStore.merge: the sharded-campaign join point."""

import json

import numpy as np
import pytest

from repro.campaign import ResultStore, Study, run_study
from repro.campaign.store import GOLDEN_MARKER
from repro.config import ProblemSpec

BASE = ProblemSpec(
    nx=2, ny=2, nz=2, angles_per_octant=1, num_groups=1, num_inners=1,
    engine="vectorized",
)
STUDY = Study.grid(BASE, order=[1, 2])


def _shard_stores(tmp_path):
    """Two stores each holding one half of STUDY (independent shards)."""
    points = STUDY.runs()
    shard_a = ResultStore(tmp_path / "shard-a")
    shard_b = ResultStore(tmp_path / "shard-b")
    run_study(Study.cases(BASE, [points[0].axes]), store=shard_a)
    run_study(Study.cases(BASE, [points[1].axes]), store=shard_b)
    return shard_a, shard_b


class TestMerge:
    def test_merge_unions_disjoint_shards(self, tmp_path):
        shard_a, shard_b = _shard_stores(tmp_path)
        stats = shard_a.merge(shard_b)
        assert stats == {"merged": 1, "skipped": 0, "records": 2}

    def test_merged_store_resumes_with_zero_new_runs(self, tmp_path):
        shard_a, shard_b = _shard_stores(tmp_path)
        shard_a.merge(shard_b)
        result = run_study(STUDY, store=shard_a)
        assert result.new_run_count == 0 and result.cached_run_count == 2

    def test_merge_copies_records_byte_for_byte(self, tmp_path):
        shard_a, shard_b = _shard_stores(tmp_path)
        (key,) = shard_b.keys()
        shard_a.merge(shard_b)
        assert shard_a.path_for(key).read_text() == shard_b.path_for(key).read_text()

    def test_merged_result_bit_for_bit_equal_to_direct_run(self, tmp_path):
        shard_a, shard_b = _shard_stores(tmp_path)
        shard_a.merge(shard_b)
        direct = run_study(STUDY)
        merged = run_study(STUDY, store=shard_a)
        for a, b in zip(direct, merged):
            np.testing.assert_array_equal(a.result.scalar_flux, b.result.scalar_flux)

    def test_duplicates_skipped_by_default(self, tmp_path):
        shard_a, shard_b = _shard_stores(tmp_path)
        shard_a.merge(shard_b)
        stats = shard_a.merge(shard_b)
        assert stats == {"merged": 0, "skipped": 1, "records": 2}

    def test_overwrite_replaces_existing_records(self, tmp_path):
        shard_a, shard_b = _shard_stores(tmp_path)
        shard_a.merge(shard_b)
        stats = shard_a.merge(shard_b, overwrite=True)
        assert stats["merged"] == 1 and stats["skipped"] == 0

    def test_source_store_never_modified(self, tmp_path):
        shard_a, shard_b = _shard_stores(tmp_path)
        before = {p.name: p.read_text() for p in shard_b.root.iterdir()}
        shard_a.merge(shard_b)
        after = {p.name: p.read_text() for p in shard_b.root.iterdir()}
        assert before == after

    def test_merge_accepts_plain_path(self, tmp_path):
        shard_a, shard_b = _shard_stores(tmp_path)
        stats = shard_a.merge(shard_b.root)
        assert stats["merged"] == 1


class TestMergeRefusals:
    def test_golden_destination_refused(self, tmp_path):
        dest = ResultStore(tmp_path / "golden")
        dest.root.mkdir()
        (dest.root / GOLDEN_MARKER).touch()
        with pytest.raises(ValueError, match="refusing to merge"):
            dest.merge(tmp_path / "anywhere")

    def test_self_merge_refused(self, tmp_path):
        store = ResultStore(tmp_path / "runs")
        store.root.mkdir()
        with pytest.raises(ValueError, match="into itself"):
            store.merge(store.root)

    def test_corrupt_source_record_refused(self, tmp_path):
        shard_a, shard_b = _shard_stores(tmp_path)
        (key,) = shard_b.keys()
        shard_b.path_for(key).write_text('{"format": "unsnap-run-v1", "trunc')
        with pytest.raises(ValueError, match="corrupt"):
            shard_a.merge(shard_b)

    def test_foreign_format_source_refused(self, tmp_path):
        shard_a, shard_b = _shard_stores(tmp_path)
        (key,) = shard_b.keys()
        shard_b.path_for(key).write_text(json.dumps({"format": "other-v9"}))
        with pytest.raises(ValueError, match="format='other-v9'"):
            shard_a.merge(shard_b)
