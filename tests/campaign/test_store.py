"""Tests for the content-hashed ResultStore and study resumability."""

import json

import numpy as np
import pytest

import repro
from repro.campaign import ResultStore, Study, run_key, run_study
from repro.config import ProblemSpec

BASE = ProblemSpec(nx=3, ny=3, nz=3, angles_per_octant=1, num_groups=2, num_inners=2)


class TestRunKey:
    def test_stable_and_content_addressed(self):
        assert run_key(BASE) == run_key(ProblemSpec(**BASE.to_dict()))
        assert len(run_key(BASE)) == 64

    def test_differs_across_specs_and_run_options(self):
        assert run_key(BASE) != run_key(BASE.with_(nx=4))
        assert run_key(BASE) != run_key(BASE, {"num_threads": 2})
        assert run_key(BASE, {"num_threads": 2}) == run_key(BASE, {"num_threads": 2})

    def test_independent_of_option_ordering(self):
        # A single run option exists today; the canonicalisation must still
        # hold once more are added, so exercise the dict-order independence.
        a = run_key(BASE, dict([("num_threads", 2)]))
        b = run_key(BASE, {"num_threads": 2})
        assert a == b


class TestResultStore:
    def test_get_on_empty_store(self, tmp_path):
        store = ResultStore(tmp_path / "runs")
        assert store.get(BASE) is None
        assert len(store) == 0 and store.keys() == []

    def test_put_get_round_trip_bit_for_bit(self, tmp_path):
        store = ResultStore(tmp_path / "runs")
        result = repro.run(BASE)
        path = store.put(BASE, result)
        assert path.exists() and path.stem == run_key(BASE)
        loaded = store.get(BASE)
        np.testing.assert_array_equal(loaded.scalar_flux, result.scalar_flux)
        np.testing.assert_array_equal(loaded.cell_average_flux, result.cell_average_flux)
        assert loaded.spec == BASE
        assert BASE in store and run_key(BASE) in store

    def test_foreign_json_in_store_rejected_cleanly(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(BASE, repro.run(BASE))
        (tmp_path / f"{run_key(BASE.with_(nx=4))}.json").write_text('{"not": "a record"}')
        with pytest.raises(ValueError, match="not a result-store record"):
            store.get(BASE.with_(nx=4))
        with pytest.raises(ValueError, match="unsnap-run-v1"):
            store.results()
        # The valid record is still readable directly.
        assert store.get(BASE) is not None

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(BASE, repro.run(BASE))
        assert list(tmp_path.glob("*.tmp")) == []
        assert len(store) == 1

    def test_records_are_self_describing(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(BASE, repro.run(BASE), {"num_threads": 2})
        record = json.loads(store.path_for(store.keys()[0]).read_text())
        assert record["format"] == "unsnap-run-v1"
        assert record["spec"]["nx"] == 3
        assert record["run_options"] == {"num_threads": 2}
        specs_and_results = store.results()
        assert len(specs_and_results) == 1
        spec, options, result = specs_and_results[0]
        assert spec == BASE and options == {"num_threads": 2}
        assert result.scalar_flux.shape == (27, 2, 8)


class _ExplodingBackend:
    """Fails on any non-empty batch: proves resumption executed nothing."""

    def execute(self, points, *, jobs=None):
        if points:
            raise AssertionError(f"backend was asked to execute {len(points)} runs")
        return []


class TestResumability:
    GRID = dict(engine=["vectorized", "prefactorized"], order=[1, 2])

    def test_rerun_with_warm_store_executes_zero_new_runs(self, tmp_path):
        store = ResultStore(tmp_path / "campaign")
        study = Study.grid(BASE, **self.GRID)

        first = run_study(study, store=store)
        assert first.new_run_count == 4 and first.cached_run_count == 0
        assert len(store) == 4

        second = run_study(study, store=store, backend=_ExplodingBackend())
        assert second.new_run_count == 0 and second.cached_run_count == 4
        assert all(r.from_cache for r in second)
        for a, b in zip(first, second):
            assert a.axes == b.axes
            np.testing.assert_array_equal(a.result.scalar_flux, b.result.scalar_flux)

    def test_partial_store_runs_only_missing_points(self, tmp_path):
        store = ResultStore(tmp_path / "campaign")
        study = Study.grid(BASE, **self.GRID)
        points = study.runs()
        # Pre-fill half the grid out of order.
        for point in (points[3], points[1]):
            store.put(point.spec, repro.run(point.spec, **point.run_options),
                      point.run_options)

        result = run_study(study, store=store)
        assert result.new_run_count == 2 and result.cached_run_count == 2
        assert [r.from_cache for r in result] == [False, True, False, True]
        assert len(store) == 4

    def test_store_accepts_plain_path(self, tmp_path):
        study = Study.grid(BASE, order=[1])
        result = run_study(study, store=tmp_path / "as-path")
        assert result.new_run_count == 1
        assert len(ResultStore(tmp_path / "as-path")) == 1

    def test_store_hit_respects_run_options(self, tmp_path):
        store = ResultStore(tmp_path)
        run_study(Study.grid(BASE, num_threads=[1]), store=store)
        result = run_study(Study.grid(BASE, num_threads=[2]), store=store)
        assert result.new_run_count == 1
        assert len(store) == 2

    def test_changed_spec_axis_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        run_study(Study.grid(BASE, order=[1]), store=store)
        result = run_study(Study.grid(BASE, order=[2]), store=store)
        assert result.new_run_count == 1 and len(store) == 2

    def test_failed_run_keeps_completed_prefix_in_store(self, tmp_path):
        # Results stream into the store per run, so a mid-study failure
        # (here: an engine that resolves only at execution time) keeps every
        # completed run and the re-invocation resumes from that prefix.
        store = ResultStore(tmp_path / "interrupted")
        broken = Study.cases(
            BASE, [{"engine": "vectorized"}, {"engine": "not-an-engine"}])
        with pytest.raises(KeyError, match="not-an-engine"):
            run_study(broken, store=store)
        assert len(store) == 1

        fixed = Study.cases(
            BASE, [{"engine": "vectorized"}, {"engine": "prefactorized"}])
        result = run_study(fixed, store=store)
        assert result.new_run_count == 1 and result.cached_run_count == 1
        assert [r.from_cache for r in result] == [True, False]


@pytest.mark.slow
class TestProcessBackendWithStore:
    def test_process_backend_populates_and_resumes(self, tmp_path):
        store = ResultStore(tmp_path / "proc")
        study = Study.grid(BASE, engine=["vectorized", "prefactorized"])
        first = run_study(study, backend="process", store=store, jobs=2)
        assert first.new_run_count == 2
        second = run_study(study, backend="process", store=store, jobs=2)
        assert second.new_run_count == 0
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.result.scalar_flux, b.result.scalar_flux)
