"""Tests for the content-hashed ResultStore and study resumability."""

import json
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro
from repro.campaign import ResultStore, Study, run_key, run_study
from repro.config import ProblemSpec

BASE = ProblemSpec(nx=3, ny=3, nz=3, angles_per_octant=1, num_groups=2, num_inners=2)


class TestRunKey:
    def test_stable_and_content_addressed(self):
        assert run_key(BASE) == run_key(ProblemSpec(**BASE.to_dict()))
        assert len(run_key(BASE)) == 64

    def test_differs_across_specs_and_run_options(self):
        assert run_key(BASE) != run_key(BASE.with_(nx=4))
        assert run_key(BASE) != run_key(BASE, {"num_threads": 2})
        assert run_key(BASE, {"num_threads": 2}) == run_key(BASE, {"num_threads": 2})

    def test_independent_of_option_ordering(self):
        # A single run option exists today; the canonicalisation must still
        # hold once more are added, so exercise the dict-order independence.
        a = run_key(BASE, dict([("num_threads", 2)]))
        b = run_key(BASE, {"num_threads": 2})
        assert a == b


class TestResultStore:
    def test_get_on_empty_store(self, tmp_path):
        store = ResultStore(tmp_path / "runs")
        assert store.get(BASE) is None
        assert len(store) == 0 and store.keys() == []

    def test_put_get_round_trip_bit_for_bit(self, tmp_path):
        store = ResultStore(tmp_path / "runs")
        result = repro.run(BASE)
        path = store.put(BASE, result)
        assert path.exists() and path.stem == run_key(BASE)
        loaded = store.get(BASE)
        np.testing.assert_array_equal(loaded.scalar_flux, result.scalar_flux)
        np.testing.assert_array_equal(loaded.cell_average_flux, result.cell_average_flux)
        assert loaded.spec == BASE
        assert BASE in store and run_key(BASE) in store

    def test_foreign_json_in_store_rejected_cleanly(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(BASE, repro.run(BASE))
        (tmp_path / f"{run_key(BASE.with_(nx=4))}.json").write_text('{"not": "a record"}')
        with pytest.raises(ValueError, match="not a result-store record"):
            store.get(BASE.with_(nx=4))
        with pytest.raises(ValueError, match="unsnap-run-v1"):
            store.results()
        # The valid record is still readable directly.
        assert store.get(BASE) is not None

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(BASE, repro.run(BASE))
        assert list(tmp_path.glob("*.tmp")) == []
        assert len(store) == 1

    def test_records_are_self_describing(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(BASE, repro.run(BASE), {"num_threads": 2})
        record = json.loads(store.path_for(store.keys()[0]).read_text())
        assert record["format"] == "unsnap-run-v1"
        assert record["spec"]["nx"] == 3
        assert record["run_options"] == {"num_threads": 2}
        specs_and_results = store.results()
        assert len(specs_and_results) == 1
        spec, options, result = specs_and_results[0]
        assert spec == BASE and options == {"num_threads": 2}
        assert result.scalar_flux.shape == (27, 2, 8)


class TestDamagedRecords:
    """A store directory is a long-lived artifact: damage must fail loudly."""

    def test_corrupted_json_names_the_file_and_suggests_recovery(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(BASE, repro.run(BASE))
        path.write_text('{"format": "unsnap-run-v1", "result": {{{ garbage')
        with pytest.raises(ValueError, match="not valid JSON") as excinfo:
            store.get(BASE)
        assert path.name in str(excinfo.value)
        assert "delete it" in str(excinfo.value)

    def test_truncated_record_is_reported_as_corrupt(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(BASE, repro.run(BASE))
        content = path.read_text()
        path.write_text(content[: len(content) // 2])
        with pytest.raises(ValueError, match="not valid JSON"):
            store.get(BASE)
        with pytest.raises(ValueError, match="corrupt"):
            store.results()

    def test_empty_file_is_reported_as_corrupt(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(BASE, repro.run(BASE))
        path.write_text("")
        with pytest.raises(ValueError, match="not valid JSON"):
            store.get(BASE)

    def test_wrong_format_marker_is_rejected_with_both_formats_named(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(BASE, repro.run(BASE))
        record = json.loads(path.read_text())
        record["format"] = "unsnap-run-v999"
        path.write_text(json.dumps(record))
        with pytest.raises(ValueError, match="unsnap-run-v999") as excinfo:
            store.get(BASE)
        assert "unsnap-run-v1" in str(excinfo.value)

    def test_non_dict_json_is_rejected_as_foreign(self, tmp_path):
        store = ResultStore(tmp_path)
        (tmp_path / f"{run_key(BASE)}.json").write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="not a result-store record"):
            store.get(BASE)


class TestConcurrentWriters:
    """The atomic publish (unique temp + rename) must survive racing writers."""

    def test_racing_writers_of_the_same_run_leave_one_complete_record(self, tmp_path):
        store = ResultStore(tmp_path)
        result = repro.run(BASE)
        with ThreadPoolExecutor(max_workers=8) as pool:
            paths = list(pool.map(lambda _: store.put(BASE, result), range(16)))
        assert len({p.name for p in paths}) == 1
        assert len(store) == 1
        assert list(tmp_path.glob("*.tmp")) == []
        loaded = store.get(BASE)
        np.testing.assert_array_equal(loaded.scalar_flux, result.scalar_flux)

    def test_racing_writers_of_distinct_runs_all_publish(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = [BASE.with_(nx=n) for n in (2, 3, 4, 5)]
        results = {spec: repro.run(spec) for spec in specs}
        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(lambda s: store.put(s, results[s]), specs * 4))
        assert len(store) == len(specs)
        assert list(tmp_path.glob("*.tmp")) == []
        for spec in specs:
            np.testing.assert_array_equal(
                store.get(spec).scalar_flux, results[spec].scalar_flux
            )

    def test_concurrent_writers_and_readers_never_see_partial_records(self, tmp_path):
        # Readers either miss (pre-publish) or read a complete record --
        # never a half-written file, thanks to the rename publish.
        store = ResultStore(tmp_path)
        result = repro.run(BASE)
        observations = []

        def reader(_):
            hit = store.get(BASE)
            observations.append(hit is not None)
            return hit

        with ThreadPoolExecutor(max_workers=8) as pool:
            writes = [pool.submit(store.put, BASE, result) for _ in range(8)]
            reads = [pool.submit(reader, i) for i in range(24)]
            for future in writes + reads:
                future.result()  # raises if any reader saw a partial record
        assert len(store) == 1


class _ExplodingBackend:
    """Fails on any non-empty batch: proves resumption executed nothing."""

    def execute(self, points, *, jobs=None):
        if points:
            raise AssertionError(f"backend was asked to execute {len(points)} runs")
        return []


class TestResumability:
    GRID = dict(engine=["vectorized", "prefactorized"], order=[1, 2])

    def test_rerun_with_warm_store_executes_zero_new_runs(self, tmp_path):
        store = ResultStore(tmp_path / "campaign")
        study = Study.grid(BASE, **self.GRID)

        first = run_study(study, store=store)
        assert first.new_run_count == 4 and first.cached_run_count == 0
        assert len(store) == 4

        second = run_study(study, store=store, backend=_ExplodingBackend())
        assert second.new_run_count == 0 and second.cached_run_count == 4
        assert all(r.from_cache for r in second)
        for a, b in zip(first, second):
            assert a.axes == b.axes
            np.testing.assert_array_equal(a.result.scalar_flux, b.result.scalar_flux)

    def test_partial_store_runs_only_missing_points(self, tmp_path):
        store = ResultStore(tmp_path / "campaign")
        study = Study.grid(BASE, **self.GRID)
        points = study.runs()
        # Pre-fill half the grid out of order.
        for point in (points[3], points[1]):
            store.put(point.spec, repro.run(point.spec, **point.run_options),
                      point.run_options)

        result = run_study(study, store=store)
        assert result.new_run_count == 2 and result.cached_run_count == 2
        assert [r.from_cache for r in result] == [False, True, False, True]
        assert len(store) == 4

    def test_store_accepts_plain_path(self, tmp_path):
        study = Study.grid(BASE, order=[1])
        result = run_study(study, store=tmp_path / "as-path")
        assert result.new_run_count == 1
        assert len(ResultStore(tmp_path / "as-path")) == 1

    def test_store_hit_respects_run_options(self, tmp_path):
        store = ResultStore(tmp_path)
        run_study(Study.grid(BASE, num_threads=[1]), store=store)
        result = run_study(Study.grid(BASE, num_threads=[2]), store=store)
        assert result.new_run_count == 1
        assert len(store) == 2

    def test_changed_spec_axis_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        run_study(Study.grid(BASE, order=[1]), store=store)
        result = run_study(Study.grid(BASE, order=[2]), store=store)
        assert result.new_run_count == 1 and len(store) == 2

    def test_failed_run_keeps_completed_prefix_in_store(self, tmp_path):
        # Results stream into the store per run, so a mid-study failure
        # (here: an engine that resolves only at execution time) keeps every
        # completed run and the re-invocation resumes from that prefix.
        store = ResultStore(tmp_path / "interrupted")
        broken = Study.cases(
            BASE, [{"engine": "vectorized"}, {"engine": "not-an-engine"}])
        with pytest.raises(KeyError, match="not-an-engine"):
            run_study(broken, store=store)
        assert len(store) == 1

        fixed = Study.cases(
            BASE, [{"engine": "vectorized"}, {"engine": "prefactorized"}])
        result = run_study(fixed, store=store)
        assert result.new_run_count == 1 and result.cached_run_count == 1
        assert [r.from_cache for r in result] == [True, False]


class TestCacheStatistics:
    def test_get_counts_hits_and_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(BASE) is None
        assert (store.hits, store.misses) == (0, 1)
        store.put(BASE, repro.run(BASE))
        assert store.get(BASE) is not None
        assert store.get(BASE) is not None
        assert (store.hits, store.misses) == (2, 1)
        assert store.hit_ratio == pytest.approx(2 / 3)

    def test_hit_ratio_zero_on_fresh_store(self, tmp_path):
        assert ResultStore(tmp_path).hit_ratio == 0.0

    def test_contains_probes_without_counting(self, tmp_path):
        store = ResultStore(tmp_path)
        assert not store.contains(BASE)
        store.put(BASE, repro.run(BASE))
        # By key, by spec, and via the `in` operator -- none of them count.
        assert store.contains(run_key(BASE))
        assert store.contains(BASE)
        assert not store.contains(BASE, {"num_threads": 2})
        assert BASE in store
        assert (store.hits, store.misses) == (0, 0)
        assert store.hit_ratio == 0.0

    def test_put_without_flux_still_dedups(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(BASE, repro.run(BASE), include_flux=False)
        assert store.contains(BASE)
        loaded = store.get(BASE)
        # The flux-less record loads with summary statistics intact -- the
        # service daemon's keep_flux=False memory/disk opt-out.
        assert loaded.scalar_flux is None
        assert loaded.summary()["mean_flux"] > 0


@pytest.mark.slow
class TestProcessBackendWithStore:
    def test_process_backend_populates_and_resumes(self, tmp_path):
        store = ResultStore(tmp_path / "proc")
        study = Study.grid(BASE, engine=["vectorized", "prefactorized"])
        first = run_study(study, backend="process", store=store, jobs=2)
        assert first.new_run_count == 2
        second = run_study(study, backend="process", store=store, jobs=2)
        assert second.new_run_count == 0
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.result.scalar_flux, b.result.scalar_flux)
