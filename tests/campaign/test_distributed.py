"""Tests for the distributed campaign backend: spool protocol + coordinator.

The fast deterministic tests drive an in-process :class:`SpoolWorker` on a
background thread (no subprocesses, no timing assumptions); one end-to-end
test exercises the real auto-spawned ``unsnap worker`` subprocess path.
"""

import threading

import numpy as np
import pytest

from repro.campaign import Study, WorkItem, run_study
from repro.campaign.distributed import DistributedBackend, SpoolDir, SpoolWorker
from repro.campaign.distributed.spool import worker_identity
from repro.config import ProblemSpec

BASE = ProblemSpec(
    nx=2, ny=2, nz=2, angles_per_octant=1, num_groups=1, num_inners=1,
    engine="vectorized",
)
STUDY = Study.grid(BASE, order=[1, 2])


@pytest.fixture()
def spool(tmp_path):
    return SpoolDir(tmp_path / "spool")


def in_process_worker(spool, **kwargs):
    """A SpoolWorker serving on a daemon thread until the STOP marker."""
    worker = SpoolWorker(spool, worker_id="test-worker", poll_seconds=0.02,
                         heartbeat_seconds=0.1, **kwargs)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


class TestSpoolPrimitives:
    def test_layout_created(self, spool):
        for sub in SpoolDir.SUBDIRS:
            assert (spool.root / sub).is_dir()

    def test_publish_names_sort_most_expensive_first(self, spool):
        cheap = WorkItem(spec=BASE.with_(order=1), index=0)
        dear = WorkItem(spec=BASE.with_(order=3), index=1)
        spool.publish(cheap)
        spool.publish(dear)
        assert [p.name for p in spool.pending()] == sorted(
            p.name for p in spool.pending()
        )
        first = spool.claim_next("w")
        assert first.index == 1  # the cubic straggler dispatches first

    def test_claim_is_exclusive(self, spool):
        spool.publish(WorkItem(spec=BASE, index=0))
        a = spool.claim_next("alice")
        b = spool.claim_next("bob")
        assert a is not None and a.worker_id == "alice"
        assert b is None
        assert spool.pending() == []
        assert [c.worker_id for c in spool.claims()] == ["alice"]

    def test_claim_round_trips_payload(self, spool):
        item = WorkItem(spec=BASE, run_options={"num_threads": 2}, index=3)
        spool.publish(item, attempts=2, max_attempts=5)
        claim = spool.claim_next("w")
        assert claim.index == 3 and claim.attempts == 2
        loaded, payload = claim.load()
        assert loaded == item
        assert payload["max_attempts"] == 5 and payload["run_key"] == item.run_key

    def test_complete_marks_done_and_releases_claim(self, spool):
        item = WorkItem(spec=BASE, index=1)
        spool.publish(item)
        claim = spool.claim_next("w")
        spool.complete(claim, {"worker_id": "w", "attempts": 1})
        assert spool.claims() == []
        markers = spool.done_markers()
        assert markers[(1, item.run_key[:16])]["worker_id"] == "w"

    def test_heartbeat_liveness_window(self, spool):
        spool.heartbeat("w1")
        assert spool.live_workers(lease_seconds=60) == ["w1"]
        assert spool.live_workers(lease_seconds=-1) == []
        spool.retire("w1")
        assert spool.live_workers(lease_seconds=60) == []

    def test_stop_marker_round_trip(self, spool):
        assert not spool.stop_requested()
        spool.request_stop()
        assert spool.stop_requested()
        spool.clear_stop()
        assert not spool.stop_requested()

    def test_worker_identity_is_filesystem_safe(self):
        assert "/" not in worker_identity("a/b c")
        assert " " not in worker_identity("a/b c")


class TestCoordinatorInProcess:
    def test_bit_for_bit_equal_to_serial(self, spool):
        backend = DistributedBackend(
            spool_dir=spool.root, workers=0, poll_seconds=0.02, lease_seconds=30
        )
        _worker, thread = in_process_worker(spool)
        try:
            distributed = run_study(STUDY, backend=backend)
        finally:
            spool.request_stop()
            thread.join(timeout=10)
        serial = run_study(STUDY, backend="serial")
        for a, b in zip(serial, distributed):
            np.testing.assert_array_equal(a.result.scalar_flux, b.result.scalar_flux)
            assert a.result.history.inner_errors == b.result.history.inner_errors

    def test_meta_reports_worker_and_attempts(self, spool):
        backend = DistributedBackend(
            spool_dir=spool.root, workers=0, poll_seconds=0.02, lease_seconds=30
        )
        _worker, thread = in_process_worker(spool)
        try:
            result = run_study(STUDY, backend=backend)
        finally:
            spool.request_stop()
            thread.join(timeout=10)
        for run in result:
            assert run.meta["worker_id"] == "test-worker"
            assert run.meta["attempts"] == 1
            assert run.meta["queue_wait_seconds"] >= 0.0

    def test_second_campaign_served_from_spool_store(self, spool):
        backend = DistributedBackend(
            spool_dir=spool.root, workers=0, poll_seconds=0.02, lease_seconds=30
        )
        _worker, thread = in_process_worker(spool)
        try:
            run_study(STUDY, backend=backend)
        finally:
            spool.request_stop()
            thread.join(timeout=10)
        # No worker is alive any more: every point must come from the store.
        spool.clear_stop()
        rerun = run_study(STUDY, backend=backend)
        assert all(r.meta["worker_id"] == "store" for r in rerun)
        assert all(r.meta["attempts"] == 0 for r in rerun)

    def test_sharded_spools_merge_into_zero_new_runs(self, spool, tmp_path):
        # Two independent spools execute half the study each; their stores
        # merge into one, which then satisfies the whole campaign.
        points = STUDY.runs()
        other = SpoolDir(tmp_path / "spool-b")
        for half, target in ((0, spool), (1, other)):
            backend = DistributedBackend(
                spool_dir=target.root, workers=0, poll_seconds=0.02, lease_seconds=30
            )
            _w, thread = in_process_worker(target)
            try:
                run_study(Study.cases(BASE, [points[half].axes]), backend=backend)
            finally:
                target.request_stop()
                thread.join(timeout=10)
        stats = spool.store.merge(other.store)
        assert stats["merged"] == 1
        spool.clear_stop()
        backend = DistributedBackend(spool_dir=spool.root, workers=0)
        result = run_study(STUDY, backend=backend)
        assert all(r.meta["worker_id"] == "store" for r in result)

    def test_empty_item_list_is_a_no_op(self, spool):
        backend = DistributedBackend(spool_dir=spool.root, workers=0)
        assert list(backend.execute_iter([])) == []

    def test_execute_returns_input_order(self, spool):
        backend = DistributedBackend(
            spool_dir=spool.root, workers=0, poll_seconds=0.02, lease_seconds=30
        )
        items = [WorkItem(spec=BASE.with_(order=o), index=i)
                 for i, o in enumerate([1, 2])]
        _worker, thread = in_process_worker(spool)
        try:
            results = list(backend.execute(items))
        finally:
            spool.request_stop()
            thread.join(timeout=10)
        assert [r.spec.order for r in results] == [1, 2]


class TestCoordinatorSubprocess:
    def test_auto_spawned_workers_execute_the_campaign(self):
        # The zero-config mode: private temp spool, local `unsnap worker`
        # subprocesses, cleanup afterwards.
        study = Study.grid(BASE, engine=["vectorized", "prefactorized"])
        backend = DistributedBackend(workers=2, poll_seconds=0.05, lease_seconds=30)
        result = run_study(study, backend=backend)
        serial = run_study(study, backend="serial")
        for a, b in zip(serial, result):
            np.testing.assert_array_equal(a.result.scalar_flux, b.result.scalar_flux)
        assert all(r.meta["worker_id"] not in ("store", None) for r in result)


class TestQuarantineNote:
    """Drain-failure messages point at quarantined jobs and their reasons."""

    def _quarantine(self, spool, name, reason):
        target = spool.root / "quarantine" / f"{name}.json"
        target.write_text("{}")
        if reason is not None:
            target.with_suffix(".reason").write_text(reason + "\n")

    def test_empty_spool_adds_nothing(self, spool):
        from repro.campaign.distributed.coordinator import _quarantine_note

        assert _quarantine_note(spool) == ""

    def test_note_excerpts_reasons(self, spool):
        from repro.campaign.distributed.coordinator import _quarantine_note

        self._quarantine(spool, "j1", "ValueError: truncated payload")
        self._quarantine(spool, "j2", None)
        note = _quarantine_note(spool)
        assert "2 quarantined job(s)" in note
        assert "j1.json: ValueError: truncated payload" in note
        assert "j2.json: (no reason recorded)" in note

    def test_note_caps_at_three_excerpts(self, spool):
        from repro.campaign.distributed.coordinator import _quarantine_note

        for i in range(5):
            self._quarantine(spool, f"j{i}", "boom")
        note = _quarantine_note(spool)
        assert "5 quarantined job(s)" in note
        assert note.count("boom") == 3
        assert "(+2 more)" in note

    def test_timeout_error_carries_the_note(self, spool):
        self._quarantine(spool, "stuck", "RuntimeError: engine exploded")
        backend = DistributedBackend(
            spool_dir=spool.root, workers=0, poll_seconds=0.02,
            lease_seconds=30, timeout_seconds=0.1,
        )
        items = [WorkItem(spec=BASE, index=0)]
        with pytest.raises(RuntimeError) as err:
            list(backend.execute(items))  # no worker: the drain times out
        message = str(err.value)
        assert "timed out" in message
        assert "stuck.json: RuntimeError: engine exploded" in message
