"""Fault-injection tests for the distributed backend.

Three failure modes from the spool protocol's threat model, each induced
deterministically:

* a worker killed mid-point (real ``unsnap worker`` subprocess, SIGKILL)
  -- its stale claim is stolen after the lease and the point re-executes;
* an expired lease on a ghost claim -- the coordinator's recovery pass
  steals it and republishes with the attempt counter bumped;
* a corrupt spool job file -- the worker quarantines it, the recovery pass
  republishes the point from the coordinator's own copy.

In every case the campaign completes correctly and the failure is visible
in the study records (``attempts`` > 1, the surviving ``worker_id``).
"""

import json
import os
import signal
import subprocess
import threading
import time
from pathlib import Path

import pytest

from repro.campaign import Study, WorkItem, run_study
from repro.campaign.distributed import DistributedBackend, SpoolDir, SpoolWorker
from repro.campaign.distributed.coordinator import worker_command
from repro.config import ProblemSpec

BASE = ProblemSpec(
    nx=2, ny=2, nz=2, angles_per_octant=1, num_groups=1, num_inners=1,
    engine="vectorized",
)


def drain_with_worker(spool, backend, study):
    """Run the study with one in-process worker serving the spool."""
    worker = SpoolWorker(spool, worker_id="survivor", poll_seconds=0.02,
                         heartbeat_seconds=0.1)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    try:
        return run_study(study, backend=backend)
    finally:
        spool.request_stop()
        thread.join(timeout=10)


class TestLeaseExpiry:
    def test_stale_ghost_claim_is_stolen_and_republished(self, tmp_path):
        spool = SpoolDir(tmp_path / "spool")
        item = WorkItem(spec=BASE, index=0)
        spool.publish(item, max_attempts=3)
        claim = spool.claim_next("ghost")
        # The ghost never heartbeats; backdate its claim past any lease.
        past = time.time() - 3600
        os.utime(claim.path, (past, past))
        assert spool.claim_age(claim) > 60

        backend = DistributedBackend(spool_dir=spool.root, max_attempts=3)
        attempts = {0: 1}
        backend._recover(spool, {0: item}, attempts, lease=1.0, now=time.time())
        assert spool.claims() == []
        (job,) = spool.pending()
        assert "-a02-" in job.name  # attempt counter bumped on republish
        assert attempts[0] == 2

    def test_fresh_heartbeat_protects_a_long_running_claim(self, tmp_path):
        spool = SpoolDir(tmp_path / "spool")
        item = WorkItem(spec=BASE, index=0)
        spool.publish(item)
        claim = spool.claim_next("busy-worker")
        past = time.time() - 3600
        os.utime(claim.path, (past, past))
        spool.heartbeat("busy-worker")  # owner is alive, just slow
        assert spool.claim_age(claim) < 60

        backend = DistributedBackend(spool_dir=spool.root)
        backend._recover(spool, {0: item}, {0: 1}, lease=60.0, now=time.time())
        assert [c.worker_id for c in spool.claims()] == ["busy-worker"]
        assert spool.pending() == []


class TestCorruptJob:
    def test_worker_quarantines_garbage_job_file(self, tmp_path):
        spool = SpoolDir(tmp_path / "spool")
        path = spool.publish(WorkItem(spec=BASE, index=0))
        path.write_text("not json {")
        worker = SpoolWorker(spool, worker_id="w")
        claim = spool.claim_next("w")
        assert worker.run_claim(claim) is False
        assert spool.pending() == [] and spool.claims() == []
        quarantined = list((spool.root / "quarantine").glob("*.json"))
        assert len(quarantined) == 1
        reason = quarantined[0].with_suffix(".reason").read_text()
        assert "unreadable" in reason

    def test_recovery_republishes_a_quarantined_point(self, tmp_path):
        spool = SpoolDir(tmp_path / "spool")
        item = WorkItem(spec=BASE, index=0)
        path = spool.publish(item)
        path.write_text("not json {")
        claim = spool.claim_next("w")
        SpoolWorker(spool, worker_id="w").run_claim(claim)  # quarantined

        backend = DistributedBackend(spool_dir=spool.root)
        attempts = {0: 1}
        backend._recover(spool, {0: item}, attempts, lease=60.0, now=time.time())
        (job,) = spool.pending()
        assert "-a02-" in job.name

    def test_campaign_survives_a_corrupted_job_end_to_end(self, tmp_path):
        spool = SpoolDir(tmp_path / "spool")
        study = Study.grid(BASE, order=[1])
        # Corrupt the job file the moment it appears, once, from a thread.
        def corrupt_first_job():
            deadline = time.time() + 10
            while time.time() < deadline:
                pending = spool.pending()
                if pending:
                    pending[0].write_text("garbage")
                    return
                time.sleep(0.005)

        saboteur = threading.Thread(target=corrupt_first_job, daemon=True)
        saboteur.start()
        backend = DistributedBackend(
            spool_dir=spool.root, workers=0, poll_seconds=0.02, lease_seconds=5
        )
        result = drain_with_worker(spool, backend, study)
        saboteur.join(timeout=10)
        assert len(result) == 1
        run = result[0]
        assert run.meta["worker_id"] == "survivor"
        # Either the saboteur won (attempts == 2 after quarantine+republish)
        # or the worker claimed first (attempts == 1); both must complete.
        assert run.meta["attempts"] in (1, 2)


class TestExhaustedAttempts:
    def test_failure_surfaces_after_max_attempts(self, tmp_path):
        spool = SpoolDir(tmp_path / "spool")
        bad = Study.grid(BASE.with_(engine="no-such-engine"), order=[1])
        backend = DistributedBackend(
            spool_dir=spool.root, workers=0, poll_seconds=0.02,
            lease_seconds=30, max_attempts=1,
        )
        with pytest.raises(RuntimeError, match="failed after 1 attempts"):
            drain_with_worker(spool, backend, bad)

    def test_error_marker_names_worker_and_exception(self, tmp_path):
        spool = SpoolDir(tmp_path / "spool")
        item = WorkItem(spec=BASE.with_(engine="no-such-engine"), index=0)
        spool.publish(item, max_attempts=1)
        worker = SpoolWorker(spool, worker_id="w")
        worker.run_claim(spool.claim_next("w"))
        ((_key, meta),) = spool.done_markers().items()
        assert meta["worker_id"] == "w"
        assert "KeyError" in meta["error"]

    def test_failed_attempt_below_max_is_republished(self, tmp_path):
        spool = SpoolDir(tmp_path / "spool")
        item = WorkItem(spec=BASE.with_(engine="no-such-engine"), index=0)
        spool.publish(item, max_attempts=2)
        worker = SpoolWorker(spool, worker_id="w")
        worker.run_claim(spool.claim_next("w"))
        assert spool.done_markers() == {}
        (job,) = spool.pending()
        assert "-a02-" in job.name


class TestKilledWorker:
    def test_sigkilled_worker_leaves_a_stealable_claim(self, tmp_path):
        spool = SpoolDir(tmp_path / "spool")
        # A point slow enough to be killed mid-execution.
        slow = WorkItem(
            spec=BASE.with_(nx=4, ny=4, nz=4, order=2, num_inners=5), index=0
        )
        spool.publish(slow, max_attempts=3)

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.Popen(
            worker_command(spool.root, poll_seconds=0.02, heartbeat_seconds=0.1),
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.time() + 30
            while time.time() < deadline and not spool.claims():
                time.sleep(0.02)
            claims = spool.claims()
            assert claims, "worker never claimed the job"
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()

        # The kill left the claim behind; once the heartbeat goes stale the
        # claim is steal-able and the point re-executes on a survivor.
        (claim,) = spool.claims()
        time.sleep(0.3)
        assert spool.claim_age(claim) > 0.2

        backend = DistributedBackend(spool_dir=spool.root, max_attempts=3)
        attempts = {0: 1}
        backend._recover(spool, {0: slow}, attempts, lease=0.2, now=time.time())
        assert spool.claims() == []
        (job,) = spool.pending()
        assert "-a02-" in job.name

        # A survivor executes the republished attempt to completion.
        payload = json.loads(job.read_text())
        assert payload["attempts"] == 2
        survivor = SpoolWorker(spool, worker_id="survivor")
        assert survivor.run_claim(spool.claim_next("survivor")) is True
        meta = spool.done_markers()[(0, slow.run_key[:16])]
        assert meta["worker_id"] == "survivor" and meta["attempts"] == 2
