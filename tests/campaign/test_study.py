"""Tests for the declarative Study (grid/zip/cases construction, validation)."""

import pytest

from repro.campaign import RUN_OPTION_KEYS, Study
from repro.config import ProblemSpec

BASE = ProblemSpec(nx=3, ny=3, nz=3, angles_per_octant=1, num_groups=2, num_inners=2)


class TestGrid:
    def test_cartesian_product_last_axis_fastest(self):
        study = Study.grid(BASE, engine=["vectorized", "prefactorized"], order=[1, 2])
        assert len(study) == 4
        assert study.points[0] == {"engine": "vectorized", "order": 1}
        assert study.points[1] == {"engine": "vectorized", "order": 2}
        assert study.points[2] == {"engine": "prefactorized", "order": 1}

    def test_scalar_axis_promoted_to_singleton(self):
        study = Study.grid(BASE, engine="vectorized", order=[1, 2])
        assert len(study) == 2
        assert all(p["engine"] == "vectorized" for p in study.points)

    def test_axis_names_and_values(self):
        study = Study.grid(BASE, engine=["vectorized"], nx=[4, 8, 16])
        assert study.axis_names == ["engine", "nx"]
        assert study.axis_values("nx") == [4, 8, 16]

    def test_specs_resolved_through_with_(self):
        study = Study.grid(BASE, nx=[4, 8])
        points = study.runs()
        assert [p.spec.nx for p in points] == [4, 8]
        assert all(p.spec.ny == 3 for p in points)
        assert [p.index for p in points] == [0, 1]

    def test_unknown_axis_rejected_with_valid_keys(self):
        with pytest.raises(KeyError, match="warp_factor"):
            Study.grid(BASE, warp_factor=[1, 2])
        with pytest.raises(KeyError, match="valid keys"):
            Study.grid(BASE, warp_factor=[1, 2])

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            Study.grid(BASE, order=[])

    def test_run_option_axis_goes_to_run_options(self):
        assert RUN_OPTION_KEYS == ("num_threads",)
        study = Study.grid(BASE, num_threads=[1, 2], order=[1])
        for point in study.runs():
            assert point.run_options == {"num_threads": point.axes["num_threads"]}
            assert point.spec.order == 1
            assert not hasattr(point.spec, "num_threads")


class TestZip:
    def test_parallel_axes(self):
        study = Study.zip(BASE, npex=[1, 2, 3], npey=[1, 1, 1])
        assert len(study) == 3
        assert study.points[1] == {"npex": 2, "npey": 1}

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal lengths"):
            Study.zip(BASE, npex=[1, 2], npey=[1, 1, 1])


class TestCases:
    def test_explicit_cases(self):
        study = Study.cases(BASE, [{"order": 1}, {"order": 3, "solver": "lapack"}])
        assert len(study) == 2
        assert study.axis_names == ["order", "solver"]
        specs = [p.spec for p in study.runs()]
        assert specs[1].order == 3 and specs[1].solver == "lapack"
        assert specs[0].solver == "ge"

    def test_case_with_unknown_key_rejected(self):
        with pytest.raises(KeyError, match="bogus"):
            Study.cases(BASE, [{"bogus": 1}])

    def test_empty_case_is_base_run(self):
        study = Study.cases(BASE, [{}])
        assert len(study) == 1
        assert study.runs()[0].spec == BASE


class TestFromAxes:
    def test_axes_build_grid(self):
        study = Study.from_axes(BASE, {"order": [1, 2], "engine": ["vectorized"]})
        assert len(study) == 2 and study.axis_names == ["order", "engine"]

    def test_empty_axes_is_single_base_run(self):
        study = Study.from_axes(BASE, {}, name="solo")
        assert len(study) == 1 and study.points == ({},)
        assert study.name == "solo"
