"""ResultStore garbage collection: keep-latest, flux compaction, golden guard."""

import json
import os
import time

import numpy as np
import pytest

import repro
from repro.campaign import ResultStore, run_study, Study
from repro.campaign.store import GOLDEN_MARKER
from repro.config import ProblemSpec

SPEC = ProblemSpec(nx=2, ny=2, nz=2, angles_per_octant=1, num_groups=1,
                   num_inners=1, num_outers=1)


@pytest.fixture
def store(tmp_path):
    store = ResultStore(tmp_path / "store")
    for i, n in enumerate((2, 3, 4)):
        s = SPEC.with_(nx=n)
        path = store.put(s, repro.run(s))
        # Distinct mtimes so keep-latest ordering is deterministic.
        stamp = time.time() - 100 + 10 * i
        os.utime(path, (stamp, stamp))
    return store


class TestKeepLatest:
    def test_keeps_the_newest_records(self, store):
        newest = max(store.keys(), key=lambda k: store.path_for(k).stat().st_mtime)
        stats = store.gc(keep_latest=1)
        assert stats["removed"] == 2
        assert store.keys() == [newest]

    def test_keep_latest_larger_than_store_removes_nothing(self, store):
        assert store.gc(keep_latest=10)["removed"] == 0
        assert len(store) == 3

    def test_negative_keep_latest_rejected(self, store):
        with pytest.raises(ValueError, match=">= 0"):
            store.gc(keep_latest=-1)


class TestDropFlux:
    def test_compacted_records_shrink_and_still_load(self, store):
        stats = store.gc(drop_flux=True)
        assert stats["compacted"] == 3
        assert stats["bytes_after"] < stats["bytes_before"]
        for spec, _options, result in store.results():
            assert result.scalar_flux is None
            assert result.spec == spec
            assert result.mean_flux > 0  # exported summary value survives

    def test_gc_is_idempotent(self, store):
        store.gc(drop_flux=True)
        again = store.gc(drop_flux=True)
        assert again["compacted"] == 0
        assert again["bytes_after"] == again["bytes_before"]

    def test_compacted_record_stays_format_valid(self, store):
        store.gc(drop_flux=True)
        for key in store.keys():
            record = json.loads(store.path_for(key).read_text())
            assert record["format"] == "unsnap-run-v1"
            assert "scalar_flux" not in record["result"]

    def test_compaction_invalidates_resume_by_content(self, tmp_path):
        """A compacted store still short-circuits a resumed study (the key is
        content-based), returning the flux-less summaries."""
        store = ResultStore(tmp_path / "campaign")
        study = Study.grid(SPEC, nx=[2, 3])
        run_study(study, store=store)
        store.gc(drop_flux=True)
        resumed = run_study(study, store=store)
        assert resumed.new_run_count == 0
        assert all(r.result.scalar_flux is None for r in resumed)


class TestDryRunAndGuards:
    def test_dry_run_reports_without_touching(self, store):
        before = {k: store.path_for(k).read_bytes() for k in store.keys()}
        stats = store.gc(keep_latest=1, drop_flux=True, dry_run=True)
        assert stats["dry_run"] and stats["removed"] == 2 and stats["compacted"] == 1
        assert {k: store.path_for(k).read_bytes() for k in store.keys()} == before

    def test_refuses_golden_marker(self, store):
        (store.root / GOLDEN_MARKER).touch()
        with pytest.raises(ValueError, match="golden"):
            store.gc(drop_flux=True)
        assert len(store) == 3

    def test_real_golden_store_is_protected(self):
        """The repository's own golden store carries the marker."""
        from repro.verify.golden import default_golden_dir

        golden = default_golden_dir()
        if not golden.is_dir():  # pragma: no cover - out-of-tree checkout
            pytest.skip("no golden store in this checkout")
        assert (golden / GOLDEN_MARKER).exists()
        with pytest.raises(ValueError, match="golden"):
            ResultStore(golden).gc(drop_flux=True)

    def test_byte_accounting_matches_disk(self, store):
        stats = store.gc(drop_flux=True)
        on_disk = sum(store.path_for(k).stat().st_size for k in store.keys())
        assert stats["bytes_after"] == on_disk


class TestAgePolicy:
    def test_drops_records_older_than_the_cutoff(self, store):
        """The fixture stamps mtimes 100/90/80 seconds ago: a ~95 s cutoff
        keeps two."""
        stats = store.gc(max_age_days=95 / 86400.0)
        assert stats["removed"] == 1
        assert len(store) == 2

    def test_zero_age_empties_the_store(self, store):
        assert store.gc(max_age_days=0.0)["removed"] == 3
        assert len(store) == 0

    def test_future_cutoff_removes_nothing(self, store):
        assert store.gc(max_age_days=365.0)["removed"] == 0

    def test_negative_age_rejected(self, store):
        with pytest.raises(ValueError, match=">= 0"):
            store.gc(max_age_days=-1.0)


class TestByteBudget:
    def test_keeps_the_newest_records_that_fit(self, store):
        paths = sorted(
            (store.path_for(k) for k in store.keys()),
            key=lambda p: p.stat().st_mtime,
            reverse=True,
        )
        budget = paths[0].stat().st_size + paths[1].stat().st_size
        newest_two = {p.stem for p in paths[:2]}
        stats = store.gc(max_bytes=budget)
        assert stats["removed"] == 1
        assert set(store.keys()) == newest_two
        assert stats["bytes_after"] <= budget

    def test_budget_larger_than_store_removes_nothing(self, store):
        total = sum(store.path_for(k).stat().st_size for k in store.keys())
        assert store.gc(max_bytes=total)["removed"] == 0

    def test_zero_budget_empties_the_store(self, store):
        assert store.gc(max_bytes=0)["removed"] == 3
        assert len(store) == 0

    def test_negative_budget_rejected(self, store):
        with pytest.raises(ValueError, match=">= 0"):
            store.gc(max_bytes=-1)


class TestPolicyComposition:
    def test_age_then_count_then_bytes(self, store):
        """A ~95 s age cutoff drops the oldest; keep_latest=2 keeps both
        survivors; a one-record byte budget then drops the older survivor."""
        newest = max(store.keys(), key=lambda k: store.path_for(k).stat().st_mtime)
        budget = store.path_for(newest).stat().st_size
        stats = store.gc(max_age_days=95 / 86400.0, keep_latest=2, max_bytes=budget)
        assert stats["removed"] == 2
        assert store.keys() == [newest]

    def test_policies_compose_with_drop_flux(self, store):
        stats = store.gc(max_age_days=95 / 86400.0, drop_flux=True)
        assert stats["removed"] == 1 and stats["compacted"] == 2
        for _spec, _options, result in store.results():
            assert result.scalar_flux is None

    def test_dry_run_covers_the_new_policies(self, store):
        before = {k: store.path_for(k).read_bytes() for k in store.keys()}
        stats = store.gc(max_age_days=0.0, max_bytes=0, dry_run=True)
        assert stats["dry_run"] and stats["removed"] == 3
        assert {k: store.path_for(k).read_bytes() for k in store.keys()} == before

    def test_golden_marker_still_refused(self, store):
        (store.root / GOLDEN_MARKER).touch()
        with pytest.raises(ValueError, match="golden"):
            store.gc(max_age_days=0.0)
        with pytest.raises(ValueError, match="golden"):
            store.gc(max_bytes=0)
        assert len(store) == 3


class TestCompactedNumerics:
    def test_summary_statistics_survive_compaction(self, store):
        fresh = {
            key: result for key, (_spec, _o, result) in
            zip(store.keys(), store.results())
        }
        store.gc(drop_flux=True)
        for key, (_spec, _options, result) in zip(store.keys(), store.results()):
            original = fresh[key]
            assert result.mean_flux == original.mean_flux
            np.testing.assert_array_equal(result.leakage, original.leakage)
            assert result.history.inner_errors == original.history.inner_errors
