"""ResultStore garbage collection: keep-latest, flux compaction, golden guard."""

import json
import os
import time

import numpy as np
import pytest

import repro
from repro.campaign import ResultStore, run_study, Study
from repro.campaign.store import GOLDEN_MARKER
from repro.config import ProblemSpec

SPEC = ProblemSpec(nx=2, ny=2, nz=2, angles_per_octant=1, num_groups=1,
                   num_inners=1, num_outers=1)


@pytest.fixture
def store(tmp_path):
    store = ResultStore(tmp_path / "store")
    for i, n in enumerate((2, 3, 4)):
        s = SPEC.with_(nx=n)
        path = store.put(s, repro.run(s))
        # Distinct mtimes so keep-latest ordering is deterministic.
        stamp = time.time() - 100 + 10 * i
        os.utime(path, (stamp, stamp))
    return store


class TestKeepLatest:
    def test_keeps_the_newest_records(self, store):
        newest = max(store.keys(), key=lambda k: store.path_for(k).stat().st_mtime)
        stats = store.gc(keep_latest=1)
        assert stats["removed"] == 2
        assert store.keys() == [newest]

    def test_keep_latest_larger_than_store_removes_nothing(self, store):
        assert store.gc(keep_latest=10)["removed"] == 0
        assert len(store) == 3

    def test_negative_keep_latest_rejected(self, store):
        with pytest.raises(ValueError, match=">= 0"):
            store.gc(keep_latest=-1)


class TestDropFlux:
    def test_compacted_records_shrink_and_still_load(self, store):
        stats = store.gc(drop_flux=True)
        assert stats["compacted"] == 3
        assert stats["bytes_after"] < stats["bytes_before"]
        for spec, _options, result in store.results():
            assert result.scalar_flux is None
            assert result.spec == spec
            assert result.mean_flux > 0  # exported summary value survives

    def test_gc_is_idempotent(self, store):
        store.gc(drop_flux=True)
        again = store.gc(drop_flux=True)
        assert again["compacted"] == 0
        assert again["bytes_after"] == again["bytes_before"]

    def test_compacted_record_stays_format_valid(self, store):
        store.gc(drop_flux=True)
        for key in store.keys():
            record = json.loads(store.path_for(key).read_text())
            assert record["format"] == "unsnap-run-v1"
            assert "scalar_flux" not in record["result"]

    def test_compaction_invalidates_resume_by_content(self, tmp_path):
        """A compacted store still short-circuits a resumed study (the key is
        content-based), returning the flux-less summaries."""
        store = ResultStore(tmp_path / "campaign")
        study = Study.grid(SPEC, nx=[2, 3])
        run_study(study, store=store)
        store.gc(drop_flux=True)
        resumed = run_study(study, store=store)
        assert resumed.new_run_count == 0
        assert all(r.result.scalar_flux is None for r in resumed)


class TestDryRunAndGuards:
    def test_dry_run_reports_without_touching(self, store):
        before = {k: store.path_for(k).read_bytes() for k in store.keys()}
        stats = store.gc(keep_latest=1, drop_flux=True, dry_run=True)
        assert stats["dry_run"] and stats["removed"] == 2 and stats["compacted"] == 1
        assert {k: store.path_for(k).read_bytes() for k in store.keys()} == before

    def test_refuses_golden_marker(self, store):
        (store.root / GOLDEN_MARKER).touch()
        with pytest.raises(ValueError, match="golden"):
            store.gc(drop_flux=True)
        assert len(store) == 3

    def test_real_golden_store_is_protected(self):
        """The repository's own golden store carries the marker."""
        from repro.verify.golden import default_golden_dir

        golden = default_golden_dir()
        if not golden.is_dir():  # pragma: no cover - out-of-tree checkout
            pytest.skip("no golden store in this checkout")
        assert (golden / GOLDEN_MARKER).exists()
        with pytest.raises(ValueError, match="golden"):
            ResultStore(golden).gc(drop_flux=True)

    def test_byte_accounting_matches_disk(self, store):
        stats = store.gc(drop_flux=True)
        on_disk = sum(store.path_for(k).stat().st_size for k in store.keys())
        assert stats["bytes_after"] == on_disk


class TestCompactedNumerics:
    def test_summary_statistics_survive_compaction(self, store):
        fresh = {
            key: result for key, (_spec, _o, result) in
            zip(store.keys(), store.results())
        }
        store.gc(drop_flux=True)
        for key, (_spec, _options, result) in zip(store.keys(), store.results()):
            original = fresh[key]
            assert result.mean_flux == original.mean_flux
            np.testing.assert_array_equal(result.leakage, original.leakage)
            assert result.history.inner_errors == original.history.inner_errors
