"""Tests for the shared WorkItem payload and its compatibility adapter."""

import pytest

from repro.campaign import ResultStore, Study, WorkItem, as_work_items, run_key
from repro.campaign.workitem import estimate_cost, order_by_cost
from repro.config import ProblemSpec

SPEC = ProblemSpec(nx=2, ny=2, nz=2, angles_per_octant=1, num_groups=1, num_inners=1)


class TestRunKey:
    def test_key_matches_free_function(self):
        item = WorkItem(spec=SPEC, run_options={"num_threads": 2})
        assert item.run_key == run_key(SPEC, {"num_threads": 2})

    def test_key_ignores_option_order(self):
        assert run_key(SPEC, {"a": 1, "b": 2}) == run_key(SPEC, {"b": 2, "a": 1})

    def test_key_ignores_index_and_cost(self):
        a = WorkItem(spec=SPEC, index=0, cost=1.0)
        b = WorkItem(spec=SPEC, index=7, cost=99.0)
        assert a.run_key == b.run_key

    def test_store_files_under_the_same_key(self, tmp_path):
        store = ResultStore(tmp_path)
        item = WorkItem(spec=SPEC)
        assert store.path_for(item.run_key).name == f"{run_key(SPEC)}.json"


class TestCost:
    def test_default_cost_is_estimate(self):
        assert WorkItem(spec=SPEC).cost == estimate_cost(SPEC)

    def test_cubic_points_dominate_linear(self):
        linear = WorkItem(spec=SPEC.with_(order=1))
        cubic = WorkItem(spec=SPEC.with_(order=3))
        assert cubic.cost > linear.cost

    def test_order_by_cost_puts_stragglers_first(self):
        items = [
            WorkItem(spec=SPEC.with_(order=1), index=0),
            WorkItem(spec=SPEC.with_(order=3), index=1),
            WorkItem(spec=SPEC.with_(order=2), index=2),
        ]
        assert [i.index for i in order_by_cost(items)] == [1, 2, 0]

    def test_order_by_cost_breaks_ties_by_index(self):
        items = [WorkItem(spec=SPEC, index=i) for i in (2, 0, 1)]
        assert [i.index for i in order_by_cost(items)] == [0, 1, 2]


class TestAdapters:
    def test_round_trips_through_dict(self):
        item = WorkItem(spec=SPEC, run_options={"num_threads": 2}, index=3)
        clone = WorkItem.from_dict(item.to_dict())
        assert clone == item and clone.run_key == item.run_key

    def test_coerce_passes_work_items_through(self):
        item = WorkItem(spec=SPEC)
        assert WorkItem.coerce(item) is item

    def test_coerce_adapts_study_points_keeping_index(self):
        study = Study.grid(SPEC, order=[1, 2])
        items = as_work_items(study.runs())
        assert [i.index for i in items] == [0, 1]
        assert items[1].spec.order == 2

    def test_coerce_rejects_legacy_tuples(self):
        # The (spec, run_options) tuple shape was deprecated in PR-7 for one
        # release and is now gone; the error points at the replacement.
        with pytest.raises(TypeError, match="legacy .* tuple shape was removed"):
            WorkItem.coerce((SPEC, {"num_threads": 1}))
        with pytest.raises(TypeError, match="WorkItem"):
            as_work_items([(SPEC, {}), (SPEC.with_(order=2), None)])

    def test_coerce_rejects_garbage(self):
        with pytest.raises(TypeError, match="WorkItem"):
            WorkItem.coerce(42)

    def test_duplicate_indexes_rejected(self):
        with pytest.raises(ValueError, match=r"duplicate work-item indexes \[5\]"):
            as_work_items([WorkItem(spec=SPEC, index=5), WorkItem(spec=SPEC, index=5)])

    def test_with_replaces_fields(self):
        item = WorkItem(spec=SPEC, index=1)
        assert item.with_(index=9).index == 9
        assert item.with_(index=9).spec == SPEC
