"""Per-bucket phase sampling: deterministic, proportional, and free at rate 0.

``Telemetry(bucket_sample_rate=r)`` makes the engines time a deterministic
subset of their per-(angle, bucket) kernel invocations.  The contract under
test:

* rate 0 (the default) hands the engines ``None`` -- the bucket loop is the
  *exact* uninstrumented path (proved here by poisoning every
  :class:`BucketSampler` entry point and showing a rate-0 run never touches
  one);
* rate 1 times every bucket of every angle of every sweep;
* fractional rates pick a Bresenham-spaced subset -- no RNG, so identical
  runs produce identical counters;
* sampling never changes the numerics (bit-for-bit flux identity).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.config import ProblemSpec
from repro.core.solver import TransportSolver
from repro.telemetry import BucketSampler, Telemetry

SMALL = ProblemSpec(nx=3, ny=3, nz=3, angles_per_octant=1, num_groups=2,
                    num_inners=2, num_outers=1)

ENGINES = ("reference", "vectorized", "prefactorized")


def _buckets_per_sweep(spec: ProblemSpec) -> int:
    solver = TransportSolver(spec)
    schedule = solver.executor.schedule
    num_angles = solver.quadrature.num_angles
    return sum(len(schedule.for_angle(angle).buckets) for angle in range(num_angles))


class TestSamplerObject:
    def test_rate_validation(self):
        with pytest.raises(ValueError, match="bucket_sample_rate"):
            Telemetry(bucket_sample_rate=1.5)
        with pytest.raises(ValueError, match="bucket_sample_rate"):
            Telemetry(bucket_sample_rate=-0.1)

    def test_sampler_is_none_at_rate_zero_or_disabled(self):
        assert Telemetry().bucket_sampler() is None
        assert Telemetry(enabled=False, bucket_sample_rate=1.0).bucket_sampler() is None

    def test_bresenham_fraction(self):
        tel = Telemetry(bucket_sample_rate=0.25)
        sampler = tel.bucket_sampler()
        picks = [sampler.want() for _ in range(100)]
        assert sum(picks) == 25
        # Evenly spaced, not front-loaded: every window of 4 has exactly one.
        for i in range(0, 100, 4):
            assert sum(picks[i : i + 4]) == 1

    def test_rate_one_takes_every_bucket(self):
        sampler = Telemetry(bucket_sample_rate=1.0).bucket_sampler()
        assert all(sampler.want() for _ in range(10))

    def test_record_accumulates_counters(self):
        tel = Telemetry(bucket_sample_rate=1.0)
        sampler = tel.bucket_sampler()
        sampler.record(0.5, 16)
        sampler.record(0.25, 8)
        assert tel.counters["bucket_samples"] == 2
        assert tel.counters["bucket_sample_seconds"] == 0.75
        assert tel.counters["bucket_sample_systems"] == 24


class TestEngineSampling:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_rate_one_times_every_bucket(self, engine):
        spec = SMALL.with_(engine=engine)
        tel = Telemetry(bucket_sample_rate=1.0)
        result = repro.run(spec, telemetry=tel)
        expected = tel.counters["sweeps"] * _buckets_per_sweep(spec)
        assert tel.counters["bucket_samples"] == expected
        assert tel.counters["bucket_sample_seconds"] > 0.0
        assert tel.counters["bucket_sample_systems"] == result.timings.systems_solved

    @pytest.mark.parametrize("engine", ENGINES)
    def test_sampling_never_perturbs_numerics(self, engine):
        spec = SMALL.with_(engine=engine)
        plain = repro.run(spec).scalar_flux
        sampled = repro.run(spec, telemetry=Telemetry(bucket_sample_rate=0.3))
        np.testing.assert_array_equal(plain, sampled.scalar_flux)

    def test_fractional_rate_is_deterministic_and_proportional(self):
        spec = SMALL.with_(engine="vectorized")
        counts = []
        for _ in range(2):
            tel = Telemetry(bucket_sample_rate=0.5)
            repro.run(spec, telemetry=tel)
            counts.append(tel.counters["bucket_samples"])
        assert counts[0] == counts[1]  # no RNG anywhere
        # One fresh sampler per sweep_angle call: the Bresenham accumulator
        # takes exactly floor(buckets * rate) of each angle's buckets.
        solver = TransportSolver(spec)
        schedule = solver.executor.schedule
        per_sweep = sum(
            len(schedule.for_angle(angle).buckets) // 2
            for angle in range(solver.quadrature.num_angles)
        )
        tel = Telemetry(bucket_sample_rate=0.5)
        repro.run(spec, telemetry=tel)
        assert tel.counters["bucket_samples"] == tel.counters["sweeps"] * per_sweep


class TestRateZeroIsUninstrumented:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_rate_zero_never_touches_the_sampler(self, engine, monkeypatch):
        """Poison every sampler entry point: a rate-0 run must not construct,
        query or record through a sampler -- the engines' bucket loops take
        the exact path an uninstrumented run takes."""

        def poisoned(self, *a, **k):
            raise AssertionError("BucketSampler touched during a rate-0 run")

        monkeypatch.setattr(BucketSampler, "__init__", poisoned)
        monkeypatch.setattr(BucketSampler, "want", poisoned)
        monkeypatch.setattr(BucketSampler, "record", poisoned)
        tel = Telemetry()  # default rate 0
        result = repro.run(SMALL.with_(engine=engine), telemetry=tel)
        assert result.scalar_flux is not None
        assert "bucket_samples" not in tel.counters

    def test_rate_zero_flux_matches_uninstrumented_bit_for_bit(self):
        for engine in ENGINES:
            spec = SMALL.with_(engine=engine)
            np.testing.assert_array_equal(
                repro.run(spec).scalar_flux,
                repro.run(spec, telemetry=Telemetry()).scalar_flux,
            )
