"""Bench trend series: loading, building and formatting (`--trend DIR`)."""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.report import BenchReport, CaseReport, SampleStats
from repro.bench.trend import (
    TREND_FORMAT,
    build_trend,
    format_trend,
    load_trend_reports,
)

MACHINE_A = {"platform": "linux", "machine": "x86_64", "cpus": 8,
             "implementation": "cpython", "python": "3.11.0"}
MACHINE_B = dict(MACHINE_A, machine="aarch64")


def make_report(samples: dict[str, float], machine: dict | None = None) -> BenchReport:
    """A one-case report with one single-measurement sample per name."""
    case = CaseReport(
        name="sweep",
        tags=(),
        samples=tuple(
            SampleStats(name=name, seconds=(best,)) for name, best in samples.items()
        ),
    )
    return BenchReport(cases=(case,), machine=dict(machine or MACHINE_A))


def save(report: BenchReport, path, mtime: float) -> None:
    report.save(path)
    os.utime(path, (mtime, mtime))


class TestLoading:
    def test_ordered_by_mtime_then_name(self, tmp_path):
        save(make_report({"solve": 3.0}), tmp_path / "zz.json", mtime=100.0)
        save(make_report({"solve": 2.0}), tmp_path / "later.json", mtime=200.0)
        # Same mtime as zz.json: the name breaks the tie deterministically.
        save(make_report({"solve": 1.0}), tmp_path / "aa.json", mtime=100.0)
        labels = [path.stem for path, _report in load_trend_reports(tmp_path)]
        assert labels == ["aa", "zz", "later"]

    def test_foreign_and_corrupt_json_skipped(self, tmp_path):
        save(make_report({"solve": 1.0}), tmp_path / "real.json", mtime=100.0)
        (tmp_path / "foreign.json").write_text('{"format": "something-else"}')
        (tmp_path / "corrupt.json").write_text("{half a docu")
        (tmp_path / "trend.json").write_text(json.dumps({"format": TREND_FORMAT}))
        reports = load_trend_reports(tmp_path)
        assert [path.name for path, _report in reports] == ["real.json"]

    def test_non_directory_raises(self, tmp_path):
        with pytest.raises(ValueError, match="not a directory"):
            load_trend_reports(tmp_path / "absent")


class TestBuildTrend:
    def test_series_align_with_none_gaps(self, tmp_path):
        save(make_report({"solve": 3.0, "setup": 0.5}), tmp_path / "a.json", 100.0)
        save(make_report({"solve": 2.5}), tmp_path / "b.json", 200.0)
        trend = build_trend(load_trend_reports(tmp_path))
        assert trend["format"] == TREND_FORMAT
        assert [entry["label"] for entry in trend["entries"]] == ["a", "b"]
        assert trend["series"]["sweep/solve"] == [3.0, 2.5]
        # "setup" was only measured in the first report: None marks the gap.
        assert trend["series"]["sweep/setup"] == [0.5, None]

    def test_machine_match_advisory_against_newest(self, tmp_path):
        save(make_report({"s": 1.0}, MACHINE_B), tmp_path / "old.json", 100.0)
        save(make_report({"s": 1.0}, MACHINE_A), tmp_path / "new.json", 200.0)
        entries = build_trend(load_trend_reports(tmp_path))["entries"]
        assert [entry["machine_match"] for entry in entries] == [False, True]

    def test_unknown_fingerprint_counts_as_match(self, tmp_path):
        save(make_report({"s": 1.0}, machine={}), tmp_path / "old.json", 100.0)
        save(make_report({"s": 1.0}, MACHINE_A), tmp_path / "new.json", 200.0)
        entries = build_trend(load_trend_reports(tmp_path))["entries"]
        assert all(entry["machine_match"] for entry in entries)

    def test_empty(self):
        trend = build_trend([])
        assert trend == {"format": TREND_FORMAT, "entries": [], "series": {}}


class TestFormatTrend:
    def test_table_alignment_and_gaps(self, tmp_path):
        save(make_report({"solve": 3.0, "setup": 0.5}), tmp_path / "a.json", 100.0)
        save(make_report({"solve": 2.5}), tmp_path / "b.json", 200.0)
        lines = format_trend(build_trend(load_trend_reports(tmp_path))).splitlines()
        assert lines[0].split() == ["case/sample", "a", "b"]
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].split() == ["sweep/setup", "0.5000", "-"]
        assert lines[3].split() == ["sweep/solve", "3.0000", "2.5000"]

    def test_mismatch_note_is_advisory(self, tmp_path):
        save(make_report({"s": 1.0}, MACHINE_B), tmp_path / "old.json", 100.0)
        save(make_report({"s": 1.0}, MACHINE_A), tmp_path / "new.json", 200.0)
        text = format_trend(build_trend(load_trend_reports(tmp_path)))
        assert "machine fingerprint differs" in text
        assert "old" in text.splitlines()[-1]
        assert "advisory only" in text

    def test_empty_directory_message(self):
        assert format_trend(build_trend([])) == "no unsnap-bench-v1 reports found"


class TestCli:
    def test_bench_trend_command(self, tmp_path, capsys):
        from repro.cli import main

        save(make_report({"solve": 3.0}), tmp_path / "a.json", 100.0)
        save(make_report({"solve": 2.5}), tmp_path / "b.json", 200.0)
        out_path = tmp_path / "out" / "trend.json"
        assert main(["bench", "--trend", str(tmp_path), "--json", str(out_path)]) == 0
        captured = capsys.readouterr().out
        assert "sweep/solve" in captured and "2.5000" in captured
        document = json.loads(out_path.read_text())
        assert document["format"] == TREND_FORMAT
        assert document["series"]["sweep/solve"] == [3.0, 2.5]

    def test_bench_trend_missing_directory(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["bench", "--trend", str(tmp_path / "nope")]) != 0
