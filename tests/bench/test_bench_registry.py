"""Benchmark registry mechanics: registration, selection, workload policy."""

import pytest

from repro.bench import (
    BenchWorkload,
    available_benchmarks,
    available_tags,
    benchmark_listing,
    get_benchmark,
    register_benchmark,
    select_benchmarks,
)
from repro.bench.registry import _benchmarks


@pytest.fixture
def scratch_case():
    """Register a throwaway case and clean it up afterwards."""
    name = "scratch-case"

    @register_benchmark(name, tags=("scratch", "kernel"), aliases=("sc",))
    def bench_scratch(workload):
        """A throwaway case for registry tests."""
        return {"only": {"seconds": 0.0, "n": workload.n}}

    yield name
    _benchmarks.remove(name)


class TestRegistry:
    def test_built_in_cases_registered(self):
        names = available_benchmarks()
        for expected in (
            "engine-sweep", "assembly-kernel", "solve-kernel", "matrix-setup",
            "fd-vs-fem", "thread-scaling-linear", "thread-scaling-cubic",
            "block-jacobi-ranks", "table2-solvers", "study-backends",
            "sweep-vs-model",
        ):
            assert expected in names

    def test_register_and_lookup(self, scratch_case):
        case = get_benchmark(scratch_case)
        assert case.name == scratch_case
        assert case.tags == ("scratch", "kernel")
        assert case.description == "A throwaway case for registry tests."
        assert get_benchmark("sc") is case
        assert get_benchmark("SCRATCH-CASE") is case

    def test_duplicate_name_rejected(self, scratch_case):
        with pytest.raises(ValueError, match="already registered"):
            register_benchmark(scratch_case)(lambda workload: {})

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("no-such-case")

    def test_listing_carries_tags_and_descriptions(self):
        rows = {name: (tags, desc) for name, tags, desc in benchmark_listing()}
        tags, desc = rows["engine-sweep"]
        assert "kernel" in tags
        assert desc

    def test_tags_union(self, scratch_case):
        assert "scratch" in available_tags()


class TestSelection:
    def test_no_filter_selects_everything(self):
        assert [c.name for c in select_benchmarks(None)] == available_benchmarks()

    def test_select_by_tag(self):
        cases = select_benchmarks(["scaling"])
        names = {c.name for c in cases}
        assert names == {
            "thread-scaling-linear", "thread-scaling-cubic", "block-jacobi-ranks"
        }

    def test_select_by_name_and_alias(self):
        assert [c.name for c in select_benchmarks(["engine-sweep"])] == ["engine-sweep"]
        assert [c.name for c in select_benchmarks(["engines"])] == ["engine-sweep"]

    def test_filters_union_without_duplicates(self):
        cases = select_benchmarks(["engine-sweep", "kernel"])
        names = [c.name for c in cases]
        assert names.count("engine-sweep") == 1
        assert set(names) >= {"engine-sweep", "assembly-kernel", "solve-kernel"}

    def test_unknown_filter_names_choices(self):
        with pytest.raises(KeyError, match="tags:"):
            select_benchmarks(["warp-drive"])


class TestCaseContract:
    def test_sample_shape_validated(self):
        @register_benchmark("bad-shape-case")
        def bench_bad(workload):
            return {"sample": {"no_seconds": 1.0}}

        try:
            with pytest.raises(TypeError, match="'seconds'"):
                get_benchmark("bad-shape-case").run(BenchWorkload())
        finally:
            _benchmarks.remove("bad-shape-case")

    def test_empty_result_rejected(self):
        @register_benchmark("empty-case")
        def bench_empty(workload):
            return {}

        try:
            with pytest.raises(TypeError, match="non-empty"):
                get_benchmark("empty-case").run(BenchWorkload())
        finally:
            _benchmarks.remove("empty-case")


class TestWorkload:
    def test_env_overrides_apply(self):
        env = {"UNSNAP_BENCH_N": "5", "UNSNAP_BENCH_GROUPS": "3",
               "UNSNAP_BENCH_REPEATS": "7"}
        workload = BenchWorkload.from_env(env=env)
        assert (workload.n, workload.num_groups, workload.repeats) == (5, 3, 7)
        assert workload.angles_per_octant == 2  # full-tier default

    def test_smoke_tier_shrinks_but_env_wins(self):
        workload = BenchWorkload.from_env(smoke=True, env={})
        assert workload.smoke and workload.n == 3 and workload.repeats == 1
        overridden = BenchWorkload.from_env(smoke=True, env={"UNSNAP_BENCH_N": "6"})
        assert overridden.n == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            BenchWorkload(n=0)
        with pytest.raises(ValueError):
            BenchWorkload(repeats=0)

    def test_dict_round_trip(self):
        workload = BenchWorkload(n=4, smoke=True)
        assert BenchWorkload.from_dict(workload.to_dict()) == workload
