"""CLI surface: ``unsnap bench`` and ``unsnap store gc``."""

import json

import pytest

import repro
from repro.bench import BenchReport
from repro.campaign import ResultStore
from repro.campaign.store import GOLDEN_MARKER
from repro.cli import main
from repro.config import ProblemSpec

#: The cheapest registered case keeps the CLI tests inside the fast tier.
CASE = "matrix-setup"


def run_cli(*argv):
    return main(list(argv))


class TestBenchCommand:
    def test_list(self, capsys):
        assert run_cli("bench", "--list") == 0
        out = capsys.readouterr().out
        assert "engine-sweep" in out and "kernel" in out

    def test_smoke_run_writes_schema_valid_report(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        assert run_cli("bench", "--smoke", "--filter", CASE, "--json", str(path)) == 0
        out = capsys.readouterr().out
        assert CASE in out
        data = json.loads(path.read_text())
        assert data["format"] == "unsnap-bench-v1"
        assert data["workload"]["smoke"] is True
        report = BenchReport.load(path)  # schema-valid: loads cleanly
        assert [case.name for case in report.cases] == [CASE]

    def test_compare_against_fresh_baseline_passes(self, tmp_path, capsys):
        path = tmp_path / "baseline.json"
        assert run_cli("bench", "--smoke", "--filter", CASE, "--json", str(path)) == 0
        # Two *live* measurements of a millisecond-scale sample jitter well
        # beyond the default 25% on loaded CI boxes, so the end-to-end CLI
        # check uses a tolerance only a real defect could trip (100x); exact
        # self-compare semantics are asserted on fixed reports in
        # test_bench_report.py.
        assert run_cli(
            "bench", "--smoke", "--filter", CASE,
            "--compare", str(path), "--fail-on-regress", "--tolerance", "99",
        ) == 0
        assert "comparison verdict" in capsys.readouterr().out.lower()

    def test_fail_on_regress_flags_injected_slowdown(self, tmp_path, capsys):
        path = tmp_path / "baseline.json"
        assert run_cli("bench", "--smoke", "--filter", CASE, "--json", str(path)) == 0
        # Injected slowdown: pretend the baseline was 100x faster.
        data = json.loads(path.read_text())
        for case in data["cases"]:
            for sample in case["samples"]:
                sample["seconds"] = [s / 100.0 for s in sample["seconds"]]
                sample["best"] /= 100.0
                sample["mean"] /= 100.0
                sample["max"] /= 100.0
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(data))
        capsys.readouterr()
        assert run_cli(
            "bench", "--smoke", "--filter", CASE,
            "--compare", str(doctored), "--fail-on-regress",
        ) == 1
        assert "FAIL" in capsys.readouterr().out
        # Without --fail-on-regress the same comparison only reports.
        assert run_cli(
            "bench", "--smoke", "--filter", CASE, "--compare", str(doctored),
        ) == 0

    def test_unknown_filter_is_a_clean_error(self, capsys):
        assert run_cli("bench", "--filter", "warp-drive") == 2
        assert "unknown benchmark filter" in capsys.readouterr().err

    def test_missing_baseline_is_a_clean_error_before_measuring(self, capsys):
        assert run_cli("bench", "--smoke", "--compare", "/no/such/file.json") == 2
        err = capsys.readouterr().err
        assert "error" in err

    def test_bad_tolerance_rejected(self, capsys):
        assert run_cli("bench", "--smoke", "--tolerance", "-1") == 2

    def test_against_model_reports_model_error(self, capsys):
        assert run_cli(
            "bench", "--smoke", "--filter", "sweep-vs-model", "--against-model",
        ) == 0
        out = capsys.readouterr().out
        assert "sweep-vs-model" in out
        assert "model_ratio" in out


class TestStoreGcCommand:
    @pytest.fixture
    def filled_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = ProblemSpec(nx=2, ny=2, nz=2, angles_per_octant=1, num_groups=1,
                           num_inners=1, num_outers=1)
        for n in (2, 3):
            s = spec.with_(nx=n)
            store.put(s, repro.run(s))
        return store

    def test_gc_keep_latest_and_drop_flux(self, filled_store, capsys):
        assert run_cli(
            "store", "gc", str(filled_store.root), "--keep-latest", "1", "--drop-flux",
        ) == 0
        out = capsys.readouterr().out
        assert "removed" in out
        assert len(filled_store) == 1
        # Compacted records still load (flux-less summary payloads).
        ((spec, _options, result),) = filled_store.results()
        assert result.scalar_flux is None
        assert result.mean_flux > 0

    def test_gc_dry_run_touches_nothing(self, filled_store):
        before = {p.name: p.read_bytes() for p in filled_store.root.glob("*.json")}
        assert run_cli(
            "store", "gc", str(filled_store.root),
            "--keep-latest", "0", "--drop-flux", "--dry-run",
        ) == 0
        after = {p.name: p.read_bytes() for p in filled_store.root.glob("*.json")}
        assert after == before

    def test_gc_refuses_golden_store(self, filled_store, capsys):
        (filled_store.root / GOLDEN_MARKER).touch()
        assert run_cli("store", "gc", str(filled_store.root), "--drop-flux") == 2
        assert "golden" in capsys.readouterr().err
        assert len(filled_store) == 2

    def test_gc_missing_directory_is_a_clean_error(self, tmp_path, capsys):
        assert run_cli("store", "gc", str(tmp_path / "nope")) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_gc_max_age_flag(self, filled_store, capsys):
        assert run_cli(
            "store", "gc", str(filled_store.root), "--max-age", "0",
        ) == 0
        assert "removed" in capsys.readouterr().out
        assert len(filled_store) == 0

    def test_gc_max_bytes_flag_keeps_the_newest_fit(self, filled_store):
        largest = max(
            p.stat().st_size for p in filled_store.root.glob("*.json")
        )
        assert run_cli(
            "store", "gc", str(filled_store.root), "--max-bytes", str(largest),
        ) == 0
        assert len(filled_store) == 1

    def test_gc_negative_policy_values_are_clean_errors(self, filled_store, capsys):
        assert run_cli(
            "store", "gc", str(filled_store.root), "--max-age", "-1",
        ) == 2
        assert ">= 0" in capsys.readouterr().err
        assert len(filled_store) == 2
