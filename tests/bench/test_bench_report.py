"""The unsnap-bench-v1 report: round-trips, statistics, the regression gate."""

import json

import pytest

from repro.bench import BenchReport, BenchWorkload, compare_reports, machine_fingerprint
from repro.bench.report import machine_info
from repro.bench.registry import _benchmarks, register_benchmark
from repro.bench.report import CaseReport, SampleStats
from repro.bench.suite import run_benchmarks, run_case


def make_report(seconds_by_sample: dict[str, float], case: str = "case-a") -> BenchReport:
    """A minimal single-case report with one measurement per sample."""
    return BenchReport(
        cases=(
            CaseReport(
                name=case,
                tags=("kernel",),
                samples=tuple(
                    SampleStats(name=name, seconds=(value,), metrics={"iterations": 1})
                    for name, value in seconds_by_sample.items()
                ),
            ),
        ),
        workload=BenchWorkload(),
        machine={"python": "test"},
        git=None,
    )


class TestSampleStats:
    def test_statistics(self):
        stats = SampleStats(name="s", seconds=(3.0, 1.0, 2.0))
        assert stats.best == 1.0
        assert stats.mean == 2.0
        assert stats.worst == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no measurements"):
            SampleStats(name="s", seconds=())


class TestReportRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        report = make_report({"fast": 0.1 + 0.2, "slow": 1.0})
        path = report.save(tmp_path / "report.json")
        loaded = BenchReport.load(path)
        assert loaded.to_dict() == report.to_dict()
        assert loaded.case("case-a").sample("fast").best == 0.1 + 0.2

    def test_format_marker_enforced(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps({"benchmark": "old-shape", "engines": {}}))
        with pytest.raises(ValueError, match="unsnap-bench-v1"):
            BenchReport.load(path)

    def test_corrupt_json_named(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            BenchReport.load(path)

    def test_run_benchmarks_report_round_trips(self, tmp_path):
        """A real measured report survives save -> load bit for bit."""

        @register_benchmark("report-rt-case", tags=("scratch",))
        def bench_rt(workload):
            return {"only": {"seconds": 0.001, "n": workload.n}}

        try:
            report = run_benchmarks(["report-rt-case"],
                                    workload=BenchWorkload(repeats=2, warmup=0))
        finally:
            _benchmarks.remove("report-rt-case")
        path = report.save(tmp_path / "real.json")
        assert BenchReport.load(path).to_dict() == report.to_dict()
        case = report.case("report-rt-case")
        assert len(case.sample("only").seconds) == 2


class TestWarmupAndRepeats:
    def test_warmup_discarded_repeats_kept(self):
        calls = []

        @register_benchmark("policy-case", tags=("scratch",))
        def bench_policy(workload):
            calls.append(len(calls))
            return {"only": {"seconds": float(len(calls))}}

        try:
            case = run_case(
                _benchmarks.resolve("policy-case"),
                BenchWorkload(repeats=3, warmup=2),
            )
        finally:
            _benchmarks.remove("policy-case")
        assert len(calls) == 5
        # Warmup invocations (seconds 1.0 and 2.0) never reach the stats.
        assert case.sample("only").seconds == (3.0, 4.0, 5.0)
        assert case.warmup == 2 and case.repeats == 3


class TestCompare:
    def test_self_compare_passes(self):
        report = make_report({"a": 1.0, "b": 2.0})
        comparison = report.compare(report)
        assert comparison.verdict == "pass"
        assert comparison.passed
        assert all(entry.speedup == 1.0 for entry in comparison.entries)

    def test_injected_slowdown_fails(self):
        """The negative control: a slowed sample must trip the gate."""
        baseline = make_report({"a": 1.0, "b": 2.0})
        slowed = make_report({"a": 1.0, "b": 2.0 * 1.4})
        comparison = compare_reports(slowed, baseline, tolerance=0.25)
        assert comparison.verdict == "fail"
        assert not comparison.passed
        assert [(e.case, e.sample) for e in comparison.regressions] == [("case-a", "b")]

    def test_warn_band_between_half_and_full_tolerance(self):
        baseline = make_report({"a": 1.0})
        warned = make_report({"a": 1.2})
        comparison = compare_reports(warned, baseline, tolerance=0.25)
        assert comparison.verdict == "warn"
        assert comparison.passed  # warn never fails the gate

    def test_speedup_passes(self):
        baseline = make_report({"a": 2.0})
        faster = make_report({"a": 0.5})
        comparison = compare_reports(faster, baseline)
        assert comparison.verdict == "pass"
        assert comparison.entries[0].speedup == pytest.approx(4.0)

    def test_missing_and_new_samples_reported_not_failed(self):
        baseline = make_report({"a": 1.0, "gone": 1.0})
        current = make_report({"a": 1.0, "fresh": 1.0})
        comparison = compare_reports(current, baseline)
        assert comparison.missing == (("case-a", "gone"),)
        assert comparison.new == (("case-a", "fresh"),)
        assert comparison.passed

    def test_compare_uses_best_not_mean(self):
        baseline = make_report({"a": 1.0})
        noisy = BenchReport(
            cases=(
                CaseReport(
                    name="case-a", tags=(),
                    samples=(SampleStats(name="a", seconds=(5.0, 1.0)),),
                ),
            ),
        )
        assert compare_reports(noisy, baseline).verdict == "pass"

    def test_bad_tolerance_rejected(self):
        report = make_report({"a": 1.0})
        with pytest.raises(ValueError, match="positive"):
            compare_reports(report, report, tolerance=0.0)

    def test_zero_second_samples_never_divide_by_zero(self):
        """Sub-resolution timers may legally report 0.0 seconds."""
        baseline = make_report({"a": 0.0, "b": 1.0})
        current = make_report({"a": 0.0, "b": 0.0})
        comparison = compare_reports(current, baseline)
        by_sample = {e.sample: e for e in comparison.entries}
        assert by_sample["a"].speedup == 1.0
        assert by_sample["b"].speedup == float("inf")
        assert comparison.passed
        comparison.to_dict()  # must not raise either

    def test_mismatched_workloads_are_advisory(self):
        """Cross-tier compares (smoke vs full baseline) never gate."""
        full = make_report({"a": 100.0})
        smoke = BenchReport(
            cases=full.cases,
            workload=BenchWorkload.from_env(smoke=True, env={}),
        )
        # Identical seconds but different problem sizes: flagged, advisory.
        comparison = compare_reports(smoke, full)
        assert not comparison.workload_match
        assert comparison.gate_passed
        # Even an apparent 100x "regression" cannot fail the gate cross-tier.
        slowed = BenchReport(
            cases=make_report({"a": 10000.0}).cases,
            workload=BenchWorkload.from_env(smoke=True, env={}),
        )
        comparison = compare_reports(slowed, full)
        assert comparison.verdict == "fail" and comparison.gate_passed
        assert comparison.to_dict()["workload_match"] is False

    def test_matching_workloads_gate(self):
        baseline = make_report({"a": 1.0})
        slowed = make_report({"a": 2.0})
        comparison = compare_reports(slowed, baseline)
        assert comparison.workload_match
        assert not comparison.gate_passed

    def test_measurement_policy_does_not_break_workload_match(self):
        """repeats/warmup differ per tier but don't change per-sample cost."""
        baseline = make_report({"a": 1.0})
        current = BenchReport(
            cases=baseline.cases,
            workload=BenchWorkload(repeats=5, warmup=3),
        )
        assert compare_reports(current, baseline).workload_match

    def test_comparison_to_dict(self):
        baseline = make_report({"a": 1.0})
        data = compare_reports(make_report({"a": 1.5}), baseline).to_dict()
        assert data["verdict"] == "fail"
        assert data["entries"][0]["speedup"] == pytest.approx(1 / 1.5)


class TestMachineFingerprint:
    MACHINE = {
        "python": "3.12.1", "implementation": "CPython", "numpy": "2.0.0",
        "platform": "Linux-6.1-x86_64", "machine": "x86_64", "cpus": 16,
    }

    def with_machine(self, seconds, machine):
        report = make_report(seconds)
        return BenchReport(cases=report.cases, workload=report.workload, machine=machine)

    def test_fingerprint_stable_and_hardware_keyed(self):
        assert machine_fingerprint(self.MACHINE) == machine_fingerprint(dict(self.MACHINE))
        other = dict(self.MACHINE, cpus=8)
        assert machine_fingerprint(other) != machine_fingerprint(self.MACHINE)
        # Run-specific keys (numpy build) do not change the identity.
        rebuilt = dict(self.MACHINE, numpy="2.1.0")
        assert machine_fingerprint(rebuilt) == machine_fingerprint(self.MACHINE)
        assert machine_fingerprint({}) == ""

    def test_live_machine_info_fingerprints(self):
        assert machine_fingerprint(machine_info()) != ""

    def test_differing_machines_warn_but_never_gate(self):
        baseline = self.with_machine({"a": 1.0}, self.MACHINE)
        same = self.with_machine({"a": 1.0}, dict(self.MACHINE))
        other = self.with_machine({"a": 1.0}, dict(self.MACHINE, cpus=8))
        assert compare_reports(same, baseline).machine_match
        comparison = compare_reports(other, baseline)
        assert not comparison.machine_match
        # Advisory only: same seconds, gate and verdict unaffected.
        assert comparison.verdict == "pass" and comparison.gate_passed
        assert comparison.to_dict()["machine_match"] is False
        # Even a regression across machines fails on the seconds, not the
        # fingerprint -- and the fingerprint never rescues a real failure.
        slowed = self.with_machine({"a": 2.0}, dict(self.MACHINE, cpus=8))
        regression = compare_reports(slowed, baseline)
        assert regression.verdict == "fail" and not regression.gate_passed

    def test_unknown_machine_counts_as_match(self):
        baseline = self.with_machine({"a": 1.0}, {})
        current = self.with_machine({"a": 1.0}, self.MACHINE)
        assert compare_reports(current, baseline).machine_match
        assert compare_reports(baseline, current).machine_match

    def test_formatted_warning_line(self):
        from repro.analysis.reporting import format_bench_comparison

        baseline = self.with_machine({"a": 1.0}, self.MACHINE)
        other = self.with_machine({"a": 1.0}, dict(self.MACHINE, machine="arm64"))
        text = format_bench_comparison(compare_reports(other, baseline))
        assert "different machine fingerprints" in text
        matched = format_bench_comparison(compare_reports(baseline, baseline))
        assert "machine fingerprints" not in matched
