"""Telemetry: phases, counters, nesting, threading through the execution paths."""

import threading
import time

import numpy as np
import pytest

import repro
from repro.config import ProblemSpec
from repro.telemetry import NULL_PHASE, Telemetry

SMALL = ProblemSpec(nx=3, ny=3, nz=3, angles_per_octant=1, num_groups=2,
                    num_inners=2, num_outers=1)


class TestTelemetryObject:
    def test_phase_records_seconds_and_calls(self):
        tel = Telemetry()
        with tel.phase("work"):
            time.sleep(0.001)
        with tel.phase("work"):
            pass
        assert tel.phase_calls["work"] == 2
        assert tel.phase_seconds["work"] > 0.0

    def test_nested_phases_record_dotted_paths(self):
        tel = Telemetry()
        with tel.phase("outer"):
            with tel.phase("inner"):
                with tel.phase("leaf"):
                    pass
            with tel.phase("inner"):
                pass
        assert set(tel.phase_seconds) == {"outer", "outer.inner", "outer.inner.leaf"}
        assert tel.phase_calls["outer.inner"] == 2
        # A parent's time includes its children's.
        assert tel.phase_seconds["outer"] >= tel.phase_seconds["outer.inner"]

    def test_fresh_instrument_is_truthy_and_empty(self):
        tel = Telemetry()
        assert tel.empty
        assert bool(tel)  # no __bool__ surprise in `if tel` guards
        tel.incr("x")
        assert not tel.empty

    def test_counters_and_gauges(self):
        tel = Telemetry()
        tel.incr("events")
        tel.incr("events", 2)
        tel.incr("bytes", 0.5)
        tel.gauge("workers", 4)
        tel.gauge("workers", 8)
        assert tel.counters == {"events": 3, "bytes": 0.5}
        assert tel.gauges == {"workers": 8}

    def test_disabled_instrument_is_a_noop(self):
        tel = Telemetry(enabled=False)
        assert tel.phase("anything") is NULL_PHASE
        with tel.phase("anything"):
            pass
        tel.incr("events")
        tel.gauge("workers", 4)
        assert tel.empty

    def test_to_from_dict_round_trip_is_exact(self):
        tel = Telemetry()
        with tel.phase("solve"):
            with tel.phase("sweep"):
                pass
        tel.incr("local_solves", 864)
        tel.incr("seconds", 0.1 + 0.2)  # a non-representable double
        tel.gauge("workers", 3)
        reloaded = Telemetry.from_dict(tel.to_dict())
        assert reloaded.to_dict() == tel.to_dict()
        assert reloaded.phase_calls == tel.phase_calls

    def test_merge_adds_phases_and_counters(self):
        a, b = Telemetry(), Telemetry()
        with a.phase("sweep"):
            pass
        with b.phase("sweep"):
            pass
        a.incr("solves", 2)
        b.incr("solves", 3)
        b.gauge("workers", 2)
        a.merge(b)
        assert a.phase_calls["sweep"] == 2
        assert a.counters["solves"] == 5
        assert a.gauges["workers"] == 2

    def test_total_seconds_counts_only_top_level(self):
        tel = Telemetry()
        with tel.phase("setup"):
            pass
        with tel.phase("solve"):
            with tel.phase("sweep"):
                pass
        total = tel.total_seconds()
        assert total == pytest.approx(
            tel.phase_seconds["setup"] + tel.phase_seconds["solve"]
        )
        assert tel.total_seconds("solve") == tel.phase_seconds["solve.sweep"]

    def test_concurrent_increments_are_safe(self):
        tel = Telemetry()

        def worker():
            for _ in range(1000):
                tel.incr("events")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tel.counters["events"] == 4000


class TestRunTelemetry:
    def test_run_without_telemetry_carries_none(self):
        result = repro.run(SMALL)
        assert result.telemetry is None
        assert "telemetry" not in result.to_dict()
        assert "phase_seconds" not in result.summary()

    def test_run_with_true_creates_and_returns_instrument(self):
        result = repro.run(SMALL, telemetry=True)
        tel = result.telemetry
        assert isinstance(tel, Telemetry)
        for phase in ("setup", "solve", "solve.source", "solve.sweep",
                      "solve.convergence"):
            assert phase in tel.phase_seconds, phase
        assert tel.phase_calls["solve.sweep"] == SMALL.num_inners
        assert tel.counters["sweeps"] == SMALL.num_inners
        assert tel.counters["local_solves"] == result.timings.systems_solved

    def test_existing_instrument_accumulates_across_runs(self):
        tel = Telemetry()
        repro.run(SMALL, telemetry=tel)
        first = tel.counters["sweeps"]
        result = repro.run(SMALL, telemetry=tel)
        assert result.telemetry is tel
        assert tel.counters["sweeps"] == 2 * first

    def test_disabled_instrument_behaves_like_none(self):
        """A switched-off instrument must not leak empty keys into exports."""
        tel = Telemetry(enabled=False)
        result = repro.run(SMALL, telemetry=tel)
        assert tel.empty
        assert result.telemetry is None
        assert "telemetry" not in result.to_dict()
        assert "phase_seconds" not in result.summary()

    def test_prefactorized_cache_counters(self):
        result = repro.run(SMALL.with_(engine="prefactorized"), telemetry=True)
        counters = result.telemetry.counters
        assert counters["factor_cache_misses"] > 0
        # Sweep 1 factors every (angle, bucket); the remaining inners hit.
        assert counters["factor_cache_hits"] == (
            (SMALL.num_inners - 1) * counters["factor_cache_misses"]
        )

    def test_multi_rank_halo_counters_match_result(self):
        result = repro.run(SMALL.with_(npex=3), telemetry=True)
        tel = result.telemetry
        assert "solve.halo" in tel.phase_seconds
        assert tel.counters["halo_messages"] == result.messages
        assert tel.counters["halo_bytes"] == result.bytes_exchanged
        assert tel.gauges["ranks"] == 3

    def test_octant_parallel_records_pool_occupancy(self):
        result = repro.run(SMALL, octant_parallel=True, num_threads=4, telemetry=True)
        assert result.telemetry.gauges["octant_pool_workers"] == 4

    @pytest.mark.parametrize("engine", ("reference", "vectorized", "prefactorized"))
    def test_telemetry_never_perturbs_numerics(self, engine):
        """Instrumented and uninstrumented runs agree bit for bit."""
        spec = SMALL.with_(engine=engine)
        plain = repro.run(spec)
        instrumented = repro.run(spec, telemetry=True)
        np.testing.assert_array_equal(plain.scalar_flux, instrumented.scalar_flux)
        octant = repro.run(spec, octant_parallel=True, num_threads=2, telemetry=True)
        np.testing.assert_array_equal(
            repro.run(spec, octant_parallel=True, num_threads=2).scalar_flux,
            octant.scalar_flux,
        )

    def test_telemetry_off_has_no_measurable_sweep_overhead(self):
        """The disabled path must not be slower than the instrumented one.

        Telemetry-off *is* the baseline code path, so the honest proxy for
        "no overhead" is that it never loses to the strictly-more-work
        telemetry-on path (min over repeats to cut scheduler noise; generous
        slack because tiny sweeps jitter on shared machines).
        """
        from repro.core.solver import TransportSolver

        solver_off = TransportSolver(SMALL)
        solver_on = TransportSolver(SMALL, telemetry=Telemetry())
        source = np.ones(
            (solver_off.mesh.num_cells, SMALL.num_groups, solver_off.ref.num_nodes)
        )

        def best_of(executor, repeats=5):
            samples = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                executor.sweep(source)
                samples.append(time.perf_counter() - t0)
            return min(samples)

        best_of(solver_off.executor, repeats=1)  # warm both paths
        best_of(solver_on.executor, repeats=1)
        off = best_of(solver_off.executor)
        on = best_of(solver_on.executor)
        assert off <= 1.5 * on + 0.005

    def test_summary_and_round_trip_with_telemetry(self):
        result = repro.run(SMALL, telemetry=True)
        summary = result.summary()
        assert summary["phase_seconds"] == {
            path: result.telemetry.phase_seconds[path]
            for path in sorted(result.telemetry.phase_seconds)
        }
        loaded = repro.RunResult.from_json(result.to_json(include_flux=True))
        assert loaded.to_dict(include_flux=True) == result.to_dict(include_flux=True)
        assert loaded.telemetry.counters == result.telemetry.counters
        assert loaded.telemetry.gauges == result.telemetry.gauges


class TestConformanceWithTelemetry:
    def test_conformance_suite_passes_with_telemetry_enabled(self, monkeypatch):
        """The verify matrix still passes when every run is instrumented."""
        from repro import runner as runner_module
        from repro.verify.conformance import conformance_matrix

        real_run = runner_module.run
        instrumented = []

        def run_with_telemetry(spec, **kwargs):
            kwargs.setdefault("telemetry", Telemetry())
            result = real_run(spec, **kwargs)
            instrumented.append(result.telemetry)
            return result

        monkeypatch.setattr(runner_module, "run", run_with_telemetry)
        fast = ProblemSpec(
            nx=3, ny=3, nz=3, angles_per_octant=1, num_groups=2,
            max_twist=0.001, num_inners=2,
        )
        report = conformance_matrix(
            fast, backends=("serial",), thread_counts=(1,), octant_modes=(False, True)
        )
        assert report.passed
        assert instrumented and all(not tel.empty for tel in instrumented)
