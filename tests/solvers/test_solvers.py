"""Unit tests for the local dense solvers (hand-written GE and LAPACK)."""

import numpy as np
import pytest

from repro.solvers.gaussian import (
    batched_gaussian_solve,
    gaussian_elimination_solve,
    solve_flop_count,
)
from repro.solvers.lapack import batched_lapack_solve, lapack_solve, lu_factor_solve
from repro.solvers.registry import available_solvers, get_solver


def random_system(rng, n, batch=None):
    shape = (n, n) if batch is None else (batch, n, n)
    a = rng.normal(size=shape)
    # Diagonal dominance guarantees solvability (and mirrors the transport matrices).
    eye = np.eye(n)
    a = a + 2.0 * n * (eye if batch is None else eye[None, :, :])
    b = rng.normal(size=(n,) if batch is None else (batch, n))
    return a, b


class TestGaussianElimination:
    @pytest.mark.parametrize("n", [1, 2, 8, 27])
    def test_matches_numpy(self, rng, n):
        a, b = random_system(rng, n)
        x = gaussian_elimination_solve(a, b)
        assert np.allclose(x, np.linalg.solve(a, b), atol=1e-10)

    def test_multiple_rhs(self, rng):
        a, _ = random_system(rng, 6)
        b = rng.normal(size=(6, 4))
        x = gaussian_elimination_solve(a, b)
        assert np.allclose(a @ x, b, atol=1e-10)

    def test_pivoting_handles_zero_leading_entry(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        b = np.array([2.0, 3.0])
        assert np.allclose(gaussian_elimination_solve(a, b), [3.0, 2.0])

    def test_singular_matrix_raises(self):
        a = np.ones((3, 3))
        with pytest.raises(np.linalg.LinAlgError):
            gaussian_elimination_solve(a, np.ones(3))

    def test_inputs_not_modified(self, rng):
        a, b = random_system(rng, 5)
        a0, b0 = a.copy(), b.copy()
        gaussian_elimination_solve(a, b)
        assert np.array_equal(a, a0) and np.array_equal(b, b0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            gaussian_elimination_solve(np.zeros((2, 3)), np.zeros(2))
        with pytest.raises(ValueError):
            gaussian_elimination_solve(np.eye(3), np.zeros(2))

    def test_flop_count(self):
        assert solve_flop_count(8) == pytest.approx((2.0 / 3.0) * 512)


class TestBatchedGaussian:
    @pytest.mark.parametrize("n,batch", [(2, 1), (8, 16), (27, 3)])
    def test_matches_numpy(self, rng, n, batch):
        a, b = random_system(rng, n, batch)
        x = batched_gaussian_solve(a, b)
        assert np.allclose(x, np.linalg.solve(a, b[..., None])[..., 0], atol=1e-9)

    def test_pivoting_per_system(self, rng):
        # One system needs a pivot swap, the other does not.
        a = np.stack([np.array([[0.0, 1.0], [1.0, 0.0]]), np.eye(2)])
        b = np.array([[1.0, 2.0], [3.0, 4.0]])
        x = batched_gaussian_solve(a, b)
        assert np.allclose(x[0], [2.0, 1.0])
        assert np.allclose(x[1], [3.0, 4.0])

    def test_singular_batch_member_raises(self, rng):
        a, b = random_system(rng, 3, 2)
        a[1] = 0.0
        with pytest.raises(np.linalg.LinAlgError):
            batched_gaussian_solve(a, b)

    def test_shape_validation(self, rng):
        a, b = random_system(rng, 3, 2)
        with pytest.raises(ValueError):
            batched_gaussian_solve(a[0], b)
        with pytest.raises(ValueError):
            batched_gaussian_solve(a, b[:, :2])

    def test_inputs_not_modified(self, rng):
        a, b = random_system(rng, 4, 3)
        a0, b0 = a.copy(), b.copy()
        batched_gaussian_solve(a, b)
        assert np.array_equal(a, a0) and np.array_equal(b, b0)


class TestLapackSolvers:
    def test_single_solve(self, rng):
        a, b = random_system(rng, 8)
        assert np.allclose(lapack_solve(a, b), np.linalg.solve(a, b))

    def test_batched_solve(self, rng):
        a, b = random_system(rng, 8, 5)
        x = batched_lapack_solve(a, b)
        assert np.allclose(np.einsum("bij,bj->bi", a, x), b, atol=1e-9)

    def test_batched_shape_validation(self, rng):
        a, b = random_system(rng, 3, 2)
        with pytest.raises(ValueError):
            batched_lapack_solve(a[0], b[0])
        with pytest.raises(ValueError):
            batched_lapack_solve(a, b.T)

    def test_lu_factor_solve_single_and_batch(self, rng):
        a, _ = random_system(rng, 6)
        b1 = rng.normal(size=6)
        bn = rng.normal(size=(4, 6))
        assert np.allclose(lu_factor_solve(a, b1), np.linalg.solve(a, b1), atol=1e-10)
        xn = lu_factor_solve(a, bn)
        assert np.allclose(np.einsum("ij,bj->bi", a, xn), bn, atol=1e-9)


class TestRegistry:
    def test_available(self):
        assert set(available_solvers()) == {"ge", "lapack"}

    def test_aliases(self):
        assert get_solver("MKL").name == "lapack"
        assert get_solver("dgesv").name == "lapack"
        assert get_solver("gaussian").name == "ge"
        assert get_solver("ge").name == "ge"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_solver("cholesky")

    def test_both_paths_agree(self, rng):
        a, b = random_system(rng, 8, 6)
        ge = get_solver("ge").solve_batched(a, b)
        la = get_solver("lapack").solve_batched(a, b)
        assert np.allclose(ge, la, atol=1e-9)
