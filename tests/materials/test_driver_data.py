"""Driver material data: fission, group speeds, k-infinity, time absorption."""

import numpy as np
import pytest

from repro.materials import (
    snap_driver_library,
    snap_option1_library,
    snap_option1_materials,
    with_snap_fission_data,
    with_snap_velocities,
)


class TestFissionData:
    def test_nu_sigma_f_is_a_fraction_of_sigma_t(self):
        material = with_snap_fission_data(snap_option1_materials(3))
        ratio = material.nu_sigma_f / material.sigma_t
        assert np.allclose(ratio, ratio[0])
        assert 0.0 < ratio[0] < 1.0

    def test_chi_is_a_normalised_fast_peaked_spectrum(self):
        material = with_snap_fission_data(snap_option1_materials(4))
        assert material.chi.sum() == pytest.approx(1.0)
        assert all(a > b for a, b in zip(material.chi, material.chi[1:]))

    def test_invalid_fission_fraction_rejected(self):
        with pytest.raises(ValueError, match="fission_fraction"):
            with_snap_fission_data(snap_option1_materials(2), fission_fraction=1.0)

    def test_k_infinity_closed_form(self):
        """For nu_sigma_f = f*sigma_t, k_inf = f * nsf.(A^-1 chi)/f reduces to
        the scattering-ratio geometric sum: 0.6 for the default recipe."""
        for num_groups in (1, 2, 5):
            material = snap_driver_library(num_groups).materials[0]
            assert material.k_infinity() == pytest.approx(0.6, abs=1e-12)

    def test_k_infinity_requires_fission_data(self):
        with pytest.raises(ValueError, match="no fission data"):
            snap_option1_materials(2).k_infinity()

    def test_per_cell_tables_require_fission_data(self):
        library = snap_option1_library(2).for_cells(4)
        assert not library.has_fission
        with pytest.raises(ValueError, match="fission"):
            library.nu_sigma_f_per_cell()


class TestVelocities:
    def test_speeds_decrease_with_group_index(self):
        material = with_snap_velocities(snap_option1_materials(4))
        assert all(a > b for a, b in zip(material.velocity, material.velocity[1:]))
        assert material.velocity[0] == pytest.approx(1.0)

    def test_per_cell_tables_require_velocity_data(self):
        library = snap_option1_library(2).for_cells(4)
        assert not library.has_velocity
        with pytest.raises(ValueError, match="speed"):
            library.velocity_per_cell()


class TestTimeAbsorption:
    def test_folds_one_over_v_dt_into_sigma_t(self):
        material = snap_driver_library(3).materials[0]
        dt = 0.25
        modified = material.with_time_absorption(dt)
        np.testing.assert_allclose(
            modified.sigma_t, material.sigma_t + 1.0 / (material.velocity * dt)
        )
        np.testing.assert_array_equal(modified.sigma_s, material.sigma_s)

    def test_requires_velocity_and_positive_dt(self):
        with pytest.raises(ValueError, match="no group speeds"):
            snap_option1_materials(2).with_time_absorption(0.1)
        with pytest.raises(ValueError, match="dt"):
            snap_driver_library(2).materials[0].with_time_absorption(0.0)

    def test_library_level_fold_applies_to_every_material(self):
        library = snap_driver_library(2).for_cells(4)
        modified = library.with_time_absorption(0.5)
        np.testing.assert_allclose(
            modified.sigma_t_per_cell(),
            library.sigma_t_per_cell() + 1.0 / (library.velocity_per_cell() * 0.5),
        )


class TestDriverLibrary:
    def test_extends_option1_without_touching_fixed_source_data(self):
        """sigma_t/sigma_s are untouched, so fixed-source results cannot move."""
        plain = snap_option1_materials(3)
        driver = snap_driver_library(3).materials[0]
        np.testing.assert_array_equal(driver.sigma_t, plain.sigma_t)
        np.testing.assert_array_equal(driver.sigma_s, plain.sigma_s)
        assert driver.nu_sigma_f is not None and driver.velocity is not None

    def test_synthesis_is_deterministic(self):
        """Pure function of the spec: distributed workers rebuild identical data."""
        a = snap_driver_library(4, 0.3).materials[0]
        b = snap_driver_library(4, 0.3).materials[0]
        np.testing.assert_array_equal(a.nu_sigma_f, b.nu_sigma_f)
        np.testing.assert_array_equal(a.chi, b.chi)
        np.testing.assert_array_equal(a.velocity, b.velocity)
