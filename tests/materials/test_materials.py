"""Unit tests for cross sections, the SNAP option-1 data and the sources."""

import numpy as np
import pytest

from repro.materials.cross_sections import CrossSections, MaterialLibrary
from repro.materials.library import pure_absorber, snap_option1_library, snap_option1_materials
from repro.materials.source_terms import FixedSource, snap_option1_source, uniform_source


class TestCrossSections:
    def test_validation(self):
        with pytest.raises(ValueError):
            CrossSections(sigma_t=np.array([1.0, 2.0]), sigma_s=np.zeros((3, 3)))
        with pytest.raises(ValueError):
            CrossSections(sigma_t=np.array([0.0]), sigma_s=np.zeros((1, 1)))
        with pytest.raises(ValueError):
            CrossSections(sigma_t=np.array([1.0]), sigma_s=np.array([[-0.1]]))

    def test_absorption_and_ratio(self):
        xs = CrossSections(
            sigma_t=np.array([1.0, 2.0]),
            sigma_s=np.array([[0.3, 0.1], [0.0, 0.5]]),
        )
        assert np.allclose(xs.sigma_a, [0.6, 1.5])
        assert np.allclose(xs.scattering_ratio(), [0.4, 0.25])
        assert xs.is_subcritical()

    def test_infinite_medium_flux_single_group(self):
        xs = CrossSections(sigma_t=np.array([2.0]), sigma_s=np.array([[0.5]]))
        # phi = q / (sigma_t - sigma_s) = 1 / 1.5
        assert xs.infinite_medium_flux(np.array([1.0]))[0] == pytest.approx(1.0 / 1.5)

    def test_infinite_medium_flux_multigroup_conservation(self):
        xs = snap_option1_materials(6, scattering_ratio=0.5)
        q = np.ones(6)
        phi = xs.infinite_medium_flux(q)
        # Group-summed balance: total absorption equals total source.
        assert float(xs.sigma_a @ phi) == pytest.approx(q.sum())


class TestSnapOption1:
    def test_sigma_t_progression(self):
        xs = snap_option1_materials(4)
        assert np.allclose(xs.sigma_t, [1.0, 1.01, 1.02, 1.03])

    def test_scattering_ratio_exact(self):
        for c in (0.1, 0.5, 0.9):
            xs = snap_option1_materials(8, scattering_ratio=c)
            assert np.allclose(xs.scattering_ratio(), c)
            assert xs.is_subcritical()

    def test_downscatter_only(self):
        xs = snap_option1_materials(6)
        assert np.allclose(np.tril(xs.sigma_s, k=-1), 0.0)

    def test_single_group(self):
        xs = snap_option1_materials(1, scattering_ratio=0.3)
        assert xs.sigma_s.shape == (1, 1)
        assert xs.sigma_s[0, 0] == pytest.approx(0.3)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            snap_option1_materials(0)
        with pytest.raises(ValueError):
            snap_option1_materials(4, scattering_ratio=1.0)

    def test_pure_absorber(self):
        xs = pure_absorber(3, sigma_t=2.5)
        assert np.allclose(xs.sigma_t, 2.5)
        assert np.allclose(xs.sigma_s, 0.0)
        assert np.allclose(xs.scattering_ratio(), 0.0)


class TestMaterialLibrary:
    def test_homogeneous_assignment(self):
        lib = snap_option1_library(4).for_cells(10)
        assert lib.cell_material.shape == (10,)
        assert np.all(lib.cell_material == 0)
        assert lib.sigma_t_per_cell().shape == (10, 4)
        assert lib.sigma_s_per_cell().shape == (10, 4, 4)

    def test_mismatched_group_counts_rejected(self):
        with pytest.raises(ValueError):
            MaterialLibrary(materials=[snap_option1_materials(2), snap_option1_materials(3)])

    def test_existing_assignment_preserved(self):
        lib = MaterialLibrary(
            materials=[snap_option1_materials(2), pure_absorber(2)],
            cell_material=np.array([0, 1, 1]),
        )
        same = lib.for_cells(3)
        assert same is lib
        with pytest.raises(ValueError):
            lib.for_cells(5)

    def test_per_cell_tables_respect_assignment(self):
        lib = MaterialLibrary(
            materials=[snap_option1_materials(2), pure_absorber(2, sigma_t=5.0)],
            cell_material=np.array([0, 1]),
        )
        sig_t = lib.sigma_t_per_cell()
        assert sig_t[1, 0] == pytest.approx(5.0)
        assert sig_t[0, 0] == pytest.approx(1.0)

    def test_empty_library_rejected(self):
        with pytest.raises(ValueError):
            MaterialLibrary(materials=[])


class TestFixedSource:
    def test_uniform_source(self):
        src = uniform_source(5, 3, strength=2.0)
        assert src.density.shape == (5, 3)
        assert np.all(src.density == 2.0)

    def test_snap_option1_source_is_unit(self):
        src = snap_option1_source(4, 2)
        assert np.all(src.density == 1.0)

    def test_total_emission(self):
        src = uniform_source(3, 2, strength=1.5)
        volumes = np.array([1.0, 2.0, 3.0])
        assert np.allclose(src.total_emission(volumes), 1.5 * 6.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedSource(density=np.zeros(4))
        with pytest.raises(ValueError):
            FixedSource(density=-np.ones((2, 2)))
        with pytest.raises(ValueError):
            uniform_source(2, 2, strength=-1.0)
