"""Shared fixtures for the UnSNAP reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.angular.quadrature import snap_dummy_quadrature
from repro.config import ProblemSpec
from repro.core.assembly import ElementMatrices
from repro.fem.element import HexElementFactors
from repro.fem.reference import ReferenceElement
from repro.materials.library import snap_option1_library
from repro.materials.source_terms import uniform_source
from repro.mesh.builder import StructuredGridSpec, build_snap_mesh
from repro.sweepsched.schedule import build_sweep_schedule


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20180598)


@pytest.fixture(scope="session")
def small_spec():
    """A tiny but fully featured problem (twisted mesh, multigroup)."""
    return ProblemSpec(
        nx=3, ny=3, nz=3,
        order=1,
        angles_per_octant=2,
        num_groups=3,
        max_twist=0.001,
        num_inners=3,
        num_outers=1,
    )


@pytest.fixture(scope="session")
def small_mesh(small_spec):
    return build_snap_mesh(
        StructuredGridSpec(small_spec.nx, small_spec.ny, small_spec.nz),
        max_twist=small_spec.max_twist,
    )


@pytest.fixture(scope="session")
def ref_order1():
    return ReferenceElement(1)


@pytest.fixture(scope="session")
def ref_order2():
    return ReferenceElement(2)


@pytest.fixture(scope="session")
def small_factors(small_mesh, ref_order1):
    return HexElementFactors.build(small_mesh.cell_vertices(), ref_order1)


@pytest.fixture(scope="session")
def small_matrices(small_factors, ref_order1):
    return ElementMatrices.build(small_factors, ref_order1)


@pytest.fixture(scope="session")
def small_quadrature(small_spec):
    return snap_dummy_quadrature(small_spec.angles_per_octant)


@pytest.fixture(scope="session")
def small_schedule(small_mesh, small_factors, small_quadrature):
    return build_sweep_schedule(small_mesh, small_factors, small_quadrature)


@pytest.fixture(scope="session")
def small_materials(small_spec, small_mesh):
    return snap_option1_library(small_spec.num_groups).for_cells(small_mesh.num_cells)


@pytest.fixture(scope="session")
def small_source(small_spec, small_mesh):
    return uniform_source(small_mesh.num_cells, small_spec.num_groups)
