"""Tests for the simulated communicator, halo exchange, block Jacobi and KBA model."""

import numpy as np
import pytest

from repro.config import ProblemSpec
from repro.core.sweep import BoundaryValues
from repro.core.solver import TransportSolver
from repro.mesh.builder import StructuredGridSpec, build_snap_mesh
from repro.mesh.partition import partition_kba
from repro.parallel.block_jacobi import BlockJacobiDriver
from repro.parallel.comm import SimCommWorld
from repro.parallel.halo import HaloExchanger
from repro.parallel.kba import KBAPipelineModel


class TestSimComm:
    def test_rank_and_size(self):
        world = SimCommWorld(3)
        comms = world.comms()
        assert [c.Get_rank() for c in comms] == [0, 1, 2]
        assert all(c.Get_size() == 3 for c in comms)

    def test_send_recv_fifo_per_source_and_tag(self):
        world = SimCommWorld(2)
        c0, c1 = world.comms()
        c0.send("first", dest=1, tag=5)
        c0.send("second", dest=1, tag=5)
        c0.send("other", dest=1, tag=9)
        assert c1.recv(source=0, tag=5) == "first"
        assert c1.recv(source=0, tag=9) == "other"
        assert c1.recv(source=0, tag=5) == "second"
        assert world.pending_messages() == 0

    def test_recv_without_message_raises(self):
        world = SimCommWorld(2)
        with pytest.raises(RuntimeError):
            world.comm(0).recv(source=1, tag=0)

    def test_message_accounting(self):
        world = SimCommWorld(2)
        world.comm(0).send(np.zeros(10), dest=1)
        assert world.message_count == 1
        assert world.bytes_sent == 80

    def test_invalid_ranks(self):
        world = SimCommWorld(2)
        with pytest.raises(ValueError):
            world.comm(5)
        with pytest.raises(ValueError):
            world.comm(0).send("x", dest=7)
        with pytest.raises(ValueError):
            SimCommWorld(0)

    def test_single_rank_allreduce_and_bcast(self):
        world = SimCommWorld(1)
        comm = world.comm(0)
        assert comm.allreduce(4.0) == 4.0
        assert comm.bcast({"a": 1}) == {"a": 1}


class TestHaloExchanger:
    def test_round_trip_between_two_ranks(self):
        mesh = build_snap_mesh(StructuredGridSpec(2, 1, 1))
        decomp = partition_kba(mesh, 2, 1)
        world = SimCommWorld(2)
        ex0 = HaloExchanger(decomp.subdomains[0], world.comm(0))
        ex1 = HaloExchanger(decomp.subdomains[1], world.comm(1))
        assert ex0.partners == [1] and ex1.partners == [0]

        # Rank 0's only cell sends its +x trace for angle 3.
        trace = np.arange(8, dtype=float).reshape(1, 8)
        ex0.post_outgoing({(0, 1, 3): trace})
        ex1.post_outgoing({})
        incoming1 = ex1.collect_incoming()
        incoming0 = ex0.collect_incoming()
        # Rank 1 sees the trace keyed by its own local cell and the face as
        # seen from its side (-x), same angle.
        assert np.allclose(incoming1.get(0, 0, 3), trace)
        assert len(incoming0) == 0

    def test_halo_volume_estimate(self):
        mesh = build_snap_mesh(StructuredGridSpec(4, 4, 2))
        decomp = partition_kba(mesh, 2, 1)
        world = SimCommWorld(2)
        ex = HaloExchanger(decomp.subdomains[0], world.comm(0))
        assert ex.halo_volume_bytes(num_groups=4, num_nodes=8, num_angles=8) > 0

    def test_boundary_values_container(self):
        bv = BoundaryValues()
        assert bv.get(0, 0, 0) is None
        bv.put(1, 2, 3, np.ones((2, 8)))
        assert bv.get(1, 2, 3).shape == (2, 8)
        assert len(bv) == 1


class TestBlockJacobi:
    @pytest.fixture(scope="class")
    def base_spec(self):
        return ProblemSpec(
            nx=4, ny=4, nz=2, order=1, angles_per_octant=1, num_groups=2,
            max_twist=0.001, num_inners=25, num_outers=1, inner_tolerance=1e-9,
        )

    def test_matches_single_rank_at_convergence(self, base_spec):
        single = TransportSolver(base_spec).solve()
        multi = BlockJacobiDriver(base_spec.with_(npex=2, npey=2)).solve()
        rel = np.abs(multi.scalar_flux - single.scalar_flux) / np.maximum(
            single.scalar_flux, 1e-12
        )
        assert rel.max() < 1e-6
        assert multi.num_ranks == 4

    def test_convergence_degrades_with_rank_count(self, base_spec):
        spec = base_spec.with_(num_inners=6, inner_tolerance=0.0)
        single = BlockJacobiDriver(spec.with_(npex=1, npey=1)).solve()
        multi = BlockJacobiDriver(spec.with_(npex=4, npey=2)).solve()
        # After the same number of inners the multi-rank Jacobi iterate is
        # farther from convergence (larger last relative change).
        assert multi.inner_errors[-1] > single.inner_errors[-1]

    def test_halo_traffic_present_only_with_multiple_ranks(self, base_spec):
        spec = base_spec.with_(num_inners=2, inner_tolerance=0.0)
        single = BlockJacobiDriver(spec).solve()
        multi = BlockJacobiDriver(spec.with_(npex=2, npey=1)).solve()
        assert single.messages == 0
        assert multi.messages > 0

    def test_leakage_and_balance_gathered_globally(self, base_spec):
        spec = base_spec.with_(npex=2, npey=1, num_inners=30, inner_tolerance=1e-9)
        result = BlockJacobiDriver(spec).solve()
        single = TransportSolver(base_spec).solve()
        assert np.allclose(result.leakage, single.leakage, rtol=1e-5)
        assert abs(result.balance.relative_residual() - single.balance.relative_residual()) < 1e-5

    def test_per_rank_cells_partition_mesh(self, base_spec):
        result = BlockJacobiDriver(base_spec.with_(npex=2, npey=2, num_inners=1)).solve()
        assert sum(result.per_rank_cells) == base_spec.num_cells


class TestKBAPipelineModel:
    def test_single_rank_is_fully_efficient(self):
        model = KBAPipelineModel(npex=1, npey=1, num_planes=10)
        assert model.parallel_efficiency() == 1.0
        assert model.idle_fraction() == 0.0

    def test_efficiency_decreases_with_grid_size(self):
        small = KBAPipelineModel(npex=2, npey=2, num_planes=16)
        large = KBAPipelineModel(npex=8, npey=8, num_planes=16)
        assert large.parallel_efficiency() < small.parallel_efficiency()

    def test_relative_sweep_time(self):
        model = KBAPipelineModel(npex=4, npey=4, num_planes=10)
        assert model.relative_sweep_time() == pytest.approx(16.0 / 10.0)
        assert KBAPipelineModel.block_jacobi_efficiency() == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            KBAPipelineModel(npex=0, npey=1, num_planes=1)
        with pytest.raises(ValueError):
            KBAPipelineModel(npex=1, npey=1, num_planes=0)
