"""Edge cases for the ndjson progress stream.

The stream is the one long-lived response the gateway serves, so the
failure modes that matter are the ones a snapshot endpoint never sees:
the client vanishing mid-stream, the job going terminal between polls,
and handler threads that must not outlive their connection.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.service import ServiceClient, ServiceDaemon, make_server


def _handler_threads() -> int:
    return sum(
        1 for t in threading.enumerate() if not t.name.startswith("pytest")
    )


def _wait_until(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


@pytest.fixture()
def blocking_gateway(tiny_result, blocking_executor_cls):
    """Gateway over a daemon whose executor parks until released."""
    executor = blocking_executor_cls(tiny_result)
    daemon = ServiceDaemon(backend="serial", workers=1, executor=executor)
    daemon.start()
    server = make_server(daemon, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, daemon, executor
    finally:
        executor.release.set()
        server.shutdown()
        server.server_close()
        daemon.shutdown()
        thread.join(timeout=5)


class TestClientDisconnect:
    def test_disconnect_mid_stream_leaves_gateway_serving(
        self, blocking_gateway, tiny_spec
    ):
        server, _daemon, executor = blocking_gateway
        client = ServiceClient(port=server.port)
        job = client.submit(spec=tiny_spec.to_dict())
        assert executor.started.wait(timeout=10.0)

        # Stream over a raw socket and slam it shut mid-response.
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=10)
        sock.sendall(
            f"GET /jobs/{job['id']}/progress?interval=0.02 HTTP/1.0\r\n"
            "Host: localhost\r\n\r\n".encode()
        )
        assert sock.recv(1024)  # headers + at least one snapshot are flowing
        sock.setsockopt(
            socket.SOL_SOCKET,
            socket.SO_LINGER,
            # linger(on=1, seconds=0): close sends RST, not FIN -- the
            # gateway's next write dies with ECONNRESET, the harsh variant.
            b"\x01\x00\x00\x00\x00\x00\x00\x00",
        )
        sock.close()

        # The gateway must shrug it off: still healthy, still serving.
        time.sleep(0.2)
        assert client.healthz() == {"status": "ok"}
        assert client.stats()["jobs"]["running"] == 1
        executor.release.set()
        done = client.wait(job["id"], timeout=30.0)
        assert done["state"] == "done"

    def test_disconnect_leaves_no_dangling_handler_thread(
        self, blocking_gateway, tiny_spec
    ):
        server, _daemon, executor = blocking_gateway
        client = ServiceClient(port=server.port)
        job = client.submit(spec=tiny_spec.to_dict())
        assert executor.started.wait(timeout=10.0)
        baseline = _handler_threads()

        socks = []
        for _ in range(3):
            sock = socket.create_connection(("127.0.0.1", server.port), timeout=10)
            sock.sendall(
                f"GET /jobs/{job['id']}/progress?interval=0.02 HTTP/1.0\r\n"
                "Host: localhost\r\n\r\n".encode()
            )
            assert sock.recv(1024)
            socks.append(sock)
        assert _handler_threads() >= baseline + 3
        for sock in socks:
            sock.close()

        # Handler threads notice the dead socket on their next write and
        # exit; the pool must drain back to where it started.
        assert _wait_until(lambda: _handler_threads() <= baseline)
        executor.release.set()
        client.wait(job["id"], timeout=30.0)


class TestTerminalMidPoll:
    def test_job_finishing_mid_stream_ends_cleanly(
        self, blocking_gateway, tiny_spec
    ):
        server, _daemon, executor = blocking_gateway
        client = ServiceClient(port=server.port)
        job = client.submit(spec=tiny_spec.to_dict())
        assert executor.started.wait(timeout=10.0)

        lines = []
        errors = []

        def consume():
            try:
                lines.extend(
                    client.progress(job["id"], interval=0.02, timeout=30.0)
                )
            except Exception as exc:  # surfaced in the main thread
                errors.append(exc)

        reader = threading.Thread(target=consume)
        reader.start()
        # Let the stream emit at least one "running" snapshot, then finish
        # the job while the handler is parked inside its poll wait.
        assert _wait_until(lambda: len(lines) >= 1)
        executor.release.set()
        reader.join(timeout=30.0)
        assert not reader.is_alive() and not errors

        assert lines[0]["state"] in ("queued", "running")
        final = lines[-1]
        assert final["state"] == "done"
        assert final["result_summary"] is not None
        assert "timeout" not in final
        # Exactly one terminal snapshot: the stream stops, it doesn't spin.
        assert sum(1 for line in lines if line["state"] == "done") == 1

    def test_stream_timeout_marker_when_job_outlives_window(
        self, blocking_gateway, tiny_spec
    ):
        server, _daemon, executor = blocking_gateway
        client = ServiceClient(port=server.port)
        job = client.submit(spec=tiny_spec.to_dict())
        assert executor.started.wait(timeout=10.0)
        lines = list(client.progress(job["id"], interval=0.02, timeout=0.2))
        assert lines[-1] == {"id": job["id"], "timeout": True}
        assert all(line["state"] != "done" for line in lines[:-1])
        executor.release.set()
        client.wait(job["id"], timeout=30.0)

    def test_completed_job_streams_single_terminal_snapshot(
        self, blocking_gateway, tiny_spec
    ):
        server, _daemon, executor = blocking_gateway
        executor.release.set()
        client = ServiceClient(port=server.port)
        job = client.submit(spec=tiny_spec.to_dict())
        client.wait(job["id"], timeout=30.0)
        lines = list(client.progress(job["id"], interval=0.02, timeout=10.0))
        assert len(lines) == 1 and lines[0]["state"] == "done"


class TestStreamPayload:
    def test_snapshots_are_valid_ndjson_with_telemetry(
        self, blocking_gateway, tiny_spec
    ):
        """Read the raw bytes: every line parses alone (the ndjson
        contract the dashboard's getReader loop depends on)."""
        server, _daemon, executor = blocking_gateway
        client = ServiceClient(port=server.port)
        job = client.submit(spec=tiny_spec.to_dict())
        assert executor.started.wait(timeout=10.0)
        executor.release.set()

        from http.client import HTTPConnection

        conn = HTTPConnection("127.0.0.1", server.port, timeout=30)
        conn.request("GET", f"/jobs/{job['id']}/progress?interval=0.02")
        response = conn.getresponse()
        assert response.getheader("Content-Type") == "application/x-ndjson"
        raw = response.read().decode()
        conn.close()
        assert raw.endswith("\n")
        snapshots = [json.loads(line) for line in raw.splitlines()]
        assert snapshots[-1]["state"] == "done"
        assert all(s["id"] == job["id"] for s in snapshots)
