"""The job state machine and its JSON round trip."""

import pytest

from repro.campaign.store import run_key
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
)
from repro.telemetry import Telemetry


def make_job(spec, **overrides) -> Job:
    fields = dict(id=1, key=run_key(spec), spec=spec)
    fields.update(overrides)
    return Job(**fields)


class TestStateMachine:
    def test_initial_state(self, tiny_spec):
        job = make_job(tiny_spec)
        assert job.state == QUEUED
        assert not job.terminal
        assert job.result_summary is None and job.error is None

    @pytest.mark.parametrize(
        "path",
        [
            (RUNNING, DONE),
            (RUNNING, FAILED),
            (RUNNING, CANCELLED),
            (CANCELLED,),      # pre-start cancel
            (DONE,),           # coalesced shortcut: served by an identical twin
        ],
    )
    def test_legal_paths(self, tiny_spec, path):
        job = make_job(tiny_spec)
        for state in path:
            job.transition(state)
        assert job.state == path[-1]
        assert job.terminal == (path[-1] in TERMINAL_STATES)

    @pytest.mark.parametrize("terminal", sorted(TERMINAL_STATES))
    def test_terminal_states_are_final(self, tiny_spec, terminal):
        job = make_job(tiny_spec, state=terminal)
        for state in JOB_STATES:
            with pytest.raises(ValueError, match="illegal transition"):
                job.transition(state)

    def test_queued_cannot_fail_directly(self, tiny_spec):
        job = make_job(tiny_spec)
        with pytest.raises(ValueError, match="illegal transition"):
            job.transition(FAILED)

    def test_unknown_state_rejected(self, tiny_spec):
        job = make_job(tiny_spec)
        with pytest.raises(ValueError, match="unknown job state"):
            job.transition("paused")


class TestJsonRoundTrip:
    def test_round_trip_bit_exact(self, tiny_spec):
        job = make_job(
            tiny_spec,
            run_options={"num_threads": 2},
            keep_flux=False,
            telemetry=Telemetry(),
        )
        job.transition(RUNNING)
        job.started_at = job.submitted_at + 0.5
        job.transition(DONE)
        job.finished_at = job.started_at + 1.0
        job.result_summary = {"mean_flux": 1.25}
        job.cache_hit = True

        clone = Job.from_json(job.to_json())
        assert clone.to_dict() == job.to_dict()
        assert clone.spec == tiny_spec
        assert clone.run_options == {"num_threads": 2}
        assert clone.state == DONE and clone.cache_hit and not clone.keep_flux

    def test_telemetry_never_serialised(self, tiny_spec):
        job = make_job(tiny_spec, telemetry=Telemetry())
        data = job.to_dict()
        assert "telemetry" not in data
        assert Job.from_dict(data).telemetry is None

    def test_unknown_state_in_payload_rejected(self, tiny_spec):
        data = make_job(tiny_spec).to_dict()
        data["state"] = "paused"
        with pytest.raises(ValueError, match="unknown job state"):
            Job.from_dict(data)
