"""The service-dedup benchmark case: the >=10x headline, asserted."""

from repro.bench import BenchWorkload, get_benchmark
from repro.bench.suite import run_case


def test_service_dedup_case_speedup_at_least_10x():
    workload = BenchWorkload.from_env(smoke=True, env={})
    case = run_case(get_benchmark("service-dedup"), workload)
    service = case.sample("service")
    cold = case.sample("cold")
    assert service.metrics["executed"] == 1
    assert service.metrics["cache_hits"] == service.metrics["runs"] - 1
    # One solve amortised over N identical submissions: the dedup fast path
    # must beat N cold solves by an order of magnitude even on smoke sizes.
    assert service.metrics["speedup"] >= 10.0
    assert cold.metrics["runs"] == service.metrics["runs"]
