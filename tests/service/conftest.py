"""Shared fixtures for the service-layer tests."""

from __future__ import annotations

import threading

import pytest

import repro
from repro.config import ProblemSpec
from repro.service import JobCancelled, ServiceDaemon, make_server


class BlockingExecutor:
    """A fake executor that parks until released, returning a canned result.

    ``started`` fires when a call begins; ``release`` lets calls finish.
    Honours cooperative cancellation like a real instrumented run would.
    The first ``fail_times`` calls raise instead of returning.
    """

    def __init__(self, result, fail_times: int = 0):
        self.result = result
        self.started = threading.Event()
        self.release = threading.Event()
        self.calls = 0
        self.fail_times = fail_times
        self._lock = threading.Lock()

    def __call__(self, job):
        with self._lock:
            self.calls += 1
            call = self.calls
        self.started.set()
        assert self.release.wait(timeout=10.0)
        if job.cancel_requested:
            raise JobCancelled()
        if call <= self.fail_times:
            raise RuntimeError("manufactured failure")
        return self.result


@pytest.fixture()
def blocking_executor_cls():
    """The :class:`BlockingExecutor` fake, shared across test modules."""
    return BlockingExecutor


@pytest.fixture(scope="session")
def tiny_spec():
    """The smallest spec worth solving: keeps real-execution tests fast."""
    return ProblemSpec(
        nx=2, ny=2, nz=2, order=1, angles_per_octant=1, num_groups=2,
        max_twist=0.0, num_inners=1, num_outers=1, engine="vectorized",
    )


@pytest.fixture(scope="session")
def tiny_result(tiny_spec):
    """One real solve of ``tiny_spec``; fake executors return it as-is."""
    return repro.run(tiny_spec)


@pytest.fixture()
def gateway(tmp_path):
    """A running daemon + HTTP server; yields ``(server, daemon)``.

    The daemon executes for real (serial backend, store-backed) so the
    round-trip tests cover the full submit -> solve -> store -> serve path.
    """
    daemon = ServiceDaemon(store=tmp_path / "store", backend="serial", workers=2)
    daemon.start()
    server = make_server(daemon, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, daemon
    finally:
        server.shutdown()
        server.server_close()
        daemon.shutdown()
        thread.join(timeout=5)
