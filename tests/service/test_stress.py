"""Concurrent-client stress: mixed duplicate/unique workload over the wire.

The acceptance criterion: >= 8 threads hammering the gateway with a mix of
duplicate and unique submissions; every job reaches a correct terminal
state, none are lost, and the store holds exactly one record per distinct
``(spec, run_options)`` key.  Runs against both in-process execution and
the ``process`` backend (real worker processes).
"""

import threading

import pytest

from repro.campaign.store import run_key
from repro.service import DONE, ServiceClient, ServiceDaemon, make_server

N_THREADS = 8


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_concurrent_mixed_workload(backend, tiny_spec, tmp_path):
    daemon = ServiceDaemon(
        store=tmp_path, backend=backend, workers=4, max_queue_depth=256
    )
    daemon.start()
    server = make_server(daemon, port=0)
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()

    # Per client thread: two shared duplicates plus one thread-unique spec.
    shared = [tiny_spec, tiny_spec.with_(nx=3)]
    def specs_for(thread_index):
        return shared + [tiny_spec.with_(num_inners=2 + thread_index)]

    results: dict[int, list[dict]] = {}
    errors: list[BaseException] = []

    def client_thread(thread_index):
        try:
            client = ServiceClient(port=server.port, timeout=120.0)
            submitted = [
                client.submit(spec=spec.to_dict())
                for spec in specs_for(thread_index)
            ]
            results[thread_index] = [
                client.wait(job["id"], timeout=300.0) for job in submitted
            ]
        except BaseException as exc:  # surface failures in the main thread
            errors.append(exc)

    threads = [
        threading.Thread(target=client_thread, args=(i,)) for i in range(N_THREADS)
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600.0)
        assert not any(thread.is_alive() for thread in threads)
        assert not errors, f"client threads failed: {errors!r}"

        finished = [job for jobs in results.values() for job in jobs]
        n_submitted = N_THREADS * 3
        distinct_keys = {
            run_key(spec) for i in range(N_THREADS) for spec in specs_for(i)
        }

        # No lost jobs: every submission came back, every one of them done.
        assert len(finished) == n_submitted
        assert all(job["state"] == DONE for job in finished)
        stats = daemon.stats()
        assert stats["submitted"] == n_submitted
        assert stats["jobs"][DONE] == n_submitted

        # Dedup exactness: one solve and one stored record per distinct key,
        # everything else served as a cache hit.
        assert len(daemon.store) == len(distinct_keys)
        assert stats["executed"] == len(distinct_keys)
        assert stats["cache_hits"] == n_submitted - len(distinct_keys)

        # Duplicates are bit-identical: group summaries by content key.
        by_key: dict[str, list[dict]] = {}
        for job in finished:
            by_key.setdefault(job["key"], []).append(job["result_summary"])
        for key, summaries in by_key.items():
            assert all(s == summaries[0] for s in summaries), key
    finally:
        server.shutdown()
        server.server_close()
        daemon.shutdown()
