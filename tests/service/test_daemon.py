"""The job-queue daemon: dedup, coalescing, cancellation, back-pressure."""

import threading
import time

import pytest

from repro.campaign import ResultStore
from repro.campaign.store import run_key
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    RUNNING,
    QueueFullError,
    ServiceDaemon,
)


def wait_for(predicate, timeout: float = 10.0, interval: float = 0.005):
    """Poll ``predicate`` until truthy (test helper for async daemon state)."""
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(interval)


class TestExecution:
    def test_submit_executes_and_completes(self, tiny_spec, tmp_path):
        with ServiceDaemon(store=tmp_path, backend="serial", workers=1) as daemon:
            job = daemon.submit(tiny_spec)
            done = daemon.wait(job.id, timeout=60.0)
        assert done.state == DONE and not done.cache_hit
        assert done.result_summary["mean_flux"] > 0
        assert done.started_at is not None and done.finished_at >= done.started_at

    def test_dedup_second_submission_runs_nothing(self, tiny_spec, tmp_path):
        store = ResultStore(tmp_path)
        with ServiceDaemon(store=store, backend="serial", workers=1) as daemon:
            first = daemon.wait(daemon.submit(tiny_spec).id, timeout=60.0)
            second = daemon.wait(daemon.submit(tiny_spec).id, timeout=60.0)
            stats = daemon.stats()
        # Exactly one stored record and one executed solve: the second
        # submission was served from the store, bit-identical summary.
        assert len(store) == 1
        assert stats["executed"] == 1 and stats["store_hits"] == 1
        assert not first.cache_hit and second.cache_hit
        assert second.result_summary == first.result_summary

    def test_failed_job_isolated_from_worker(self, tiny_spec, tiny_result, blocking_executor_cls):
        executor = blocking_executor_cls(tiny_result, fail_times=1)
        executor.release.set()
        with ServiceDaemon(workers=1, executor=executor) as daemon:
            failed = daemon.wait(daemon.submit(tiny_spec).id, timeout=10.0)
            # The worker thread survived the failure and runs the next job.
            ok = daemon.wait(daemon.submit(tiny_spec.with_(nx=3)).id, timeout=10.0)
        assert failed.state == FAILED
        assert "RuntimeError: manufactured failure" in failed.error
        assert ok.state == DONE

    def test_validation_happens_before_queueing(self, tiny_spec):
        with ServiceDaemon(workers=1) as daemon:
            with pytest.raises(KeyError, match="unknown run option"):
                daemon.submit(tiny_spec, {"bogus": 1})
            with pytest.raises(KeyError, match="unknown engine"):
                daemon.submit(tiny_spec.with_(engine="warpdrive"))
            assert daemon.stats()["submitted"] == 0

    def test_wait_timeout(self, tiny_spec, tiny_result, blocking_executor_cls):
        executor = blocking_executor_cls(tiny_result)
        with ServiceDaemon(workers=1, executor=executor) as daemon:
            job = daemon.submit(tiny_spec)
            with pytest.raises(TimeoutError):
                daemon.wait(job.id, timeout=0.05)
            executor.release.set()
            assert daemon.wait(job.id, timeout=10.0).state == DONE

    def test_get_unknown_job(self):
        with ServiceDaemon(workers=1) as daemon:
            with pytest.raises(KeyError, match="no such job"):
                daemon.get(999)


class TestCoalescing:
    def test_identical_inflight_jobs_coalesce(self, tiny_spec, tiny_result, blocking_executor_cls):
        executor = blocking_executor_cls(tiny_result)
        key = run_key(tiny_spec)
        with ServiceDaemon(workers=2, executor=executor) as daemon:
            leader = daemon.submit(tiny_spec)
            assert executor.started.wait(timeout=10.0)
            follower = daemon.submit(tiny_spec)
            # Deterministic: wait until the twin is parked behind the leader.
            wait_for(lambda: len(daemon._followers.get(key, [])) == 1)
            executor.release.set()
            daemon.wait(leader.id, timeout=10.0)
            daemon.wait(follower.id, timeout=10.0)
            stats = daemon.stats()
        assert executor.calls == 1
        assert leader.state == DONE and follower.state == DONE
        assert follower.cache_hit and not leader.cache_hit
        assert follower.result_summary == leader.result_summary
        assert stats["coalesced_hits"] == 1 and stats["executed"] == 1

    def test_followers_requeue_when_leader_fails(
        self, tiny_spec, tiny_result, blocking_executor_cls
    ):
        executor = blocking_executor_cls(tiny_result, fail_times=1)
        key = run_key(tiny_spec)
        with ServiceDaemon(workers=2, executor=executor) as daemon:
            leader = daemon.submit(tiny_spec)
            assert executor.started.wait(timeout=10.0)
            follower = daemon.submit(tiny_spec)
            wait_for(lambda: len(daemon._followers.get(key, [])) == 1)
            executor.release.set()
            assert daemon.wait(leader.id, timeout=10.0).state == FAILED
            # The parked follower retries individually and succeeds.
            assert daemon.wait(follower.id, timeout=10.0).state == DONE
        assert executor.calls == 2
        assert not follower.cache_hit


class TestCancellation:
    def test_cancel_queued_always_wins(self, tiny_spec, tiny_result, blocking_executor_cls):
        executor = blocking_executor_cls(tiny_result)
        with ServiceDaemon(workers=1, executor=executor) as daemon:
            running = daemon.submit(tiny_spec)
            assert executor.started.wait(timeout=10.0)
            queued = daemon.submit(tiny_spec.with_(nx=3))
            cancelled = daemon.cancel(queued.id)
            assert cancelled.state == CANCELLED  # immediate, before any run
            executor.release.set()
            assert daemon.wait(running.id, timeout=10.0).state == DONE
        assert executor.calls == 1  # the cancelled job never executed

    def test_cancel_inflight_best_effort(self, tiny_spec, tiny_result, blocking_executor_cls):
        executor = blocking_executor_cls(tiny_result)
        with ServiceDaemon(workers=1, executor=executor) as daemon:
            job = daemon.submit(tiny_spec)
            assert executor.started.wait(timeout=10.0)
            assert daemon.cancel(job.id).state == RUNNING
            assert job.cancel_requested
            executor.release.set()
            assert daemon.wait(job.id, timeout=10.0).state == CANCELLED

    def test_cancel_terminal_is_noop(self, tiny_spec, tmp_path):
        with ServiceDaemon(store=tmp_path, backend="serial", workers=1) as daemon:
            job = daemon.submit(tiny_spec)
            daemon.wait(job.id, timeout=60.0)
            assert daemon.cancel(job.id).state == DONE

    def test_shutdown_cancels_queued_jobs(self, tiny_spec, tiny_result, blocking_executor_cls):
        executor = blocking_executor_cls(tiny_result)
        daemon = ServiceDaemon(workers=1, executor=executor).start()
        running = daemon.submit(tiny_spec)
        assert executor.started.wait(timeout=10.0)
        queued = daemon.submit(tiny_spec.with_(nx=3))
        # Begin the shutdown while the worker is still blocked: the queued
        # job must be cancelled before the worker could ever pick it up.
        stopper = threading.Thread(target=daemon.shutdown)
        stopper.start()
        wait_for(lambda: queued.state == CANCELLED)
        executor.release.set()  # let the in-flight job finish and workers exit
        stopper.join(timeout=10.0)
        assert not stopper.is_alive()
        assert running.terminal
        assert queued.state == CANCELLED


class TestBackPressure:
    def test_queue_full_raises_429_payload(self, tiny_spec, tiny_result, blocking_executor_cls):
        executor = blocking_executor_cls(tiny_result)
        with ServiceDaemon(workers=1, max_queue_depth=2, executor=executor) as daemon:
            daemon.submit(tiny_spec)
            assert executor.started.wait(timeout=10.0)  # occupies the worker
            daemon.submit(tiny_spec.with_(nx=3))
            daemon.submit(tiny_spec.with_(nx=4))
            with pytest.raises(QueueFullError) as excinfo:
                daemon.submit(tiny_spec.with_(nx=5))
            assert excinfo.value.depth == 2 and excinfo.value.limit == 2
            executor.release.set()

    def test_submit_after_shutdown_rejected(self, tiny_spec):
        daemon = ServiceDaemon(workers=1).start()
        daemon.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            daemon.submit(tiny_spec)

    def test_max_retained_prunes_oldest_terminal(self, tiny_spec, tmp_path):
        with ServiceDaemon(
            store=tmp_path, backend="serial", workers=1, max_retained=2
        ) as daemon:
            ids = []
            for nx in (2, 3, 4):
                job = daemon.submit(tiny_spec.with_(nx=nx))
                daemon.wait(job.id, timeout=60.0)
                ids.append(job.id)
            retained = [job.id for job in daemon.jobs()]
        assert len(retained) == 2
        assert ids[0] not in retained and ids[-1] in retained


class TestStats:
    def test_stats_shape(self, tiny_spec, tmp_path):
        with ServiceDaemon(store=tmp_path, backend="serial", workers=3) as daemon:
            daemon.wait(daemon.submit(tiny_spec).id, timeout=60.0)
            daemon.wait(daemon.submit(tiny_spec).id, timeout=60.0)
            stats = daemon.stats()
        assert stats["backend"] == "serial" and stats["workers"] == 3
        assert stats["queue_depth"] == 0
        assert stats["jobs"][DONE] == 2
        assert stats["submitted"] == 2
        assert stats["cache_hits"] == 1
        assert stats["cache_hit_ratio"] == pytest.approx(0.5)
        assert stats["store"]["records"] == 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ServiceDaemon(workers=0)
        with pytest.raises(ValueError, match="max_queue_depth"):
            ServiceDaemon(max_queue_depth=0)
        with pytest.raises(ValueError, match="max_retained"):
            ServiceDaemon(max_retained=0)
