"""The HTTP gateway and client: the wire contract end to end."""

import json
import threading

import pytest

from repro.service import (
    DONE,
    ServiceClient,
    ServiceDaemon,
    ServiceError,
    make_server,
)

DECK = "nx=2 ny=2 nz=2 ng=2 nang=1 iitm=1 oitm=1"


@pytest.fixture()
def client(gateway):
    server, _daemon = gateway
    return ServiceClient(port=server.port)


class TestEndpoints:
    def test_healthz(self, client):
        assert client.healthz() == {"status": "ok"}

    def test_submit_deck_roundtrip_and_dedup(self, client, gateway):
        _server, daemon = gateway
        first = client.wait(client.submit(deck=DECK)["id"], timeout=60.0)
        second = client.wait(client.submit(deck=DECK)["id"], timeout=60.0)
        assert first["state"] == DONE and not first["cache_hit"]
        assert second["state"] == DONE and second["cache_hit"]
        # The dedup acceptance criterion, over the wire: one stored record,
        # two done jobs, bit-identical summaries.
        assert second["result_summary"] == first["result_summary"]
        assert len(daemon.store) == 1
        stats = client.stats()
        assert stats["executed"] == 1 and stats["cache_hits"] == 1
        assert stats["store"]["records"] == 1

    def test_submit_spec_json(self, client, tiny_spec):
        job = client.submit(spec=tiny_spec.to_dict(), run_options={"num_threads": 1})
        done = client.wait(job["id"], timeout=60.0)
        assert done["state"] == DONE
        assert done["result_summary"]["mean_flux"] > 0

    def test_jobs_listing_and_location_header(self, client):
        job = client.submit(deck=DECK)
        listed = client.jobs()
        assert [j["id"] for j in listed] == [job["id"]]
        assert client.job(job["id"])["key"] == job["key"]

    def test_progress_stream_ends_terminal(self, client):
        job = client.submit(deck=DECK)
        lines = list(client.progress(job["id"], interval=0.05, timeout=60.0))
        assert lines, "progress stream yielded nothing"
        last = lines[-1]
        assert last["state"] == DONE
        assert "result_summary" in last and last["error"] is None
        # Telemetry snapshots ride along for in-process backends.
        assert last["telemetry"] is not None

    def test_delete_cancels(self, client):
        job = client.submit(deck=DECK)
        cancelled = client.cancel(job["id"])
        assert cancelled["state"] in ("cancelled", "running", "done")
        final = client.wait(job["id"], timeout=60.0)
        assert final["state"] in ("cancelled", "done")


class TestRequestErrors:
    def test_unknown_deck_key_structured_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit(deck="bogus=1")
        err = excinfo.value
        assert err.status == 400
        assert err.payload["key"] == "bogus"
        assert err.payload["section"] == "problem"
        assert "nx" in err.payload["valid_keys"]
        assert "unknown input deck key" in err.payload["error"]

    def test_bad_deck_value_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit(deck="nx=banana")
        assert excinfo.value.status == 400

    def test_bad_spec_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit(spec={"nx": "not-a-grid"})
        assert excinfo.value.status == 400
        assert "invalid problem spec" in excinfo.value.payload["error"]

    def test_deck_and_spec_both_or_neither_400(self, client, tiny_spec):
        with pytest.raises(ServiceError) as excinfo:
            client.submit()
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.submit(deck=DECK, spec=tiny_spec.to_dict())
        assert excinfo.value.status == 400

    def test_bad_run_options_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit(deck=DECK, run_options={"bogus": 1})
        assert excinfo.value.status == 400
        assert "unknown run option" in excinfo.value.payload["error"]

    def test_unknown_job_404(self, client):
        for probe in (client.job, client.cancel):
            with pytest.raises(ServiceError) as excinfo:
                probe(999)
            assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            list(client.progress(999))
        assert excinfo.value.status == 404

    def test_unknown_path_404(self, client, gateway):
        server, _daemon = gateway
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            conn.request("GET", "/nope")
            assert conn.getresponse().status == 404
        finally:
            conn.close()

    def test_non_json_body_400(self, gateway):
        server, _daemon = gateway
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            conn.request(
                "POST", "/jobs", body="not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
            assert "not valid JSON" in json.loads(response.read())["error"]
        finally:
            conn.close()


class TestGuards:
    def test_oversized_body_413(self, tmp_path):
        daemon = ServiceDaemon(backend="serial", workers=1)
        daemon.start()
        server = make_server(daemon, port=0, max_body_bytes=256)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(port=server.port)
            with pytest.raises(ServiceError) as excinfo:
                client.submit(deck="x" * 2048)
            assert excinfo.value.status == 413
            assert excinfo.value.payload["limit"] == 256
            # A normal-sized request still goes through afterwards.
            assert client.healthz() == {"status": "ok"}
        finally:
            server.shutdown()
            server.server_close()
            daemon.shutdown()

    def test_queue_full_429(self, tiny_spec, tiny_result, blocking_executor_cls):
        executor = blocking_executor_cls(tiny_result)
        daemon = ServiceDaemon(workers=1, max_queue_depth=1, executor=executor)
        daemon.start()
        server = make_server(daemon, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(port=server.port)
            client.submit(spec=tiny_spec.to_dict())
            assert executor.started.wait(timeout=10.0)  # worker occupied
            client.submit(spec=tiny_spec.with_(nx=3).to_dict())  # fills the queue
            with pytest.raises(ServiceError) as excinfo:
                client.submit(spec=tiny_spec.with_(nx=4).to_dict())
            assert excinfo.value.status == 429
            assert excinfo.value.payload["depth"] == 1
            assert excinfo.value.payload["limit"] == 1
            executor.release.set()
        finally:
            executor.release.set()
            server.shutdown()
            server.server_close()
            daemon.shutdown()


class TestProcessBackend:
    def test_end_to_end_with_process_backend(self, tiny_spec, tmp_path):
        """The acceptance path: real solves through worker processes."""
        daemon = ServiceDaemon(store=tmp_path, backend="process", workers=2)
        daemon.start()
        server = make_server(daemon, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(port=server.port)
            first = client.wait(client.submit(spec=tiny_spec.to_dict())["id"], timeout=120.0)
            second = client.wait(client.submit(spec=tiny_spec.to_dict())["id"], timeout=120.0)
            assert first["state"] == DONE and second["state"] == DONE
            assert second["cache_hit"]
            assert second["result_summary"] == first["result_summary"]
            assert len(daemon.store) == 1
        finally:
            server.shutdown()
            server.server_close()
            daemon.shutdown()
