"""Unit tests for the SNAP diamond-difference finite-difference baseline."""

import numpy as np
import pytest

from repro.baseline.snap_fd import SnapDiamondDifferenceSolver
from repro.materials.library import pure_absorber, snap_option1_materials


class TestDiamondDifference:
    def test_result_shapes(self):
        solver = SnapDiamondDifferenceSolver(
            3, 4, 5, num_groups=2, angles_per_octant=1, num_inners=2
        )
        result = solver.solve()
        assert result.scalar_flux.shape == (3, 4, 5, 2)
        assert result.leakage.shape == (2,)
        assert len(result.inner_errors) == 2

    def test_symmetry_of_symmetric_problem(self):
        solver = SnapDiamondDifferenceSolver(
            4, 4, 4, num_groups=1, angles_per_octant=2, num_inners=3
        )
        flux = solver.solve().scalar_flux[..., 0]
        # The problem is symmetric under reflection through the domain centre.
        assert np.allclose(flux, flux[::-1, :, :], atol=1e-12)
        assert np.allclose(flux, flux[:, ::-1, :], atol=1e-12)
        assert np.allclose(flux, flux[:, :, ::-1], atol=1e-12)

    def test_particle_balance_pure_absorber(self):
        xs = pure_absorber(1, sigma_t=1.0)
        solver = SnapDiamondDifferenceSolver(
            6, 6, 6, cross_sections=xs, angles_per_octant=4, num_inners=1
        )
        result = solver.solve()
        assert solver.particle_balance_residual(result) < 1e-10

    def test_particle_balance_with_scattering_converged(self):
        xs = snap_option1_materials(2, scattering_ratio=0.4)
        solver = SnapDiamondDifferenceSolver(
            4, 4, 4, cross_sections=xs, angles_per_octant=2,
            num_inners=100, num_outers=30, inner_tolerance=1e-10,
        )
        result = solver.solve()
        # Group-summed balance closes once the scattering source is converged.
        assert solver.particle_balance_residual(result) < 1e-6

    def test_pure_absorber_thick_limit(self):
        # Interior cells of an optically thick absorber approach the
        # infinite-medium value q / sigma_t; diamond difference carries an
        # O(10%) discretisation error in this regime (it is only second-order
        # accurate and thick cells stress it), hence the loose tolerance.
        sigma = 100.0
        xs = pure_absorber(1, sigma_t=sigma)
        solver = SnapDiamondDifferenceSolver(
            5, 5, 5, cross_sections=xs, angles_per_octant=2, num_inners=1
        )
        flux = solver.solve().scalar_flux[2, 2, 2, 0]
        assert flux == pytest.approx(1.0 / sigma, rel=0.15)

    def test_flux_increases_with_scattering(self):
        absorber = SnapDiamondDifferenceSolver(
            4, 4, 4, cross_sections=pure_absorber(1), angles_per_octant=2,
            num_inners=20, inner_tolerance=1e-10,
        ).solve()
        scatterer = SnapDiamondDifferenceSolver(
            4, 4, 4, cross_sections=snap_option1_materials(1, 0.8), angles_per_octant=2,
            num_inners=80, inner_tolerance=1e-10,
        ).solve()
        assert scatterer.scalar_flux.mean() > absorber.scalar_flux.mean()

    def test_negative_flux_fixup_counts(self):
        # An incident beam entering an optically thick absorber drives the
        # diamond relations negative; the fixup clips them and reports how
        # many updates were touched.
        xs = pure_absorber(1, sigma_t=50.0)
        kwargs = dict(
            cross_sections=xs, angles_per_octant=1, num_inners=1,
            source_strength=0.0, incident_flux=1.0,
        )
        plain = SnapDiamondDifferenceSolver(4, 4, 4, **kwargs).solve()
        fixed = SnapDiamondDifferenceSolver(
            4, 4, 4, negative_flux_fixup=True, **kwargs
        ).solve()
        assert plain.num_negative_fixups == 0
        assert fixed.num_negative_fixups > 0
        assert np.all(fixed.scalar_flux >= 0.0)

    def test_incident_beam_attenuation(self):
        # With no interior source and an incident boundary flux the cell flux
        # decays monotonically into the absorber along the beam direction.
        xs = pure_absorber(1, sigma_t=2.0)
        result = SnapDiamondDifferenceSolver(
            8, 8, 8, cross_sections=xs, angles_per_octant=2, num_inners=1,
            source_strength=0.0, incident_flux=1.0,
        ).solve()
        line = result.scalar_flux[:, 4, 4, 0]
        half = len(line) // 2
        assert np.all(np.diff(line[:half]) < 0.0)

    def test_memory_footprint_per_cell(self):
        solver = SnapDiamondDifferenceSolver(2, 2, 2, num_groups=1, angles_per_octant=1)
        assert solver.solve().memory_footprint_per_cell() == 8

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            SnapDiamondDifferenceSolver(0, 1, 1)
