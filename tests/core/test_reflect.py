"""Reflective boundaries: mirror tables and the infinite-medium limit."""

import numpy as np
import pytest

import repro
from repro.angular import snap_dummy_quadrature
from repro.config import BoundaryCondition
from repro.core.reflect import (
    ReflectiveBoundary,
    mirror_angle_table,
    mirror_node_permutations,
)
from repro.core.sweep import BoundaryValues
from repro.fem.lagrange import LagrangeHexBasis
from repro.materials import snap_option1_materials

REFLECTED = repro.ProblemSpec(
    nx=2, ny=2, nz=2,
    max_twist=0.0,
    angles_per_octant=2,
    num_groups=2,
    num_inners=40,
    num_outers=10,
    inner_tolerance=1e-13,
    outer_tolerance=1e-12,
    boundary=BoundaryCondition(kind="reflective"),
)


class TestMirrorTables:
    def test_angle_table_negates_exactly_one_axis(self):
        quadrature = snap_dummy_quadrature(3)
        table = mirror_angle_table(quadrature)
        for axis in range(3):
            mirrored = quadrature.directions[table[axis]]
            expected = quadrature.directions.copy()
            expected[:, axis] = -expected[:, axis]
            np.testing.assert_allclose(mirrored, expected)

    def test_angle_table_is_an_involution(self):
        table = mirror_angle_table(snap_dummy_quadrature(2))
        identity = np.arange(table.shape[1])
        for axis in range(3):
            np.testing.assert_array_equal(table[axis][table[axis]], identity)

    @pytest.mark.parametrize("order", [1, 2])
    def test_node_permutation_flips_the_tensor_index(self, order):
        basis = LagrangeHexBasis(order)
        perm = mirror_node_permutations(basis)
        idx = basis.node_indices
        for axis in range(3):
            mirrored = idx[perm[axis]]
            expected = idx.copy()
            expected[:, axis] = order - expected[:, axis]
            np.testing.assert_array_equal(mirrored, expected)
            # Flipping twice is the identity.
            np.testing.assert_array_equal(
                perm[axis][perm[axis]], np.arange(basis.num_nodes)
            )

    def test_update_mirrors_the_angle_and_the_nodes(self):
        quadrature = snap_dummy_quadrature(1)
        basis = LagrangeHexBasis(1)
        boundary = ReflectiveBoundary(quadrature, basis)
        trace = np.arange(8, dtype=float)[None, :]  # (G=1, N=8), distinct nodes
        # Face 0 has normal axis x: the ghost must appear at the x-mirrored
        # ordinate with the nodal vector flipped along x.
        values = boundary.update(BoundaryValues(), {(0, 0, 3): trace})
        (key, stored), = values.values.items()
        cell, face, angle = key
        assert (cell, face) == (0, 0)
        assert angle == int(boundary.mirror_angle[0, 3])
        np.testing.assert_array_equal(stored, trace[:, boundary.node_perm[0]])


@pytest.fixture(scope="module")
def reflected_run():
    return repro.run(REFLECTED)


class TestInfiniteMediumLimit:
    def test_reflected_fixed_source_run_matches_the_analytic_flux(self, reflected_run):
        """All-reflective faces + uniform data = an infinite medium: the flux
        must converge to (diag(sigma_t) - sigma_s^T)^-1 q, spatially flat."""
        material = snap_option1_materials(2, REFLECTED.scattering_ratio)
        expected = material.infinite_medium_flux(np.ones(2))
        for g in range(2):
            np.testing.assert_allclose(
                reflected_run.scalar_flux[:, g, :], expected[g], rtol=1e-9
            )

    def test_reflective_faces_leak_nothing(self, reflected_run):
        np.testing.assert_array_equal(reflected_run.leakage, np.zeros(2))

    def test_balance_closes_without_leakage(self, reflected_run):
        balance = reflected_run.balance
        assert balance.relative_residual() < 1e-9
        np.testing.assert_array_equal(balance.leakage, np.zeros(2))
