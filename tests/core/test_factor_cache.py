"""Unit tests for the budgeted factor cache (:mod:`repro.core.factor_cache`).

The cache is dict-shaped (engines index it like the plain dict it replaced)
with an opt-in LRU byte budget: inserts account entry sizes, evictions run
least-recently-used-first until the total fits, and -- crucially for the
refusal-free contract -- an entry larger than the whole budget still serves
the insert that produced it (it is evicted immediately after, so the *next*
sweep recomputes; no code path ever errors out on a tight budget).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.factor_cache import FactorCache, entry_nbytes
from repro.telemetry import Telemetry


def _entry(kilobytes: int) -> np.ndarray:
    return np.zeros(kilobytes * 128, dtype=np.float64)  # 1 KiB per 128 f64


class TestEntryNbytes:
    def test_counts_arrays_dicts_tuples_and_lists(self):
        arr = np.zeros((4, 4))
        assert entry_nbytes(arr) == arr.nbytes
        assert entry_nbytes((arr, arr)) == 2 * arr.nbytes
        assert entry_nbytes({"a": arr, "b": [arr, arr]}) == 3 * arr.nbytes

    def test_non_array_leaves_cost_nothing(self):
        assert entry_nbytes({"flag": True, "note": "x"}) == 0


class TestDictShape:
    """The executor's cache must keep behaving like the dict it replaced."""

    def test_mapping_protocol(self):
        cache = FactorCache()
        assert not cache and len(cache) == 0
        cache["a"] = _entry(1)
        cache["b"] = _entry(1)
        assert cache and len(cache) == 2
        assert "a" in cache and "c" not in cache
        assert set(cache) == {"a", "b"}
        assert set(dict(cache)) == {"a", "b"}
        assert cache.get("c") is None
        with pytest.raises(KeyError):
            cache["c"]
        cache.pop("a")
        assert "a" not in cache
        cache.clear()
        assert len(cache) == 0

    def test_unbudgeted_never_evicts(self):
        cache = FactorCache(0)
        for i in range(64):
            cache[i] = _entry(64)
        assert len(cache) == 64
        assert cache.spill_count == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            FactorCache(-1)


class TestBudget:
    def test_lru_eviction_order(self):
        cache = FactorCache(3 * 1024)
        cache["a"] = _entry(1)
        cache["b"] = _entry(1)
        cache["c"] = _entry(1)
        cache.get("a")  # refresh a: b is now least recently used
        cache["d"] = _entry(1)
        assert "b" not in cache
        assert set(cache) == {"a", "c", "d"}
        assert cache.spill_count == 1

    def test_total_bytes_tracks_contents(self):
        cache = FactorCache(10 * 1024)
        cache["a"] = _entry(2)
        cache["b"] = _entry(3)
        assert cache.total_bytes == 5 * 1024
        cache.pop("a")
        assert cache.total_bytes == 3 * 1024
        cache.clear()
        assert cache.total_bytes == 0

    def test_oversized_entry_is_served_then_spilled(self):
        # Refusal-free: the insert that built the entry keeps working; the
        # entry just never survives into the cache.
        cache = FactorCache(1024)
        big = _entry(8)
        cache["big"] = big
        assert "big" not in cache
        assert cache.total_bytes == 0
        assert cache.spill_count == 1

    def test_replacing_a_key_reaccounts_size(self):
        cache = FactorCache(8 * 1024)
        cache["a"] = _entry(2)
        cache["a"] = _entry(4)
        assert cache.total_bytes == 4 * 1024

    def test_clear_is_invalidation_not_spill(self):
        telemetry = Telemetry()
        cache = FactorCache(8 * 1024)
        cache.telemetry = telemetry
        cache["a"] = _entry(1)
        cache.clear()
        assert telemetry.counters.get("factor_cache_spills", 0) == 0

    def test_spill_telemetry(self):
        telemetry = Telemetry()
        cache = FactorCache(2 * 1024)
        cache.telemetry = telemetry
        cache["a"] = _entry(1)
        cache["b"] = _entry(1)
        cache["c"] = _entry(1)  # evicts a
        assert telemetry.counters["factor_cache_spills"] == 1
        assert telemetry.gauges["factor_cache_bytes"] == cache.total_bytes
        assert cache.total_bytes <= 2 * 1024
