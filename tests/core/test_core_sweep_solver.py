"""Tests for the sweep executor, the iteration controller and the solver facade."""

import numpy as np
import pytest

from repro.angular.quadrature import snap_dummy_quadrature
from repro.config import BoundaryCondition, ProblemSpec
from repro.core.assembly import ElementMatrices
from repro.core.iteration import IterationController
from repro.core.solver import TransportSolver
from repro.core.sweep import BoundaryValues, SweepExecutor
from repro.fem.element import HexElementFactors
from repro.fem.reference import ReferenceElement
from repro.materials.cross_sections import MaterialLibrary
from repro.materials.library import pure_absorber
from repro.materials.source_terms import uniform_source
from repro.mesh.builder import StructuredGridSpec, build_snap_mesh
from repro.sweepsched.schedule import build_sweep_schedule


def make_executor(mesh, order, quadrature, materials, boundary=None, solver="ge", **kwargs):
    ref = ReferenceElement(order)
    factors = HexElementFactors.build(mesh.cell_vertices(), ref)
    matrices = ElementMatrices.build(factors, ref)
    schedule = build_sweep_schedule(mesh, factors, quadrature)
    executor = SweepExecutor(
        mesh=mesh,
        factors=factors,
        ref=ref,
        matrices=matrices,
        schedule=schedule,
        quadrature=quadrature,
        materials=materials,
        boundary=boundary,
        solver=solver,
        **kwargs,
    )
    return executor, factors, ref


class TestSweepExecutor:
    def test_pure_absorber_infinite_medium_limit(self):
        # With reflective-like conditions unavailable, emulate the infinite
        # medium with a large optically thick domain: the interior flux of a
        # pure absorber tends to q / sigma_t.
        sigma_t = 50.0
        mesh = build_snap_mesh(StructuredGridSpec(3, 3, 3, 1.0, 1.0, 1.0))
        quadrature = snap_dummy_quadrature(2)
        materials = MaterialLibrary(materials=[pure_absorber(1, sigma_t=sigma_t)])
        executor, factors, ref = make_executor(mesh, 1, quadrature, materials)
        source = np.full((mesh.num_cells, 1, 8), 1.0)
        result = executor.sweep(source)
        centre_cell = 13
        expected = 1.0 / sigma_t
        centre_flux = result.scalar_flux[centre_cell].mean()
        assert centre_flux == pytest.approx(expected, rel=1e-2)

    def test_result_shapes_and_timings(self, small_mesh, small_quadrature, small_materials):
        executor, _, _ = make_executor(small_mesh, 1, small_quadrature, small_materials)
        source = np.ones((small_mesh.num_cells, small_materials.num_groups, 8))
        result = executor.sweep(source)
        assert result.scalar_flux.shape == (27, 3, 8)
        assert result.leakage.shape == (3,)
        assert result.timings.systems_solved == 27 * small_quadrature.num_angles * 3
        assert result.timings.assembly_seconds > 0
        assert result.timings.solve_seconds > 0

    def test_scalar_flux_positive_for_positive_source(
        self, small_mesh, small_quadrature, small_materials
    ):
        executor, _, _ = make_executor(small_mesh, 1, small_quadrature, small_materials)
        source = np.ones((27, 3, 8))
        result = executor.sweep(source)
        assert np.all(result.scalar_flux > 0)
        assert np.all(result.leakage > 0)

    def test_ge_and_lapack_agree(self, small_mesh, small_quadrature, small_materials):
        source = np.ones((27, 3, 8))
        res = {}
        for solver in ("ge", "lapack"):
            executor, _, _ = make_executor(
                small_mesh, 1, small_quadrature, small_materials, solver=solver
            )
            res[solver] = executor.sweep(source).scalar_flux
        assert np.allclose(res["ge"], res["lapack"], atol=1e-10)

    def test_threaded_bucket_processing_matches_serial(
        self, small_mesh, small_quadrature, small_materials
    ):
        source = np.ones((27, 3, 8))
        serial, _, _ = make_executor(small_mesh, 1, small_quadrature, small_materials)
        threaded, _, _ = make_executor(
            small_mesh, 1, small_quadrature, small_materials, num_threads=4
        )
        assert np.allclose(
            serial.sweep(source).scalar_flux, threaded.sweep(source).scalar_flux, atol=1e-14
        )

    def test_incident_boundary_increases_flux(self, small_mesh, small_quadrature):
        materials = MaterialLibrary(materials=[pure_absorber(1, sigma_t=1.0)])
        source = np.zeros((27, 1, 8))
        vac, _, _ = make_executor(small_mesh, 1, small_quadrature, materials)
        inc, _, _ = make_executor(
            small_mesh, 1, small_quadrature, materials,
            boundary=BoundaryCondition(kind="incident", incident_flux=1.0),
        )
        flux_vac = vac.sweep(source).scalar_flux
        flux_inc = inc.sweep(source).scalar_flux
        assert np.allclose(flux_vac, 0.0, atol=1e-14)
        assert np.all(flux_inc.mean(axis=(1, 2)) > 0)

    def test_boundary_values_used_as_lagged_inflow(self, small_mesh, small_quadrature):
        materials = MaterialLibrary(materials=[pure_absorber(1, sigma_t=1.0)])
        executor, _, _ = make_executor(
            small_mesh, 1, small_quadrature, materials,
            halo_faces=np.array([[0, 0, 1, 0]]),
        )
        source = np.zeros((27, 1, 8))
        empty = executor.sweep(source, boundary_values=BoundaryValues())
        bv = BoundaryValues()
        for angle in range(small_quadrature.num_angles):
            bv.put(0, 0, angle, np.full((1, 8), 3.0))
        lagged = executor.sweep(source, boundary_values=bv)
        assert lagged.scalar_flux.sum() > empty.scalar_flux.sum()

    def test_outgoing_halo_collected(self, small_mesh, small_quadrature, small_materials):
        halo = np.array([[26, 1, 1, 0], [26, 3, 1, 1]])
        executor, _, _ = make_executor(
            small_mesh, 1, small_quadrature, small_materials, halo_faces=halo
        )
        source = np.ones((27, 3, 8))
        result = executor.sweep(source)
        assert result.outgoing_halo
        for (cell, face, _angle), trace in result.outgoing_halo.items():
            assert (cell, face) in {(26, 1), (26, 3)}
            assert trace.shape == (3, 8)

    def test_store_angular_flux(self, small_mesh, small_quadrature, small_materials):
        executor, _, _ = make_executor(
            small_mesh, 1, small_quadrature, small_materials, store_angular_flux=True
        )
        source = np.ones((27, 3, 8))
        result = executor.sweep(source)
        assert result.angular_flux is not None
        reconstructed = result.angular_flux.scalar_flux(small_quadrature.weights)
        assert np.allclose(reconstructed, result.scalar_flux, atol=1e-12)

    def test_source_shape_validation(self, small_mesh, small_quadrature, small_materials):
        executor, _, _ = make_executor(small_mesh, 1, small_quadrature, small_materials)
        with pytest.raises(ValueError):
            executor.sweep(np.ones((27, 2, 8)))


class TestIterationController:
    def test_fixed_iteration_counts(self, small_mesh, small_quadrature, small_materials):
        executor, _, _ = make_executor(small_mesh, 1, small_quadrature, small_materials)
        fixed = uniform_source(27, 3)
        controller = IterationController(
            executor, small_materials, fixed, num_inners=4, num_outers=2
        )
        _flux, _last, history, timings = controller.run()
        assert history.total_inners == 8
        assert history.num_outers == 2
        assert not history.converged
        assert timings.systems_solved == 8 * 27 * small_quadrature.num_angles * 3

    def test_inner_tolerance_early_exit(self, small_mesh, small_quadrature, small_materials):
        executor, _, _ = make_executor(small_mesh, 1, small_quadrature, small_materials)
        fixed = uniform_source(27, 3)
        controller = IterationController(
            executor, small_materials, fixed,
            num_inners=50, num_outers=1, inner_tolerance=1e-6,
        )
        _flux, _last, history, _ = controller.run()
        assert history.total_inners < 50
        assert history.inner_errors[-1] <= 1e-6

    def test_source_mismatch_rejected(self, small_mesh, small_quadrature, small_materials):
        executor, _, _ = make_executor(small_mesh, 1, small_quadrature, small_materials)
        with pytest.raises(ValueError):
            IterationController(executor, small_materials, uniform_source(5, 3))

    def test_monotone_flux_growth_during_source_iteration(
        self, small_mesh, small_quadrature, small_materials
    ):
        # Source iteration from a zero initial guess produces a monotonically
        # non-decreasing scalar flux for a non-negative source.
        executor, _, _ = make_executor(small_mesh, 1, small_quadrature, small_materials)
        fixed = uniform_source(27, 3)
        prev_mean = -1.0
        flux = np.zeros((27, 3, 8))
        for _ in range(4):
            controller = IterationController(
                executor, small_materials, fixed, num_inners=1, num_outers=1
            )
            flux, _last, _hist, _t = controller.run(initial_flux=flux)
            mean = flux.mean()
            assert mean >= prev_mean
            prev_mean = mean


class TestTransportSolver:
    def test_converged_balance_closes(self):
        spec = ProblemSpec(
            nx=3, ny=3, nz=3, order=1, angles_per_octant=2, num_groups=2,
            max_twist=0.001, num_inners=40, num_outers=20,
            inner_tolerance=1e-9, outer_tolerance=1e-9,
        )
        result = TransportSolver(spec).solve()
        assert result.balance.relative_residual() < 1e-6
        assert result.history.converged

    def test_higher_order_elements_run(self):
        spec = ProblemSpec(
            nx=2, ny=2, nz=2, order=2, angles_per_octant=1, num_groups=2,
            num_inners=2, num_outers=1,
        )
        result = TransportSolver(spec).solve()
        assert result.scalar_flux.shape == (8, 2, 27)
        assert np.all(result.scalar_flux > 0)

    def test_solver_choice_does_not_change_answer(self):
        base = ProblemSpec(nx=2, ny=2, nz=2, order=1, angles_per_octant=1,
                           num_groups=2, num_inners=3, num_outers=1)
        ge = TransportSolver(base.with_(solver="ge")).solve()
        la = TransportSolver(base.with_(solver="lapack")).solve()
        assert np.allclose(ge.scalar_flux, la.scalar_flux, atol=1e-10)

    def test_memory_report_ratio(self):
        spec = ProblemSpec(nx=2, ny=2, nz=2, order=1, angles_per_octant=1,
                           num_groups=2, num_inners=1)
        solver = TransportSolver(spec)
        report = solver.memory_report()
        assert report["fem_to_fd_ratio"] == 8.0
        assert report["angular_flux_bytes"] == 8 * report["fd_equivalent_angular_flux_bytes"]

    def test_summary_keys(self):
        spec = ProblemSpec(nx=2, ny=2, nz=2, order=1, angles_per_octant=1,
                           num_groups=2, num_inners=1)
        summary = TransportSolver(spec).solve().summary()
        for key in ("cells", "groups", "solve_fraction", "balance_residual", "total_inners"):
            assert key in summary

    def test_twist_changes_solution_slightly(self):
        base = ProblemSpec(nx=3, ny=3, nz=3, order=1, angles_per_octant=1,
                           num_groups=1, num_inners=3, num_outers=1)
        untwisted = TransportSolver(base.with_(max_twist=0.0)).solve()
        twisted = TransportSolver(base.with_(max_twist=0.01)).solve()
        diff = np.abs(untwisted.scalar_flux - twisted.scalar_flux).max()
        assert 0 < diff < 0.05 * untwisted.scalar_flux.max()
