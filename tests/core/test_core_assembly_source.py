"""Unit tests for the local assembly, sources, convergence and balance pieces."""

import numpy as np
import pytest

from repro.core.assembly import AssemblyTimings
from repro.core.balance import particle_balance
from repro.core.convergence import is_converged, max_relative_difference, relative_change
from repro.core.flux import FluxMoments, AngularFluxBank, node_integration_weights
from repro.core.source import build_outer_source, build_total_source, scattering_source
from repro.materials.library import snap_option1_library
from repro.materials.source_terms import uniform_source
from repro.sweepsched.graph import classify_faces


class TestAssemblyTimings:
    def test_fractions(self):
        t = AssemblyTimings(assembly_seconds=3.0, solve_seconds=1.0, systems_solved=10)
        assert t.total_seconds == pytest.approx(4.0)
        assert t.solve_fraction == pytest.approx(0.25)
        assert AssemblyTimings().solve_fraction == 0.0

    def test_merge(self):
        a = AssemblyTimings(1.0, 2.0, 5)
        b = AssemblyTimings(0.5, 0.5, 3)
        m = a.merge(b)
        assert m.assembly_seconds == 1.5 and m.solve_seconds == 2.5 and m.systems_solved == 8


class TestElementMatrices:
    def test_mass_matrix_row_sums_equal_volume(self, small_matrices, small_factors):
        # sum_ij M_ij = int (sum_i phi_i)(sum_j phi_j) dV = cell volume.
        totals = small_matrices.mass.sum(axis=(1, 2))
        assert np.allclose(totals, small_factors.volumes, rtol=1e-12)

    def test_mass_matrices_spd(self, small_matrices):
        for m in small_matrices.mass:
            assert np.allclose(m, m.T, atol=1e-13)
            assert np.all(np.linalg.eigvalsh(m) > 0)

    def test_node_int_weights_sum_to_volume(self, small_matrices, small_factors):
        assert np.allclose(small_matrices.node_int_weights.sum(axis=1), small_factors.volumes)

    def test_gradient_matrices_constant_function(self, small_matrices):
        # G[d] applied to the constant vector integrates d(phi_i)/dx_d over the
        # cell, and summing over i gives zero (divergence of a constant).
        ones = np.ones(small_matrices.num_nodes)
        for e in range(small_matrices.num_elements):
            for d in range(3):
                assert small_matrices.gradient[e, d] @ ones @ ones == pytest.approx(0.0, abs=1e-10)

    def test_face_matrices_sum_to_signed_area(self, small_matrices, small_factors):
        # sum_ij F[f,d]_ij = oint_f n_d dS (the signed face-area vector).
        for e in range(small_matrices.num_elements):
            for f in range(6):
                expected = np.einsum(
                    "q,qd->d", small_factors.face_weights[e, f], small_factors.face_normals[e, f]
                )
                total = small_matrices.face_own[e, f].sum(axis=(1, 2))
                assert np.allclose(total, expected, atol=1e-12)

    def test_divergence_theorem(self, small_matrices):
        # For any direction Omega: G.Omega + G.Omega^T = sum_f F_own[f].Omega
        # (integration by parts with sum_i phi_i = 1 gives the weak identity
        # int phi_j Omega.grad(phi_i) + int phi_i Omega.grad(phi_j)
        #   = oint (Omega.n) phi_i phi_j).
        omega = np.array([0.3, -0.5, 0.81])
        for e in range(small_matrices.num_elements):
            lhs = np.einsum("d,dij->ij", omega, small_matrices.gradient[e])
            lhs = lhs + lhs.T
            rhs = np.einsum("d,fdij->ij", omega, small_matrices.face_own[e])
            assert np.allclose(lhs, rhs, atol=1e-10)

    def test_streaming_matrix_uses_outflow_faces_only(
        self, small_matrices, small_factors
    ):
        omega = np.array([1.0, 1.0, 1.0]) / np.sqrt(3.0)
        cls = classify_faces(small_factors, omega)
        a = small_matrices.streaming_matrix(0, omega, cls.orientation[0])
        # Adding sigma M must produce a non-singular (invertible) system.
        sys = a + 1.0 * small_matrices.mass[0]
        assert np.linalg.cond(sys) < 1e8

    def test_assemble_systems_shapes(self, small_matrices, small_factors):
        omega = np.array([0.6, 0.64, 0.48])
        cls = classify_faces(small_factors, omega)
        num_groups = 3
        sigma_t = np.array([1.0, 1.1, 1.2])
        source = np.ones((num_groups, small_matrices.num_nodes))
        a, b = small_matrices.assemble_systems(0, omega, cls.orientation[0], sigma_t, source, {})
        assert a.shape == (num_groups, 8, 8)
        assert b.shape == (num_groups, 8)
        # Group dependence enters only through sigma_t * M.
        assert np.allclose(a[1] - a[0], 0.1 * small_matrices.mass[0], atol=1e-12)

    def test_upwind_trace_moves_rhs(self, small_matrices, small_factors):
        omega = np.array([1.0, 1.0, 1.0]) / np.sqrt(3.0)
        cls = classify_faces(small_factors, omega)
        # Cell 13 (centre of the 3^3 mesh) has interior inflow faces 0, 2, 4.
        sigma_t = np.ones(1)
        source = np.zeros((1, 8))
        trace = {0: np.full((1, 8), 2.0)}
        _a0, b0 = small_matrices.assemble_systems(
            13, omega, cls.orientation[13], sigma_t, source, {}
        )
        _a1, b1 = small_matrices.assemble_systems(
            13, omega, cls.orientation[13], sigma_t, source, trace
        )
        assert np.allclose(b0, 0.0)
        # Incoming flux adds a positive contribution (Omega.n < 0 on inflow).
        assert b1.sum() > 0.0

    def test_memory_footprint(self, small_matrices):
        assert small_matrices.memory_footprint_bytes() > 0


class TestSources:
    def test_scattering_source_selectors(self):
        phi = np.ones((2, 3, 4))
        sigma_s = np.tile(np.array([[0.2, 0.1, 0.0], [0.0, 0.3, 0.1], [0.0, 0.0, 0.4]]), (2, 1, 1))
        full = scattering_source(phi, sigma_s)
        within = scattering_source(phi, sigma_s, within_group_only=True)
        cross = scattering_source(phi, sigma_s, exclude_within_group=True)
        assert np.allclose(full, within + cross)
        assert np.allclose(within[0, 0], 0.2)
        assert np.allclose(cross[0, 1], 0.1)
        with pytest.raises(ValueError):
            scattering_source(phi, sigma_s, within_group_only=True, exclude_within_group=True)

    def test_outer_and_total_source(self, small_mesh):
        num_groups = 3
        materials = snap_option1_library(num_groups).for_cells(small_mesh.num_cells)
        fixed = uniform_source(small_mesh.num_cells, num_groups, strength=2.0)
        phi = np.zeros((small_mesh.num_cells, num_groups, 8))
        outer = build_outer_source(fixed, materials, phi, num_nodes=8)
        # With zero flux the outer source is just the fixed source.
        assert np.allclose(outer, 2.0)
        total = build_total_source(outer, materials, phi)
        assert np.allclose(total, outer)
        # A non-zero flux adds in-group scattering to the total source.
        phi[:] = 1.0
        total = build_total_source(outer, materials, phi)
        assert np.all(total >= outer)


class TestConvergence:
    def test_max_relative_difference(self):
        a = np.array([1.0, 2.0, 4.0])
        b = np.array([1.0, 1.0, 4.0])
        assert max_relative_difference(a, b) == pytest.approx(0.5)
        assert max_relative_difference(a, a) == 0.0
        with pytest.raises(ValueError):
            max_relative_difference(a, b[:2])

    def test_relative_change(self):
        a = np.ones(4)
        assert relative_change(a, a) == 0.0
        assert relative_change(a, np.zeros(4)) == pytest.approx(1.0)

    def test_is_converged_disabled_by_nonpositive_tolerance(self):
        a, b = np.ones(3), np.ones(3)
        assert not is_converged(a, b, 0.0)
        assert is_converged(a, b, 1e-12)


class TestFluxContainers:
    def test_flux_moments(self, small_factors, ref_order1):
        flux = FluxMoments.zeros(27, 2, 8)
        assert flux.shape == (27, 2, 8)
        weights = node_integration_weights(small_factors, ref_order1)
        flux.scalar[:] = 2.0
        avg = flux.cell_average(small_factors.volumes, weights)
        assert np.allclose(avg, 2.0)
        assert np.allclose(flux.group_integrals(weights), 2.0 * small_factors.volumes.sum())
        copy = flux.copy()
        copy.scalar[:] = 0.0
        assert np.all(flux.scalar == 2.0)

    def test_angular_bank(self):
        bank = AngularFluxBank.zeros(4, 8, 2, 8)
        bank.psi[:] = 1.0
        weights = np.full(8, 1.0 / 8.0)
        assert np.allclose(bank.scalar_flux(weights), 1.0)
        assert bank.fd_footprint_ratio() == 8.0
        assert bank.memory_footprint_bytes() == 4 * 8 * 2 * 8 * 8


class TestBalanceReport:
    def test_pure_absorber_closed_box_balance(self, small_mesh, small_factors, ref_order1):
        # Construct a fake converged state where absorption exactly equals the
        # source and leakage is zero, and check the report arithmetic.
        from repro.materials.cross_sections import MaterialLibrary
        from repro.materials.library import pure_absorber

        num_groups = 2
        materials = MaterialLibrary(materials=[pure_absorber(num_groups, sigma_t=2.0)]).for_cells(
            small_mesh.num_cells
        )
        fixed = uniform_source(small_mesh.num_cells, num_groups, strength=1.0)
        weights = node_integration_weights(small_factors, ref_order1)
        flux = np.full((small_mesh.num_cells, num_groups, 8), 0.5)  # q / sigma_t
        report = particle_balance(
            scalar_flux=flux,
            node_weights=weights,
            materials=materials,
            fixed=fixed,
            leakage=np.zeros(num_groups),
            volumes=small_factors.volumes,
        )
        assert report.relative_residual() < 1e-12
        assert np.allclose(report.scattering_in, 0.0)
        assert np.allclose(report.residual, 0.0, atol=1e-12)
