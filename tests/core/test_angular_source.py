"""Tests for the per-ordinate ``angular_source`` hook (the MMS substrate).

The hook is combined with the isotropic source *by the executor*, below the
engine layer, so every engine and parallel mode must treat it identically.
"""

import numpy as np
import pytest

import repro
from repro.config import ProblemSpec
from repro.core.solver import TransportSolver

SPEC = ProblemSpec(
    nx=3, ny=3, nz=3, angles_per_octant=2, num_groups=2, max_twist=0.001, num_inners=2
)


def _source(spec: ProblemSpec, seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    shape = (
        8 * spec.angles_per_octant,
        spec.num_cells,
        spec.num_groups,
        spec.nodes_per_element,
    )
    return rng.uniform(0.0, 1.0, size=shape)


class TestAngularSourcePlumbing:
    def test_zero_angular_source_is_bitwise_inert(self):
        plain = repro.run(SPEC).scalar_flux
        zeroed = repro.run(SPEC, angular_source=np.zeros_like(_source(SPEC))).scalar_flux
        np.testing.assert_array_equal(plain, zeroed)

    def test_nonzero_angular_source_changes_the_answer(self):
        assert not np.array_equal(
            repro.run(SPEC).scalar_flux,
            repro.run(SPEC, angular_source=_source(SPEC)).scalar_flux,
        )

    def test_engines_agree_on_an_angular_source_problem(self):
        source = _source(SPEC)
        fluxes = {
            engine: repro.run(SPEC.with_(engine=engine), angular_source=source).scalar_flux
            for engine in ("reference", "vectorized", "prefactorized")
        }
        np.testing.assert_allclose(
            fluxes["vectorized"], fluxes["reference"], rtol=0, atol=1e-12
        )
        np.testing.assert_array_equal(fluxes["vectorized"], fluxes["prefactorized"])

    def test_octant_parallel_is_thread_deterministic_with_angular_source(self):
        source = _source(SPEC)
        spec = SPEC.with_(octant_parallel=True, engine="vectorized")
        one = repro.run(spec, num_threads=1, angular_source=source).scalar_flux
        four = repro.run(spec, num_threads=4, angular_source=source).scalar_flux
        np.testing.assert_array_equal(one, four)
        serial = repro.run(SPEC.with_(engine="vectorized"), angular_source=source)
        np.testing.assert_allclose(serial.scalar_flux, one, rtol=0, atol=1e-12)

    def test_wrong_shape_is_rejected_with_the_expected_shape_named(self):
        ts = TransportSolver(SPEC)
        bad = np.zeros((3, SPEC.num_cells, SPEC.num_groups, SPEC.nodes_per_element))
        with pytest.raises(ValueError, match="angular_source must have shape"):
            ts.solve(angular_source=bad)

    def test_multi_rank_runs_reject_angular_source(self):
        with pytest.raises(ValueError, match="multi-rank"):
            repro.run(SPEC.with_(npex=2), angular_source=_source(SPEC))

    def test_fd_baseline_validates_the_angular_source_shape(self):
        from repro.baseline.snap_fd import SnapDiamondDifferenceSolver

        with pytest.raises(ValueError, match="angular_source must have shape"):
            SnapDiamondDifferenceSolver(
                3, 3, 3, num_groups=2, angular_source=np.zeros((8, 3, 3, 3, 1))
            )

    def test_fd_baseline_zero_angular_source_is_inert(self):
        from repro.baseline.snap_fd import SnapDiamondDifferenceSolver

        kwargs = dict(num_groups=2, angles_per_octant=1, num_inners=2)
        plain = SnapDiamondDifferenceSolver(3, 3, 3, **kwargs).solve()
        zeroed = SnapDiamondDifferenceSolver(
            3, 3, 3, **kwargs, angular_source=np.zeros((8, 3, 3, 3, 2))
        ).solve()
        np.testing.assert_array_equal(plain.scalar_flux, zeroed.scalar_flux)
