"""Driver verification suite: analytic k-infinity and decay-order benchmarks."""

import pytest

from repro.analysis.reporting import format_verification_report
from repro.verify.drivers import (
    K_INFINITY_TOLERANCE,
    DecayOrderCheck,
    DriverReport,
    KInfinityCheck,
    decay_order_check,
    k_infinity_check,
    run_driver_checks,
)
from repro.verify.suite import SUITES, VerificationReport


def _passing_k(**overrides):
    fields = dict(k_computed=0.6, k_analytic=0.6, power_iterations=8,
                  converged=True)
    fields.update(overrides)
    return KInfinityCheck(**fields)


def _passing_decay(**overrides):
    fields = dict(
        t_end=0.8, dts=(0.4, 0.2), errors=(0.2, 0.1),
        pairwise_orders=(1.0,), observed_order=1.0,
    )
    fields.update(overrides)
    return DecayOrderCheck(**fields)


class TestCheckLogic:
    def test_k_check_passes_inside_the_band(self):
        check = _passing_k(k_computed=0.6 + 0.5 * K_INFINITY_TOLERANCE)
        assert check.passed
        assert check.error == pytest.approx(0.5 * K_INFINITY_TOLERANCE)

    def test_k_check_fails_outside_the_band_or_unconverged(self):
        assert not _passing_k(k_computed=0.7).passed
        assert not _passing_k(converged=False).passed

    def test_decay_check_fails_off_order(self):
        assert _passing_decay().passed
        assert not _passing_decay(observed_order=1.9).passed

    def test_report_requires_both_benchmarks_to_pass(self):
        assert DriverReport(_passing_k(), _passing_decay()).passed
        assert not DriverReport(_passing_k(converged=False), _passing_decay()).passed
        assert not DriverReport(
            _passing_k(), _passing_decay(observed_order=0.0)
        ).passed

    def test_to_dict_is_json_ready(self):
        data = DriverReport(_passing_k(), _passing_decay()).to_dict()
        assert data["passed"] is True
        assert data["k_infinity"]["error"] == 0.0
        assert data["decay"]["dts"] == [0.4, 0.2]

    def test_decay_check_rejects_bad_dt_sequences(self):
        with pytest.raises(ValueError, match="two step sizes"):
            decay_order_check(dts=(0.4,))
        with pytest.raises(ValueError, match="decreasing"):
            decay_order_check(dts=(0.2, 0.4))
        with pytest.raises(ValueError, match="decreasing"):
            decay_order_check(dts=(0.4, 0.4))


class TestSuiteIntegration:
    def test_drivers_is_a_registered_suite(self):
        assert "drivers" in SUITES

    def test_verification_report_gates_on_driver_failures(self):
        failing = DriverReport(_passing_k(converged=False), _passing_decay())
        assert not VerificationReport(drivers=failing).passed
        assert VerificationReport(
            drivers=DriverReport(_passing_k(), _passing_decay())
        ).passed
        assert VerificationReport().passed  # drivers suite not requested

    def test_report_to_dict_carries_the_driver_payload(self):
        report = VerificationReport(
            drivers=DriverReport(_passing_k(), _passing_decay())
        )
        assert report.to_dict()["drivers"]["k_infinity"]["passed"] is True

    def test_formatter_renders_the_driver_table(self):
        report = VerificationReport(
            drivers=DriverReport(_passing_k(), _passing_decay(observed_order=3.0))
        )
        text = format_verification_report(report)
        assert "Driver benchmarks" in text
        assert "k_eigenvalue vs analytic k-infinity" in text
        assert "decay order" in text and "FAIL" in text
        assert "verification FAILED" in text


class TestLiveBenchmarks:
    def test_k_infinity_check_hits_the_analytic_eigenvalue(self):
        check = k_infinity_check(num_groups=1)
        assert check.passed
        assert check.k_analytic == pytest.approx(0.6)
        assert check.error <= K_INFINITY_TOLERANCE

    def test_decay_order_check_shows_first_order(self):
        check = decay_order_check(dts=(0.4, 0.2))
        assert check.passed
        assert check.errors[0] > check.errors[1]
        assert check.observed_order == pytest.approx(1.0, abs=check.tolerance)

    @pytest.mark.slow
    def test_full_driver_suite_passes(self):
        report = run_driver_checks()
        assert report.passed, report.to_dict()
