"""Tests for the cross-engine/solver/backend conformance matrix."""

import numpy as np
import pytest

from repro.config import ProblemSpec
from repro.engines import register_engine, unregister_engine
from repro.engines.vectorized import VectorizedSweepEngine
from repro.verify.conformance import canonical_spec, conformance_matrix

#: Small, quick matrix problem for the fast tier (the canonical spec with a
#: lighter angle count; the slow test runs the real thing).
FAST_SPEC = ProblemSpec(
    nx=3, ny=3, nz=3, angles_per_octant=1, num_groups=2, max_twist=0.001, num_inners=2
)


class TestConformanceMatrix:
    def test_registry_discovery_covers_every_engine_solver_combination(self):
        report = conformance_matrix(
            FAST_SPEC, backends=("serial",), thread_counts=(1,), octant_modes=(False,)
        )
        combos = {(case.engine, case.solver) for case in report.cases}
        assert {"reference", "vectorized", "prefactorized"} <= {e for e, _ in combos}
        assert {"ge", "lapack"} <= {s for _, s in combos}
        assert len(report.cases) == len(report.engines) * len(report.solvers)
        assert report.passed

    def test_batched_family_is_bitwise_identical_under_ge_only(self):
        report = conformance_matrix(
            FAST_SPEC, backends=("serial",), thread_counts=(1,), octant_modes=(False,)
        )
        family_checks = [c for c in report.checks if c.kind == "engine-family"]
        assert family_checks, "vectorized/prefactorized must form a checked family"
        # ge claims prefactorisation_exact, lapack does not: the exact class
        # is asserted for ge and never for lapack.
        assert all("/ge/" in c.group or c.group.startswith("batched/ge") for c in family_checks)
        assert all(c.passed for c in family_checks)
        digests = {(c.engine, c.solver): c.flux_digest for c in report.cases}
        assert digests[("vectorized", "ge")] == digests[("prefactorized", "ge")]

    def test_octant_parallel_and_threads_are_deterministic(self):
        report = conformance_matrix(
            FAST_SPEC,
            backends=("serial",),
            thread_counts=(1, 3),
            octant_modes=(False, True),
        )
        thread_checks = [c for c in report.checks if c.kind == "thread-determinism"]
        assert any("/octant/" in c.group for c in thread_checks)
        assert all(c.passed for c in thread_checks)
        assert report.passed

    def test_max_pairwise_deviation_is_tiny(self):
        report = conformance_matrix(
            FAST_SPEC, backends=("serial",), thread_counts=(1,), octant_modes=(False,)
        )
        assert report.max_pairwise_deviation < 1e-13

    def test_report_serialises_to_json_ready_dict(self):
        report = conformance_matrix(
            FAST_SPEC, backends=("serial",), thread_counts=(1,), octant_modes=(False,)
        )
        data = report.to_dict()
        assert data["passed"] is True
        assert data["num_cases"] == len(data["cases"])
        assert all(len(case["flux_digest"]) == 64 for case in data["cases"])
        assert {check["kind"] for check in data["bitwise_checks"]} <= {
            "backend-invariance",
            "thread-determinism",
            "engine-family",
        }

    def test_canonical_spec_exercises_the_interesting_paths(self):
        spec = canonical_spec()
        assert spec.angles_per_octant > 1  # octant reductions actually reduce
        assert spec.num_inners > 1  # factor caches are actually reused
        assert spec.num_groups > 1 and spec.max_twist > 0.0


class _SkewedEngine(VectorizedSweepEngine):
    """A deliberately non-conforming engine (perturbs the flux by ~1e-9)."""

    def sweep_angle(self, executor, angle, total_source, boundary_values, incident, timings):
        psi = super().sweep_angle(
            executor, angle, total_source, boundary_values, incident, timings
        )
        return psi * (1.0 + 1e-9)


class TestNegativeControls:
    def test_a_non_conforming_engine_fails_the_tolerance(self):
        register_engine("skewed-for-test")(_SkewedEngine())
        try:
            report = conformance_matrix(
                FAST_SPEC,
                engines=("vectorized", "skewed-for-test"),
                solvers=("ge",),
                backends=("serial",),
                thread_counts=(1,),
                octant_modes=(False,),
            )
            assert not report.passed
            assert report.max_pairwise_deviation > report.tolerance
        finally:
            unregister_engine("skewed-for-test")

    def test_a_false_bitwise_family_claim_fails_exactly(self):
        # The skewed engine inherits bitwise_family="batched" from the
        # vectorized engine but does not reproduce its bytes: the family
        # check must catch the lie even when the deviation is within any
        # reasonable tolerance.
        register_engine("skewed-for-test")(_SkewedEngine())
        try:
            report = conformance_matrix(
                FAST_SPEC,
                engines=("vectorized", "skewed-for-test"),
                solvers=("ge",),
                backends=("serial",),
                thread_counts=(1,),
                octant_modes=(False,),
                tolerance=1.0,
            )
            family_checks = [c for c in report.checks if c.kind == "engine-family"]
            assert family_checks and not any(c.passed for c in family_checks)
            assert not report.passed
        finally:
            unregister_engine("skewed-for-test")


@pytest.mark.slow
class TestFullMatrix:
    def test_every_registered_combination_conforms(self):
        report = conformance_matrix()
        # engines x solvers x octant modes x thread counts x backends
        expected = (
            len(report.engines) * len(report.solvers) * 2 * 2 * len(report.backends)
        )
        assert len(report.cases) == expected
        assert report.passed, [c.to_dict() for c in report.failed_checks]

    def test_backends_return_identical_bytes(self):
        report = conformance_matrix(
            FAST_SPEC, thread_counts=(1,), octant_modes=(False,), jobs=2
        )
        backend_checks = [c for c in report.checks if c.kind == "backend-invariance"]
        assert backend_checks and all(c.passed for c in backend_checks)

    def test_fluxes_are_actually_compared_not_just_hashed(self):
        report = conformance_matrix(
            FAST_SPEC, backends=("serial",), thread_counts=(1,), octant_modes=(False,)
        )
        means = np.array([case.mean_flux for case in report.cases])
        np.testing.assert_allclose(means, means[0], rtol=1e-12)
