"""Tests for the golden regression store."""

import json

import numpy as np
import pytest

from repro.campaign.store import ResultStore
from repro.config import ProblemSpec
from repro.verify.golden import (
    GoldenCase,
    bless_goldens,
    check_goldens,
    default_golden_cases,
    normalise_result,
)

#: One tiny case keeps the unit tests fast; the default matrix is exercised
#: by the repo-golden test and `unsnap verify`.
TINY_CASES = (
    GoldenCase(
        "tiny-vectorized",
        ProblemSpec(
            nx=3, ny=3, nz=3, angles_per_octant=1, num_groups=2, num_inners=2,
            engine="vectorized",
        ),
    ),
)


def _perturb_one_flux_value_by_one_ulp(store_dir):
    """Flip the first scalar-flux entry of the first record by a single ulp."""
    path = sorted(store_dir.glob("*.json"))[0]
    record = json.loads(path.read_text())
    flux = record["result"]["scalar_flux"]
    value = flux[0][0][0]
    flux[0][0][0] = float(np.nextafter(value, np.inf))
    assert flux[0][0][0] != value
    path.write_text(json.dumps(record) + "\n")
    return path


class TestBlessAndCheck:
    def test_blessed_store_checks_clean(self, tmp_path):
        written = bless_goldens(TINY_CASES, tmp_path / "golden")
        assert set(written) == {"tiny-vectorized"}
        report = check_goldens(TINY_CASES, tmp_path / "golden")
        assert report.passed
        assert [r.status for r in report.results] == ["match"]

    def test_missing_record_is_reported(self, tmp_path):
        report = check_goldens(TINY_CASES, tmp_path / "empty")
        assert not report.passed
        assert report.results[0].status == "missing"
        assert "--update-golden" in report.results[0].detail

    def test_one_ulp_perturbation_is_detected(self, tmp_path):
        # The negative control of the acceptance criteria: the golden suite
        # must flag a single-ulp change in one flux value.
        root = tmp_path / "golden"
        bless_goldens(TINY_CASES, root)
        _perturb_one_flux_value_by_one_ulp(root)
        report = check_goldens(TINY_CASES, root)
        assert not report.passed
        (result,) = report.results
        assert result.status == "mismatch"
        assert "scalar_flux" in result.detail
        assert result.max_deviation is not None and 0 < result.max_deviation < 1e-12

    def test_balance_drift_is_detected_even_with_identical_flux(self, tmp_path):
        # A regression in the particle-balance diagnostics must not hide
        # behind an unchanged flux.
        root = tmp_path / "golden"
        bless_goldens(TINY_CASES, root)
        path = sorted(root.glob("*.json"))[0]
        record = json.loads(path.read_text())
        record["result"]["balance"]["absorption"][0] *= 1.0 + 1e-9
        path.write_text(json.dumps(record) + "\n")
        report = check_goldens(TINY_CASES, root)
        assert not report.passed
        assert "balance.absorption" in report.results[0].detail

    def test_reblessing_restores_a_perturbed_store(self, tmp_path):
        root = tmp_path / "golden"
        bless_goldens(TINY_CASES, root)
        _perturb_one_flux_value_by_one_ulp(root)
        assert not check_goldens(TINY_CASES, root).passed
        bless_goldens(TINY_CASES, root)
        assert check_goldens(TINY_CASES, root).passed

    def test_blessing_is_byte_deterministic(self, tmp_path):
        root = tmp_path / "golden"
        first = bless_goldens(TINY_CASES, root)
        bytes_before = {name: path.read_bytes() for name, path in first.items()}
        second = bless_goldens(TINY_CASES, root)
        assert first == second
        for name, path in second.items():
            assert path.read_bytes() == bytes_before[name]

    def test_stale_records_fail_and_blessing_prunes_them(self, tmp_path):
        root = tmp_path / "golden"
        bless_goldens(TINY_CASES, root)
        stale_case = GoldenCase("stale", TINY_CASES[0].spec.with_(nx=4))
        bless_goldens((stale_case,) + TINY_CASES, root)
        report = check_goldens(TINY_CASES, root)
        assert not report.passed and len(report.stale_keys) == 1
        bless_goldens(TINY_CASES, root)  # prunes the record of the dropped case
        assert check_goldens(TINY_CASES, root).passed

    def test_corrupt_record_fails_the_case_without_crashing_the_suite(self, tmp_path):
        root = tmp_path / "golden"
        bless_goldens(TINY_CASES, root)
        path = sorted(root.glob("*.json"))[0]
        path.write_text('{"broken')
        report = check_goldens(TINY_CASES, root)
        assert not report.passed
        (result,) = report.results
        assert result.status == "corrupt"
        assert "not valid JSON" in result.detail

    def test_blessing_never_prunes_a_foreign_result_store(self, tmp_path):
        # Pointing --golden-dir at an ordinary campaign store must not
        # destroy its records: without the marker, blessing only adds.
        import repro

        store = ResultStore(tmp_path / "campaign")
        foreign_spec = TINY_CASES[0].spec.with_(nx=2)
        store.put(foreign_spec, repro.run(foreign_spec))
        bless_goldens(TINY_CASES, tmp_path / "campaign")
        assert store.get(foreign_spec) is not None  # survived
        report = check_goldens(TINY_CASES, tmp_path / "campaign")
        assert not report.passed and len(report.stale_keys) == 1  # flagged, not deleted

    def test_goldens_are_ordinary_result_store_records(self, tmp_path):
        root = tmp_path / "golden"
        bless_goldens(TINY_CASES, root)
        (record,) = ResultStore(root).results()
        spec, options, result = record
        assert spec == TINY_CASES[0].spec
        assert result.scalar_flux.shape == (27, 2, 8)
        # Wall-clock noise is normalised away; the numeric payload is intact.
        assert result.setup_seconds == 0.0 and result.timings.assembly_seconds == 0.0
        assert result.timings.systems_solved > 0


class TestNormalisation:
    def test_normalise_zeroes_exactly_the_wallclock_fields(self):
        import repro

        result = repro.run(TINY_CASES[0].spec)
        normalised = normalise_result(result)
        assert normalised.setup_seconds == 0.0
        assert normalised.solve_seconds == 0.0
        assert normalised.timings.assembly_seconds == 0.0
        assert normalised.timings.solve_seconds == 0.0
        assert normalised.timings.systems_solved == result.timings.systems_solved
        np.testing.assert_array_equal(normalised.scalar_flux, result.scalar_flux)
        assert normalised.history.inner_errors == result.history.inner_errors


class TestRepositoryGoldens:
    def test_committed_goldens_match_the_current_build(self):
        # The blessed records under tests/golden/ are the regression
        # contract of this checkout; any numeric drift fails here first.
        report = check_goldens()
        assert report.passed, report.to_dict()

    def test_default_cases_pin_every_execution_path(self):
        names = {case.name for case in default_golden_cases()}
        assert names == {
            "reference-ge",
            "vectorized-ge",
            "prefactorized-lapack",
            "octant-parallel",
            "block-jacobi-2x1",
            "driver-k-eigenvalue",
            "driver-time-dependent",
        }
        specs = {case.name: case.spec for case in default_golden_cases()}
        assert specs["block-jacobi-2x1"].npex == 2
        assert specs["octant-parallel"].octant_parallel
        assert pytest.approx(0.001) == specs["reference-ge"].max_twist
        assert specs["driver-k-eigenvalue"].driver == "k_eigenvalue"
        assert specs["driver-time-dependent"].driver == "time_dependent"
