"""CLI surface tests for ``unsnap verify``."""

import json

import pytest

from repro.cli import main


class TestVerifyCommand:
    def test_golden_suite_against_the_committed_store(self, capsys):
        assert main(["verify", "--suite", "golden", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["passed"] is True
        assert {case["status"] for case in report["golden"]["cases"]} == {"match"}
        assert "mms" not in report and "conformance" not in report

    def test_update_golden_blesses_into_a_fresh_directory(self, tmp_path, capsys):
        golden_dir = tmp_path / "goldens"
        code = main(
            ["verify", "--suite", "golden", "--update-golden",
             "--golden-dir", str(golden_dir), "--json"]
        )
        assert code == 0
        from repro.verify.golden import default_golden_cases

        report = json.loads(capsys.readouterr().out)
        assert report["passed"] is True
        expected = len(default_golden_cases())
        assert len(report["blessed"]) == len(list(golden_dir.glob("*.json"))) == expected

    def test_failing_suite_exits_nonzero(self, tmp_path, capsys):
        code = main(
            ["verify", "--suite", "golden", "--golden-dir", str(tmp_path / "none"), "--json"]
        )
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["passed"] is False
        assert {case["status"] for case in report["golden"]["cases"]} == {"missing"}

    def test_table_output_mentions_every_suite_section(self, capsys):
        code = main(["verify", "--suite", "golden"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Golden regression store" in out
        assert "verification PASSED" in out

    def test_unknown_suite_is_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["verify", "--suite", "nope"])
        assert "invalid choice" in capsys.readouterr().err

    def test_update_golden_without_the_golden_suite_is_a_clean_error(self, capsys):
        # Silently blessing nothing would leave the user believing the
        # goldens were refreshed.
        assert main(["verify", "--suite", "mms", "--update-golden"]) == 2
        err = capsys.readouterr().err
        assert "--update-golden" in err and "--suite golden" in err

    def test_empty_mms_problem_list_renders_without_crashing(self):
        from repro.analysis.reporting import format_verification_report
        from repro.verify.suite import VerificationReport

        report = VerificationReport(mms=())
        out = format_verification_report(report)
        assert "verification PASSED" in out
