"""Tests for the manufactured-solutions convergence-order pillar."""

import numpy as np
import pytest

from repro.verify.mms import (
    MMS_ORDER_TOLERANCE,
    FdMMSProblem,
    FemMMSProblem,
    ManufacturedField,
    default_problems,
    estimate_order,
)


class TestManufacturedField:
    def test_vanishes_on_the_unit_box_boundary(self):
        field = ManufacturedField()
        rng = np.random.default_rng(7)
        pts = rng.uniform(0.0, 1.0, size=(20, 3))
        for axis in range(3):
            for value in (0.0, 1.0):
                clamped = pts.copy()
                clamped[:, axis] = value
                np.testing.assert_allclose(field.value(clamped), 0.0, atol=1e-14)

    def test_gradient_matches_finite_differences(self):
        field = ManufacturedField(extents=(1.0, 2.0, 0.5))
        rng = np.random.default_rng(11)
        pts = rng.uniform(0.1, 0.4, size=(10, 3))
        eps = 1e-6
        grad = field.gradient(pts)
        for axis in range(3):
            fwd, bwd = pts.copy(), pts.copy()
            fwd[:, axis] += eps
            bwd[:, axis] -= eps
            fd = (field.value(fwd) - field.value(bwd)) / (2 * eps)
            np.testing.assert_allclose(grad[:, axis], fd, rtol=1e-6, atol=1e-8)

    def test_angular_source_shape_and_content(self):
        field = ManufacturedField()
        pts = np.array([[0.25, 0.5, 0.5]])
        directions = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        sigma_t = np.array([1.0, 2.0])
        q = field.angular_source(pts, directions, sigma_t)
        assert q.shape == (2, 1, 2)
        u = field.value(pts)[0]
        gx = field.gradient(pts)[0, 0]
        assert q[0, 0, 0] == pytest.approx(gx + 1.0 * u)
        assert q[0, 0, 1] == pytest.approx(gx + 2.0 * u)


class TestEstimateOrder:
    def test_fd_observes_second_order(self):
        estimate = estimate_order(FdMMSProblem(), resolutions=(8, 16))
        assert estimate.theoretical_order == 2.0
        assert estimate.passed
        assert abs(estimate.observed_order - 2.0) <= MMS_ORDER_TOLERANCE

    def test_fem_linear_observes_second_order(self):
        estimate = estimate_order(FemMMSProblem(order=1), resolutions=(4, 8))
        assert estimate.theoretical_order == 2.0
        assert estimate.passed

    def test_errors_decrease_monotonically(self):
        estimate = estimate_order(FemMMSProblem(order=1), resolutions=(3, 4, 5))
        assert list(estimate.errors) == sorted(estimate.errors, reverse=True)
        assert len(estimate.pairwise_orders) == 2
        assert estimate.observed_order == estimate.pairwise_orders[-1]

    def test_refinement_goes_through_a_study(self):
        study = FemMMSProblem(order=1).refinement_study((3, 4))
        assert len(study) == 2
        specs = [point.spec for point in study.runs()]
        assert [s.nx for s in specs] == [3, 4]
        assert all((s.ny, s.nz) == (s.nx, s.nx) for s in specs)
        # The MMS configuration must be exactly solvable in one sweep.
        assert all(s.scattering_ratio == 0.0 and s.num_inners == 1 for s in specs)
        assert all(s.source_strength == 0.0 for s in specs)

    def test_rejects_bad_resolution_sequences(self):
        with pytest.raises(ValueError, match="at least two"):
            estimate_order(FdMMSProblem(), resolutions=(8,))
        with pytest.raises(ValueError, match="strictly increasing"):
            estimate_order(FdMMSProblem(), resolutions=(16, 8))
        with pytest.raises(ValueError, match="strictly increasing"):
            estimate_order(FdMMSProblem(), resolutions=(8, 8))

    def test_report_round_trips_to_dict(self):
        estimate = estimate_order(FdMMSProblem(), resolutions=(4, 8))
        data = estimate.to_dict()
        assert data["problem"] == "mms-fd"
        assert data["passed"] == estimate.passed
        assert len(data["errors"]) == 2 and len(data["pairwise_orders"]) == 1


class TestEngineIndependence:
    def test_mms_error_is_engine_independent(self):
        # The manufactured source rides the angular_source hook below the
        # engine layer, so every engine must see the identical problem.
        errors = {
            engine: FemMMSProblem(order=1, engine=engine).solve_error(
                FemMMSProblem(order=1, engine=engine).base_spec()
            )
            for engine in ("reference", "vectorized", "prefactorized")
        }
        baseline = errors["reference"]
        for engine, err in errors.items():
            assert err == pytest.approx(baseline, rel=1e-12), engine


@pytest.mark.slow
class TestFullDefaultSuite:
    def test_all_default_problems_observe_their_theoretical_order(self):
        for problem in default_problems():
            estimate = estimate_order(problem)
            assert estimate.passed, estimate.to_dict()
