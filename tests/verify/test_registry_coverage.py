"""Registry-coverage guard: nothing registered escapes the proof surfaces.

The conformance matrix, the MMS engine-independence check and the bench
smoke job are only as good as their discovery: an engine (or driver, or
campaign backend) registered without appearing in them would ship unproven.
These tests pin the wiring:

* the conformance matrix defaults cover *every* registered engine, solver
  and backend (checked against a stubbed study runner, so the full default
  matrix -- including process/distributed backends -- is asserted without
  paying for real runs);
* a real serial-backend conformance pass covers all engines x solvers and
  passes;
* ``bench engine-sweep`` samples exactly ``available_engines()``, and every
  non-default driver has a dedicated ``driver-*`` bench case;
* ``study-backends`` measures every in-process backend (the distributed
  backend is excluded by design and measured by ``distributed-overhead``).

Registering something new without extending the matrix/bench surface makes
one of these fail by construction -- that is the point.
"""

from __future__ import annotations

from repro.bench.registry import available_benchmarks
from repro.bench.workload import BenchWorkload
from repro.campaign.backends import available_backends
from repro.config import ProblemSpec
from repro.drivers import available_drivers
from repro.engines import available_engines
from repro.solvers import available_solvers
from repro.verify.conformance import conformance_matrix

FAST = ProblemSpec(
    nx=3, ny=3, nz=3, angles_per_octant=1, num_groups=2,
    max_twist=0.001, num_inners=2,
)


class TestConformanceCoverage:
    def test_default_matrix_covers_every_registry(self, monkeypatch):
        """The default (no-argument) matrix enumerates every registered
        engine, solver and backend -- asserted against a stub runner."""
        from repro.verify import conformance as module

        executed: list[tuple[str, object]] = []
        real_run_study = module.run_study

        def capture(study, *, backend, jobs=None):
            executed.append((backend, study))
            return real_run_study(study, backend="serial", jobs=jobs)

        monkeypatch.setattr(module, "run_study", capture)
        report = conformance_matrix(FAST, octant_modes=(False,), thread_counts=(1,))
        assert set(report.engines) == set(available_engines())
        assert set(report.solvers) == set(available_solvers())
        assert set(report.backends) == set(available_backends())
        assert {backend for backend, _ in executed} == set(available_backends())
        for _, study in executed:
            specs = [point.spec for point in study.runs()]
            assert {spec.engine for spec in specs} == set(available_engines())
            assert {spec.solver for spec in specs} == set(available_solvers())

    def test_serial_matrix_passes_with_every_engine(self):
        report = conformance_matrix(
            FAST, backends=("serial",), thread_counts=(1,), octant_modes=(False,)
        )
        assert report.passed, report.summary() if hasattr(report, "summary") else report
        covered = {case.engine for case in report.cases}
        assert covered == set(available_engines())


class TestBenchCoverage:
    def test_engine_sweep_samples_every_engine(self):
        from repro.bench.cases import bench_engine_sweep

        workload = BenchWorkload(
            n=3, angles_per_octant=1, num_groups=2, sweeps=1, repeats=1,
            warmup=0, smoke=True,
        )
        samples = bench_engine_sweep(workload)
        assert set(samples) == set(available_engines())
        for engine, sample in samples.items():
            assert sample["systems_solved"] > 0, engine

    def test_every_driver_has_a_bench_case(self):
        names = set(available_benchmarks())
        for driver in available_drivers():
            if driver == "fixed_source":
                # The default driver is what every kernel/scaling case runs.
                continue
            expected = f"driver-{driver.replace('_', '-')}"
            assert expected in names, (
                f"driver {driver!r} registered without a bench case "
                f"(expected {expected!r})"
            )

    def test_study_backends_case_measures_every_inprocess_backend(self):
        from repro.bench.cases import bench_study_backends

        workload = BenchWorkload(
            n=2, angles_per_octant=1, num_groups=1, sweeps=1, repeats=1,
            warmup=0, jobs=1, smoke=True,
        )
        samples = bench_study_backends(workload)
        expected = set(available_backends()) - {"distributed"}
        assert set(samples) == expected
