"""Integration tests: analytic limits, FD-vs-FEM agreement, end-to-end balance
and single-rank vs multi-rank consistency."""

import numpy as np
import pytest

from repro.angular.quadrature import product_quadrature
from repro.baseline.snap_fd import SnapDiamondDifferenceSolver
from repro.config import BoundaryCondition, ProblemSpec
from repro.core.solver import TransportSolver
from repro.materials.cross_sections import MaterialLibrary
from repro.materials.library import pure_absorber, snap_option1_materials
from repro.parallel.block_jacobi import BlockJacobiDriver


class TestAnalyticLimits:
    @pytest.mark.slow
    def test_infinite_medium_multigroup_flux(self):
        """A large, optically thick scattering medium approaches the analytic
        infinite-medium group fluxes (diag(sigma_t) - sigma_s^T) phi = q in its
        centre."""
        num_groups = 3
        xs = snap_option1_materials(num_groups, scattering_ratio=0.5)
        # Scale the cross sections up to make the 1x1x1 domain ~60 mean free
        # paths thick so the centre does not see the vacuum boundary.
        scaled = MaterialLibrary(
            materials=[
                xs.__class__(sigma_t=xs.sigma_t * 60.0, sigma_s=xs.sigma_s * 60.0, name="scaled")
            ]
        )
        spec = ProblemSpec(
            nx=5, ny=5, nz=5, order=1, angles_per_octant=2, num_groups=num_groups,
            max_twist=0.0, num_inners=60, num_outers=40,
            inner_tolerance=1e-10, outer_tolerance=1e-10,
        )
        solver = TransportSolver(spec, materials=scaled)
        result = solver.solve()
        expected = scaled.materials[0].infinite_medium_flux(np.ones(num_groups))
        centre_cell = 62  # (2,2,2) of the 5^3 grid
        centre = result.cell_average_flux[centre_cell]
        assert np.allclose(centre, expected, rtol=2e-2)

    def test_pure_absorber_exponential_attenuation(self):
        """A mono-directional problem cannot be represented exactly by the
        product quadrature, but the scalar flux of an incident isotropic flux
        on a purely absorbing slab must decay monotonically and faster than
        the slowest ordinate's optical path."""
        sigma = 3.0
        spec = ProblemSpec(
            nx=10, ny=3, nz=3, lx=2.0, order=1, angles_per_octant=4, num_groups=1,
            max_twist=0.0, num_inners=1, num_outers=1,
            source_strength=0.0,
            boundary=BoundaryCondition(kind="incident", incident_flux=1.0),
        )
        materials = MaterialLibrary(materials=[pure_absorber(1, sigma_t=sigma)])
        solver = TransportSolver(spec, materials=materials, quadrature=product_quadrature(2, 2))
        result = solver.solve()
        # Cell id = i + nx*(j + ny*k): reshape Fortran-style to index [i, j, k]
        # and follow the centre column along x.
        flux = result.cell_average_flux[:, 0].reshape(10, 3, 3, order="F")
        line = flux[:5, 1, 1]
        assert np.all(np.diff(line) < 0.0)
        # Decay between successive interior cells is at least a factor ~e^(sigma*dx*mu_min)
        ratio = line[3] / line[2]
        assert ratio < 1.0

    @pytest.mark.slow
    def test_balance_closes_for_converged_multigroup_problem(self):
        spec = ProblemSpec(
            nx=4, ny=4, nz=4, order=1, angles_per_octant=2, num_groups=4,
            max_twist=0.001, num_inners=60, num_outers=40,
            inner_tolerance=1e-10, outer_tolerance=1e-10,
        )
        result = TransportSolver(spec).solve()
        balance = result.balance
        assert balance.relative_residual() < 1e-7
        # Per-group balance including scattering transfer also closes.
        assert np.max(np.abs(balance.residual)) / balance.emission.sum() < 1e-7
        # Down-scatter only: group 0 receives nothing, later groups gain.
        assert balance.scattering_in[0] == pytest.approx(0.0, abs=1e-12)
        assert balance.scattering_in[1:].sum() > 0


class TestFdVsFemAgreement:
    @pytest.mark.slow
    def test_cell_average_fluxes_agree_on_structured_problem(self):
        n, groups, nang = 5, 2, 2
        spec = ProblemSpec(
            nx=n, ny=n, nz=n, order=1, angles_per_octant=nang, num_groups=groups,
            max_twist=0.0, num_inners=40, num_outers=1, inner_tolerance=1e-9,
        )
        fem = TransportSolver(spec).solve()
        fd = SnapDiamondDifferenceSolver(
            n, n, n, num_groups=groups, angles_per_octant=nang,
            num_inners=40, inner_tolerance=1e-9,
        ).solve()
        fd_cells = fd.scalar_flux.transpose(2, 1, 0, 3).reshape(-1, groups)
        rel = np.abs(fem.cell_average_flux - fd_cells) / np.maximum(fd_cells, 1e-12)
        # Two different discretisations of the same transport problem: the
        # cell-averaged fluxes agree to within a few per cent everywhere.
        assert rel.mean() < 0.03
        assert rel.max() < 0.10

    @pytest.mark.slow
    def test_higher_order_elements_are_also_conservative(self):
        # The arbitrarily-high-order elements of UnSNAP must satisfy the same
        # particle balance as the linear ones, and their solution must stay
        # close to the converged linear-element solution of the same problem.
        base = ProblemSpec(nx=3, ny=3, nz=3, order=1, angles_per_octant=2,
                           num_groups=1, max_twist=0.001, num_inners=40,
                           num_outers=1, inner_tolerance=1e-9)
        linear = TransportSolver(base).solve()
        quadratic = TransportSolver(base.with_(order=2)).solve()
        assert quadratic.balance.relative_residual() < 1e-6
        rel = np.abs(quadratic.cell_average_flux - linear.cell_average_flux) / np.maximum(
            linear.cell_average_flux, 1e-12
        )
        assert rel.max() < 0.1


class TestParallelConsistency:
    @pytest.mark.slow
    def test_block_jacobi_converges_to_single_rank_solution(self):
        spec = ProblemSpec(
            nx=6, ny=4, nz=2, order=1, angles_per_octant=1, num_groups=2,
            max_twist=0.001, num_inners=30, num_outers=1, inner_tolerance=1e-10,
        )
        single = TransportSolver(spec).solve()
        for npex, npey in ((2, 1), (3, 2)):
            multi = BlockJacobiDriver(spec.with_(npex=npex, npey=npey)).solve()
            rel = np.abs(multi.scalar_flux - single.scalar_flux) / np.maximum(
                single.scalar_flux, 1e-12
            )
            assert rel.max() < 1e-6, f"rank grid {npex}x{npey} disagrees"

    @pytest.mark.slow
    def test_more_ranks_need_more_iterations_for_same_tolerance(self):
        spec = ProblemSpec(
            nx=8, ny=4, nz=2, order=1, angles_per_octant=1, num_groups=1,
            max_twist=0.0, num_inners=60, num_outers=1, inner_tolerance=1e-8,
        )
        single = BlockJacobiDriver(spec).solve()
        multi = BlockJacobiDriver(spec.with_(npex=4, npey=2)).solve()
        assert multi.total_inners > single.total_inners
