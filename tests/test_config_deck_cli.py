"""Tests for the problem specification, the input-deck parser and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.config import BoundaryCondition, ProblemSpec
from repro.input_deck import UnknownDeckKeyError, loads, parse_input_deck, spec_to_deck


class TestBoundaryCondition:
    def test_vacuum_default(self):
        bc = BoundaryCondition()
        assert bc.incoming_value() == 0.0

    def test_incident(self):
        bc = BoundaryCondition(kind="incident", incident_flux=2.0)
        assert bc.incoming_value() == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundaryCondition(kind="mirror")
        with pytest.raises(ValueError):
            BoundaryCondition(kind="vacuum", incident_flux=1.0)
        with pytest.raises(ValueError):
            BoundaryCondition(kind="reflective", incident_flux=1.0)

    def test_reflective(self):
        bc = BoundaryCondition(kind="reflective")
        assert bc.incoming_value() == 0.0


class TestProblemSpec:
    def test_derived_sizes(self):
        spec = ProblemSpec(nx=4, ny=3, nz=2, order=2, angles_per_octant=5, num_groups=7)
        assert spec.num_cells == 24
        assert spec.num_angles == 40
        assert spec.nodes_per_element == 27
        assert spec.num_unknowns == 24 * 40 * 7 * 27
        assert spec.angular_flux_bytes() == spec.num_unknowns * 8

    def test_with_returns_modified_copy(self):
        spec = ProblemSpec()
        other = spec.with_(order=3, solver="lapack")
        assert other.order == 3 and other.solver == "lapack"
        assert spec.order == 1

    def test_paper_configurations(self):
        fig = ProblemSpec.paper_figure3_4(order=3)
        assert (fig.nx, fig.angles_per_octant, fig.num_groups) == (16, 36, 64)
        assert fig.num_inners == 5 and fig.num_outers == 1
        tab = ProblemSpec.paper_table2(order=4, solver="lapack")
        assert (tab.nx, tab.angles_per_octant, tab.num_groups) == (32, 10, 16)
        assert tab.solver == "lapack"

    def test_validation(self):
        with pytest.raises(ValueError):
            ProblemSpec(nx=0)
        with pytest.raises(ValueError):
            ProblemSpec(order=0)
        with pytest.raises(ValueError):
            ProblemSpec(scattering_ratio=1.0)
        with pytest.raises(ValueError):
            ProblemSpec(npex=10, nx=4)


class TestInputDeck:
    DECK = """
    ! SNAP-style deck
    nx=4 ny=4 nz=2
    lx=2.0 ly=2.0 lz=1.0
    nang=6 ng=8
    iitm=5 oitm=2
    epsi=1.0e-4
    order=2 twist=0.001 twist_axis=z
    scatp=0.4
    solver=lapack
    npex=2 npey=1
    src_opt=1 mat_opt=1
    /
    """

    def test_loads(self):
        spec = loads(self.DECK)
        assert (spec.nx, spec.ny, spec.nz) == (4, 4, 2)
        assert spec.lx == 2.0 and spec.lz == 1.0
        assert spec.angles_per_octant == 6
        assert spec.num_groups == 8
        assert spec.num_inners == 5 and spec.num_outers == 2
        assert spec.inner_tolerance == pytest.approx(1e-4)
        assert spec.outer_tolerance == pytest.approx(1e-4)
        assert spec.order == 2 and spec.max_twist == 0.001
        assert spec.scattering_ratio == 0.4
        assert spec.solver == "lapack"
        assert spec.npex == 2

    def test_file_round_trip(self, tmp_path):
        spec = ProblemSpec(nx=5, ny=4, nz=3, order=2, angles_per_octant=3,
                           num_groups=6, max_twist=0.002, solver="lapack")
        deck_file = tmp_path / "input.deck"
        deck_file.write_text(spec_to_deck(spec))
        loaded = parse_input_deck(deck_file)
        assert loaded == spec.with_(outer_tolerance=loaded.outer_tolerance,
                                    inner_tolerance=loaded.inner_tolerance)

    def test_octant_parallel_key(self):
        assert loads("nx=2 octant_parallel=1").octant_parallel is True
        assert loads("nx=2 octant_parallel=true").octant_parallel is True
        assert loads("nx=2 octant_parallel=0").octant_parallel is False
        assert loads("nx=2").octant_parallel is False
        with pytest.raises(ValueError):
            loads("octant_parallel=maybe")

    def test_octant_parallel_round_trip(self, tmp_path):
        spec = ProblemSpec(nx=3, ny=3, nz=3, engine="prefactorized", octant_parallel=True)
        deck_file = tmp_path / "op.deck"
        deck_file.write_text(spec_to_deck(spec))
        loaded = parse_input_deck(deck_file)
        assert loaded.octant_parallel is True
        assert loaded.engine == "prefactorized"

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyError):
            loads("nx=2 bogus=3")

    def test_unknown_key_error_is_structured(self):
        # The gateway's structured 400 relies on these stable attributes;
        # the error stays a KeyError so existing consumers keep working.
        with pytest.raises(UnknownDeckKeyError) as excinfo:
            loads("nx=2 bogus=3")
        err = excinfo.value
        assert isinstance(err, KeyError)
        assert err.key == "bogus"
        assert err.section == "problem"
        assert "nx" in err.valid_keys and "bogus" not in err.valid_keys
        assert "unknown input deck key 'bogus'" in err.args[0]

    def test_cli_consumer_reports_unknown_deck_key(self, tmp_path, capsys):
        deck = tmp_path / "bad.deck"
        deck.write_text("nx=2 bogus=3\n/")
        assert main(["run", "--deck", str(deck)]) == 2
        err = capsys.readouterr().err
        assert "unknown input deck key 'bogus'" in err

    def test_malformed_token_rejected(self):
        with pytest.raises(ValueError):
            loads("nx 2")

    def test_comments_and_terminator_ignored(self):
        spec = loads("# comment only\nnx=2 ny=2 nz=2 ! trailing\n/\n")
        assert spec.nx == 2


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--nx", "3", "--solver", "lapack"])
        assert args.command == "run" and args.nx == 3

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "216" in out

    def test_run_command_single_rank(self, capsys):
        code = main(["run", "--nx", "2", "--ny", "2", "--nz", "2",
                     "--nang", "1", "--groups", "2", "--inners", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean scalar flux" in out

    def test_run_command_multi_rank(self, capsys):
        code = main(["run", "--nx", "4", "--ny", "2", "--nz", "2", "--nang", "1",
                     "--groups", "1", "--inners", "2", "--npex", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ranks" in out and "halo messages" in out

    def test_run_from_deck(self, tmp_path, capsys):
        deck = tmp_path / "d.deck"
        deck.write_text("nx=2 ny=2 nz=2 nang=1 ng=1 iitm=1 oitm=1\n/")
        assert main(["run", "--deck", str(deck)]) == 0
        assert "UnSNAP solve summary" in capsys.readouterr().out

    def test_run_command_octant_parallel_prefactorized(self, capsys):
        code = main(["run", "--nx", "2", "--ny", "2", "--nz", "2", "--nang", "1",
                     "--groups", "1", "--inners", "2", "--engine", "prefactorized",
                     "--octant-parallel", "--threads", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "prefactorized" in out and "mean scalar flux" in out

    def test_engines_command_lists_aliases(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "prefactorized" in out and "lu" in out
        assert "aliases" in out and "vec" in out

    def test_solvers_command_lists_aliases(self, capsys):
        assert main(["solvers"]) == 0
        out = capsys.readouterr().out
        assert "aliases" in out and "mkl" in out and "gaussian" in out

    def test_fig3_command(self, capsys):
        assert main(["fig3", "--threads", "1", "4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "fastest scheme" in out

    def test_table2_command(self, capsys):
        assert main(["table2", "--max-order", "1"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_balance_command(self, capsys):
        assert main(["balance", "--n", "2", "--groups", "1"]) == 0
        out = capsys.readouterr().out
        assert "Particle balance" in out and "total relative residual" in out


class TestFactorCacheBudgetPlumbing:
    """The factor-cache budget rides spec -> deck -> CLI without disturbing
    the run_key/golden stability of budget-less configurations."""

    def test_default_is_elided_everywhere(self):
        spec = ProblemSpec(nx=2, ny=2, nz=2)
        assert spec.factor_cache_budget_bytes == 0
        assert "factor_cache_budget_bytes" not in spec.to_dict()
        assert "cache_budget" not in spec_to_deck(spec)

    def test_dict_round_trip(self):
        spec = ProblemSpec(nx=2, ny=2, nz=2, factor_cache_budget_bytes=65536)
        data = spec.to_dict()
        assert data["factor_cache_budget_bytes"] == 65536
        assert ProblemSpec.from_dict(data) == spec

    def test_deck_key_and_round_trip(self):
        spec = loads("nx=2 ny=2 nz=2 cache_budget=65536\n/")
        assert spec.factor_cache_budget_bytes == 65536
        assert loads(spec_to_deck(spec)) == spec
        # The long-form spec field name is accepted too.
        assert loads("nx=2 ny=2 nz=2 factor_cache_budget_bytes=4096\n/") == (
            loads("nx=2 ny=2 nz=2 cache_budget=4096\n/")
        )

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="factor_cache_budget_bytes"):
            ProblemSpec(nx=2, ny=2, nz=2, factor_cache_budget_bytes=-1)

    def test_cli_flag_runs_budgeted(self, capsys):
        code = main(["run", "--nx", "2", "--ny", "2", "--nz", "2", "--nang", "1",
                     "--groups", "1", "--inners", "2", "--engine", "prefactorized",
                     "--cache-budget", "50000"])
        assert code == 0
        assert "mean scalar flux" in capsys.readouterr().out

    def test_cli_flag_overrides_deck(self, tmp_path):
        deck = tmp_path / "d.deck"
        deck.write_text("nx=2 ny=2 nz=2 nang=1 ng=1 iitm=1 oitm=1 cache_budget=1024\n/")
        parser = build_parser()
        args = parser.parse_args(["run", "--deck", str(deck), "--cache-budget", "2048"])
        assert args.cache_budget == 2048
        # And the deck alone carries its value through parsing.
        assert parse_input_deck(deck).factor_cache_budget_bytes == 1024
