"""Tests for the node performance model (machine, workload, layouts, schemes,
simulator and roofline)."""

import numpy as np
import pytest

from repro.config import ProblemSpec
from repro.perfmodel.layouts import LAYOUT_ELEMENT_MAJOR, LAYOUT_GROUP_MAJOR
from repro.perfmodel.machine import MachineModel, skylake_8176_node
from repro.perfmodel.roofline import (
    arithmetic_intensity,
    is_memory_bound,
    machine_balance,
    roofline_gflops,
)
from repro.perfmodel.schemes import ThreadingScheme, angle_threading_scheme, paper_schemes
from repro.perfmodel.simulator import SweepPerformanceModel
from repro.perfmodel.workload import SweepWorkload


class TestMachineModel:
    def test_skylake_matches_paper_node(self):
        node = skylake_8176_node()
        assert node.num_cores == 56
        assert node.frequency_ghz == pytest.approx(2.1)
        assert node.l1_kb == 32.0  # the L1 capacity quoted in Section IV-A.2

    def test_bandwidth_saturates(self):
        node = skylake_8176_node()
        assert node.bandwidth_gbs(1) == pytest.approx(node.per_core_bandwidth_gbs)
        assert node.bandwidth_gbs(56) == pytest.approx(node.stream_bandwidth_gbs)
        assert node.bandwidth_gbs(28) <= node.stream_bandwidth_gbs

    def test_thread_clamping(self):
        node = skylake_8176_node()
        assert node.sustained_gflops(100) == node.sustained_gflops(56)
        with pytest.raises(ValueError):
            node.bandwidth_gbs(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineModel(
                name="bad", num_cores=0, frequency_ghz=1, simd_doubles=8, fma_per_cycle=2,
                l1_kb=32, l2_kb=1024, llc_mb=38, stream_bandwidth_gbs=100,
                per_core_bandwidth_gbs=10,
            )


class TestWorkload:
    def test_solve_flops_cubic_growth(self):
        linear = SweepWorkload(order=1, num_groups=64)
        cubic = SweepWorkload(order=3, num_groups=64)
        assert cubic.solve_flops() / linear.solve_flops() == pytest.approx(8.0**3)

    def test_paper_linear_solve_estimate(self):
        # "in 3D where N = 8 this is over 300 FLOPS" (Section II-C).
        w = SweepWorkload(order=1, num_groups=1)
        assert w.solve_flops() > 300.0

    def test_matrix_bytes_match_table1(self):
        assert SweepWorkload(order=3, num_groups=1).matrix_bytes() == 32 * 1024

    def test_item_and_sweep_totals(self):
        w = SweepWorkload(order=1, num_groups=4)
        assert w.item_count(10, 8) == 320
        assert w.sweep_flops(10, 8) == pytest.approx(320 * w.total_flops())
        assert w.sweep_bytes(10, 8) == pytest.approx(320 * w.total_bytes())

    def test_solve_traffic_only_after_l2_spill(self):
        small = SweepWorkload(order=2, num_groups=1)
        huge = SweepWorkload(order=5, num_groups=1)
        assert small.solve_bytes(l2_bytes=1 << 20) == 0.0
        assert huge.solve_bytes(l2_bytes=100 * 1024) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepWorkload(order=0, num_groups=1)


class TestLayouts:
    def test_strides_match_paper_numbers(self):
        # Linear elements, 64 groups: 4 kB vs 64 B (Section IV-A.1); cubic: 32 kB.
        assert LAYOUT_ELEMENT_MAJOR.element_stride_bytes(1, 64) == 4096
        assert LAYOUT_GROUP_MAJOR.element_stride_bytes(1, 64) == 64
        assert LAYOUT_ELEMENT_MAJOR.element_stride_bytes(3, 64) == 32 * 1024

    def test_access_efficiency_ordering(self):
        good = LAYOUT_ELEMENT_MAJOR.access_efficiency(1, 64, group_loop_inner=True)
        bad = LAYOUT_GROUP_MAJOR.access_efficiency(1, 64, group_loop_inner=False)
        assert 0 < bad < good <= 1.0

    def test_cubic_group_major_less_penalised_than_linear(self):
        # 512 B runs (cubic) prefetch much better than 64 B runs (linear).
        linear = LAYOUT_GROUP_MAJOR.access_efficiency(1, 64, group_loop_inner=False)
        cubic = LAYOUT_GROUP_MAJOR.access_efficiency(3, 64, group_loop_inner=False)
        assert cubic > linear


class TestSchemes:
    def test_paper_has_six_schemes(self):
        schemes = paper_schemes()
        assert len(schemes) == 6
        labels = [s.label for s in schemes]
        assert len(set(labels)) == 6
        assert sum(s.collapsed for s in schemes) == 2

    def test_wall_iterations_semantics(self):
        elem_only = ThreadingScheme(layout=LAYOUT_ELEMENT_MAJOR, thread_elements=True)
        group_only = ThreadingScheme(layout=LAYOUT_ELEMENT_MAJOR, thread_groups=True)
        collapsed = ThreadingScheme(
            layout=LAYOUT_ELEMENT_MAJOR, thread_elements=True, thread_groups=True, collapsed=True
        )
        # Bucket of 10 elements, 64 groups, 56 threads.
        assert elem_only.wall_iterations(10, 64, 56) == 64          # ceil(10/56)*64
        assert group_only.wall_iterations(10, 64, 56) == 20         # 10*ceil(64/56)
        assert collapsed.wall_iterations(10, 64, 56) == 12          # ceil(640/56)
        # Collapse exposes the most parallelism for small buckets.
        assert collapsed.wall_iterations(10, 64, 56) < elem_only.wall_iterations(10, 64, 56)

    def test_empty_bucket(self):
        scheme = paper_schemes()[0]
        assert scheme.wall_iterations(0, 64, 8) == 0.0

    def test_concurrent_streams(self):
        collapsed = paper_schemes()[1]
        assert collapsed.concurrent_streams(2, 64, 56) == 56
        elem_only = paper_schemes()[0]
        assert elem_only.concurrent_streams(2, 64, 56) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ThreadingScheme(layout=LAYOUT_ELEMENT_MAJOR)  # nothing threaded
        with pytest.raises(ValueError):
            ThreadingScheme(layout=LAYOUT_ELEMENT_MAJOR, thread_elements=True, collapsed=True)

    def test_angle_threading_scheme(self):
        scheme = angle_threading_scheme()
        assert scheme.thread_angles
        assert "*angle*" in scheme.label


class TestSimulator:
    @pytest.fixture(scope="class")
    def small_model(self):
        spec = ProblemSpec(nx=8, ny=8, nz=8, order=1, angles_per_octant=4,
                           num_groups=16, num_inners=5, num_outers=1)
        return SweepPerformanceModel(spec)

    def test_time_decreases_with_threads(self, small_model):
        scheme = paper_schemes()[1]
        t1 = small_model.sweep_time(scheme, 1).seconds
        t8 = small_model.sweep_time(scheme, 8).seconds
        t56 = small_model.sweep_time(scheme, 56).seconds
        assert t1 > t8 > t56

    def test_element_major_layout_wins_for_linear(self, small_model):
        elem_major = paper_schemes()[1]
        group_major = paper_schemes()[4]
        assert (
            small_model.sweep_time(elem_major, 56).seconds
            <= small_model.sweep_time(group_major, 56).seconds
        )

    def test_collapse_is_best_scheme_at_high_thread_count(self, small_model):
        best = small_model.best_scheme(paper_schemes(), threads=56)
        assert best.collapsed
        assert best.layout.group_fastest

    def test_angle_threading_does_not_scale(self, small_model):
        # Section IV-A.3: threading angles made runtime *increase* with threads.
        scheme = angle_threading_scheme()
        t1 = small_model.sweep_time(scheme, 1).seconds
        t28 = small_model.sweep_time(scheme, 28).seconds
        assert t28 >= t1

    def test_scaling_curve_helper(self, small_model):
        curve = small_model.scaling_curve(paper_schemes()[0], [1, 2, 4])
        assert [p.threads for p in curve] == [1, 2, 4]
        assert all(p.seconds > 0 for p in curve)
        assert curve[0].bound in ("compute", "memory")

    def test_explicit_bucket_sizes_validated(self):
        spec = ProblemSpec(nx=2, ny=2, nz=2, order=1, angles_per_octant=1, num_groups=2)
        with pytest.raises(ValueError):
            SweepPerformanceModel(spec, bucket_sizes=np.array([3, 3]))
        model = SweepPerformanceModel(spec, bucket_sizes=np.array([1, 3, 3, 1]))
        assert model.sweep_time(paper_schemes()[0], 4).seconds > 0

    def test_cubic_workload_slower_than_linear(self):
        linear = SweepPerformanceModel(ProblemSpec(nx=4, ny=4, nz=4, order=1,
                                                   angles_per_octant=2, num_groups=8))
        cubic = SweepPerformanceModel(ProblemSpec(nx=4, ny=4, nz=4, order=3,
                                                  angles_per_octant=2, num_groups=8))
        scheme = paper_schemes()[1]
        assert cubic.sweep_time(scheme, 56).seconds > 10 * linear.sweep_time(scheme, 56).seconds


class TestRoofline:
    def test_intensity_grows_with_order(self):
        ai1 = arithmetic_intensity(SweepWorkload(order=1, num_groups=64))
        ai3 = arithmetic_intensity(SweepWorkload(order=3, num_groups=64))
        assert ai3 > ai1

    def test_linear_left_of_ridge_cubic_right(self):
        node = skylake_8176_node()
        assert is_memory_bound(node, SweepWorkload(order=1, num_groups=64))
        assert not is_memory_bound(node, SweepWorkload(order=4, num_groups=64))

    def test_roofline_bounded_by_peak(self):
        node = skylake_8176_node()
        for order in (1, 2, 3, 4):
            w = SweepWorkload(order=order, num_groups=16)
            assert roofline_gflops(node, w) <= node.sustained_gflops(node.num_cores) + 1e-9

    def test_machine_balance_positive(self):
        assert machine_balance(skylake_8176_node()) > 0
