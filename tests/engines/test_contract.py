"""The engine-contract suite: every registered engine, every clause.

Parametrised directly over ``available_engines()`` so the optional
``compiled`` tier (and any plugin engine registered before collection) is
subjected to the identical contract as the built-ins -- no per-engine
special-casing anywhere.  The clauses themselves live in
:mod:`tests.engines.contract` so plugins can reuse the harness outside
this repository's test run.
"""

from __future__ import annotations

import pytest

from contract import EngineContract

from repro.engines import available_engines


@pytest.fixture(scope="module", params=sorted(available_engines()))
def contract(request) -> EngineContract:
    return EngineContract(request.param)


class TestEngineContract:
    def test_mms_order(self, contract):
        contract.check_mms_order()

    def test_reference_agreement(self, contract):
        contract.check_reference_agreement()

    def test_update_materials_invalidates(self, contract):
        contract.check_update_materials_invalidates()

    def test_set_engine_invalidates(self, contract):
        contract.check_set_engine_invalidates()

    def test_thread_invariance(self, contract):
        contract.check_thread_invariance()

    def test_telemetry_off_identity(self, contract):
        contract.check_telemetry_off_identity()

    def test_budget_bounded(self, contract):
        contract.check_budget_bounded()
