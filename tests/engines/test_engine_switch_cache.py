"""Regression tests: factor-cache lifecycle when an engine or solver is
switched on a *reused* SweepExecutor.

The prefactorized engine memoises LU factors (and interior couplings) on
``SweepExecutor.factor_cache``.  Those entries were produced by one
(engine, solver) pair: rebinding either on a reused executor without
invalidating the cache would silently replay stale factorisations -- the
cross-solver case is the nastiest, because the ``ge`` and ``lapack`` packed
formats are shape-compatible and would decode to *plausible but wrong*
numbers.  ``set_engine``/``set_solver`` (and plain attribute assignment,
which routes through them) invalidate the cache on any actual change.
"""

import numpy as np
import pytest

import repro
from repro.config import ProblemSpec
from repro.core.solver import TransportSolver
from repro.engines import get_engine, register_engine, unregister_engine

SPEC = ProblemSpec(
    nx=3, ny=3, nz=3, angles_per_octant=2, num_groups=2, max_twist=0.001,
    num_inners=2, engine="prefactorized",
)


def _fresh_flux(spec: ProblemSpec) -> np.ndarray:
    return repro.run(spec).scalar_flux


class TestEngineSwitch:
    def test_switching_engines_clears_the_cache_and_matches_fresh_runs(self):
        ts = TransportSolver(SPEC)
        first = ts.solve().scalar_flux
        assert ts.executor.factor_cache  # prefactorized populated it
        np.testing.assert_array_equal(first, _fresh_flux(SPEC))

        ts.set_engine("vectorized")
        assert not ts.executor.factor_cache
        switched = ts.solve().scalar_flux
        np.testing.assert_array_equal(switched, _fresh_flux(SPEC.with_(engine="vectorized")))

    def test_switching_back_refactorises_instead_of_reusing_stale_entries(self):
        ts = TransportSolver(SPEC)
        epoch0 = ts.executor.factor_epoch
        ts.solve()
        ts.set_engine("reference")
        ts.set_engine("prefactorized")
        assert ts.executor.factor_epoch == epoch0 + 2
        assert not ts.executor.factor_cache
        np.testing.assert_array_equal(ts.solve().scalar_flux, _fresh_flux(SPEC))

    def test_attribute_assignment_goes_through_the_same_invalidation(self):
        ts = TransportSolver(SPEC)
        ts.solve()
        assert ts.executor.factor_cache
        ts.executor.engine = "vectorized"  # property setter -> set_engine
        assert not ts.executor.factor_cache
        assert ts.executor.engine is get_engine("vectorized")

    def test_reassigning_the_same_engine_keeps_the_cache_warm(self):
        ts = TransportSolver(SPEC)
        ts.solve()
        cached = dict(ts.executor.factor_cache)
        assert cached
        ts.executor.set_engine("prefactorized")
        ts.executor.engine = get_engine("prefactorized")
        assert set(ts.executor.factor_cache) == set(cached)
        assert all(ts.executor.factor_cache[k] is v for k, v in cached.items())

    def test_outgoing_engine_hook_is_the_one_notified(self):
        events = []

        class _HookedEngine:
            """Test double recording invalidation order."""

            def sweep_angle(self, executor, angle, total_source, bv, incident, timings):
                return get_engine("vectorized").sweep_angle(
                    executor, angle, total_source, bv, incident, timings
                )

            def invalidate_cache(self, executor):
                events.append("old-engine-hook")

        register_engine("hooked-for-test")(_HookedEngine())
        try:
            ts = TransportSolver(SPEC.with_(engine="hooked-for-test"))
            ts.solve()
            ts.executor.set_engine("reference")
            assert events == ["old-engine-hook"]
        finally:
            unregister_engine("hooked-for-test")


class TestSolverSwitch:
    def test_switching_solvers_invalidates_cached_factorisations(self):
        # Without invalidation the second solve would back-substitute
        # lapack's rhs through ge's cached factors (the packed formats are
        # shape-compatible) and produce subtly different numbers than a
        # fresh prefactorized+lapack run.
        ts = TransportSolver(SPEC)
        ts.solve()
        assert ts.executor.factor_cache
        ts.executor.set_solver("lapack")
        assert not ts.executor.factor_cache
        switched = ts.solve().scalar_flux
        np.testing.assert_array_equal(switched, _fresh_flux(SPEC.with_(solver="lapack")))

    def test_reassigning_the_same_solver_keeps_the_cache_warm(self):
        ts = TransportSolver(SPEC)
        ts.solve()
        cached = dict(ts.executor.factor_cache)
        ts.executor.solver = "ge"
        assert set(ts.executor.factor_cache) == set(cached)
        assert all(ts.executor.factor_cache[k] is v for k, v in cached.items())


class TestCacheKeying:
    def test_prefactorized_entries_are_namespaced_by_registered_name(self):
        ts = TransportSolver(SPEC)
        ts.solve()
        assert ts.executor.factor_cache
        assert all(key[0] == "prefactorized" for key in ts.executor.factor_cache)

    def test_mid_run_material_update_still_invalidates(self):
        # The pre-existing lifecycle must survive the switch machinery.
        from repro.materials.library import snap_option1_library

        ts = TransportSolver(SPEC)
        ts.solve()
        assert ts.executor.factor_cache
        ts.update_materials(snap_option1_library(SPEC.num_groups, 0.3))
        assert not ts.executor.factor_cache

    def test_unknown_engine_name_is_rejected_without_touching_the_cache(self):
        ts = TransportSolver(SPEC)
        ts.solve()
        cached = dict(ts.executor.factor_cache)
        with pytest.raises(KeyError, match="unknown engine"):
            ts.executor.set_engine("no-such-engine")
        assert set(ts.executor.factor_cache) == set(cached)
        assert all(ts.executor.factor_cache[k] is v for k, v in cached.items())
        assert ts.executor.engine is get_engine("prefactorized")
