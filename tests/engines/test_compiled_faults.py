"""Fault injection for the compiled tier's soft-dependency contract.

The rule is *absent, never broken*: when no JIT provider can run (no numba,
no C compiler) the ``compiled`` engine must simply not register, every other
engine must work untouched, and asking for it by name must fail with an
actionable error naming the missing dependency -- not an obscure import
crash at sweep time.

Provider selection is memoised per process, so the absent-path tests run in
a fresh interpreter with ``UNSNAP_COMPILED_PROVIDER`` pinned; the in-process
tests only exercise pure selection logic via the test-reset hook.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import pytest

from repro.engines.compiled import providers

SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")


def _run_py(code: str, provider: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["UNSNAP_COMPILED_PROVIDER"] = provider
    env["PYTHONPATH"] = SRC
    return subprocess.run(
        [sys.executable, "-c", textwrap.dedent(code)],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )


class TestProviderAbsent:
    def test_engine_unlisted_and_error_names_install_hint(self):
        proc = _run_py(
            """
            from repro.engines import available_engines, get_engine

            names = available_engines()
            assert "compiled" not in names, names
            assert "prefactorized" in names  # the rest of the registry is fine
            for alias in ("compiled", "jit", "native"):
                try:
                    get_engine(alias)
                except KeyError as err:
                    message = str(err)
                    assert "numba" in message, message
                    assert "cffi" in message, message
                else:
                    raise AssertionError(f"get_engine({alias!r}) did not raise")
            print("OK")
            """,
            provider="off",
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout

    def test_runs_still_work_without_the_tier(self):
        proc = _run_py(
            """
            import repro
            from repro.config import ProblemSpec

            spec = ProblemSpec(nx=2, ny=2, nz=2, angles_per_octant=1,
                               num_groups=1, num_inners=1, num_outers=1)
            result = repro.run(spec.with_(engine="prefactorized"))
            assert result.scalar_flux.shape[0] == 8
            print("OK")
            """,
            provider="off",
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout

    def test_spec_naming_compiled_fails_cleanly(self):
        proc = _run_py(
            """
            import repro
            from repro.config import ProblemSpec

            spec = ProblemSpec(nx=2, ny=2, nz=2, angles_per_octant=1,
                               num_groups=1, num_inners=1, num_outers=1,
                               engine="compiled")
            try:
                repro.run(spec)
            except KeyError as err:
                assert "not available" in str(err), str(err)
                print("OK")
            else:
                raise AssertionError("run() with the absent engine did not raise")
            """,
            provider="off",
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout


class TestForcedProviders:
    def test_python_provider_is_a_working_escape_hatch(self):
        proc = _run_py(
            """
            import numpy as np
            import repro
            from repro.config import ProblemSpec
            from repro.engines import get_engine

            assert get_engine("compiled").provider_name == "python"
            spec = ProblemSpec(nx=2, ny=2, nz=2, angles_per_octant=1,
                               num_groups=1, num_inners=2, num_outers=1)
            compiled = repro.run(spec.with_(engine="compiled")).scalar_flux
            baseline = repro.run(spec.with_(engine="prefactorized")).scalar_flux
            np.testing.assert_allclose(compiled, baseline, rtol=1e-12, atol=0)
            print("OK")
            """,
            provider="python",
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout

    def test_forcing_a_missing_provider_reports_it(self, monkeypatch):
        monkeypatch.setenv("UNSNAP_COMPILED_PROVIDER", "numba")
        monkeypatch.setattr(providers, "_numba_available", lambda: False)
        providers._reset_selection_for_tests()
        try:
            assert providers.select_provider() is None
            reason = providers.unavailable_reason()
            assert "numba" in reason
        finally:
            providers._reset_selection_for_tests()
        # Back to the environment's real resolution for later tests.
        monkeypatch.delenv("UNSNAP_COMPILED_PROVIDER")
        assert providers.select_provider() is providers.select_provider()

    def test_unknown_override_value_raises(self, monkeypatch):
        monkeypatch.setenv("UNSNAP_COMPILED_PROVIDER", "rust")
        providers._reset_selection_for_tests()
        try:
            with pytest.raises(ValueError, match="rust"):
                providers.select_provider()
        finally:
            providers._reset_selection_for_tests()
            monkeypatch.delenv("UNSNAP_COMPILED_PROVIDER")
            providers.select_provider()
