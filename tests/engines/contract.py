"""Reusable engine-contract harness.

Every registered sweep engine -- built-in, the optional ``compiled`` tier,
or a third-party plugin -- must honour the same behavioural contract:

* **accuracy** -- the manufactured-solutions study observes the theoretical
  convergence order, and the flux agrees with the ``reference`` engine to
  conformance tolerance on a twisted multi-group problem;
* **factor-cache lifecycle** -- ``update_materials`` and ``set_engine``
  invalidate any memoised factors (no stale-factor reuse, bit-for-bit
  agreement with a freshly built solver);
* **determinism** -- octant-parallel execution is bit-for-bit identical
  across thread counts, including under a factor-cache budget;
* **observability is free** -- telemetry (even with bucket sampling at full
  rate) never changes a single bit of the numerics, and a budgeted
  factor cache stays within its byte budget while producing the identical
  flux (spilled factors are recomputed, never refused).

:class:`EngineContract` packages each clause as a ``check_*`` method so the
parametrised suite (``test_contract.py``) can run every clause against
every engine in ``available_engines()`` with no per-engine special-casing
-- adding an engine to the registry automatically subjects it to the full
contract.  (The tests tree is not a package; pytest's rootdir handling
puts this directory on ``sys.path``, so the suite imports the harness as
the top-level module ``contract``.)
"""

from __future__ import annotations

import numpy as np

import repro
from repro.config import ProblemSpec
from repro.core.solver import TransportSolver
from repro.engines import available_engines
from repro.materials.library import snap_option1_library
from repro.telemetry import Telemetry
from repro.verify.mms import FemMMSProblem, estimate_order

__all__ = ["EngineContract", "CONTRACT_SPEC"]

#: Small but non-trivial: twisted mesh, multi-group, scattering, several
#: buckets per angle -- enough structure to catch wrong coupling signs,
#: stale factors and cross-group mixups while staying fast-tier sized.
CONTRACT_SPEC = ProblemSpec(
    nx=3,
    ny=3,
    nz=3,
    angles_per_octant=2,
    num_groups=2,
    num_inners=3,
    num_outers=2,
)


class EngineContract:
    """All contract clauses for one engine name (see module docstring)."""

    def __init__(self, engine: str, spec: ProblemSpec = CONTRACT_SPEC):
        self.engine = engine
        self.spec = spec.with_(engine=engine)

    # ------------------------------------------------------------- accuracy
    def check_mms_order(self) -> None:
        """The engine observes the theoretical MMS convergence order."""
        estimate = estimate_order(
            FemMMSProblem(order=1, engine=self.engine), resolutions=(4, 8)
        )
        assert estimate.passed, (
            f"{self.engine}: observed order {estimate.observed_order:.3f} "
            f"vs theoretical {estimate.theoretical_order}"
        )

    def check_reference_agreement(self, tolerance: float = 1e-12) -> None:
        """Flux agrees with the reference engine to conformance tolerance."""
        flux = repro.run(self.spec).scalar_flux
        baseline = repro.run(self.spec.with_(engine="reference")).scalar_flux
        scale = float(np.max(np.abs(baseline)))
        diff = float(np.max(np.abs(flux - baseline))) / scale
        assert diff <= tolerance, f"{self.engine}: relative deviation {diff:.3e}"

    # -------------------------------------------------- factor-cache lifecycle
    def check_update_materials_invalidates(self) -> None:
        """Swapping cross sections mid-run never reuses stale factors."""
        solver = TransportSolver(self.spec)
        solver.solve()  # populate any factor cache
        replacement = snap_option1_library(self.spec.num_groups, 0.3)
        solver.update_materials(replacement)
        assert len(solver.executor.factor_cache) == 0, (
            f"{self.engine}: update_materials left factor-cache entries behind"
        )
        resolved = solver.solve().scalar_flux
        fresh = TransportSolver(self.spec, materials=replacement).solve().scalar_flux
        assert np.array_equal(resolved, fresh), (
            f"{self.engine}: post-update solve differs from a fresh solver "
            "(stale factors reused)"
        )

    def check_set_engine_invalidates(self) -> None:
        """Engine switches on a reused executor go through cache invalidation."""
        others = [name for name in available_engines() if name != self.engine]
        if not others:
            return
        solver = TransportSolver(self.spec)
        baseline = solver.solve().scalar_flux
        solver.set_engine(others[0])
        assert len(solver.executor.factor_cache) == 0, (
            f"{self.engine}: set_engine left factor-cache entries behind"
        )
        solver.solve()
        solver.set_engine(self.engine)
        assert len(solver.executor.factor_cache) == 0
        again = solver.solve().scalar_flux
        assert np.array_equal(baseline, again), (
            f"{self.engine}: solve after a round-trip engine switch differs"
        )

    # ---------------------------------------------------------- determinism
    def check_thread_invariance(self) -> None:
        """Octant-parallel sweeps are bit-identical across thread counts.

        The octant pool fixes its angle-reduction order, so within the
        octant-parallel mode the worker count must never change a bit (the
        serial non-octant loop is a *different* documented reduction order
        and is covered by :func:`check_reference_agreement` at tolerance).
        """
        single = repro.run(self.spec, num_threads=1, octant_parallel=True).scalar_flux
        for threads in (2, 3):
            parallel = repro.run(
                self.spec, num_threads=threads, octant_parallel=True
            ).scalar_flux
            assert np.array_equal(single, parallel), (
                f"{self.engine}: flux changed under octant_parallel x{threads}"
            )

    # -------------------------------------------------------- observability
    def check_telemetry_off_identity(self) -> None:
        """Telemetry -- even full-rate bucket sampling -- changes no bits.

        Includes the tracing extension: a telemetry instrument with an
        attached span exporter (every phase becomes a span event) must
        also reproduce the bare flux bit for bit, and the span file must
        actually carry the solve phases under one trace id.
        """
        import tempfile
        from pathlib import Path

        from repro.obs.trace import SpanExporter, read_spans

        bare = repro.run(self.spec).scalar_flux
        plain = Telemetry()
        sampled = Telemetry(bucket_sample_rate=1.0)
        assert np.array_equal(bare, repro.run(self.spec, telemetry=plain).scalar_flux)
        assert np.array_equal(bare, repro.run(self.spec, telemetry=sampled).scalar_flux)
        assert sampled.counters.get("bucket_samples", 0) >= 0  # counters exist or not,
        # but numerics above already proved identity either way.
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "contract.jsonl"
            with SpanExporter(path) as exporter:
                traced = Telemetry().attach_exporter(exporter)
                with exporter.span("contract"):
                    flux = repro.run(self.spec, telemetry=traced).scalar_flux
            assert np.array_equal(bare, flux), (
                f"{self.engine}: attached span exporter changed the flux"
            )
            spans = read_spans(path)
            names = {span["name"] for span in spans}
            assert "solve" in names, (
                f"{self.engine}: traced run exported no solve-phase span "
                f"(got {sorted(names)})"
            )
            assert len({span["trace_id"] for span in spans}) == 1, (
                f"{self.engine}: one traced run produced multiple trace ids"
            )

    def check_budget_bounded(self, budget_bytes: int = 100_000) -> None:
        """A budgeted factor cache spills and recomputes, never refuses,
        stays within budget and reproduces the unbudgeted flux bit for bit."""
        unbudgeted = repro.run(self.spec).scalar_flux
        telemetry = Telemetry()
        budgeted = repro.run(
            self.spec, telemetry=telemetry, factor_cache_budget_bytes=budget_bytes
        ).scalar_flux
        assert np.array_equal(unbudgeted, budgeted), (
            f"{self.engine}: budgeted flux differs from unbudgeted"
        )
        caching = telemetry.counters.get("factor_cache_misses", 0) > 0
        if caching:
            # Engines that memoise factors must report their cache bytes,
            # stay under the (deliberately tight) budget and actually spill.
            peak = telemetry.gauges.get("factor_cache_bytes")
            assert peak is not None, f"{self.engine}: no factor_cache_bytes gauge"
            assert peak <= budget_bytes, (
                f"{self.engine}: cache holds {peak} bytes over the "
                f"{budget_bytes}-byte budget"
            )
            assert telemetry.counters.get("factor_cache_spills", 0) > 0, (
                f"{self.engine}: tight budget produced no spills"
            )

    # ------------------------------------------------------------- umbrella
    def check_all(self) -> None:
        """Every clause, in one call (used by plugin smoke tests)."""
        self.check_mms_order()
        self.check_reference_agreement()
        self.check_update_materials_invalidates()
        self.check_set_engine_invalidates()
        self.check_thread_invariance()
        self.check_telemetry_off_identity()
        self.check_budget_bounded()
