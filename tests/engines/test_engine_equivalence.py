"""Property-style equivalence tests: the batched engines must match ``reference``.

The ``vectorized`` and ``prefactorized`` engines re-order floating-point
reductions (batched einsum, batched dense solves, cached LU factors) but
implement the identical discretisation, so their scalar flux must agree
with the per-element reference engine to roughly machine precision
(asserted at 1e-12 absolute / relative -- well inside the 1e-10 acceptance
bound) across element orders, boundary conditions, local solvers and the
block-Jacobi multi-rank path.
"""

import numpy as np
import pytest

import repro
from repro.angular.quadrature import snap_dummy_quadrature
from repro.config import BoundaryCondition, ProblemSpec
from repro.core.assembly import ElementMatrices
from repro.core.sweep import BoundaryValues, SweepExecutor
from repro.fem.element import HexElementFactors
from repro.fem.reference import ReferenceElement
from repro.materials.library import snap_option1_library
from repro.mesh.builder import StructuredGridSpec, build_snap_mesh
from repro.sweepsched.schedule import build_sweep_schedule

TOL = 1e-12

VACUUM = BoundaryCondition()
INCIDENT = BoundaryCondition(kind="incident", incident_flux=1.5)

#: The engines equivalence is asserted against ``reference`` for.
BATCHED_ENGINES = ("vectorized", "prefactorized")


def _sweep_pair(order, boundary, solver, engine="vectorized", halo_faces=None,
                boundary_values=None, num_groups=2, n=3):
    """Run one identical sweep with ``reference`` and ``engine``."""
    mesh = build_snap_mesh(StructuredGridSpec(n, n, n), max_twist=0.001)
    ref = ReferenceElement(order)
    factors = HexElementFactors.build(mesh.cell_vertices(), ref)
    matrices = ElementMatrices.build(factors, ref)
    quadrature = snap_dummy_quadrature(2)
    schedule = build_sweep_schedule(mesh, factors, quadrature)
    materials = snap_option1_library(num_groups).for_cells(mesh.num_cells)
    rng = np.random.default_rng(order * 101 + mesh.num_cells)
    source = rng.uniform(0.25, 2.0, size=(mesh.num_cells, num_groups, ref.num_nodes))
    results = {}
    for name in ("reference", engine):
        executor = SweepExecutor(
            mesh=mesh, factors=factors, ref=ref, matrices=matrices,
            schedule=schedule, quadrature=quadrature, materials=materials,
            boundary=boundary, solver=solver, engine=name,
            halo_faces=halo_faces,
        )
        results[name] = executor.sweep(source, boundary_values=boundary_values)
    return results["reference"], results[engine]


class TestSweepEquivalence:
    @pytest.mark.parametrize("engine", BATCHED_ENGINES)
    @pytest.mark.parametrize("order", (1, 2))
    @pytest.mark.parametrize("boundary", (VACUUM, INCIDENT), ids=("vacuum", "incident"))
    @pytest.mark.parametrize("solver", ("ge", "lapack"))
    def test_single_sweep_matches(self, order, boundary, solver, engine):
        ref, vec = _sweep_pair(order, boundary, solver, engine=engine)
        np.testing.assert_allclose(vec.scalar_flux, ref.scalar_flux, rtol=TOL, atol=TOL)
        np.testing.assert_allclose(vec.leakage, ref.leakage, rtol=TOL, atol=TOL)
        assert vec.timings.systems_solved == ref.timings.systems_solved

    @pytest.mark.parametrize("engine", BATCHED_ENGINES)
    def test_lagged_boundary_values_match(self, engine):
        # Mark two faces as rank boundaries and feed lagged traces, exercising
        # the block-Jacobi inflow path of both engines directly.
        halo = np.array([[0, 0, 1, 0], [1, 2, 2, 1]])
        bv = BoundaryValues()
        rng = np.random.default_rng(7)
        for angle in range(16):
            bv.put(0, 0, angle, rng.uniform(0.1, 1.0, size=(2, 8)))
            bv.put(1, 2, angle, rng.uniform(0.1, 1.0, size=(2, 8)))
        ref, vec = _sweep_pair(1, VACUUM, "ge", engine=engine,
                               halo_faces=halo, boundary_values=bv)
        np.testing.assert_allclose(vec.scalar_flux, ref.scalar_flux, rtol=TOL, atol=TOL)
        assert set(vec.outgoing_halo) == set(ref.outgoing_halo)
        for key, trace in ref.outgoing_halo.items():
            np.testing.assert_allclose(vec.outgoing_halo[key], trace, rtol=TOL, atol=TOL)


class TestFullSolveEquivalence:
    @pytest.mark.parametrize("engine", BATCHED_ENGINES)
    @pytest.mark.parametrize("order", (1, 2))
    @pytest.mark.parametrize("boundary", (VACUUM, INCIDENT), ids=("vacuum", "incident"))
    @pytest.mark.parametrize("solver", ("ge", "lapack"))
    def test_run_facade_matches(self, order, boundary, solver, engine):
        spec = ProblemSpec(
            nx=3, ny=3, nz=3, order=order, angles_per_octant=2, num_groups=2,
            max_twist=0.001, num_inners=3, num_outers=2, solver=solver,
            boundary=boundary,
        )
        ref = repro.run(spec, engine="reference")
        vec = repro.run(spec, engine=engine)
        np.testing.assert_allclose(vec.scalar_flux, ref.scalar_flux, rtol=TOL, atol=TOL)
        np.testing.assert_allclose(
            vec.cell_average_flux, ref.cell_average_flux, rtol=TOL, atol=TOL
        )
        assert vec.history.inner_errors == pytest.approx(ref.history.inner_errors, rel=1e-9)

    @pytest.mark.parametrize("engine", BATCHED_ENGINES)
    @pytest.mark.parametrize("solver", ("ge", "lapack"))
    def test_block_jacobi_2x2_matches(self, solver, engine):
        spec = ProblemSpec(
            nx=4, ny=4, nz=2, order=1, angles_per_octant=1, num_groups=2,
            max_twist=0.001, num_inners=4, num_outers=1, solver=solver,
            npex=2, npey=2,
        )
        ref = repro.run(spec, engine="reference")
        vec = repro.run(spec, engine=engine)
        assert ref.num_ranks == vec.num_ranks == 4
        assert ref.messages == vec.messages
        np.testing.assert_allclose(vec.scalar_flux, ref.scalar_flux, rtol=TOL, atol=TOL)
        np.testing.assert_allclose(vec.leakage, ref.leakage, rtol=TOL, atol=TOL)

    @pytest.mark.slow
    @pytest.mark.parametrize("engine", BATCHED_ENGINES)
    def test_block_jacobi_incident_boundary_matches(self, engine):
        # Incident domain boundaries + lagged rank boundaries together, over
        # an asymmetric rank grid and more inners: the heaviest cross-check.
        spec = ProblemSpec(
            nx=6, ny=4, nz=3, order=1, angles_per_octant=2, num_groups=3,
            max_twist=0.001, num_inners=6, num_outers=2,
            boundary=BoundaryCondition(kind="incident", incident_flux=0.7),
            npex=3, npey=2,
        )
        ref = repro.run(spec, engine="reference")
        vec = repro.run(spec, engine=engine)
        np.testing.assert_allclose(vec.scalar_flux, ref.scalar_flux, rtol=TOL, atol=TOL)
        np.testing.assert_allclose(
            vec.history.inner_errors, ref.history.inner_errors, rtol=1e-9
        )
