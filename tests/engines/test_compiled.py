"""The compiled engine tier: providers, kernel equivalence, budget races.

The portable Python kernel (:mod:`repro.engines.compiled.kernels`) is the
single source of truth; the cffi provider's C translation must reproduce it
*bit for bit* (same loop nests, ``-ffp-contract=off``), which is asserted
here on randomised data.  The remaining tests cover the provider selection
override and the interaction between a factor-cache budget (spills mid-run)
and ``update_materials`` (invalidation mid-run) -- the two must compose
without ever reusing a stale factor.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.config import ProblemSpec
from repro.core.solver import TransportSolver
from repro.engines import available_engines, get_engine
from repro.engines.compiled import providers
from repro.engines.compiled.kernels import sweep_bucket_kernel
from repro.materials.library import snap_option1_library
from repro.solvers.prefactor import batched_gaussian_lu_factor
from repro.telemetry import Telemetry

pytestmark = pytest.mark.skipif(
    "compiled" not in available_engines(),
    reason="no JIT provider (numba/cffi) available",
)

SMALL = ProblemSpec(nx=3, ny=3, nz=3, angles_per_octant=2, num_groups=2,
                    num_inners=3, num_outers=2, engine="compiled")


def _random_kernel_inputs(rng, num_cells=5, batch=3, groups=2, nodes=4, couplings=4):
    """Well-conditioned random data exercising both kernel phases."""
    bucket = np.asarray(rng.choice(num_cells, size=batch, replace=False), dtype=np.int64)
    mass = rng.standard_normal((batch, nodes, nodes))
    source = rng.standard_normal((num_cells, groups, nodes))
    cpl_pos = np.asarray(rng.integers(0, batch, size=couplings), dtype=np.int64)
    cpl_src = np.asarray(rng.integers(0, num_cells, size=couplings), dtype=np.int64)
    cpl_mat = rng.standard_normal((couplings, nodes, nodes))
    systems = rng.standard_normal((batch * groups, nodes, nodes))
    systems += nodes * np.eye(nodes)  # diagonally dominant: safe pivots
    lu, piv = batched_gaussian_lu_factor(systems)
    rhs = np.zeros((batch, groups, nodes))
    psi = rng.standard_normal((num_cells, groups, nodes))
    return dict(
        bucket=bucket,
        mass=np.ascontiguousarray(mass),
        source=np.ascontiguousarray(source),
        cpl_pos=cpl_pos,
        cpl_src=cpl_src,
        cpl_mat=np.ascontiguousarray(cpl_mat),
        lu=np.ascontiguousarray(lu),
        piv=np.ascontiguousarray(piv),
        rhs=rhs,
        psi=np.ascontiguousarray(psi),
    )


class TestProviders:
    def test_a_provider_is_selected(self):
        provider = providers.select_provider()
        assert provider is not None
        assert provider.name in ("numba", "cffi", "python")
        assert get_engine("compiled").provider_name == provider.name

    def test_engine_aliases_resolve(self):
        engine = get_engine("compiled")
        assert get_engine("jit") is engine
        assert get_engine("native") is engine

    @pytest.mark.skipif(not providers._cffi_available(), reason="cffi/cc missing")
    def test_cffi_kernel_matches_python_kernel_bit_for_bit(self):
        """The C translation is line-for-line: identical IEEE arithmetic."""
        c_kernel = providers._build_cffi_kernel()
        rng = np.random.default_rng(42)
        for assemble in (1, 0):
            for trial in range(5):
                data = _random_kernel_inputs(rng)
                if assemble == 0:
                    data["rhs"] = rng.standard_normal(data["rhs"].shape)
                py = {k: np.copy(v) for k, v in data.items()}
                sweep_bucket_kernel(
                    py["bucket"], py["mass"], py["source"], py["cpl_pos"],
                    py["cpl_src"], py["cpl_mat"], py["lu"], py["piv"],
                    py["rhs"], assemble, py["psi"],
                )
                cc = {k: np.copy(v) for k, v in data.items()}
                c_kernel(
                    cc["bucket"], cc["mass"], cc["source"], cc["cpl_pos"],
                    cc["cpl_src"], cc["cpl_mat"], cc["lu"], cc["piv"],
                    cc["rhs"], assemble, cc["psi"],
                )
                np.testing.assert_array_equal(py["psi"], cc["psi"])
                np.testing.assert_array_equal(py["rhs"], cc["rhs"])

    def test_cffi_module_cache_is_reused(self):
        if providers.select_provider().name != "cffi":
            pytest.skip("resolved provider is not cffi")
        # Loading twice must come from the on-disk cache: same module file.
        first = providers._compile_cffi_module()
        second = providers._compile_cffi_module()
        assert first.__file__ == second.__file__


class TestCompiledEngineBehaviour:
    def test_flux_matches_prefactorized_to_tolerance(self):
        compiled = repro.run(SMALL).scalar_flux
        baseline = repro.run(SMALL.with_(engine="prefactorized")).scalar_flux
        np.testing.assert_allclose(compiled, baseline, rtol=1e-12, atol=0)

    def test_factor_cache_entries_are_engine_namespaced(self):
        solver = TransportSolver(SMALL)
        solver.solve()
        keys = list(solver.executor.factor_cache)
        assert keys and all(key[0] == "compiled" for key in keys)

    def test_reflective_and_incident_boundaries(self):
        from repro.config import BoundaryCondition

        for boundary in (
            BoundaryCondition(kind="reflective"),
            BoundaryCondition(kind="incident", incident_flux=1.5),
        ):
            spec = SMALL.with_(boundary=boundary)
            compiled = repro.run(spec).scalar_flux
            baseline = repro.run(spec.with_(engine="prefactorized")).scalar_flux
            np.testing.assert_allclose(compiled, baseline, rtol=1e-12, atol=0)


class TestBudgetSpillVsInvalidation:
    """Cache spills and mid-run invalidation must compose: an entry evicted
    by the budget and rebuilt after ``update_materials`` must always factor
    against the *current* cross sections."""

    @pytest.mark.parametrize("engine", ("prefactorized", "compiled"))
    def test_no_stale_factors_after_update_under_budget(self, engine):
        spec = SMALL.with_(engine=engine)
        telemetry = Telemetry()
        solver = TransportSolver(spec, telemetry=telemetry)
        solver.executor.factor_cache.budget_bytes = 60_000
        solver.solve()
        assert telemetry.counters.get("factor_cache_spills", 0) > 0

        replacement = snap_option1_library(spec.num_groups, 0.3)
        solver.update_materials(replacement)
        assert len(solver.executor.factor_cache) == 0
        resolved = solver.solve().scalar_flux

        fresh = TransportSolver(spec, materials=replacement).solve().scalar_flux
        np.testing.assert_array_equal(resolved, fresh)

    @pytest.mark.parametrize("engine", ("prefactorized", "compiled"))
    def test_update_between_every_sweep_under_budget(self, engine):
        """Alternate materials every solve with a budget tight enough to
        spill constantly; each solve must equal its fresh-solver twin."""
        spec = SMALL.with_(engine=engine)
        solver = TransportSolver(spec)
        solver.executor.factor_cache.budget_bytes = 40_000
        libraries = [
            snap_option1_library(spec.num_groups, ratio) for ratio in (0.5, 0.2, 0.8)
        ]
        for library in libraries:
            solver.update_materials(library)
            got = solver.solve().scalar_flux
            want = TransportSolver(spec, materials=library).solve().scalar_flux
            np.testing.assert_array_equal(got, want)
