"""Tests for the prefactorized engine's factor cache and octant parallelism.

Two properties matter beyond plain engine equivalence (covered by
``test_engine_equivalence``):

* the LU factor cache must be *correct under change* -- reused while the
  cross sections are fixed, invalidated (and only then) when they change
  mid-run through the ``update_materials`` lifecycle hooks;
* octant-parallel execution must be deterministic -- the scalar flux is
  bit-for-bit identical whatever ``num_threads`` is, because the per-octant
  partial reductions are combined in a fixed order.
"""

import numpy as np
import pytest

import repro
from repro.core.solver import TransportSolver
from repro.engines import get_engine
from repro.materials.cross_sections import MaterialLibrary
from repro.materials.library import pure_absorber, snap_option1_library
from repro.parallel.block_jacobi import BlockJacobiDriver

SPEC = repro.ProblemSpec(
    nx=3, ny=3, nz=3, angles_per_octant=2, num_groups=2,
    max_twist=0.001, num_inners=3, num_outers=2,
)

ABSORBER = MaterialLibrary(materials=[pure_absorber(2, sigma_t=2.5)])


class TestFactorCacheLifecycle:
    def test_aliases(self):
        engine = get_engine("prefactorized")
        assert get_engine("lu") is engine
        assert get_engine("prefactor") is engine
        assert get_engine("factor-cache") is engine

    def test_cache_populated_and_reused(self):
        solver = TransportSolver(SPEC, engine="prefactorized")
        executor = solver.executor
        assert len(executor.factor_cache) == 0
        first = solver.solve()
        populated = len(executor.factor_cache)
        assert populated > 0
        # A second solve reuses the factors (same entries, same epoch) and
        # reproduces the fresh-cache result exactly.
        second = solver.solve()
        assert len(executor.factor_cache) == populated
        assert executor.factor_epoch == 0
        np.testing.assert_array_equal(second.scalar_flux, first.scalar_flux)

    def test_invalidate_bumps_epoch_and_clears(self):
        solver = TransportSolver(SPEC, engine="prefactorized")
        solver.solve()
        assert len(solver.executor.factor_cache) > 0
        solver.invalidate_factor_cache()
        assert len(solver.executor.factor_cache) == 0
        assert solver.executor.factor_epoch == 1

    def test_stale_cache_detected_by_invalidation(self):
        """The cache really is reused: mutating sigma_t without invalidating
        keeps the old factors, and invalidating picks the mutation up."""
        solver = TransportSolver(SPEC, engine="prefactorized")
        executor = solver.executor
        stale = solver.solve()
        # Mutate the cross sections behind the cache's back: sigma_t only
        # enters through the cached factors, so the mutation is invisible
        # while the cache lives...
        executor.sigma_t = executor.sigma_t * 2.0
        behind_back = solver.solve()
        np.testing.assert_array_equal(behind_back.scalar_flux, stale.scalar_flux)
        # ...and takes effect exactly when the cache is invalidated.
        executor.invalidate_factor_cache()
        refreshed = solver.solve()
        assert not np.allclose(refreshed.scalar_flux, stale.scalar_flux, rtol=1e-3)

    def test_update_materials_matches_fresh_solver(self):
        solver = TransportSolver(SPEC, engine="prefactorized")
        before = solver.solve()
        solver.update_materials(ABSORBER)
        assert len(solver.executor.factor_cache) == 0
        after = solver.solve()
        fresh = TransportSolver(SPEC, materials=ABSORBER, engine="prefactorized").solve()
        np.testing.assert_array_equal(after.scalar_flux, fresh.scalar_flux)
        reference = TransportSolver(SPEC, materials=ABSORBER, engine="reference").solve()
        np.testing.assert_allclose(
            after.scalar_flux, reference.scalar_flux, rtol=1e-10, atol=1e-10
        )
        # The update genuinely changed the physics.
        assert not np.allclose(after.scalar_flux, before.scalar_flux, rtol=1e-3)

    def test_update_materials_rejects_group_mismatch(self):
        solver = TransportSolver(SPEC, engine="prefactorized")
        with pytest.raises(ValueError, match="groups"):
            solver.update_materials(snap_option1_library(5))

    def test_block_jacobi_update_materials(self):
        spec = SPEC.with_(nx=4, npex=2)
        driver = BlockJacobiDriver(spec, engine="prefactorized")
        driver.solve()
        assert all(len(e.factor_cache) > 0 for e in driver.executors)
        driver.update_materials(ABSORBER)
        assert all(len(e.factor_cache) == 0 for e in driver.executors)
        updated = driver.solve()
        fresh = BlockJacobiDriver(spec, materials=ABSORBER, engine="prefactorized").solve()
        np.testing.assert_array_equal(updated.scalar_flux, fresh.scalar_flux)

    def test_block_jacobi_invalidate_all_ranks(self):
        spec = SPEC.with_(nx=4, npex=2)
        driver = BlockJacobiDriver(spec, engine="prefactorized")
        driver.solve()
        driver.invalidate_factor_caches()
        assert all(len(e.factor_cache) == 0 for e in driver.executors)
        assert all(e.factor_epoch == 1 for e in driver.executors)


class TestOctantParallelDeterminism:
    @pytest.mark.parametrize("engine", ("prefactorized", "vectorized", "reference"))
    def test_bit_for_bit_across_thread_counts(self, engine):
        results = [
            repro.run(SPEC, engine=engine, octant_parallel=True, num_threads=threads)
            for threads in (1, 2, 5, 8)
        ]
        for other in results[1:]:
            np.testing.assert_array_equal(other.scalar_flux, results[0].scalar_flux)
            np.testing.assert_array_equal(other.leakage, results[0].leakage)

    @pytest.mark.parametrize("engine", ("prefactorized", "vectorized"))
    def test_octant_parallel_matches_serial(self, engine):
        serial = repro.run(SPEC, engine=engine)
        parallel = repro.run(SPEC, engine=engine, octant_parallel=True, num_threads=4)
        np.testing.assert_allclose(
            parallel.scalar_flux, serial.scalar_flux, rtol=1e-12, atol=1e-12
        )
        np.testing.assert_allclose(parallel.leakage, serial.leakage, rtol=1e-12, atol=1e-12)
        assert parallel.timings.systems_solved == serial.timings.systems_solved

    def test_spec_flag_drives_octant_parallel(self):
        flagged = repro.run(SPEC.with_(octant_parallel=True), engine="prefactorized",
                            num_threads=4)
        explicit = repro.run(SPEC, engine="prefactorized", octant_parallel=True,
                             num_threads=4)
        np.testing.assert_array_equal(flagged.scalar_flux, explicit.scalar_flux)

    def test_octant_parallel_block_jacobi(self):
        spec = SPEC.with_(nx=4, npex=2, octant_parallel=True)
        parallel = repro.run(spec, engine="prefactorized", num_threads=4)
        serial = repro.run(spec.with_(octant_parallel=False), engine="prefactorized")
        assert parallel.num_ranks == serial.num_ranks == 2
        np.testing.assert_allclose(
            parallel.scalar_flux, serial.scalar_flux, rtol=1e-12, atol=1e-12
        )

    def test_octant_parallel_stores_angular_flux(self):
        # The bank slots of different angles are written concurrently but are
        # disjoint: across thread counts the bank is bit-for-bit identical,
        # and against the serial path it agrees to reduction-order noise.
        serial = repro.run(SPEC, engine="prefactorized", store_angular_flux=True)
        one, four = (
            repro.run(SPEC, engine="prefactorized", octant_parallel=True,
                      num_threads=threads, store_angular_flux=True)
            for threads in (1, 4)
        )
        assert four.angular_flux is not None
        np.testing.assert_array_equal(four.angular_flux.psi, one.angular_flux.psi)
        np.testing.assert_allclose(
            four.angular_flux.psi, serial.angular_flux.psi, rtol=1e-12, atol=1e-12
        )

    def test_element_threads_collapse_under_octant_parallel(self):
        solver = TransportSolver(SPEC, engine="reference", num_threads=4,
                                 octant_parallel=True)
        assert solver.executor.num_threads == 4
        assert solver.executor.element_threads == 1
        serial = TransportSolver(SPEC, engine="reference", num_threads=4)
        assert serial.executor.element_threads == 4
