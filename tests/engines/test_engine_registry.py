"""Tests for the sweep-engine registry and the solver-registry extension point."""

import numpy as np
import pytest

import repro
from repro.engines import (
    available_engines,
    engine_aliases,
    engine_descriptions,
    engine_listing,
    get_engine,
    register_engine,
    unregister_engine,
)
from repro.engines.base import SweepEngine
from repro.registry import Registry
from repro.solvers import (
    LocalSolver,
    available_solvers,
    register_solver,
    solver_aliases,
    solver_descriptions,
    solver_listing,
    unregister_solver,
)

SMALL = repro.ProblemSpec(nx=2, ny=2, nz=2, angles_per_octant=1, num_groups=1,
                          num_inners=1, num_outers=1)


class TestGenericRegistry:
    """The shared name+alias mechanics both subsystems build on."""

    def test_add_resolve_aliases(self):
        reg = Registry("widget")
        reg.add("alpha", object(), aliases=("a", "first"))
        assert reg.available() == ["alpha"]
        assert reg.aliases_of("alpha") == ["a", "first"]
        assert reg.resolve("A") is reg.resolve("alpha")
        assert "first" in reg and "alpha" in reg and "nope" not in reg
        assert len(reg) == 1 and list(reg) == ["alpha"]

    def test_conflict_leaves_no_partial_state(self):
        reg = Registry("widget")
        reg.add("alpha", object(), aliases=("a",))
        with pytest.raises(ValueError, match="'a'"):
            reg.add("beta", object(), aliases=("b", "a"))
        assert "beta" not in reg and "b" not in reg

    def test_overwrite_drops_old_aliases(self):
        reg = Registry("widget")
        reg.add("alpha", object(), aliases=("a",))
        new = object()
        reg.add("alpha", new, aliases=("aa",), overwrite=True)
        assert reg.resolve("aa") is new
        with pytest.raises(KeyError, match="widget"):
            reg.resolve("a")

    def test_overwrite_through_alias_of_other_item_rejected(self):
        # Overwriting via another registration's *alias* must not silently
        # delete that registration.
        reg = Registry("widget")
        survivor = object()
        reg.add("alpha", survivor, aliases=("a",))
        with pytest.raises(ValueError, match="alias"):
            reg.add("a", object(), overwrite=True)
        assert reg.resolve("alpha") is survivor
        assert reg.resolve("a") is survivor

    def test_overwrite_cannot_steal_foreign_alias(self):
        reg = Registry("widget")
        reg.add("alpha", object(), aliases=("a",))
        reg.add("beta", object())
        with pytest.raises(ValueError, match="'a'"):
            reg.add("beta", object(), aliases=("a",), overwrite=True)
        # beta was removed as part of the overwrite attempt, but alpha's
        # alias table is untouched.
        assert reg.resolve("a") is reg.resolve("alpha")

    def test_remove_unknown_is_noop(self):
        Registry("widget").remove("ghost")

    def test_listing_uses_description_attribute(self):
        reg = Registry("widget")
        reg.add("alpha", type("W", (), {"description": "a widget"})(), aliases=("a",))
        assert reg.descriptions() == [("alpha", "a widget")]
        assert reg.listing() == [("alpha", "a", "a widget")]


class TestEngineRegistry:
    def test_builtin_engines_registered(self):
        assert "reference" in available_engines()
        assert "vectorized" in available_engines()
        assert "prefactorized" in available_engines()

    def test_aliases_resolve(self):
        assert get_engine("loop") is get_engine("reference")
        assert get_engine("vec") is get_engine("vectorized")
        assert get_engine("BATCHED") is get_engine("vectorized")
        assert get_engine("lu") is get_engine("prefactorized")

    def test_alias_listing(self):
        assert engine_aliases("vectorized") == ["batched", "vec"]
        assert engine_aliases("prefactorized") == ["factor-cache", "lu", "prefactor"]
        rows = {name: aliases for name, aliases, _desc in engine_listing()}
        assert "vec" in rows["vectorized"]
        assert "lu" in rows["prefactorized"]

    def test_instances_pass_through(self):
        engine = get_engine("reference")
        assert get_engine(engine) is engine

    def test_unknown_engine_raises_with_listing(self):
        with pytest.raises(KeyError, match="vectorized"):
            get_engine("no-such-engine")

    def test_non_engine_object_rejected(self):
        with pytest.raises(TypeError):
            get_engine(object())

    def test_engines_satisfy_protocol(self):
        for name in available_engines():
            assert isinstance(get_engine(name), SweepEngine)

    def test_descriptions_are_nonempty(self):
        for name, description in engine_descriptions():
            assert name and description

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_engine("reference")(type("X", (), {"sweep_angle": lambda *a: None}))

    def test_registering_non_engine_rejected(self):
        with pytest.raises(TypeError):
            register_engine("bogus-thing")(type("X", (), {}))

    def test_alias_conflict_leaves_no_partial_registration(self):
        with pytest.raises(ValueError, match="vec"):
            # "vec" is already an alias of the vectorized engine.
            register_engine("fresh-name", aliases=("vec",))(
                type("X", (), {"sweep_angle": lambda *a: None})
            )
        assert "fresh-name" not in available_engines()
        with pytest.raises(KeyError):
            get_engine("fresh-name")

    def test_whitespace_docstring_gets_empty_description(self):
        @register_engine("blank-doc")
        class BlankDoc:
            "\n   "

            def sweep_angle(self, *args):  # pragma: no cover - never called
                raise NotImplementedError

        try:
            assert get_engine("blank-doc").description == ""
        finally:
            unregister_engine("blank-doc")


class TestThirdPartyEngine:
    """A decorator-registered engine must be dispatchable by name end to end."""

    @pytest.fixture()
    def tattling_engine(self):
        calls = []

        @register_engine("tattling", aliases=("tattle",))
        class TattlingEngine:
            """Reference engine that records every angle it sweeps."""

            def sweep_angle(self, executor, angle, total_source, boundary_values,
                            incident, timings):
                calls.append(angle)
                return get_engine("reference").sweep_angle(
                    executor, angle, total_source, boundary_values, incident, timings
                )

        yield calls
        unregister_engine("tattling")

    def test_dispatch_through_run(self, tattling_engine):
        result = repro.run(SMALL, engine="tattling")
        assert result.engine == "tattling"
        assert len(tattling_engine) == SMALL.num_angles
        assert np.all(result.scalar_flux > 0)

    def test_dispatch_through_spec_engine_field(self, tattling_engine):
        result = repro.run(SMALL.with_(engine="tattling"))
        assert result.engine == "tattling"
        assert tattling_engine

    def test_dispatch_through_cli(self, tattling_engine, capsys):
        from repro.cli import main

        code = main(["run", "--nx", "2", "--ny", "2", "--nz", "2", "--nang", "1",
                     "--groups", "1", "--inners", "1", "--engine", "tattling"])
        assert code == 0
        assert "tattling" in capsys.readouterr().out
        assert tattling_engine

    def test_unregister_removes_engine(self):
        @register_engine("ephemeral")
        class Ephemeral:
            def sweep_angle(self, *args):  # pragma: no cover - never called
                raise NotImplementedError

        assert "ephemeral" in available_engines()
        unregister_engine("ephemeral")
        assert "ephemeral" not in available_engines()
        with pytest.raises(KeyError):
            get_engine("ephemeral")


class TestSolverRegistryExtension:
    def test_register_and_solve_through_run(self):
        lapack = repro.get_solver("lapack")
        register_solver(
            LocalSolver(name="counting", description="lapack with a call counter",
                        solve=lapack.solve, solve_batched=lapack.solve_batched),
            aliases=("count",),
        )
        try:
            assert "counting" in available_solvers()
            assert repro.get_solver("count").name == "counting"
            result = repro.run(SMALL.with_(solver="counting"))
            assert result.solver == "counting"
            assert np.all(result.scalar_flux > 0)
        finally:
            unregister_solver("counting")
        assert "counting" not in available_solvers()

    def test_duplicate_solver_name_rejected(self):
        ge = repro.get_solver("ge")
        with pytest.raises(ValueError):
            register_solver(ge)

    def test_solver_descriptions(self):
        names = [n for n, _ in solver_descriptions()]
        assert names == sorted(available_solvers())

    def test_solver_alias_listing(self):
        assert solver_aliases("ge") == ["gauss", "gaussian", "handwritten"]
        assert solver_aliases("lapack") == ["dgesv", "mkl", "numpy"]
        rows = {name: aliases for name, aliases, _desc in solver_listing()}
        assert "mkl" in rows["lapack"]

    def test_builtin_solvers_support_prefactorisation(self):
        assert repro.get_solver("ge").supports_prefactorisation
        assert repro.get_solver("lapack").supports_prefactorisation
