"""Tests for the table/figure generators and text reporting."""

import pytest

from repro.analysis.figures import (
    PAPER_THREAD_COUNTS,
    block_jacobi_convergence_series,
    figure3_series,
    figure4_series,
)
from repro.analysis.reporting import format_scaling_series, format_table
from repro.analysis.tables import (
    fd_vs_fem_comparison,
    table1_matrix_sizes,
    table2_solver_comparison,
)
from repro.config import ProblemSpec


class TestTable1:
    def test_matches_paper_exactly(self):
        rows = table1_matrix_sizes()
        sizes = [(r.order, r.matrix_size) for r in rows]
        assert sizes == [(1, 8), (2, 27), (3, 64), (4, 125), (5, 216)]
        footprints = [round(r.footprint_kb, 1) for r in rows]
        assert footprints == [0.5, 5.7, 32.0, 122.1, 364.5]

    def test_custom_orders(self):
        rows = table1_matrix_sizes(orders=(2, 6))
        assert rows[1].matrix_size == 343


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        spec = ProblemSpec(nx=3, ny=3, nz=3, angles_per_octant=1, num_groups=2,
                           num_inners=1, num_outers=1, max_twist=0.001)
        return table2_solver_comparison(orders=(1, 2), base_spec=spec)

    def test_row_structure(self, rows):
        assert len(rows) == 4  # 2 orders x 2 solvers
        assert {r.solver for r in rows} == {"ge", "lapack"}
        assert all(r.assemble_solve_seconds > 0 for r in rows)
        assert all(0 <= r.solve_fraction <= 1 for r in rows)

    def test_higher_order_costs_more(self, rows):
        per_order = {}
        for r in rows:
            per_order.setdefault(r.order, []).append(r.assemble_solve_seconds)
        assert min(per_order[2]) > min(per_order[1])

    def test_as_tuple_formatting(self, rows):
        tup = rows[0].as_tuple()
        assert tup[0] == 1 and tup[1] in ("ge", "lapack")
        assert tup[3].endswith("%")


class TestFdVsFem:
    def test_agreement_and_ratios(self):
        report = fd_vs_fem_comparison(n=4, num_groups=2, angles_per_octant=2, num_inners=15)
        # The two discretisations of the same problem agree to within a few
        # per cent on this coarse mesh, and the FEM memory/work overheads
        # match the Section II-C discussion (8x memory for linear elements).
        assert report["mean_relative_flux_difference"] < 0.05
        assert report["fem_memory_ratio"] == 8.0
        assert report["fem_to_fd_work_ratio"] > 10.0


class TestFigures:
    @pytest.fixture(scope="class")
    def fig3(self):
        return figure3_series(thread_counts=(1, 4, 14, 56))

    @pytest.fixture(scope="class")
    def fig4(self):
        return figure4_series(thread_counts=(1, 4, 14, 56))

    def test_series_structure(self, fig3):
        assert len(fig3.series) == 6
        assert all(len(v) == 4 for v in fig3.series.values())
        assert fig3.order == 1

    def test_all_schemes_speed_up(self, fig3):
        for label in fig3.series:
            assert fig3.speedup(label) > 2.0

    def test_element_major_collapse_fastest_at_56(self, fig3):
        fastest = fig3.fastest_at(56)
        assert "element" in fastest and "*group*" in fastest

    def test_cubic_much_slower_than_linear(self, fig3, fig4):
        best3 = min(v[-1] for v in fig3.series.values())
        best4 = min(v[-1] for v in fig4.series.values())
        assert best4 > 10 * best3

    def test_group_major_layout_penalty_larger_for_linear(self, fig3, fig4):
        # Section IV-A.2: the angle/group/element layout is only competitive
        # for cubic elements; for linear it is clearly slower.
        def layout_ratio(series):
            elem = min(v[-1] for k, v in series.items()
                       if k.startswith("angle/*element*") or k.startswith("angle/element"))
            group = min(v[-1] for k, v in series.items()
                        if "/element" in k.split("angle/")[1][:20]
                        and k.startswith("angle/*group*") or k.startswith("angle/group"))
            return group / elem

        assert layout_ratio(fig3.series) >= layout_ratio(fig4.series) - 1e-9

    def test_paper_thread_counts(self):
        assert PAPER_THREAD_COUNTS == (1, 2, 4, 8, 14, 28, 56)


class TestBlockJacobiSeries:
    def test_convergence_histories(self):
        spec = ProblemSpec(nx=4, ny=4, nz=2, order=1, angles_per_octant=1,
                           num_groups=1, num_inners=6, num_outers=1)
        histories = block_jacobi_convergence_series(
            rank_grids=((1, 1), (2, 2)), base_spec=spec
        )
        assert set(histories) == {"1x1 ranks", "2x2 ranks"}
        assert len(histories["1x1 ranks"]) == 6
        # More Jacobi blocks -> larger residual change after the same inners.
        assert histories["2x2 ranks"][-1] >= histories["1x1 ranks"][-1]


class TestReporting:
    def test_format_table_alignment_and_title(self):
        text = format_table(("a", "bb"), [(1, 2.5), (10, 0.001)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_row_length_check(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_format_scaling_series(self):
        text = format_scaling_series([1, 2], {"s1": [3.0, 1.5]}, title="F")
        assert "1 thr" in text and "3.00s" in text
        with pytest.raises(ValueError):
            format_scaling_series([1, 2], {"s1": [3.0]})
