"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fem.element import ElementGeometry, HexElementFactors, corner_reference_coords
from repro.fem.lagrange import LagrangeHexBasis
from repro.fem.reference import ReferenceElement
from repro.materials.library import snap_option1_materials
from repro.mesh.builder import StructuredGridSpec, build_snap_mesh
from repro.mesh.connectivity import build_connectivity_from_faces, validate_connectivity
from repro.mesh.partition import partition_kba, split_counts
from repro.solvers.gaussian import batched_gaussian_solve, gaussian_elimination_solve
from repro.sweepsched.graph import classify_faces
from repro.sweepsched.schedule import build_sweep_schedule
from repro.sweepsched.tlevel import buckets_from_tlevels, compute_tlevels
from repro.angular.quadrature import snap_dummy_quadrature


# --------------------------------------------------------------------- solvers
@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_gaussian_solver_matches_numpy_on_random_systems(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n)) + 2.0 * n * np.eye(n)
    b = rng.normal(size=n)
    x = gaussian_elimination_solve(a, b)
    assert np.allclose(a @ x, b, atol=1e-8)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=8),
    batch=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_batched_gaussian_solver_residuals_vanish(n, batch, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(batch, n, n)) + 2.0 * n * np.eye(n)[None]
    b = rng.normal(size=(batch, n))
    x = batched_gaussian_solve(a, b)
    assert np.allclose(np.einsum("bij,bj->bi", a, x), b, atol=1e-8)


# ------------------------------------------------------------------- FE basis
@settings(max_examples=15, deadline=None)
@given(
    order=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_lagrange_interpolation_reproduces_trilinear_polynomials(order, seed):
    rng = np.random.default_rng(seed)
    basis = LagrangeHexBasis(order)
    coeffs = rng.normal(size=8)
    corners = corner_reference_coords()

    def f(points):
        x, y, z = points[:, 0], points[:, 1], points[:, 2]
        vals = np.zeros(points.shape[0])
        for c, (cx, cy, cz) in zip(coeffs, corners):
            vals += c * (1 + cx * x) * (1 + cy * y) * (1 + cz * z)
        return vals

    nodal = f(basis.node_coords)
    points = rng.uniform(-1.0, 1.0, size=(10, 3))
    assert np.allclose(basis.interpolate(nodal, points), f(points), atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    order=st.integers(min_value=1, max_value=2),
)
def test_randomly_perturbed_hexahedra_keep_geometric_identities(seed, order):
    # Any mild perturbation of the unit cube keeps positive Jacobians, unit
    # normals, and a mass matrix whose entries sum to the element volume.
    rng = np.random.default_rng(seed)
    ref = ReferenceElement(order)
    base = (corner_reference_coords() + 1.0) / 2.0
    verts = base + rng.uniform(-0.08, 0.08, size=(8, 3))
    factors = HexElementFactors.build(verts[None], ref)
    assert factors.volumes[0] > 0
    assert np.allclose(np.linalg.norm(factors.face_normals[0], axis=-1), 1.0, atol=1e-12)
    geo = ElementGeometry(verts)
    assert factors.volumes[0] == pytest.approx(geo.volume(ref), rel=1e-12)
    mass_total = float(
        np.einsum("q,qi,qj->", factors.vol_weights[0], ref.phi_vol, ref.phi_vol)
    )
    assert mass_total == pytest.approx(factors.volumes[0], rel=1e-10)


# ----------------------------------------------------------------------- mesh
mesh_dims = st.tuples(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
)


@settings(max_examples=15, deadline=None)
@given(dims=mesh_dims, twist=st.floats(min_value=0.0, max_value=0.02))
def test_mesh_builder_invariants(dims, twist):
    nx, ny, nz = dims
    mesh = build_snap_mesh(StructuredGridSpec(nx, ny, nz), max_twist=twist)
    assert mesh.num_cells == nx * ny * nz
    assert validate_connectivity(mesh) == []
    assert np.array_equal(build_connectivity_from_faces(mesh.cells), mesh.face_neighbors)
    boundary = mesh.boundary_faces().shape[0]
    assert boundary == 2 * (nx * ny + ny * nz + nx * nz)


@settings(max_examples=15, deadline=None)
@given(
    dims=mesh_dims,
    npex=st.integers(min_value=1, max_value=3),
    npey=st.integers(min_value=1, max_value=3),
)
def test_partition_conserves_cells_and_halos_are_symmetric(dims, npex, npey):
    nx, ny, nz = dims
    if npex > nx or npey > ny:
        return  # infeasible processor grid for this mesh
    mesh = build_snap_mesh(StructuredGridSpec(nx, ny, nz))
    decomp = partition_kba(mesh, npex, npey)
    assert sum(s.num_cells for s in decomp.subdomains) == mesh.num_cells
    seen = set()
    for sub in decomp.subdomains:
        for cell, face, remote_rank, remote_cell in sub.halo_faces.tolist():
            seen.add((sub.rank, cell, face, remote_rank, remote_cell))
    for rank, cell, face, remote_rank, remote_cell in seen:
        assert (remote_rank, remote_cell, face ^ 1, rank, cell) in seen


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=1, max_value=50), parts=st.integers(min_value=1, max_value=10))
def test_split_counts_partitions_evenly(n, parts):
    if parts > n:
        return
    counts = split_counts(n, parts)
    assert counts.sum() == n
    assert counts.max() - counts.min() <= 1


# ------------------------------------------------------------------- schedule
@settings(max_examples=15, deadline=None)
@given(
    dims=mesh_dims,
    twist=st.floats(min_value=0.0, max_value=0.01),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_random_direction_schedules_are_valid_topological_orders(dims, twist, seed):
    nx, ny, nz = dims
    rng = np.random.default_rng(seed)
    mesh = build_snap_mesh(StructuredGridSpec(nx, ny, nz), max_twist=twist)
    ref = ReferenceElement(1)
    factors = HexElementFactors.build(mesh.cell_vertices(), ref)
    direction = rng.normal(size=3)
    while np.any(np.abs(direction) < 1e-3):
        direction = rng.normal(size=3)
    direction /= np.linalg.norm(direction)
    cls = classify_faces(factors, direction)
    tlevels = compute_tlevels(mesh, cls)
    buckets = buckets_from_tlevels(tlevels)
    assert np.array_equal(np.sort(np.concatenate(buckets)), np.arange(mesh.num_cells))
    # Every interior upwind neighbour is scheduled strictly earlier.
    for cell in range(mesh.num_cells):
        for face in cls.incoming_faces(cell):
            nbr = mesh.face_neighbors[cell, face]
            if nbr >= 0:
                assert tlevels[nbr] < tlevels[cell]


@settings(max_examples=10, deadline=None)
@given(per_octant=st.integers(min_value=1, max_value=6))
def test_schedule_sharing_never_exceeds_octant_count(per_octant):
    mesh = build_snap_mesh(StructuredGridSpec(3, 3, 2), max_twist=0.001)
    ref = ReferenceElement(1)
    factors = HexElementFactors.build(mesh.cell_vertices(), ref)
    quad = snap_dummy_quadrature(per_octant)
    schedule = build_sweep_schedule(mesh, factors, quad)
    assert schedule.num_unique_schedules() <= 8 * per_octant
    assert schedule.num_angles == 8 * per_octant


# ---------------------------------------------------------------- cross sections
@settings(max_examples=25, deadline=None)
@given(
    groups=st.integers(min_value=1, max_value=16),
    ratio=st.floats(min_value=0.0, max_value=0.95),
)
def test_snap_materials_preserve_scattering_ratio_and_subcriticality(groups, ratio):
    xs = snap_option1_materials(groups, scattering_ratio=ratio)
    assert np.allclose(xs.scattering_ratio(), ratio, atol=1e-12)
    assert xs.is_subcritical()
    assert np.all(xs.sigma_a >= 0)
    phi = xs.infinite_medium_flux(np.ones(groups))
    assert np.all(phi > 0)
    assert float(xs.sigma_a @ phi) == pytest.approx(groups, rel=1e-9)
