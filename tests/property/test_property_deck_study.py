"""Property-based tests (hypothesis): input-deck round-trips and Study axes."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign.study import RUN_OPTION_KEYS, Study
from repro.config import ProblemSpec
from repro.input_deck import loads, parse_axis_option, spec_to_deck

# ------------------------------------------------------------------ strategies
#: Floats that survive a text round-trip losslessly (repr -> float is exact
#: for finite doubles; NaN/inf are rejected by the spec anyway).
finite_floats = st.floats(
    min_value=0.01, max_value=100.0, allow_nan=False, allow_infinity=False
)
tolerances = st.floats(min_value=0.0, max_value=0.1, allow_nan=False, allow_infinity=False)


@st.composite
def problem_specs(draw):
    """Arbitrary valid specs restricted to what a deck can express.

    ``spec_to_deck`` writes one ``epsi`` key for both tolerances (SNAP's
    convention), so the spec is built with equal inner/outer tolerances;
    the boundary condition has no deck key and stays default.
    """
    nx = draw(st.integers(min_value=1, max_value=12))
    ny = draw(st.integers(min_value=1, max_value=12))
    tol = draw(tolerances)
    return ProblemSpec(
        nx=nx,
        ny=ny,
        nz=draw(st.integers(min_value=1, max_value=12)),
        lx=draw(finite_floats),
        ly=draw(finite_floats),
        lz=draw(finite_floats),
        max_twist=draw(st.floats(min_value=0.0, max_value=0.05, allow_nan=False)),
        twist_axis=draw(st.sampled_from(("x", "y", "z"))),
        order=draw(st.integers(min_value=1, max_value=4)),
        angles_per_octant=draw(st.integers(min_value=1, max_value=12)),
        num_groups=draw(st.integers(min_value=1, max_value=16)),
        scattering_ratio=draw(
            st.floats(min_value=0.0, max_value=0.99, allow_nan=False)
        ),
        source_strength=draw(finite_floats),
        num_inners=draw(st.integers(min_value=1, max_value=20)),
        num_outers=draw(st.integers(min_value=1, max_value=20)),
        inner_tolerance=tol,
        outer_tolerance=tol,
        solver=draw(st.sampled_from(("ge", "lapack"))),
        engine=draw(st.sampled_from(("reference", "vectorized", "prefactorized"))),
        octant_parallel=draw(st.booleans()),
        npex=draw(st.integers(min_value=1, max_value=nx)),
        npey=draw(st.integers(min_value=1, max_value=ny)),
    )


# ------------------------------------------------------------- deck round-trip
class TestDeckRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(spec=problem_specs())
    def test_parse_dump_parse_is_the_identity(self, spec):
        assert loads(spec_to_deck(spec)) == spec

    @settings(max_examples=30, deadline=None)
    @given(spec=problem_specs())
    def test_dump_is_stable_under_one_round_trip(self, spec):
        text = spec_to_deck(spec)
        assert spec_to_deck(loads(text)) == text


# ----------------------------------------------------------------- study axes
#: Pool of (axis key, value strategy) with correct spec-field typing; sizes
#: stay small so grids don't explode.
AXIS_POOL = {
    "nx": st.integers(min_value=1, max_value=6),
    "order": st.integers(min_value=1, max_value=3),
    "num_groups": st.integers(min_value=1, max_value=8),
    "scattering_ratio": st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
    "engine": st.sampled_from(("reference", "vectorized", "prefactorized")),
    "solver": st.sampled_from(("ge", "lapack")),
    "octant_parallel": st.booleans(),
    "num_threads": st.integers(min_value=1, max_value=4),
}


#: Upper bound on unique values drawable per axis (finite domains).
AXIS_CARDINALITY = {"engine": 3, "solver": 2, "octant_parallel": 2}


@st.composite
def axis_mappings(draw, min_axes=1, max_axes=3, equal_lengths=False):
    names = draw(
        st.lists(
            st.sampled_from(sorted(AXIS_POOL)),
            min_size=min_axes,
            max_size=max_axes,
            unique=True,
        )
    )
    cap = min(AXIS_CARDINALITY.get(name, 3) for name in names)
    if equal_lengths:
        length = draw(st.integers(min_value=1, max_value=cap))
        sizes = {name: length for name in names}
    else:
        sizes = {
            name: draw(
                st.integers(min_value=1, max_value=min(3, AXIS_CARDINALITY.get(name, 3)))
            )
            for name in names
        }
    return {
        name: draw(
            st.lists(
                AXIS_POOL[name], min_size=sizes[name], max_size=sizes[name], unique=True
            )
        )
        for name in names
    }


BASE = ProblemSpec(nx=6, ny=6, nz=6)


class TestStudyGrid:
    @settings(max_examples=50, deadline=None)
    @given(axes=axis_mappings())
    def test_grid_is_the_full_cartesian_product_in_declaration_order(self, axes):
        study = Study.grid(BASE, **axes)
        assert len(study) == math.prod(len(v) for v in axes.values())
        assert study.axis_names == list(axes)
        # Last axis varies fastest: the first len(last) points differ only
        # in the last axis.
        last = list(axes)[-1]
        head = study.points[: len(axes[last])]
        assert [p[last] for p in head] == list(axes[last])
        for other in list(axes)[:-1]:
            assert len({p[other] for p in head}) == 1

    @settings(max_examples=50, deadline=None)
    @given(axes=axis_mappings())
    def test_every_point_resolves_with_correct_field_typing(self, axes):
        for point in Study.grid(BASE, **axes).runs():
            for key, value in point.axes.items():
                if key in RUN_OPTION_KEYS:
                    assert point.run_options[key] == value
                    assert not hasattr(point.spec, key)
                else:
                    resolved = getattr(point.spec, key)
                    assert resolved == value
                    assert type(resolved) is type(value)
            untouched = set(ProblemSpec.__dataclass_fields__) - set(point.axes)
            for field_name in untouched:
                assert getattr(point.spec, field_name) == getattr(BASE, field_name)

    @settings(max_examples=40, deadline=None)
    @given(axes=axis_mappings())
    def test_axis_values_preserve_first_appearance_order(self, axes):
        study = Study.grid(BASE, **axes)
        for name, values in axes.items():
            assert study.axis_values(name) == list(values)


class TestStudyZip:
    @settings(max_examples=50, deadline=None)
    @given(axes=axis_mappings(min_axes=2, equal_lengths=True))
    def test_zip_pairs_positionally(self, axes):
        study = Study.zip(BASE, **axes)
        lengths = {len(v) for v in axes.values()}
        assert len(study) == lengths.pop()
        for i, point in enumerate(study.points):
            assert point == {name: values[i] for name, values in axes.items()}

    @settings(max_examples=30, deadline=None)
    @given(
        axes=axis_mappings(min_axes=2, max_axes=2, equal_lengths=True),
        extra=st.integers(min_value=1, max_value=3),
    )
    def test_zip_rejects_unequal_lengths(self, axes, extra):
        names = list(axes)
        axes[names[0]] = axes[names[0]] + [axes[names[0]][0]] * extra
        with pytest.raises(ValueError, match="equal lengths"):
            Study.zip(BASE, **axes)

    @settings(max_examples=30, deadline=None)
    @given(name=st.text(min_size=1, max_size=12).filter(lambda s: s.strip()))
    def test_unknown_axis_keys_are_rejected_by_name(self, name):
        if name in set(AXIS_POOL) | set(ProblemSpec.__dataclass_fields__):
            return
        with pytest.raises(KeyError):
            Study.grid(BASE, **{name: [1]})


class TestAxisOptionTyping:
    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=4))
    def test_cli_axis_integers_parse_as_ints(self, values):
        field, parsed = parse_axis_option("order=" + ",".join(str(v) for v in values))
        assert field == "order"
        assert parsed == values and all(type(v) is int for v in parsed)

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=0.9, allow_nan=False).map(
                lambda x: round(x, 6)
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_cli_axis_floats_parse_as_floats(self, values):
        field, parsed = parse_axis_option(
            "scattering_ratio=" + ",".join(repr(v) for v in values)
        )
        assert field == "scattering_ratio"
        assert parsed == values and all(type(v) is float for v in parsed)

    def test_deck_alias_and_field_name_agree(self):
        assert parse_axis_option("ng=2,4") == parse_axis_option("num_groups=2,4")
        assert parse_axis_option("nthreads=1,2") == parse_axis_option("num_threads=1,2")
