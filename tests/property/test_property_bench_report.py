"""Property-based tests (hypothesis): unsnap-bench-v1 schema round-trips."""

import json

from hypothesis import given, settings, strategies as st

from repro.bench import BenchReport, BenchWorkload, compare_reports
from repro.bench.report import CaseReport, SampleStats

# ------------------------------------------------------------------ strategies
#: Positive finite doubles; JSON serialises doubles exactly, so arbitrary
#: magnitudes must survive the round trip bit for bit.
seconds = st.floats(
    min_value=1e-9, max_value=1e6, allow_nan=False, allow_infinity=False
)
names = st.text(
    alphabet=st.characters(categories=("Ll", "Nd"), include_characters="-_"),
    min_size=1, max_size=20,
)
metric_values = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    seconds,
    st.booleans(),
    names,
)


@st.composite
def sample_stats(draw):
    return SampleStats(
        name=draw(names),
        seconds=tuple(draw(st.lists(seconds, min_size=1, max_size=5))),
        metrics=draw(st.dictionaries(names, metric_values, max_size=4)),
    )


@st.composite
def case_reports(draw):
    samples = draw(st.lists(sample_stats(), min_size=1, max_size=4,
                            unique_by=lambda s: s.name))
    return CaseReport(
        name=draw(names),
        tags=tuple(draw(st.lists(names, max_size=3))),
        samples=tuple(samples),
        warmup=draw(st.integers(min_value=0, max_value=3)),
        repeats=draw(st.integers(min_value=1, max_value=5)),
    )


@st.composite
def bench_workloads(draw):
    return BenchWorkload(
        n=draw(st.integers(min_value=1, max_value=32)),
        angles_per_octant=draw(st.integers(min_value=1, max_value=8)),
        num_groups=draw(st.integers(min_value=1, max_value=16)),
        sweeps=draw(st.integers(min_value=1, max_value=5)),
        jobs=draw(st.integers(min_value=1, max_value=8)),
        repeats=draw(st.integers(min_value=1, max_value=5)),
        warmup=draw(st.integers(min_value=0, max_value=3)),
        smoke=draw(st.booleans()),
    )


@st.composite
def bench_reports(draw):
    cases = draw(st.lists(case_reports(), max_size=4, unique_by=lambda c: c.name))
    return BenchReport(
        cases=tuple(cases),
        workload=draw(bench_workloads()),
        machine=draw(st.dictionaries(names, st.one_of(names, st.integers()), max_size=4)),
        git=draw(st.one_of(st.none(), st.fixed_dictionaries(
            {"commit": names, "branch": names, "dirty": st.booleans()}
        ))),
    )


# ----------------------------------------------------------------- properties
@settings(max_examples=50, deadline=None)
@given(report=bench_reports())
def test_dict_round_trip_is_identity(report):
    assert BenchReport.from_dict(report.to_dict()).to_dict() == report.to_dict()


@settings(max_examples=50, deadline=None)
@given(report=bench_reports())
def test_json_round_trip_is_identity(report):
    """Through actual JSON text: doubles and structure survive exactly."""
    text = json.dumps(report.to_dict())
    assert BenchReport.from_dict(json.loads(text)).to_dict() == report.to_dict()


@settings(max_examples=50, deadline=None)
@given(report=bench_reports(), tmp_suffix=st.integers(min_value=0, max_value=10**6))
def test_save_load_round_trip(report, tmp_suffix, tmp_path_factory):
    path = tmp_path_factory.mktemp("bench") / f"report-{tmp_suffix}.json"
    report.save(path)
    assert BenchReport.load(path).to_dict() == report.to_dict()


@settings(max_examples=50, deadline=None)
@given(report=bench_reports())
def test_self_compare_always_passes(report):
    comparison = compare_reports(report, report)
    assert comparison.verdict == "pass"
    assert not comparison.missing and not comparison.new


@settings(max_examples=50, deadline=None)
@given(workload=bench_workloads())
def test_workload_round_trip(workload):
    assert BenchWorkload.from_dict(workload.to_dict()) == workload
