"""Property-based tests (hypothesis): factor-cache keying and work costing.

Two invariant families the compiled-tier PR leans on:

* **factor-cache keys** are namespaced by the registered engine name (two
  engines sharing one executor can never collide) and survive a spec
  serialisation round trip (a respawned worker reproduces the same keys and
  the same ``run_key``);
* :func:`~repro.campaign.workitem.estimate_cost` is strictly monotone in
  every work-multiplying spec axis (and cubic in nodes-per-element), and
  :func:`~repro.campaign.workitem.order_by_cost` is a permutation sorted by
  descending cost.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign.workitem import WorkItem, estimate_cost, order_by_cost, run_key
from repro.config import ProblemSpec
from repro.core.factor_cache import FactorCache
from repro.engines import available_engines, get_engine

# ------------------------------------------------------------------ strategies
spec_axes = dict(
    n=st.integers(min_value=1, max_value=6),
    angles_per_octant=st.integers(min_value=1, max_value=3),
    num_groups=st.integers(min_value=1, max_value=8),
    num_inners=st.integers(min_value=1, max_value=10),
    num_outers=st.integers(min_value=1, max_value=5),
    order=st.integers(min_value=1, max_value=3),
)


def _spec(n, angles_per_octant, num_groups, num_inners, num_outers, order) -> ProblemSpec:
    return ProblemSpec(
        nx=n, ny=n, nz=n,
        angles_per_octant=angles_per_octant,
        num_groups=num_groups,
        num_inners=num_inners,
        num_outers=num_outers,
        order=order,
    )


# ------------------------------------------------------------- cache keying
class TestFactorCacheKeying:
    def test_registered_engines_namespace_their_keys(self):
        """Every caching engine keys by its own registry name, so one shared
        executor cache can never serve engine A's factors to engine B."""
        engines = [get_engine(name) for name in available_engines()]
        for engine in engines:
            assert engine.name  # registry sets it
        names = [engine.name for engine in engines]
        assert len(set(names)) == len(names)

    @settings(max_examples=25, deadline=None)
    @given(**spec_axes, angle=st.integers(min_value=0, max_value=63),
           bucket=st.integers(min_value=0, max_value=63))
    def test_keys_stable_under_spec_round_trip(self, angle, bucket, **axes):
        """The (engine, angle, bucket) key and the campaign run_key derived
        from a round-tripped spec are identical to the originals."""
        spec = _spec(**axes)
        reloaded = ProblemSpec.from_dict(spec.to_dict())
        assert reloaded == spec
        assert run_key(reloaded) == run_key(spec)
        for engine_name in available_engines():
            key = (engine_name, angle, bucket)
            rekey = (engine_name, angle, bucket)
            cache = FactorCache()
            cache[key] = {"token": None}
            assert rekey in cache

    @settings(max_examples=25, deadline=None)
    @given(angle=st.integers(min_value=0, max_value=15),
           bucket=st.integers(min_value=0, max_value=15))
    def test_distinct_engine_namespaces_never_collide(self, angle, bucket):
        cache = FactorCache()
        for engine_name in available_engines():
            cache[(engine_name, angle, bucket)] = {"owner": engine_name}
        assert len(cache) == len(available_engines())
        for engine_name in available_engines():
            assert cache[(engine_name, angle, bucket)]["owner"] == engine_name


# ------------------------------------------------------------- cost estimate
class TestEstimateCost:
    @settings(max_examples=40, deadline=None)
    @given(**spec_axes)
    def test_monotone_in_every_work_axis(self, **axes):
        spec = _spec(**axes)
        base = estimate_cost(spec)
        assert base > 0
        grown = {
            "nx": spec.with_(nx=spec.nx + 1),
            "angles": spec.with_(angles_per_octant=spec.angles_per_octant + 1),
            "groups": spec.with_(num_groups=spec.num_groups + 1),
            "inners": spec.with_(num_inners=spec.num_inners + 1),
            "outers": spec.with_(num_outers=spec.num_outers + 1),
        }
        for axis, bigger in grown.items():
            assert estimate_cost(bigger) > base, axis

    @settings(max_examples=20, deadline=None)
    @given(**spec_axes)
    def test_cubic_in_nodes_per_element(self, **axes):
        spec = _spec(**axes)
        raised = spec.with_(order=spec.order + 1)
        ratio = estimate_cost(raised) / estimate_cost(spec)
        node_ratio = raised.nodes_per_element / spec.nodes_per_element
        assert ratio == pytest.approx(node_ratio**3, rel=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(*(spec_axes[k] for k in sorted(spec_axes))),
                    min_size=0, max_size=12))
    def test_order_by_cost_is_a_descending_permutation(self, rows):
        items = [
            WorkItem(spec=_spec(**dict(zip(sorted(spec_axes), row))), index=i)
            for i, row in enumerate(rows)
        ]
        ordered = order_by_cost(items)
        assert sorted(item.index for item in ordered) == list(range(len(items)))
        costs = [item.cost for item in ordered]
        assert costs == sorted(costs, reverse=True)
        # Ties broken by index: deterministic whatever the input order.
        assert order_by_cost(list(reversed(items))) == ordered
