"""k-eigenvalue driver: infinite-medium physics, guards, telemetry."""

import numpy as np
import pytest

import repro
from repro.config import BoundaryCondition
from repro.materials import snap_driver_library, snap_option1_library
from repro.telemetry import Telemetry

REFLECTED = repro.ProblemSpec(
    nx=2, ny=2, nz=2,
    max_twist=0.0,
    angles_per_octant=1,
    num_groups=2,
    num_inners=50,
    inner_tolerance=1e-13,
    boundary=BoundaryCondition(kind="reflective"),
    driver="k_eigenvalue",
    k_tolerance=1e-10,
    max_power_iters=100,
)
#: Looser settings for tests probing plumbing rather than 1e-8 physics.
QUICK = REFLECTED.with_(num_inners=10, inner_tolerance=1e-8, k_tolerance=1e-6)


@pytest.fixture(scope="module")
def converged():
    return repro.run(REFLECTED)


class TestInfiniteMediumPhysics:
    def test_k_matches_the_analytic_k_infinity(self, converged):
        analytic = snap_driver_library(
            2, REFLECTED.scattering_ratio
        ).materials[0].k_infinity()
        assert converged.k_effective == pytest.approx(analytic, abs=1e-8)

    @pytest.mark.parametrize("num_groups", [1, 3])
    def test_k_infinity_holds_for_any_group_count(self, num_groups):
        spec = REFLECTED.with_(num_groups=num_groups)
        result = repro.run(spec)
        analytic = snap_driver_library(
            num_groups, spec.scattering_ratio
        ).materials[0].k_infinity()
        assert result.k_effective == pytest.approx(analytic, abs=1e-8)

    def test_converged_flux_is_spatially_flat(self, converged):
        """An infinite medium has no gradients: every node sees the same flux."""
        flux = converged.scalar_flux  # (E, G, N)
        for g in range(flux.shape[1]):
            values = flux[:, g, :]
            assert np.allclose(values, values.flat[0], rtol=1e-9)

    def test_k_history_converges_and_reports_dominance(self, converged):
        assert converged.k_history[-1] == converged.k_effective
        assert (
            abs(converged.k_history[-1] - converged.k_history[-2])
            <= REFLECTED.k_tolerance
        )
        assert converged.history.converged
        assert 0.0 < converged.dominance_ratio < 1.0

    def test_summary_carries_the_driver_fields(self, converged):
        summary = converged.summary()
        assert summary["k_effective"] == pytest.approx(0.6, abs=1e-8)
        assert summary["power_iterations"] == len(converged.k_history)
        assert "dominance_ratio" in summary

    def test_flux_is_normalised_to_unit_fission_production(self, converged):
        library = snap_driver_library(2, REFLECTED.scattering_ratio)
        nsf = library.materials[0].nu_sigma_f  # uniform material
        # cell_average_flux is (E, G); production = sum_E V_e * nsf . phi_e.
        volumes = np.full(converged.cell_average_flux.shape[0], 1.0 / 8.0)
        production = float(
            np.einsum("e,eg,g->", volumes, converged.cell_average_flux, nsf)
        )
        assert production == pytest.approx(1.0, rel=1e-9)

    def test_engines_agree_bit_for_bit(self):
        ge = repro.run(QUICK, engine="vectorized")
        lu = repro.run(QUICK, engine="prefactorized")
        np.testing.assert_array_equal(ge.scalar_flux, lu.scalar_flux)
        assert ge.k_history == lu.k_history

    def test_unconverged_run_reports_it(self):
        result = repro.run(QUICK.with_(max_power_iters=2))
        assert not result.history.converged
        assert len(result.k_history) == 2


class TestGuards:
    def test_multi_rank_rejected(self):
        with pytest.raises(ValueError, match="single-rank"):
            repro.run(QUICK.with_(npex=2))

    def test_angular_source_hook_rejected(self):
        shape = (QUICK.num_angles, QUICK.num_cells, 2, 8)
        with pytest.raises(ValueError, match="angular source"):
            repro.run(QUICK, angular_source=np.zeros(shape))

    def test_fixed_source_rejected(self):
        from repro.materials.source_terms import uniform_source

        with pytest.raises(ValueError, match="homogeneous eigenproblem"):
            repro.run(QUICK, fixed_source=uniform_source(8, 2, 1.0))

    def test_missing_fission_data_rejected(self):
        fissionless = snap_option1_library(2, QUICK.scattering_ratio)
        with pytest.raises(ValueError, match="fission data"):
            repro.run(QUICK, materials=fissionless.for_cells(8))


class TestTelemetry:
    def test_power_phase_and_counter_and_bit_identity(self):
        plain = repro.run(QUICK)
        instrumented = repro.run(QUICK, telemetry=Telemetry())
        tel = instrumented.telemetry
        assert tel.counters["power_iterations"] == len(instrumented.k_history)
        assert "solve.power" in tel.phase_seconds
        assert "solve.sweep" in tel.phase_seconds
        np.testing.assert_array_equal(plain.scalar_flux, instrumented.scalar_flux)
        assert plain.k_history == instrumented.k_history
