"""[driver] deck section, spec-serialisation elision and the driver CLI flags."""

import json

import pytest

import repro
from repro.cli import main
from repro.config import ProblemSpec
from repro.input_deck import UnknownDeckKeyError, loads, loads_study, spec_to_deck

BASE = ProblemSpec(
    nx=2, ny=2, nz=2,
    max_twist=0.0,
    angles_per_octant=1,
    num_groups=2,
    num_inners=5,
)


class TestDriverDeckSection:
    def test_driver_section_round_trips(self):
        spec = BASE.with_(driver="time_dependent", dt=0.125, n_steps=3,
                               initial_flux_value=2.0, snapshot_every=1)
        assert loads(spec_to_deck(spec)) == spec

    def test_aliases_parse(self):
        deck = """
        nx=2 ny=2 nz=2 nang=1 ng=2
        [driver]
        driver=keff
        epsk=1e-9
        """
        spec = loads(deck)
        assert spec.driver == "keff"
        assert spec.k_tolerance == 1e-9

    def test_time_keys_parse(self):
        deck = "nx=2 ny=2 nz=2\n[driver]\ndriver=time\ndt=0.5\nnsteps=4\ntf=2.0"
        spec = loads(deck)
        assert (spec.dt, spec.n_steps, spec.t_end) == (0.5, 4, 2.0)

    def test_unknown_driver_key_names_the_section(self):
        deck = "nx=2\n[driver]\ncourant=0.9"
        with pytest.raises(UnknownDeckKeyError, match="driver"):
            loads(deck)

    def test_defaults_are_elided_from_emitted_decks(self):
        """A fixed-source spec emits the exact pre-driver deck text: no
        [driver] section, so stored decks and goldens stay byte-stable."""
        text = spec_to_deck(BASE)
        assert "[driver]" not in text
        assert "dt=" not in text

    def test_defaults_are_elided_from_to_dict(self):
        data = BASE.to_dict()
        for field in ("driver", "k_tolerance", "max_power_iters", "dt",
                      "n_steps", "t_end", "initial_flux_value", "snapshot_every"):
            assert field not in data
        assert "dt" in BASE.with_(dt=0.5).to_dict()

    def test_run_keys_unchanged_by_the_driver_fields_at_defaults(self):
        """The content hash of a pre-driver spec must not move: stores and
        goldens blessed before the driver subsystem still resume."""
        from repro.campaign.store import run_key

        assert run_key(BASE, {}) == run_key(ProblemSpec(**{
            k: v for k, v in BASE.to_dict().items() if k != "boundary"
        }, boundary=BASE.boundary), {})

    def test_driver_axes_in_study_section(self):
        deck = """
        nx=2 ny=2 nz=2 nang=1 ng=2
        [driver]
        driver=time
        [study]
        dt=0.4,0.2
        nsteps=2,4
        """
        study = loads_study(deck)
        specs = [point.spec for point in study.runs()]
        assert {s.dt for s in specs} == {0.4, 0.2}
        assert {s.n_steps for s in specs} == {2, 4}
        assert all(s.driver == "time" for s in specs)


class TestDriverCLI:
    def test_run_driver_flag_prints_k(self, capsys):
        assert main([
            "run", "--nx", "2", "--ny", "2", "--nz", "2", "--nang", "1",
            "--groups", "2", "--inners", "10",
            "--driver", "k_eigenvalue", "--k-tol", "1e-6",
        ]) == 0
        out = capsys.readouterr().out
        assert "k-effective" in out
        assert "power iterations" in out

    def test_run_time_flags_print_steps(self, capsys):
        assert main([
            "run", "--nx", "2", "--ny", "2", "--nz", "2", "--nang", "1",
            "--groups", "2", "--inners", "5",
            "--driver", "time", "--dt", "0.5", "--steps", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "time steps" in out
        assert "final time" in out

    def test_run_json_carries_driver_payloads(self, capsys):
        assert main([
            "run", "--nx", "2", "--ny", "2", "--nz", "2", "--nang", "1",
            "--groups", "2", "--inners", "5",
            "--driver", "transient", "--dt", "0.5", "--steps", "2", "--json",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["times"] == [0.5, 1.0]
        assert len(data["step_mean_flux"]) == 2

    def test_unknown_driver_fails_before_solving(self, capsys):
        assert main([
            "run", "--nx", "2", "--ny", "2", "--nz", "2", "--driver", "bogus",
        ]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_drivers_listing_command(self, capsys):
        assert main(["drivers"]) == 0
        out = capsys.readouterr().out
        for name in repro.available_drivers():
            assert name in out
