"""Drivers through the campaign layer: study axes, resumption, conformance."""

import numpy as np
import pytest

import repro
from repro.campaign import ResultStore, Study, run_study
from repro.verify.conformance import conformance_matrix

#: Tiny problems so the matrix stays fast-tier; loose driver tolerances --
#: these tests probe plumbing and determinism, not 1e-8 physics.
K_SPEC = repro.ProblemSpec(
    nx=2, ny=2, nz=2, angles_per_octant=1, num_groups=2,
    num_inners=4, num_outers=1,
    driver="k_eigenvalue", k_tolerance=1e-4, max_power_iters=5,
)
TIME_SPEC = repro.ProblemSpec(
    nx=2, ny=2, nz=2, angles_per_octant=1, num_groups=2,
    num_inners=4, num_outers=1,
    driver="time_dependent", dt=0.5, n_steps=2, initial_flux_value=1.0,
)


class TestDriverStudyAxes:
    def test_dt_is_a_study_axis(self):
        study = Study.grid(TIME_SPEC, dt=[0.5, 0.25])
        result = run_study(study)
        assert [r.spec.dt for r in result.runs] == [0.5, 0.25]
        assert result.runs[0].result.times == [0.5, 1.0]
        assert result.runs[1].result.times == [0.25, 0.5]

    def test_k_tolerance_and_max_iters_are_study_axes(self):
        study = Study.grid(K_SPEC, k_tolerance=[1e-2, 1e-4], max_power_iters=[3])
        result = run_study(study)
        assert {r.spec.k_tolerance for r in result.runs} == {1e-2, 1e-4}
        assert all(r.result.k_effective is not None for r in result.runs)

    def test_driver_itself_is_a_study_axis(self):
        study = Study.grid(TIME_SPEC, driver=["fixed_source", "time_dependent"])
        result = run_study(study)
        fixed, transient = result.runs
        assert fixed.result.times is None
        assert transient.result.times == [0.5, 1.0]

    def test_dt_study_resumes_with_zero_new_runs(self, tmp_path):
        store = ResultStore(tmp_path / "runs")
        study = Study.grid(TIME_SPEC, dt=[0.5, 0.25], name="dt-study")
        first = run_study(study, store=store)
        assert first.new_run_count == 2
        resumed = run_study(study, store=store)
        assert resumed.new_run_count == 0
        assert all(r.from_cache for r in resumed.runs)
        for fresh, cached in zip(first.runs, resumed.runs):
            assert cached.result.step_mean_flux == fresh.result.step_mean_flux
            np.testing.assert_array_equal(
                cached.result.scalar_flux, fresh.result.scalar_flux
            )

    def test_process_backend_matches_serial_bit_for_bit(self):
        study = Study.grid(K_SPEC, engine=["vectorized"])
        serial = run_study(study, backend="serial")
        threaded = run_study(study, backend="thread", jobs=2)
        np.testing.assert_array_equal(
            serial.runs[0].result.scalar_flux, threaded.runs[0].result.scalar_flux
        )
        assert serial.runs[0].result.k_history == threaded.runs[0].result.k_history


@pytest.mark.parametrize("spec", [K_SPEC, TIME_SPEC], ids=["k", "time"])
class TestDriverConformance:
    """Both drivers run the same determinism contract as fixed_source."""

    def test_thread_determinism_and_backend_invariance(self, spec):
        report = conformance_matrix(
            spec,
            engines=("vectorized", "prefactorized"),
            solvers=("ge",),
            backends=("serial", "thread"),
            thread_counts=(1, 2),
            octant_modes=(False, True),
        )
        assert report.passed, [c.group for c in report.failed_checks]
        kinds = {c.kind for c in report.checks}
        assert "thread-determinism" in kinds
        assert "backend-invariance" in kinds
        assert all(c.passed for c in report.checks)
