"""time_dependent driver: discrete backward-Euler physics, guards, telemetry."""

import numpy as np
import pytest

import repro
from repro.config import BoundaryCondition
from repro.materials import snap_driver_library, snap_option1_library
from repro.telemetry import Telemetry

#: Reflected pure absorber decaying from a flat unit flux: the discrete
#: backward-Euler solution is exactly phi^n = phi^0 / (1 + v sigma dt)^n.
DECAY = repro.ProblemSpec(
    nx=2, ny=2, nz=2,
    max_twist=0.0,
    angles_per_octant=1,
    num_groups=2,
    scattering_ratio=0.0,
    source_strength=0.0,
    num_inners=30,
    inner_tolerance=1e-13,
    boundary=BoundaryCondition(kind="reflective"),
    driver="time_dependent",
    dt=0.25,
    n_steps=4,
    initial_flux_value=1.0,
)


@pytest.fixture(scope="module")
def decay():
    return repro.run(DECAY)


class TestBackwardEulerPhysics:
    def test_matches_the_exact_discrete_solution_per_group(self, decay):
        material = snap_driver_library(2, 0.0).materials[0]
        rate = material.velocity * material.sigma_t  # (G,)
        for n, mean in enumerate(decay.step_mean_flux, start=1):
            expected = 1.0 / (1.0 + rate * DECAY.dt) ** n
            np.testing.assert_allclose(mean, expected, rtol=1e-9)

    def test_times_are_the_step_end_points(self, decay):
        assert decay.times == [0.25, 0.5, 0.75, 1.0]
        assert decay.summary()["time_steps"] == 4
        assert decay.summary()["t_end"] == 1.0

    def test_final_flux_is_spatially_flat(self, decay):
        flux = decay.scalar_flux  # (E, G, N)
        for g in range(flux.shape[1]):
            values = flux[:, g, :]
            assert np.allclose(values, values.flat[0], rtol=1e-9)

    def test_t_end_overrides_n_steps(self):
        spec = DECAY.with_(t_end=0.5, n_steps=99)
        assert spec.num_time_steps == 2
        result = repro.run(spec)
        assert result.times == [0.25, 0.5]

    def test_snapshots_are_opt_in(self, decay):
        assert decay.flux_snapshots is None
        snapped = repro.run(DECAY.with_(n_steps=4, snapshot_every=2))
        assert len(snapped.flux_snapshots) == 2
        np.testing.assert_array_equal(snapped.flux_snapshots[-1], snapped.scalar_flux)

    def test_engines_agree_bit_for_bit(self):
        ref = repro.run(DECAY, engine="vectorized")
        lu = repro.run(DECAY, engine="prefactorized")
        np.testing.assert_array_equal(ref.scalar_flux, lu.scalar_flux)
        assert ref.step_mean_flux == lu.step_mean_flux

    def test_factor_cache_survives_every_step(self):
        """The 1/(v dt) fold happens once, so the prefactorized engine never
        refactorises after the first sweep of the first step."""
        result = repro.run(DECAY, engine="prefactorized", telemetry=True)
        counters = result.telemetry.counters
        assert counters["factor_cache_misses"] > 0
        assert counters["factor_cache_hits"] > counters["factor_cache_misses"]


class TestGuards:
    def test_multi_rank_rejected(self):
        with pytest.raises(ValueError, match="single-rank"):
            repro.run(DECAY.with_(npex=2))

    def test_angular_source_hook_rejected(self):
        shape = (DECAY.num_angles, DECAY.num_cells, 2, 8)
        with pytest.raises(ValueError, match="angular source"):
            repro.run(DECAY, angular_source=np.zeros(shape))

    def test_missing_velocity_data_rejected(self):
        speedless = snap_option1_library(2, 0.5)
        with pytest.raises(ValueError, match="group speeds"):
            repro.run(DECAY, materials=speedless.for_cells(8))


class TestTelemetryAndExport:
    def test_step_phase_and_counter_and_bit_identity(self):
        plain = repro.run(DECAY)
        instrumented = repro.run(DECAY, telemetry=Telemetry())
        tel = instrumented.telemetry
        assert tel.counters["time_steps"] == 4
        assert "solve.step" in tel.phase_seconds
        assert "solve.sweep" in tel.phase_seconds
        np.testing.assert_array_equal(plain.scalar_flux, instrumented.scalar_flux)
        assert plain.step_mean_flux == instrumented.step_mean_flux

    def test_driver_payloads_round_trip_through_json(self, decay):
        from repro.runner import RunResult

        reloaded = RunResult.from_json(decay.to_json())
        assert reloaded.times == decay.times
        assert reloaded.step_mean_flux == decay.step_mean_flux
        assert reloaded.k_effective is None

    def test_k_payloads_round_trip_through_json(self):
        from repro.runner import RunResult

        keff = repro.run(DECAY.with_(
            driver="k_eigenvalue", scattering_ratio=0.5,
            num_inners=10, inner_tolerance=1e-8, k_tolerance=1e-6,
        ))
        reloaded = RunResult.from_json(keff.to_json())
        assert reloaded.k_effective == keff.k_effective
        assert reloaded.k_history == keff.k_history
        assert reloaded.dominance_ratio == keff.dominance_ratio
        assert reloaded.times is None
