"""Driver registry: names, aliases, dispatch through repro.run."""

import pytest

import repro
from repro.drivers import available_drivers, driver_listing, get_driver
from repro.drivers.registry import DRIVERS, register_driver

SPEC = repro.ProblemSpec(nx=2, ny=2, nz=2, angles_per_octant=1, num_groups=1,
                         num_inners=2, num_outers=1)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(available_drivers()) == {
            "fixed_source", "k_eigenvalue", "time_dependent"
        }

    @pytest.mark.parametrize("alias,name", [
        ("steady", "fixed_source"), ("source", "fixed_source"),
        ("k", "k_eigenvalue"), ("power", "k_eigenvalue"), ("keff", "k_eigenvalue"),
        ("time", "time_dependent"), ("transient", "time_dependent"),
        ("backward_euler", "time_dependent"),
    ])
    def test_aliases_resolve_to_the_canonical_driver(self, alias, name):
        assert get_driver(alias) is get_driver(name)

    def test_unknown_driver_names_the_valid_ones(self):
        with pytest.raises(KeyError, match="fixed_source"):
            get_driver("adjoint")

    def test_listing_carries_descriptions(self):
        rows = {name: description for name, _aliases, description in driver_listing()}
        assert "power iteration" in rows["k_eigenvalue"].lower()
        assert "backward-euler" in rows["time_dependent"].lower()

    def test_package_reexports(self):
        assert repro.get_driver is get_driver
        assert "k_eigenvalue" in repro.available_drivers()

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError, match="callable"):
            register_driver("broken")(object())


class TestRunDispatch:
    def test_mode_overrides_the_spec_driver(self):
        result = repro.run(SPEC.with_(driver="time_dependent", dt=0.5, n_steps=1),
                           mode="fixed_source")
        assert result.times is None and result.k_effective is None

    def test_spec_driver_field_selects_the_driver(self):
        result = repro.run(SPEC.with_(driver="time_dependent", dt=0.5, n_steps=2))
        assert result.times == [0.5, 1.0]

    def test_mode_accepts_aliases(self):
        result = repro.run(SPEC.with_(dt=0.5, n_steps=1), mode="transient")
        assert result.times == [0.5]

    def test_unknown_mode_raises(self):
        with pytest.raises(KeyError, match="driver"):
            repro.run(SPEC, mode="no-such-driver")

    def test_custom_driver_reachable_through_run(self):
        seen = {}

        def toy_driver(spec, *, engine_obj, engine_name, **kwargs):
            """Fixed-source pass-through used to probe the dispatch plumbing."""
            seen["engine_name"] = engine_name
            return get_driver("fixed_source")(
                spec, engine_obj=engine_obj, engine_name=engine_name, **kwargs
            )

        register_driver("toy", aliases=("toy-alias",))(toy_driver)
        try:
            result = repro.run(SPEC, mode="toy-alias", engine="vectorized")
            assert seen["engine_name"] == "vectorized"
            assert result.mean_flux > 0
        finally:
            DRIVERS.remove("toy")

    def test_fixed_source_result_unchanged_by_the_dispatch_layer(self):
        """The default path is byte-identical to an explicit fixed_source run."""
        import numpy as np

        default = repro.run(SPEC)
        explicit = repro.run(SPEC, mode="fixed_source")
        np.testing.assert_array_equal(default.scalar_flux, explicit.scalar_flux)
        assert default.history.inner_errors == explicit.history.inner_errors
