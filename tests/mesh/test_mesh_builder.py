"""Unit tests for the SNAP-derived unstructured mesh builder and the twist."""

import numpy as np
import pytest

from repro.mesh.builder import StructuredGridSpec, build_snap_mesh, twist_vertices
from repro.mesh.connectivity import build_connectivity_from_faces, validate_connectivity
from repro.mesh.hexmesh import BOUNDARY


class TestStructuredGridSpec:
    def test_counts(self):
        spec = StructuredGridSpec(4, 3, 2)
        assert spec.num_cells == 24
        assert spec.num_vertices == 5 * 4 * 3
        assert spec.cell_sizes == (0.25, 1.0 / 3.0, 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            StructuredGridSpec(0, 1, 1)
        with pytest.raises(ValueError):
            StructuredGridSpec(1, 1, 1, lx=-1.0)


class TestBuildSnapMesh:
    def test_counts_and_metadata(self):
        spec = StructuredGridSpec(3, 4, 5, 1.0, 2.0, 3.0)
        mesh = build_snap_mesh(spec)
        assert mesh.num_cells == 60
        assert mesh.num_vertices == 4 * 5 * 6
        assert mesh.metadata["grid_shape"] == (3, 4, 5)
        assert mesh.metadata["max_twist"] == 0.0
        assert mesh.structured_index is not None

    def test_boundary_face_count(self):
        n = 4
        mesh = build_snap_mesh(StructuredGridSpec(n, n, n))
        # A cube of n^3 cells has 6 n^2 boundary faces.
        assert mesh.boundary_faces().shape[0] == 6 * n * n

    def test_connectivity_matches_generic_face_matching(self):
        mesh = build_snap_mesh(StructuredGridSpec(3, 2, 4))
        rebuilt = build_connectivity_from_faces(mesh.cells)
        assert np.array_equal(rebuilt, mesh.face_neighbors)

    def test_connectivity_is_valid(self):
        mesh = build_snap_mesh(StructuredGridSpec(3, 3, 3), max_twist=0.001)
        assert validate_connectivity(mesh) == []

    def test_neighbor_relation_on_known_cells(self):
        mesh = build_snap_mesh(StructuredGridSpec(3, 3, 3))
        # Cell 0 is at (0,0,0): -x, -y, -z faces are boundary; +x neighbour is 1.
        assert mesh.face_neighbors[0, 0] == BOUNDARY
        assert mesh.face_neighbors[0, 2] == BOUNDARY
        assert mesh.face_neighbors[0, 4] == BOUNDARY
        assert mesh.face_neighbors[0, 1] == 1
        assert mesh.face_neighbors[0, 3] == 3
        assert mesh.face_neighbors[0, 5] == 9

    def test_single_cell_mesh(self):
        mesh = build_snap_mesh(StructuredGridSpec(1, 1, 1))
        assert mesh.num_cells == 1
        assert np.all(mesh.face_neighbors == BOUNDARY)

    def test_domain_extents(self):
        mesh = build_snap_mesh(StructuredGridSpec(2, 2, 2, 1.5, 2.5, 3.5))
        lo, hi = mesh.bounding_box()
        assert np.allclose(lo, 0.0)
        assert np.allclose(hi, [1.5, 2.5, 3.5])


class TestTwist:
    def test_zero_twist_is_identity(self):
        spec = StructuredGridSpec(2, 2, 2)
        mesh = build_snap_mesh(spec)
        twisted = twist_vertices(mesh.vertices, spec, 0.0)
        assert np.array_equal(twisted, mesh.vertices)

    def test_twist_preserves_axis_coordinate(self):
        spec = StructuredGridSpec(3, 3, 3)
        base = build_snap_mesh(spec).vertices
        twisted = twist_vertices(base, spec, 0.05, axis="z")
        assert np.allclose(twisted[:, 2], base[:, 2])
        assert not np.allclose(twisted[:, 0], base[:, 0])

    def test_twist_is_rigid_per_cross_section(self):
        spec = StructuredGridSpec(3, 3, 3)
        base = build_snap_mesh(spec).vertices
        twisted = twist_vertices(base, spec, 0.05, axis="z")
        centre = np.array([0.5, 0.5])
        r_before = np.linalg.norm(base[:, :2] - centre, axis=1)
        r_after = np.linalg.norm(twisted[:, :2] - centre, axis=1)
        assert np.allclose(r_before, r_after, atol=1e-12)

    def test_bottom_layer_unmoved(self):
        spec = StructuredGridSpec(2, 2, 2)
        base = build_snap_mesh(spec).vertices
        twisted = twist_vertices(base, spec, 0.1, axis="z")
        bottom = base[:, 2] == 0.0
        assert np.allclose(twisted[bottom], base[bottom])

    @pytest.mark.parametrize("axis", ["x", "y", "z"])
    def test_all_axes_supported(self, axis):
        spec = StructuredGridSpec(2, 2, 2)
        mesh = build_snap_mesh(spec, max_twist=0.01, twist_axis=axis)
        assert mesh.metadata["twist_axis"] == axis

    def test_invalid_axis(self):
        spec = StructuredGridSpec(2, 2, 2)
        with pytest.raises(ValueError):
            twist_vertices(np.zeros((8, 3)), spec, 0.1, axis="w")

    def test_cells_no_longer_perfect_cubes(self):
        # The stated purpose of the twist: cells stop being perfect cubes.
        spec = StructuredGridSpec(3, 3, 3)
        mesh = build_snap_mesh(spec, max_twist=0.05)
        cell = mesh.cell_vertices()[26]  # a top-layer cell
        edge1 = cell[1] - cell[0]
        assert abs(edge1[1]) > 1e-6  # edge is no longer axis aligned
