"""Unit tests for the unstructured hexahedral mesh container."""

import numpy as np
import pytest

from repro.mesh.builder import StructuredGridSpec, build_snap_mesh
from repro.mesh.connectivity import validate_connectivity
from repro.mesh.hexmesh import BOUNDARY, UnstructuredHexMesh


@pytest.fixture(scope="module")
def mesh333():
    return build_snap_mesh(StructuredGridSpec(3, 3, 3))


class TestValidation:
    def test_shape_checks(self):
        with pytest.raises(ValueError):
            UnstructuredHexMesh(
                vertices=np.zeros((4, 2)),
                cells=np.zeros((1, 8), dtype=int),
                face_neighbors=np.full((1, 6), BOUNDARY),
            )
        with pytest.raises(ValueError):
            UnstructuredHexMesh(
                vertices=np.zeros((8, 3)),
                cells=np.zeros((1, 7), dtype=int),
                face_neighbors=np.full((1, 6), BOUNDARY),
            )
        with pytest.raises(ValueError):
            UnstructuredHexMesh(
                vertices=np.zeros((8, 3)),
                cells=np.zeros((1, 8), dtype=int),
                face_neighbors=np.full((2, 6), BOUNDARY),
            )

    def test_vertex_index_range_check(self):
        cells = np.zeros((1, 8), dtype=int)
        cells[0, 7] = 99
        with pytest.raises(ValueError):
            UnstructuredHexMesh(
                vertices=np.zeros((8, 3)),
                cells=cells,
                face_neighbors=np.full((1, 6), BOUNDARY),
            )


class TestQueries:
    def test_counts(self, mesh333):
        assert mesh333.num_cells == 27
        assert mesh333.num_vertices == 64

    def test_cell_vertices_shape(self, mesh333):
        assert mesh333.cell_vertices().shape == (27, 8, 3)
        assert mesh333.cell_vertices(np.array([0, 5])).shape == (2, 8, 3)

    def test_centroids(self, mesh333):
        centroids = mesh333.cell_centroids()
        assert centroids.shape == (27, 3)
        # Centre cell of the 3x3x3 grid sits at the domain centre.
        assert np.allclose(centroids[13], [0.5, 0.5, 0.5])

    def test_interior_faces_symmetry(self, mesh333):
        interior = mesh333.interior_faces()
        # Every interior face appears exactly twice (once per side).
        assert interior.shape[0] == 2 * (3 * 3 * 2 * 3)
        pairs = {(c, f): n for c, f, n in interior.tolist()}
        for (cell, face), neighbor in pairs.items():
            assert pairs[(neighbor, face ^ 1)] == cell

    def test_neighbor_counts(self, mesh333):
        counts = mesh333.neighbor_counts()
        assert counts[13] == 6  # centre cell
        assert counts[0] == 3  # corner cell
        assert counts.min() == 3 and counts.max() == 6

    def test_is_boundary_face(self, mesh333):
        assert mesh333.is_boundary_face(0, 0)
        assert not mesh333.is_boundary_face(0, 1)


class TestExtractCells:
    def test_extract_preserves_geometry_and_connectivity(self, mesh333):
        selection = np.array([0, 1, 2, 9, 10, 11])
        sub = mesh333.extract_cells(selection)
        assert sub.num_cells == 6
        assert validate_connectivity(sub) == []
        assert np.array_equal(sub.metadata["global_cell_ids"], selection)
        # Cell 0 and 1 are still x-neighbours in the sub-mesh.
        assert sub.face_neighbors[0, 1] == 1
        # A face whose neighbour was not selected becomes a boundary face.
        assert sub.face_neighbors[2, 3] == BOUNDARY

    def test_extract_centroids_match(self, mesh333):
        selection = np.array([3, 4, 5])
        sub = mesh333.extract_cells(selection)
        assert np.allclose(sub.cell_centroids(), mesh333.cell_centroids()[selection])

    def test_extract_single_cell(self, mesh333):
        sub = mesh333.extract_cells(np.array([13]))
        assert sub.num_cells == 1
        assert np.all(sub.face_neighbors == BOUNDARY)
