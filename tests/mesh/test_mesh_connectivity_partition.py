"""Unit tests for generic connectivity construction and the KBA partitioner."""

import numpy as np
import pytest

from repro.mesh.builder import StructuredGridSpec, build_snap_mesh
from repro.mesh.connectivity import (
    FACE_CORNER_INDICES,
    build_connectivity_from_faces,
    face_vertex_ids,
    validate_connectivity,
)
from repro.mesh.hexmesh import BOUNDARY
from repro.mesh.partition import partition_kba, split_counts


class TestFaceCorners:
    def test_each_face_has_four_unique_corners(self):
        for face in range(6):
            assert len(set(FACE_CORNER_INDICES[face].tolist())) == 4

    def test_opposite_faces_are_disjoint(self):
        for face in (0, 2, 4):
            a = set(FACE_CORNER_INDICES[face].tolist())
            b = set(FACE_CORNER_INDICES[face + 1].tolist())
            assert not (a & b)

    def test_face_vertex_ids_shape(self):
        cells = np.arange(16).reshape(2, 8)
        assert face_vertex_ids(cells).shape == (2, 6, 4)


class TestBuildConnectivity:
    def test_two_cell_mesh(self):
        mesh = build_snap_mesh(StructuredGridSpec(2, 1, 1))
        nbrs = build_connectivity_from_faces(mesh.cells)
        assert nbrs[0, 1] == 1 and nbrs[1, 0] == 0
        assert np.count_nonzero(nbrs == BOUNDARY) == 10

    def test_non_manifold_detection(self):
        # Three cells sharing the same face vertex set.
        cells = np.array([
            [0, 1, 2, 3, 4, 5, 6, 7],
            [0, 1, 2, 3, 8, 9, 10, 11],
            [0, 1, 2, 3, 12, 13, 14, 15],
        ])
        with pytest.raises(ValueError, match="non-manifold"):
            build_connectivity_from_faces(cells)

    def test_validate_detects_asymmetry(self):
        mesh = build_snap_mesh(StructuredGridSpec(2, 2, 1))
        mesh.face_neighbors[0, 1] = 3  # wrong neighbour
        problems = validate_connectivity(mesh)
        assert problems and "does not point back" in problems[0]

    def test_validate_detects_self_neighbor(self):
        mesh = build_snap_mesh(StructuredGridSpec(2, 1, 1))
        mesh.face_neighbors[0, 1] = 0
        problems = validate_connectivity(mesh)
        assert any("own neighbour" in p for p in problems)

    def test_validate_detects_out_of_range(self):
        mesh = build_snap_mesh(StructuredGridSpec(2, 1, 1))
        mesh.face_neighbors[0, 1] = 99
        problems = validate_connectivity(mesh)
        assert any("out of range" in p for p in problems)


class TestSplitCounts:
    def test_even_split(self):
        assert split_counts(8, 4).tolist() == [2, 2, 2, 2]

    def test_uneven_split(self):
        assert split_counts(10, 3).tolist() == [4, 3, 3]
        assert split_counts(10, 3).sum() == 10

    def test_invalid(self):
        with pytest.raises(ValueError):
            split_counts(2, 3)
        with pytest.raises(ValueError):
            split_counts(2, 0)


class TestPartitionKBA:
    @pytest.mark.parametrize("npex,npey", [(1, 1), (2, 1), (2, 2), (4, 2)])
    def test_cells_conserved(self, npex, npey):
        mesh = build_snap_mesh(StructuredGridSpec(4, 4, 3))
        decomp = partition_kba(mesh, npex, npey)
        assert decomp.num_ranks == npex * npey
        total = sum(s.num_cells for s in decomp.subdomains)
        assert total == mesh.num_cells
        all_ids = np.concatenate([s.global_cell_ids for s in decomp.subdomains])
        assert np.array_equal(np.sort(all_ids), np.arange(mesh.num_cells))

    def test_columns_stay_together(self):
        # KBA decomposition is 2-D over (x, y): all k-cells of one column share a rank.
        mesh = build_snap_mesh(StructuredGridSpec(4, 4, 4))
        decomp = partition_kba(mesh, 2, 2)
        owner = decomp.cell_owner
        ijk = mesh.structured_index
        for i in range(4):
            for j in range(4):
                column = owner[(ijk[:, 0] == i) & (ijk[:, 1] == j)]
                assert len(set(column.tolist())) == 1

    def test_halo_faces_are_symmetric(self):
        mesh = build_snap_mesh(StructuredGridSpec(4, 4, 2))
        decomp = partition_kba(mesh, 2, 2)
        # Every halo face on rank A pointing to rank B has a partner on B
        # pointing back to A through the opposite face.
        seen = set()
        for sub in decomp.subdomains:
            for local_cell, face, remote_rank, remote_cell in sub.halo_faces.tolist():
                seen.add((sub.rank, local_cell, face, remote_rank, remote_cell))
        for rank, local_cell, face, remote_rank, remote_cell in seen:
            assert (remote_rank, remote_cell, face ^ 1, rank, local_cell) in seen

    def test_single_rank_has_no_halo(self):
        mesh = build_snap_mesh(StructuredGridSpec(3, 3, 3))
        decomp = partition_kba(mesh, 1, 1)
        assert decomp.total_halo_faces() == 0
        assert decomp.subdomains[0].halo_partners().size == 0

    def test_submesh_connectivity_valid(self):
        from repro.mesh.connectivity import validate_connectivity

        mesh = build_snap_mesh(StructuredGridSpec(4, 4, 2), max_twist=0.001)
        decomp = partition_kba(mesh, 2, 2)
        for sub in decomp.subdomains:
            assert validate_connectivity(sub.mesh) == []

    def test_requires_structured_provenance(self):
        mesh = build_snap_mesh(StructuredGridSpec(2, 2, 2))
        mesh.structured_index = None
        with pytest.raises(ValueError):
            partition_kba(mesh, 2, 1)

    def test_too_many_ranks(self):
        mesh = build_snap_mesh(StructuredGridSpec(2, 2, 2))
        with pytest.raises(ValueError):
            partition_kba(mesh, 3, 1)
