"""The tracing core: contexts, carriers, the exporter and span files."""

import json
import threading

import pytest

from repro.obs.trace import (
    TRACE_FORMAT,
    SpanExporter,
    TraceContext,
    current_trace,
    default_trace_path,
    new_span_id,
    new_trace_id,
    read_spans,
    use_trace,
)


class TestTraceContext:
    def test_new_ids_are_well_formed(self):
        assert len(new_trace_id()) == 32 and int(new_trace_id(), 16) >= 0
        assert len(new_span_id()) == 16 and int(new_span_id(), 16) >= 0

    def test_header_round_trip_with_span(self):
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        assert TraceContext.parse(ctx.to_header()) == ctx

    def test_header_round_trip_bare(self):
        ctx = TraceContext.new()
        assert ctx.span_id == ""
        assert TraceContext.parse(ctx.to_header()) == ctx

    @pytest.mark.parametrize(
        "header",
        ["", "xyz", "ab" * 15, "ab" * 16 + "-short", "ab" * 16 + "-" + "zz" * 8],
    )
    def test_malformed_headers_raise(self, header):
        with pytest.raises(ValueError, match="malformed trace header"):
            TraceContext.parse(header)

    def test_dict_round_trip(self):
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        assert TraceContext.from_dict(ctx.to_dict()) == ctx
        bare = TraceContext.new()
        assert bare.to_dict()["parent_id"] is None
        assert TraceContext.from_dict(bare.to_dict()) == bare

    def test_from_dict_rejects_unusable(self):
        assert TraceContext.from_dict(None) is None
        assert TraceContext.from_dict({}) is None
        assert TraceContext.from_dict({"parent_id": "x"}) is None

    def test_child_keeps_trace_id(self):
        ctx = TraceContext.new()
        child = ctx.child("cd" * 8)
        assert child.trace_id == ctx.trace_id and child.span_id == "cd" * 8


class TestAmbientTrace:
    def test_default_is_none(self):
        assert current_trace() is None

    def test_use_trace_scopes_and_restores(self):
        outer = TraceContext.new()
        inner = TraceContext.new()
        with use_trace(outer):
            assert current_trace() is outer
            with use_trace(inner):
                assert current_trace() is inner
            assert current_trace() is outer
        assert current_trace() is None

    def test_ambient_is_thread_local(self):
        seen = {}
        ctx = TraceContext.new()

        def probe():
            seen["other"] = current_trace()

        with use_trace(ctx):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["other"] is None


class TestSpanExporter:
    def test_span_events_are_schema_complete(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with SpanExporter(path) as exporter:
            with exporter.span("outer", attrs={"k": 1}):
                pass
        (event,) = [json.loads(line) for line in path.read_text().splitlines()]
        assert event["format"] == TRACE_FORMAT
        assert len(event["trace_id"]) == 32 and len(event["span_id"]) == 16
        assert event["parent_id"] is None
        assert event["name"] == "outer" and event["attrs"] == {"k": 1}
        assert event["end"] >= event["start"] and event["seconds"] >= 0.0

    def test_same_thread_nesting(self, tmp_path):
        with SpanExporter(tmp_path / "t.jsonl") as exporter:
            with exporter.span("parent") as parent:
                with exporter.span("child"):
                    pass
        spans = {s["name"]: s for s in read_spans(tmp_path / "t.jsonl")}
        assert spans["child"]["parent_id"] == parent.span_id
        assert spans["child"]["trace_id"] == spans["parent"]["trace_id"]

    def test_foreign_thread_falls_back_to_context(self, tmp_path):
        """Work on another thread misses the stack but lands under the
        explicit context parent -- degraded nesting, never a lost span."""
        context = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        with SpanExporter(tmp_path / "t.jsonl", context=context) as exporter:
            with exporter.span("outer"):
                thread = threading.Thread(
                    target=lambda: exporter.emit("inner", start=0.0, end=1.0)
                )
                thread.start()
                thread.join()
        spans = {s["name"]: s for s in read_spans(tmp_path / "t.jsonl")}
        assert spans["inner"]["parent_id"] == "cd" * 8
        assert spans["inner"]["trace_id"] == "ab" * 16

    def test_exception_writes_span_with_error_attr(self, tmp_path):
        with SpanExporter(tmp_path / "t.jsonl") as exporter:
            with pytest.raises(RuntimeError):
                with exporter.span("doomed"):
                    raise RuntimeError("boom")
        (span,) = read_spans(tmp_path / "t.jsonl")
        assert span["attrs"]["error"] == "RuntimeError"

    def test_default_attrs_stamped_and_overridable(self, tmp_path):
        with SpanExporter(tmp_path / "t.jsonl", attrs={"worker_id": "w0"}) as exp:
            exp.emit("a", start=0.0, end=1.0)
            exp.emit("b", start=0.0, end=1.0, attrs={"worker_id": "w1"})
        spans = {s["name"]: s for s in read_spans(tmp_path / "t.jsonl")}
        assert spans["a"]["attrs"]["worker_id"] == "w0"
        assert spans["b"]["attrs"]["worker_id"] == "w1"

    def test_write_after_close_is_dropped(self, tmp_path):
        exporter = SpanExporter(tmp_path / "t.jsonl")
        exporter.close()
        exporter.emit("late", start=0.0, end=1.0)  # must not raise
        assert read_spans(tmp_path / "t.jsonl") == []

    def test_phase_hooks_mirror_telemetry(self, tmp_path):
        """Telemetry phases ride the exporter: dotted paths, durations that
        agree with the telemetry measurement to the bit."""
        from repro.telemetry import Telemetry

        with SpanExporter(tmp_path / "t.jsonl") as exporter:
            telemetry = Telemetry().attach_exporter(exporter)
            with telemetry.phase("solve"):
                with telemetry.phase("sweep"):
                    pass
        spans = {s["name"]: s for s in read_spans(tmp_path / "t.jsonl")}
        assert set(spans) == {"solve", "solve.sweep"}
        assert spans["solve.sweep"]["parent_id"] == spans["solve"]["span_id"]
        snapshot = telemetry.snapshot()["phases"]
        assert spans["solve"]["seconds"] == snapshot["solve"]["seconds"]

    def test_unmatched_phase_pop_is_dropped(self, tmp_path):
        with SpanExporter(tmp_path / "t.jsonl") as exporter:
            exporter.phase_finished("never.started", 1.0)
        assert read_spans(tmp_path / "t.jsonl") == []


class TestReadSpans:
    def test_reads_directories_and_skips_foreign_lines(self, tmp_path):
        with SpanExporter(tmp_path / "a.jsonl") as exporter:
            exporter.emit("kept", start=0.0, end=1.0)
        (tmp_path / "b.jsonl").write_text(
            'not json\n{"format": "other-format"}\n{"half": \n'
        )
        spans = read_spans(tmp_path)
        assert [s["name"] for s in spans] == ["kept"]

    def test_missing_file_is_skipped(self, tmp_path):
        assert read_spans(tmp_path / "absent.jsonl") == []

    def test_sorted_by_start(self, tmp_path):
        with SpanExporter(tmp_path / "t.jsonl") as exporter:
            exporter.emit("late", start=5.0, end=6.0)
            exporter.emit("early", start=1.0, end=2.0)
        assert [s["name"] for s in read_spans(tmp_path / "t.jsonl")] == [
            "early",
            "late",
        ]


def test_default_trace_path_sanitizes(tmp_path):
    path = default_trace_path(tmp_path, "host/worker:1")
    assert path.parent == tmp_path
    assert path.name == "host-worker-1.jsonl"
