"""Metrics export: Prometheus text rendering and the stock sources."""

from repro.obs.metrics import (
    Metric,
    MetricsRegistry,
    render_metrics,
    service_metrics,
    spool_metrics,
    telemetry_metrics,
)


def parse_exposition(text: str) -> dict[str, float]:
    """A miniature Prometheus text-format parser: every line must be a
    comment or ``name[{labels}] value`` -- the CI obs-smoke contract."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_part, _, value = line.rpartition(" ")
        assert name_part, f"unparseable sample line {line!r}"
        float(value)  # must be numeric
        samples[name_part] = float(value)
    return samples


class TestRendering:
    def test_help_type_and_samples(self):
        metric = Metric("unsnap_things_total", "counter", "Things counted.")
        metric.add(3)
        text = render_metrics([metric])
        assert "# HELP unsnap_things_total Things counted." in text
        assert "# TYPE unsnap_things_total counter" in text
        assert "unsnap_things_total 3" in text
        assert text.endswith("\n")

    def test_labels_sorted_and_escaped(self):
        metric = Metric("unsnap_g", "gauge", "g")
        metric.add(1.5, zeta='quo"te', alpha="back\\slash", mid="new\nline")
        (line,) = [
            row
            for row in render_metrics([metric]).splitlines()
            if not row.startswith("#")
        ]
        assert line == (
            'unsnap_g{alpha="back\\\\slash",mid="new\\nline",zeta="quo\\"te"} 1.5'
        )

    def test_same_name_metrics_merge_one_header(self):
        a = Metric("unsnap_x", "gauge", "x").add(1, side="a")
        b = Metric("unsnap_x", "gauge", "x").add(2, side="b")
        text = render_metrics([a, b])
        assert text.count("# HELP unsnap_x") == 1
        assert len(parse_exposition(text)) == 2

    def test_integer_values_render_without_exponent(self):
        text = render_metrics([Metric("unsnap_n", "gauge", "n").add(1e6)])
        assert "unsnap_n 1000000" in text

    def test_empty_is_empty(self):
        assert render_metrics([]) == ""


class TestRegistry:
    def test_sources_snapshot_on_every_scrape(self):
        registry = MetricsRegistry()
        state = {"value": 1}
        registry.add_source(
            lambda: [Metric("unsnap_v", "gauge", "v").add(state["value"])]
        )
        assert parse_exposition(registry.render())["unsnap_v"] == 1
        state["value"] = 7
        assert parse_exposition(registry.render())["unsnap_v"] == 7

    def test_failing_source_degrades_to_error_counter(self):
        registry = MetricsRegistry()
        registry.add_source(lambda: [Metric("unsnap_ok", "gauge", "ok").add(1)])

        def bad():
            raise OSError("spool mount gone")

        registry.add_source(bad)
        samples = parse_exposition(registry.render())
        assert samples["unsnap_ok"] == 1
        assert samples["unsnap_metrics_source_errors_total"] == 1


class TestStockSources:
    def test_service_metrics_translate_stats(self):
        stats = {
            "backend": "serial",
            "workers": 2,
            "max_queue_depth": 64,
            "queue_depth": 3,
            "jobs": {"queued": 3, "running": 1, "done": 5, "failed": 0, "cancelled": 0},
            "submitted": 9,
            "executed": 4,
            "cache_hits": 1,
            "store_hits": 1,
            "coalesced_hits": 0,
            "cache_hit_ratio": 0.2,
            "store": {"root": "/s", "records": 4, "hits": 1, "misses": 4},
        }
        samples = parse_exposition(render_metrics(service_metrics(stats)))
        assert samples['unsnap_service_jobs{state="done"}'] == 5
        assert samples["unsnap_service_queue_depth"] == 3
        assert samples["unsnap_service_executed_total"] == 4
        assert samples["unsnap_store_records"] == 4

    def test_service_metrics_without_store(self):
        text = render_metrics(service_metrics({"jobs": {}}))
        assert "unsnap_store_records" not in text

    def test_telemetry_metrics_translate_snapshot(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        with telemetry.phase("solve"):
            pass
        telemetry.incr("factor_cache_misses", 3)
        telemetry.gauge("factor_cache_bytes", 1024)
        samples = parse_exposition(render_metrics(telemetry_metrics(telemetry)))
        assert samples['unsnap_run_counter_total{counter="factor_cache_misses"}'] == 3
        assert samples['unsnap_run_gauge{gauge="factor_cache_bytes"}'] == 1024
        assert samples['unsnap_run_phase_calls_total{phase="solve"}'] == 1
        assert 'unsnap_run_phase_seconds_total{phase="solve"}' in samples

    def test_spool_metrics_translate_status(self):
        status = {
            "pending": 2,
            "claims": [{"index": 0}],
            "done": 5,
            "errors": 1,
            "quarantined": [{"name": "j", "reason": "bad"}],
            "workers": [
                {"worker_id": "w0", "age_seconds": 0.5, "live": True},
                {"worker_id": "w1", "age_seconds": 99.0, "live": False},
            ],
            "stop_requested": True,
        }
        samples = parse_exposition(render_metrics(spool_metrics(status)))
        assert samples['unsnap_spool_jobs{state="pending"}'] == 2
        assert samples['unsnap_spool_jobs{state="claimed"}'] == 1
        assert samples['unsnap_spool_jobs{state="quarantined"}'] == 1
        assert samples['unsnap_spool_worker_heartbeat_age_seconds{worker_id="w0"}'] == 0.5
        assert samples["unsnap_spool_workers_live"] == 1
        assert samples["unsnap_spool_stop_requested"] == 1
