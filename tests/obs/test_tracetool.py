"""Trace aggregation: summaries, orphan accounting, critical path, tree."""

from repro.obs.trace import TRACE_FORMAT
from repro.obs.tracetool import (
    format_summary,
    format_tree,
    group_traces,
    summarize,
    summarize_all,
)


def span(
    name,
    span_id,
    parent=None,
    start=0.0,
    seconds=1.0,
    trace="t0" * 16,
    **attrs,
):
    return {
        "format": TRACE_FORMAT,
        "trace_id": trace,
        "span_id": span_id,
        "parent_id": parent,
        "name": name,
        "start": start,
        "end": start + seconds,
        "seconds": seconds,
        "attrs": attrs,
    }


TRACE_A = "a" * 32
TRACE_B = "b" * 32


class TestGrouping:
    def test_buckets_by_trace_id(self):
        spans = [
            span("x", "1" * 16, trace=TRACE_A),
            span("y", "2" * 16, trace=TRACE_B),
            span("z", "3" * 16, trace=TRACE_A),
        ]
        traces = group_traces(spans)
        assert set(traces) == {TRACE_A, TRACE_B}
        assert [s["name"] for s in traces[TRACE_A]] == ["x", "z"]

    def test_spans_without_trace_id_dropped(self):
        assert group_traces([{"name": "stray"}]) == {}


class TestSummarize:
    def test_distributed_shape(self):
        """A miniature campaign trace: submit, queue, two workers."""
        spans = [
            span("gateway.submit", "a" * 16, start=0.0, seconds=0.01),
            span("service.queue", "b" * 16, start=0.0, seconds=0.5),
            span("service.execute", "c" * 16, start=0.5, seconds=3.0),
            span("spool.wait", "d" * 16, parent="c" * 16, start=0.6, seconds=0.2,
                 worker_id="w0"),
            span("worker.execute", "e" * 16, parent="c" * 16, start=0.8,
                 seconds=2.0, worker_id="w0"),
            span("solve.sweep", "f" * 16, parent="e" * 16, start=0.9,
                 seconds=1.8, worker_id="w0"),
            span("worker.execute", "g" * 16, parent="c" * 16, start=1.0,
                 seconds=2.5, worker_id="w1"),
        ]
        summary = summarize("t", spans)
        assert summary["spans"] == 7 and summary["orphans"] == 0
        assert summary["makespan_seconds"] == 3.5
        # Queue-wait attribution: service.queue + spool.wait.
        assert abs(summary["queue_wait_seconds"] - 0.7) < 1e-12
        assert summary["phases"]["worker.execute"] == {"seconds": 4.5, "calls": 2}
        # Busy time counts worker.execute only; span counts count them all.
        assert summary["workers"]["w0"] == {"spans": 3, "busy_seconds": 2.0}
        assert summary["workers"]["w1"] == {"spans": 1, "busy_seconds": 2.5}
        # Critical path: last-finishing root, then last-finishing children.
        assert [step["name"] for step in summary["critical_path"]] == [
            "service.execute",
            "worker.execute",
        ]

    def test_orphan_counted_and_kept_as_root(self):
        spans = [
            span("root", "1" * 16),
            span("lost", "2" * 16, parent="f" * 16, start=5.0),
        ]
        summary = summarize("t", spans)
        assert summary["orphans"] == 1
        # The orphan still participates (it ends latest -> critical path).
        assert summary["critical_path"][0]["name"] == "lost"

    def test_empty(self):
        summary = summarize("t", [])
        assert summary["spans"] == 0 and summary["makespan_seconds"] == 0.0
        assert summary["critical_path"] == []

    def test_summarize_all_orders_by_makespan(self):
        spans = [
            span("short", "1" * 16, trace=TRACE_A, seconds=1.0),
            span("long", "2" * 16, trace=TRACE_B, seconds=9.0),
        ]
        assert [s["trace_id"] for s in summarize_all(spans)] == [TRACE_B, TRACE_A]


class TestFormatting:
    def test_summary_text(self):
        spans = [
            span("service.queue", "1" * 16, seconds=0.25),
            span("solve", "2" * 16, parent="1" * 16, start=0.25, seconds=2.0,
                 worker_id="w0"),
        ]
        text = format_summary(summarize("t" * 16, spans))
        assert "queue wait 0.250s" in text
        assert "phases:" in text and "solve" in text
        assert "workers:" in text and "w0" in text
        assert "critical path:" in text

    def test_tree_indents_by_parentage(self):
        spans = [
            span("parent", "1" * 16, start=1.0, seconds=2.0),
            span("child", "2" * 16, parent="1" * 16, start=1.5, seconds=1.0,
                 worker_id="w3"),
        ]
        lines = format_tree(spans).splitlines()
        assert lines[0].startswith("trace ")
        assert lines[1] == "  +0.000s parent 2.0000s"
        assert lines[2] == "    +0.500s child 1.0000s [w3]"

    def test_tree_flags_orphans(self):
        spans = [span("lost", "1" * 16, parent="f" * 16)]
        assert "1 orphan(s)" in format_tree(spans)
