"""CLI surface of the observability tooling: spool status and trace."""

import json

import pytest

from repro.campaign.distributed.spool import SpoolDir
from repro.campaign.workitem import WorkItem
from repro.cli import main
from repro.config import ProblemSpec
from repro.obs.trace import SpanExporter, TraceContext

SPEC = ProblemSpec(
    nx=2, ny=2, nz=2, order=1, angles_per_octant=1, num_groups=2,
    max_twist=0.0, num_inners=1, num_outers=1, engine="vectorized",
)


@pytest.fixture()
def populated_spool(tmp_path):
    spool = SpoolDir(tmp_path / "spool")
    spool.publish(WorkItem(spec=SPEC, index=0))
    quarantine = spool.root / "quarantine"
    (quarantine / "broken.json").write_text("{}")
    (quarantine / "broken.reason").write_text("ValueError: truncated payload\n")
    spool.heartbeat("w0")
    return spool


class TestSpoolStatus:
    def test_text_view(self, populated_spool, capsys):
        assert main(["spool", "status", str(populated_spool.root)]) == 0
        out = capsys.readouterr().out
        assert "pending      1" in out
        assert "broken.json: ValueError: truncated payload" in out
        assert "w0" in out

    def test_json_view(self, populated_spool, capsys):
        assert main(["spool", "status", str(populated_spool.root), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["pending"] == 1
        assert status["quarantined"] == [
            {"name": "broken.json", "reason": "ValueError: truncated payload"}
        ]

    def test_html_view(self, populated_spool, capsys):
        assert main(["spool", "status", str(populated_spool.root), "--html"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("<!doctype html>")
        assert "broken.json" in out

    def test_missing_directory_fails(self, tmp_path, capsys):
        assert main(["spool", "status", str(tmp_path / "nope")]) != 0
        assert "is not a directory" in capsys.readouterr().err


@pytest.fixture()
def trace_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    context = TraceContext.new()
    with SpanExporter(path, context=context) as exporter:
        with exporter.span("service.execute"):
            with exporter.span("worker.execute", attrs={"worker_id": "w0"}):
                pass
    return path, context.trace_id


class TestTrace:
    def test_summary_text(self, trace_file, capsys):
        path, trace_id = trace_file
        assert main(["trace", "summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert trace_id in out and "critical path:" in out

    def test_summary_json(self, trace_file, capsys):
        path, trace_id = trace_file
        assert main(["trace", "summary", str(path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert [t["trace_id"] for t in document["traces"]] == [trace_id]
        assert document["traces"][0]["spans"] == 2

    def test_tree(self, trace_file, capsys):
        path, _trace_id = trace_file
        assert main(["trace", "tree", str(path)]) == 0
        out = capsys.readouterr().out
        assert "service.execute" in out
        assert "[w0]" in out

    def test_trace_id_filter_mismatch_fails(self, trace_file, capsys):
        path, _trace_id = trace_file
        assert main(["trace", "summary", str(path), "--trace-id", "f" * 32]) != 0
        assert "no unsnap-trace-v1 spans" in capsys.readouterr().err

    def test_missing_path_fails(self, tmp_path, capsys):
        assert main(["trace", "summary", str(tmp_path / "absent.jsonl")]) != 0
