"""Dashboard renderers: spool status text/HTML and the service page."""

from repro.obs.dashboard import (
    DASHBOARD_HTML,
    render_spool_status,
    render_spool_status_html,
)

STATUS = {
    "root": "/spool",
    "pending": 2,
    "claims": [
        {"index": 7, "attempts": 1, "worker_id": "w0", "age_seconds": 3.0},
    ],
    "done": 5,
    "errors": 1,
    "workers": [
        {"worker_id": "w0", "age_seconds": 0.4, "live": True},
        {"worker_id": "w1", "age_seconds": 120.0, "live": False},
    ],
    "quarantined": [
        {"name": "badjob.json", "reason": "ValueError: truncated payload"},
    ],
    "stop_requested": True,
}


class TestTextStatus:
    def test_counts_and_sections(self):
        text = render_spool_status(STATUS)
        assert "pending      2" in text
        assert "quarantined  1" in text
        assert "stop         requested" in text
        assert "point      7 attempt 1 owner w0" in text
        assert "w1 heartbeat 2.0m (stale)" in text
        # Satellite: the quarantine .reason excerpt is in the status view.
        assert "badjob.json: ValueError: truncated payload" in text

    def test_long_reasons_truncated(self):
        status = dict(STATUS)
        status["quarantined"] = [{"name": "j", "reason": "x" * 500}]
        line = [
            row for row in render_spool_status(status).splitlines() if "j:" in row
        ][0]
        assert len(line) < 120 and line.endswith("...")

    def test_empty_reason_placeholder(self):
        status = dict(STATUS)
        status["quarantined"] = [{"name": "j", "reason": "  "}]
        assert "(no reason recorded)" in render_spool_status(status)

    def test_empty_spool_has_no_sections(self):
        text = render_spool_status({"root": "/s"})
        assert "claims:" not in text and "quarantine:" not in text


class TestHtmlStatus:
    def test_escapes_and_includes_reasons(self):
        status = dict(STATUS)
        status["quarantined"] = [{"name": "<job>", "reason": "a & b"}]
        html = render_spool_status_html(status)
        assert "&lt;job&gt;" in html and "a &amp; b" in html
        assert "<job>" not in html
        assert "STOP requested" in html

    def test_is_a_complete_document(self):
        html = render_spool_status_html(STATUS)
        assert html.startswith("<!doctype html>")
        assert "</html>" in html


class TestServiceDashboard:
    def test_self_contained_polling_page(self):
        assert DASHBOARD_HTML.startswith("<!doctype html>")
        # Dependency-free: no external scripts, stylesheets or fonts.
        assert "http://" not in DASHBOARD_HTML.replace("http://host", "")
        assert "src=" not in DASHBOARD_HTML
        # Polls the stats endpoint and streams the ndjson progress.
        assert 'fetch("/stats")' in DASHBOARD_HTML
        assert "/progress?interval=" in DASHBOARD_HTML
        assert "getReader" in DASHBOARD_HTML
