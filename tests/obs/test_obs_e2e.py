"""Observability end to end: traced daemon runs, /metrics, the gateway
trace header, and the distributed single-trace acceptance criterion."""

import json
import threading
from http.client import HTTPConnection

import pytest

from repro.campaign.backends import get_backend
from repro.campaign.distributed.spool import SpoolDir
from repro.campaign.distributed.worker import SpoolWorker
from repro.config import ProblemSpec
from repro.obs.trace import SpanExporter, TraceContext, read_spans
from repro.service import ServiceClient, ServiceDaemon, ServiceError, make_server

SPEC = ProblemSpec(
    nx=2, ny=2, nz=2, order=1, angles_per_octant=1, num_groups=2,
    max_twist=0.0, num_inners=1, num_outers=1, engine="vectorized",
)


def orphan_names(spans):
    ids = {s["span_id"] for s in spans}
    return [s["name"] for s in spans if s["parent_id"] and s["parent_id"] not in ids]


class TestTracedDaemon:
    def test_one_job_is_one_contiguous_trace(self, tmp_path):
        with SpanExporter(tmp_path / "svc.jsonl") as exporter:
            with ServiceDaemon(
                backend="serial", workers=1, trace_exporter=exporter
            ) as daemon:
                job = daemon.submit(SPEC)
                daemon.wait(job.id, timeout=60)
        assert job.state == "done"
        assert job.trace is not None and len(job.trace["trace_id"]) == 32
        spans = read_spans(tmp_path / "svc.jsonl")
        names = {s["name"] for s in spans}
        assert {"service.queue", "service.execute", "solve"} <= names
        assert {s["trace_id"] for s in spans} == {job.trace["trace_id"]}
        assert orphan_names(spans) == []

    def test_concurrent_jobs_keep_separate_traces(self, tmp_path):
        """Two daemon workers tracing concurrently must not cross-file
        spans -- the regression the per-thread ambient context prevents."""
        with SpanExporter(tmp_path / "svc.jsonl") as exporter:
            with ServiceDaemon(
                backend="serial", workers=2, trace_exporter=exporter
            ) as daemon:
                jobs = [
                    daemon.submit(SPEC.with_(num_inners=i + 1)) for i in range(3)
                ]
                for job in jobs:
                    daemon.wait(job.id, timeout=60)
        spans = read_spans(tmp_path / "svc.jsonl")
        by_trace = {}
        for span in spans:
            by_trace.setdefault(span["trace_id"], set()).add(span["name"])
        assert len(by_trace) == 3
        for names in by_trace.values():
            assert {"service.queue", "service.execute", "solve"} <= names

    def test_untraced_daemon_jobs_carry_no_trace(self):
        with ServiceDaemon(backend="serial", workers=1) as daemon:
            job = daemon.submit(SPEC)
            daemon.wait(job.id, timeout=60)
        assert job.trace is None
        assert "trace" not in job.to_dict()

    def test_submitted_context_wins_over_autogeneration(self, tmp_path):
        context = TraceContext.new().child("ab" * 8)
        with SpanExporter(tmp_path / "svc.jsonl") as exporter:
            with ServiceDaemon(
                backend="serial", workers=1, trace_exporter=exporter
            ) as daemon:
                job = daemon.submit(SPEC, trace=context)
                daemon.wait(job.id, timeout=60)
        assert job.trace == {"trace_id": context.trace_id, "parent_id": "ab" * 8}
        spans = read_spans(tmp_path / "svc.jsonl")
        assert {s["trace_id"] for s in spans} == {context.trace_id}
        # Daemon spans hang off the submitted parent span.
        queue = [s for s in spans if s["name"] == "service.queue"][0]
        assert queue["parent_id"] == "ab" * 8


class TestDaemonMetrics:
    def test_metrics_render_live_counters(self):
        with ServiceDaemon(backend="serial", workers=1) as daemon:
            job = daemon.submit(SPEC)
            daemon.wait(job.id, timeout=60)
            text = daemon.metrics()
        for line in text.splitlines():
            assert line.startswith("#") or len(line.rsplit(" ", 1)) == 2
        assert 'unsnap_service_jobs{state="done"} 1' in text
        assert "unsnap_service_executed_total 1" in text
        # Executed-run telemetry folds into the aggregate series.
        assert 'unsnap_run_phase_calls_total{phase="solve"} 1' in text


@pytest.fixture()
def traced_gateway(tmp_path):
    exporter = SpanExporter(tmp_path / "svc.jsonl")
    daemon = ServiceDaemon(backend="serial", workers=1, trace_exporter=exporter)
    daemon.start()
    server = make_server(daemon, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, daemon, tmp_path / "svc.jsonl"
    finally:
        server.shutdown()
        server.server_close()
        daemon.shutdown()
        exporter.close()
        thread.join(timeout=5)


class TestGateway:
    def test_metrics_endpoint(self, traced_gateway):
        server, _daemon, _path = traced_gateway
        conn = HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        body = response.read().decode()
        assert response.status == 200
        assert response.getheader("Content-Type").startswith("text/plain; version=0.0.4")
        assert "unsnap_service_queue_depth" in body
        conn.close()

    def test_dashboard_endpoint(self, traced_gateway):
        server, _daemon, _path = traced_gateway
        conn = HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request("GET", "/dashboard")
        response = conn.getresponse()
        body = response.read().decode()
        assert response.status == 200
        assert response.getheader("Content-Type").startswith("text/html")
        assert 'fetch("/stats")' in body
        conn.close()

    def test_trace_header_joins_the_submission(self, traced_gateway):
        server, _daemon, path = traced_gateway
        client = ServiceClient(port=server.port)
        context = TraceContext.new()
        job = client.submit(
            spec=SPEC.to_dict(), trace=context, run_options={}
        )
        assert job["trace"]["trace_id"] == context.trace_id
        client.wait(job["id"], timeout=60)
        spans = read_spans(path)
        mine = [s for s in spans if s["trace_id"] == context.trace_id]
        names = {s["name"] for s in mine}
        assert {"gateway.submit", "service.queue", "service.execute"} <= names
        assert orphan_names(mine) == []

    def test_trace_true_generates_header_client_side(self, traced_gateway):
        server, _daemon, _path = traced_gateway
        client = ServiceClient(port=server.port)
        job = client.submit(spec=SPEC.to_dict(), trace=True)
        assert len(job["trace"]["trace_id"]) == 32

    def test_malformed_trace_header_is_400(self, traced_gateway):
        server, _daemon, _path = traced_gateway
        client = ServiceClient(port=server.port)
        with pytest.raises(ServiceError) as err:
            client.submit(spec=SPEC.to_dict(), trace="not-a-trace")
        assert err.value.status == 400
        assert "malformed trace header" in err.value.payload["error"]


class TestDistributedTrace:
    def test_single_trace_across_daemon_spool_and_worker(self, tmp_path):
        """The PR acceptance criterion: one traced submission through the
        distributed backend yields ONE trace covering submit, queue wait,
        spool claim and the worker's solve phases -- zero orphans."""
        spool_root = tmp_path / "spool"
        exporter = SpanExporter(spool_root / "trace" / "service.jsonl")
        backend = get_backend("distributed")
        backend.spool_dir = str(spool_root)
        try:
            with ServiceDaemon(
                backend="distributed", workers=1, trace_exporter=exporter
            ) as daemon:
                worker = SpoolWorker(
                    spool_root, worker_id="w0", idle_exit_seconds=30.0
                )
                thread = threading.Thread(target=worker.run, daemon=True)
                thread.start()
                job = daemon.submit(SPEC)
                daemon.wait(job.id, timeout=120)
                SpoolDir(spool_root).request_stop()
                thread.join(timeout=30)
        finally:
            backend.spool_dir = None
            exporter.close()
        assert job.state == "done"
        spans = read_spans(spool_root / "trace")
        names = {s["name"] for s in spans}
        assert {
            "service.queue",
            "service.execute",
            "spool.wait",
            "worker.execute",
            "worker.store",
            "solve",
        } <= names
        assert {s["trace_id"] for s in spans} == {job.trace["trace_id"]}
        assert orphan_names(spans) == []
        # Worker spans carry their identity for the per-worker breakdown.
        execute = [s for s in spans if s["name"] == "worker.execute"][0]
        assert execute["attrs"]["worker_id"] == "w0"

    def test_untraced_spool_payload_is_byte_identical(self, tmp_path):
        """No trace context -> the published payload has no trace key at
        all (the spool-protocol half of the off-path identity contract)."""
        from repro.campaign.workitem import WorkItem

        spool = SpoolDir(tmp_path / "spool")
        spool.publish(WorkItem(spec=SPEC, index=0))
        spool.publish(WorkItem(spec=SPEC, index=1), trace=None)
        payloads = [json.loads(path.read_text()) for path in spool.pending()]
        assert len(payloads) == 2
        assert all("trace" not in p for p in payloads)

    def test_traced_spool_payload_carries_context(self, tmp_path):
        from repro.campaign.workitem import WorkItem

        spool = SpoolDir(tmp_path / "spool")
        path = spool.publish(
            WorkItem(spec=SPEC), trace={"trace_id": "ab" * 16, "parent_id": None}
        )
        payload = json.loads(path.read_text())
        assert payload["trace"] == {"trace_id": "ab" * 16, "parent_id": None}
