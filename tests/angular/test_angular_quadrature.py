"""Unit tests for the SN angular quadrature sets."""

import numpy as np
import pytest

from repro.angular.octants import (
    incoming_faces_for_direction,
    octant_of_direction,
    outgoing_faces_for_direction,
)
from repro.angular.quadrature import (
    OCTANT_SIGNS,
    AngularQuadrature,
    product_quadrature,
    snap_dummy_quadrature,
)


class TestSnapDummyQuadrature:
    @pytest.mark.parametrize("per_octant", [1, 2, 4, 10, 36])
    def test_counts_and_weights(self, per_octant):
        quad = snap_dummy_quadrature(per_octant)
        assert quad.num_angles == 8 * per_octant
        assert quad.per_octant == per_octant
        assert quad.weights.sum() == pytest.approx(1.0)
        # SNAP's dummy set uses equal weights.
        assert np.allclose(quad.weights, quad.weights[0])

    def test_directions_are_unit_vectors(self):
        quad = snap_dummy_quadrature(10)
        assert np.allclose(np.linalg.norm(quad.directions, axis=1), 1.0)

    def test_octant_assignment_consistent_with_signs(self):
        quad = snap_dummy_quadrature(4)
        for a in range(quad.num_angles):
            signs = OCTANT_SIGNS[quad.octants[a]]
            assert np.all(np.sign(quad.directions[a]) == signs)

    def test_symmetric_set_has_zero_mean_direction(self):
        quad = snap_dummy_quadrature(6)
        assert np.allclose(quad.mean_direction(), 0.0, atol=1e-14)

    def test_angles_in_octant(self):
        quad = snap_dummy_quadrature(3)
        for octant in range(8):
            idx = quad.angles_in_octant(octant)
            assert idx.shape == (3,)
            assert np.all(quad.octants[idx] == octant)
        with pytest.raises(ValueError):
            quad.angles_in_octant(8)

    def test_octant_order_covers_all_angles(self):
        quad = snap_dummy_quadrature(5)
        all_angles = np.concatenate(quad.octant_order())
        assert np.array_equal(np.sort(all_angles), np.arange(quad.num_angles))

    def test_invalid_per_octant(self):
        with pytest.raises(ValueError):
            snap_dummy_quadrature(0)


class TestProductQuadrature:
    def test_weights_normalised(self):
        quad = product_quadrature(2, 3)
        assert quad.per_octant == 6
        assert quad.weights.sum() == pytest.approx(1.0)

    def test_integrates_constant(self):
        quad = product_quadrature(3, 3)
        values = np.ones(quad.num_angles)
        assert quad.integrate(values) == pytest.approx(1.0)

    def test_integrates_mu_squared(self):
        # Over the unit sphere with normalised weights, <mu^2> = 1/3.
        quad = product_quadrature(4, 4)
        mu2 = quad.directions[:, 2] ** 2
        assert quad.integrate(mu2) == pytest.approx(1.0 / 3.0, abs=1e-10)

    def test_odd_moments_vanish(self):
        quad = product_quadrature(3, 2)
        for axis in range(3):
            assert quad.integrate(quad.directions[:, axis]) == pytest.approx(0.0, abs=1e-14)

    def test_invalid(self):
        with pytest.raises(ValueError):
            product_quadrature(0, 1)


class TestAngularQuadratureValidation:
    def test_shape_checks(self):
        with pytest.raises(ValueError):
            AngularQuadrature(
                directions=np.zeros((4, 2)),
                weights=np.ones(4),
                octants=np.zeros(4, dtype=int),
                per_octant=1,
            )
        with pytest.raises(ValueError):
            AngularQuadrature(
                directions=np.zeros((4, 3)),
                weights=np.ones(3),
                octants=np.zeros(4, dtype=int),
                per_octant=1,
            )


class TestOctantHelpers:
    def test_octant_of_direction(self):
        assert octant_of_direction(np.array([0.5, 0.5, 0.5])) == 0
        assert octant_of_direction(np.array([-0.5, 0.5, 0.5])) == 1
        assert octant_of_direction(np.array([0.5, -0.5, 0.5])) == 2
        assert octant_of_direction(np.array([-0.5, -0.5, -0.5])) == 7

    def test_octant_rejects_zero_cosine(self):
        with pytest.raises(ValueError):
            octant_of_direction(np.array([0.0, 1.0, 1.0]))

    def test_incoming_outgoing_faces(self):
        d = np.array([0.3, -0.4, 0.5])
        assert incoming_faces_for_direction(d) == [0, 3, 4]
        assert outgoing_faces_for_direction(d) == [1, 2, 5]

    def test_faces_partition_when_all_cosines_nonzero(self):
        d = np.array([0.1, 0.2, -0.9])
        faces = set(incoming_faces_for_direction(d)) | set(outgoing_faces_for_direction(d))
        assert faces == {0, 1, 2, 3, 4, 5}

    def test_quadrature_octants_match_helper(self):
        quad = snap_dummy_quadrature(4)
        for a in range(quad.num_angles):
            assert octant_of_direction(quad.directions[a]) == quad.octants[a]
