"""Unit tests for face classification, tlevels, buckets and cycle detection."""

import numpy as np
import pytest

from repro.angular.quadrature import snap_dummy_quadrature
from repro.fem.element import HexElementFactors
from repro.fem.reference import ReferenceElement
from repro.mesh.builder import StructuredGridSpec, build_snap_mesh
from repro.sweepsched.cycles import CycleError, find_dependency_cycles
from repro.sweepsched.graph import classify_faces, build_dependency_graph
from repro.sweepsched.schedule import build_sweep_schedule
from repro.sweepsched.tlevel import buckets_from_tlevels, compute_tlevels


@pytest.fixture(scope="module")
def mesh_and_factors():
    mesh = build_snap_mesh(StructuredGridSpec(4, 3, 2), max_twist=0.001)
    ref = ReferenceElement(1)
    factors = HexElementFactors.build(mesh.cell_vertices(), ref)
    return mesh, factors


class TestClassification:
    def test_positive_octant_direction(self, mesh_and_factors):
        mesh, factors = mesh_and_factors
        direction = np.array([1.0, 1.0, 1.0]) / np.sqrt(3.0)
        cls = classify_faces(factors, direction)
        # For a (nearly) axis-aligned mesh, -x/-y/-z faces are inflow and
        # +x/+y/+z are outflow for an all-positive direction.
        assert np.all(cls.orientation[:, [0, 2, 4]] == -1)
        assert np.all(cls.orientation[:, [1, 3, 5]] == +1)

    def test_opposite_direction_flips_orientation(self, mesh_and_factors):
        _mesh, factors = mesh_and_factors
        d = np.array([0.3, 0.5, 0.81])
        d = d / np.linalg.norm(d)
        a = classify_faces(factors, d)
        b = classify_faces(factors, -d)
        assert np.array_equal(a.orientation, -b.orientation)
        assert np.allclose(a.flow, -b.flow)

    def test_incoming_outgoing_helpers(self, mesh_and_factors):
        _mesh, factors = mesh_and_factors
        direction = np.array([1.0, 0.5, 0.25])
        cls = classify_faces(factors, direction / np.linalg.norm(direction))
        assert set(cls.incoming_faces(0).tolist()) == {0, 2, 4}
        assert set(cls.outgoing_faces(0).tolist()) == {1, 3, 5}

    def test_signature_shared_within_octant(self, mesh_and_factors):
        _mesh, factors = mesh_and_factors
        quad = snap_dummy_quadrature(4)
        octant0 = quad.angles_in_octant(0)
        signatures = {classify_faces(factors, quad.directions[a]).signature() for a in octant0}
        # With the tiny 0.001 rad twist all angles of an octant classify alike.
        assert len(signatures) == 1

    def test_invalid_direction(self, mesh_and_factors):
        _mesh, factors = mesh_and_factors
        with pytest.raises(ValueError):
            classify_faces(factors, np.array([1.0, 0.0]))


class TestDependencyGraph:
    def test_in_degree_counts_interior_inflow(self, mesh_and_factors):
        mesh, factors = mesh_and_factors
        cls = classify_faces(factors, np.array([1.0, 1.0, 1.0]) / np.sqrt(3.0))
        in_degree, downstream = build_dependency_graph(mesh, cls)
        # The corner cell at (0,0,0) has no interior inflow faces.
        assert in_degree[0] == 0
        # The cell at (1,1,1) has three upwind neighbours.
        ijk = mesh.structured_index
        cell = int(np.nonzero((ijk == [1, 1, 1]).all(axis=1))[0][0])
        assert in_degree[cell] == 3
        # Edges go from upwind to downwind cells.
        assert cell in downstream[int(np.nonzero((ijk == [0, 1, 1]).all(axis=1))[0][0])]


class TestTlevels:
    def test_tlevels_are_manhattan_levels_on_structured_mesh(self, mesh_and_factors):
        mesh, factors = mesh_and_factors
        cls = classify_faces(factors, np.array([1.0, 1.0, 1.0]) / np.sqrt(3.0))
        tlevels = compute_tlevels(mesh, cls)
        ijk = mesh.structured_index
        assert np.array_equal(tlevels, ijk.sum(axis=1))

    def test_buckets_partition_cells(self, mesh_and_factors):
        mesh, factors = mesh_and_factors
        cls = classify_faces(factors, np.array([-0.6, 0.64, 0.48]))
        tlevels = compute_tlevels(mesh, cls)
        buckets = buckets_from_tlevels(tlevels)
        cat = np.concatenate(buckets)
        assert np.array_equal(np.sort(cat), np.arange(mesh.num_cells))
        # Buckets are monotone in tlevel.
        for level, bucket in enumerate(buckets):
            assert np.all(tlevels[bucket] == level)

    def test_buckets_reject_unscheduled(self):
        with pytest.raises(ValueError):
            buckets_from_tlevels(np.array([0, -1, 1]))

    def test_empty_tlevels(self):
        assert buckets_from_tlevels(np.empty(0, dtype=int)) == []


class TestSweepSchedule:
    def test_schedule_is_topological_order(self, mesh_and_factors):
        mesh, factors = mesh_and_factors
        quad = snap_dummy_quadrature(2)
        schedule = build_sweep_schedule(mesh, factors, quad)
        for a in range(quad.num_angles):
            assert schedule.for_angle(a).validate_topological_order(mesh)

    def test_structural_sharing_across_angles(self, mesh_and_factors):
        mesh, factors = mesh_and_factors
        quad = snap_dummy_quadrature(4)
        schedule = build_sweep_schedule(mesh, factors, quad)
        # 32 angles but (for the tiny twist) only 8 distinct dependency
        # structures -- one per octant, as on a structured mesh.
        assert schedule.num_angles == 32
        assert schedule.num_unique_schedules() == 8

    def test_concurrency_summary(self, mesh_and_factors):
        mesh, factors = mesh_and_factors
        quad = snap_dummy_quadrature(1)
        schedule = build_sweep_schedule(mesh, factors, quad)
        summary = schedule.concurrency_summary()
        assert summary["num_angles"] == 8
        assert summary["max_bucket_size"] >= 1
        assert summary["total_buckets"] == sum(
            schedule.for_angle(a).num_buckets for a in range(8)
        )

    def test_bucket_count_matches_grid_diameter(self):
        # On an n^3 structured mesh the wavefront count is 3(n-1)+1.
        n = 4
        mesh = build_snap_mesh(StructuredGridSpec(n, n, n))
        ref = ReferenceElement(1)
        factors = HexElementFactors.build(mesh.cell_vertices(), ref)
        quad = snap_dummy_quadrature(1)
        schedule = build_sweep_schedule(mesh, factors, quad)
        assert schedule.for_angle(0).num_buckets == 3 * (n - 1) + 1
        assert schedule.for_angle(0).max_parallel_elements() >= n


class TestCycles:
    def _cyclic_classification(self, mesh, factors):
        """Fabricate a pinwheel 4-cycle among cells (0,0,0), (1,0,0), (1,1,0), (0,1,0).

        On the 4x3x2 mesh those cells have ids 0, 1, 5 and 4.  The
        orientations are edited consistently (each edited face is outflow on
        one side and inflow on the other) so the resulting dependency graph
        is a genuine directed cycle 0 -> 1 -> 5 -> 4 -> 0.
        """
        d = np.array([1.0, 1.0, 1.0]) / np.sqrt(3.0)
        cls = classify_faces(factors, d)
        orientation = cls.orientation.copy()
        orientation[4, 1] = -1  # cell 4 now receives from cell 5 (+x face)
        orientation[5, 0] = +1  # ... and cell 5 sends through its -x face
        orientation[0, 3] = -1  # cell 0 now receives from cell 4 (+y face)
        orientation[4, 2] = +1  # ... and cell 4 sends through its -y face
        return cls.__class__(orientation=orientation, flow=cls.flow)

    def test_cycle_raises(self, mesh_and_factors):
        mesh, factors = mesh_and_factors
        bad = self._cyclic_classification(mesh, factors)
        with pytest.raises(CycleError) as err:
            compute_tlevels(mesh, bad)
        assert {0, 1, 4, 5}.issubset(set(err.value.unscheduled_cells.tolist()))

    def test_find_cycles_reports_members(self, mesh_and_factors):
        mesh, factors = mesh_and_factors
        bad = self._cyclic_classification(mesh, factors)
        cycles = find_dependency_cycles(mesh, bad, restrict_to=np.array([0, 1, 4, 5]))
        assert any(set(c) == {0, 1, 4, 5} for c in cycles)

    def test_acyclic_graph_has_no_cycles(self, mesh_and_factors):
        mesh, factors = mesh_and_factors
        cls = classify_faces(factors, np.array([0.6, 0.64, 0.48]))
        assert find_dependency_cycles(mesh, cls) == []
