#!/usr/bin/env python
"""Distributed campaign tour: spool workers, a mid-run kill, shard merge.

The CI ``distributed-smoke`` job runs this script end to end; it is also
the quickest way to see the spool protocol work on one machine:

1. starts two real ``unsnap worker`` subprocesses on a shared spool and
   runs a study through the ``distributed`` backend -- then SIGKILLs one
   worker as soon as it claims a job, so its point is *stolen* after the
   lease and re-executed by the survivor (visible as ``attempts`` > 1 or
   the surviving ``worker_id`` in the records);
2. checks the fluxes bit-for-bit against the ``serial`` backend;
3. executes the two halves of a second study in two *independent* shard
   stores, folds them together with ``ResultStore.merge``, and re-runs
   the full study against the merged store -- which must execute **zero**
   new runs.

Run with:  PYTHONPATH=src python examples/distributed_smoke.py

The multi-host version is the same thing with a shared filesystem:

    unsnap worker /shared/spool                 # on every host
    unsnap study --deck grid.deck --backend distributed --spool /shared/spool
"""

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

import repro
from repro.campaign import ResultStore, run_study
from repro.campaign.distributed import DistributedBackend, SpoolDir
from repro.campaign.distributed.coordinator import worker_command

BASE = repro.ProblemSpec(
    nx=3, ny=3, nz=3, angles_per_octant=1, num_groups=2, num_inners=2,
    engine="vectorized",
)
STUDY = repro.Study.grid(BASE, order=[1, 2], engine=["vectorized", "prefactorized"])
LEASE = 5.0


def start_worker(spool: SpoolDir, poll: float = 0.05) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = os.pathsep.join(p for p in (src, env.get("PYTHONPATH", "")) if p)
    return subprocess.Popen(
        worker_command(spool.root, poll_seconds=poll, heartbeat_seconds=0.2),
        env=env,
    )


def kill_first_claimer(spool: SpoolDir, workers: list[subprocess.Popen]) -> str:
    """SIGKILL whichever worker claims a job first; returns its pid string."""
    deadline = time.time() + 60
    while time.time() < deadline:
        claims = spool.claims()
        if claims:
            victim_id = claims[0].worker_id
            # worker ids are host-pid; kill the matching subprocess.
            for proc in workers:
                if victim_id.endswith(f"-{proc.pid}"):
                    proc.send_signal(signal.SIGKILL)
                    proc.wait(timeout=10)
                    print(f"killed worker {victim_id} holding a live claim")
                    return victim_id
        time.sleep(0.01)
    raise SystemExit("no worker ever claimed a job")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        # --- 1. spooled campaign with a worker killed mid-run ------------
        spool = SpoolDir(Path(tmp) / "spool")
        workers = [start_worker(spool), start_worker(spool)]
        backend = DistributedBackend(
            spool_dir=spool.root, workers=0, lease_seconds=LEASE, poll_seconds=0.05
        )
        killer = threading.Thread(
            target=kill_first_claimer, args=(spool, workers), daemon=True
        )
        killer.start()
        result = run_study(STUDY, backend=backend)
        killer.join(timeout=60)
        spool.request_stop()
        for proc in workers:
            if proc.poll() is None:
                proc.wait(timeout=30)

        survivors = {r.meta["worker_id"] for r in result}
        retries = [r.meta["attempts"] for r in result if r.meta["attempts"] > 1]
        print(f"campaign done: {len(result)} runs on workers {sorted(survivors)}, "
              f"{len(retries)} stolen/retried point(s)")

        # --- 2. bit-for-bit against serial -------------------------------
        serial = run_study(STUDY, backend="serial")
        for a, b in zip(serial, result):
            np.testing.assert_array_equal(a.result.scalar_flux, b.result.scalar_flux)
        print("fluxes bit-for-bit identical to the serial backend")

        # --- 3. shard stores merge into a zero-new-run resume ------------
        points = STUDY.runs()
        half = len(points) // 2
        shard_a = ResultStore(Path(tmp) / "shard-a")
        shard_b = ResultStore(Path(tmp) / "shard-b")
        run_study(repro.Study.cases(BASE, [p.axes for p in points[:half]]), store=shard_a)
        run_study(repro.Study.cases(BASE, [p.axes for p in points[half:]]), store=shard_b)
        stats = shard_a.merge(shard_b)
        print(f"merged shard stores: {stats}")
        resumed = run_study(STUDY, store=shard_a)
        assert resumed.new_run_count == 0, resumed.new_run_count
        print(f"resume after merge: {resumed.cached_run_count} cached runs, "
              f"{resumed.new_run_count} new runs")
        print("distributed smoke OK")


if __name__ == "__main__":
    sys.exit(main())
