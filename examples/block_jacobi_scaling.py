#!/usr/bin/env python
"""Block-Jacobi global schedule: convergence vs the number of (simulated) ranks.

Section III-A.1 of the paper chooses a parallel block Jacobi schedule for
processor-to-processor coupling: every rank sweeps its own KBA-column
subdomain concurrently with lagged halo data, at the cost of a convergence
rate that degrades as the number of Jacobi blocks grows.  This example runs
the same problem on a sequence of rank grids with the in-process simulated
MPI substrate and prints the measured convergence histories, the halo-exchange
traffic and the KBA pipeline idle time the schedule avoids.

Run with:  python examples/block_jacobi_scaling.py
"""

import numpy as np

from repro.analysis.reporting import format_scaling_series, format_table
from repro.config import ProblemSpec
from repro.parallel.kba import KBAPipelineModel
from repro.runner import run


def main() -> None:
    spec = ProblemSpec(
        nx=8, ny=8, nz=4,
        order=1,
        angles_per_octant=1,
        num_groups=2,
        max_twist=0.001,
        num_inners=10,
        num_outers=1,
    )
    rank_grids = [(1, 1), (2, 1), (2, 2), (4, 2), (4, 4)]

    histories = {}
    traffic_rows = []
    reference = None
    for npex, npey in rank_grids:
        result = run(spec.with_(npex=npex, npey=npey), engine="vectorized")
        label = f"{npex}x{npey} ranks"
        histories[label] = result.history.inner_errors
        traffic_rows.append(
            (label, result.messages, result.bytes_exchanged, round(result.solve_seconds, 2))
        )
        if reference is None:
            reference = result.scalar_flux
        else:
            rel = np.abs(result.scalar_flux - reference) / np.maximum(reference, 1e-12)
            print(f"{label}: max deviation from the 1-rank iterate after "
                  f"{spec.num_inners} inners = {rel.max():.2e}")

    print()
    print(format_scaling_series(
        list(range(1, spec.num_inners + 1)),
        histories,
        title="Max relative scalar-flux change per inner iteration (block Jacobi)",
        unit="",
    ))

    print()
    print(format_table(
        ("rank grid", "halo messages", "bytes exchanged", "wall seconds"),
        traffic_rows,
        title="Halo-exchange traffic per solve",
    ))

    print()
    rows = []
    for npex, npey in rank_grids:
        model = KBAPipelineModel(npex=npex, npey=npey, num_planes=spec.nz * 4)
        rows.append((f"{npex}x{npey}", round(model.parallel_efficiency(), 3),
                     round(model.relative_sweep_time(), 2)))
    print(format_table(
        ("rank grid", "KBA busy fraction", "KBA sweep time vs ideal"),
        rows,
        title="KBA pipeline model: the idle time the block-Jacobi schedule avoids",
    ))
    print(
        "\nThe block-Jacobi schedule keeps every rank busy from the first sweep\n"
        "(no pipeline fill), but needs more iterations as the rank count grows --\n"
        "exactly the trade-off the paper discusses."
    )


if __name__ == "__main__":
    main()
