#!/usr/bin/env python
"""Service tour: the job-queue daemon, the HTTP gateway and request dedup.

Starts an in-process service (daemon + gateway on a free port), drives it
through :class:`repro.service.ServiceClient` the way a remote caller would:
submits a deck, streams its telemetry progress, re-submits the identical
deck (served from the store -- zero new solves), shows the structured 400
a bad deck gets, and reads the cache-hit ratio off ``/stats``.

Run with:  python examples/serve_client.py

Against a standalone daemon, the same tour is:

    unsnap serve --store runs/ --port 8080          # terminal 1
    curl -d '{"deck": "nx=4 ny=4 nz=4 ng=2"}' localhost:8080/jobs
    curl localhost:8080/jobs/1
    curl localhost:8080/jobs/1/progress
    curl localhost:8080/stats
"""

import tempfile
import threading

from repro.service import ServiceClient, ServiceDaemon, ServiceError, make_server

DECK = "nx=4 ny=4 nz=4 ng=2 nang=2 iitm=2 oitm=1"


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        daemon = ServiceDaemon(store=tmp, backend="serial", workers=2)
        daemon.start()
        server = make_server(daemon, port=0)  # port=0: pick a free port
        threading.Thread(target=server.serve_forever, daemon=True).start()
        client = ServiceClient(port=server.port)
        print(f"service on http://127.0.0.1:{server.port}  "
              f"health={client.healthz()['status']}")

        # Submit a deck and watch its telemetry stream until terminal.
        job = client.submit(deck=DECK)
        print(f"\njob {job['id']} submitted (state={job['state']})")
        for snapshot in client.progress(job["id"], interval=0.1):
            phases = (snapshot.get("telemetry") or {}).get("phases", {})
            sweep = phases.get("solve.sweep", {}).get("seconds", 0.0)
            print(f"  progress: state={snapshot['state']:8s} sweep={sweep:.3f}s")
        first = client.job(job["id"])
        print(f"done: mean_flux={first['result_summary']['mean_flux']:.6f} "
              f"cache_hit={first['cache_hit']}")

        # The identical submission costs zero new solves: same content key,
        # served from the store.
        twin = client.wait(client.submit(deck=DECK)["id"])
        assert twin["result_summary"] == first["result_summary"]
        print(f"\nidentical re-submission: cache_hit={twin['cache_hit']} "
              f"(bit-identical summary)")

        # Deck errors come back as structured JSON, not a message to parse.
        try:
            client.submit(deck="nx=4 bogus=1")
        except ServiceError as exc:
            print(f"\nbad deck -> HTTP {exc.status}: key={exc.payload['key']!r} "
                  f"section={exc.payload['section']!r}")

        stats = client.stats()
        print(f"\n/stats: executed={stats['executed']} "
              f"cache_hits={stats['cache_hits']} "
              f"hit_ratio={stats['cache_hit_ratio']:.2f} "
              f"store_records={stats['store']['records']}")

        server.shutdown()
        server.server_close()
        daemon.shutdown()


if __name__ == "__main__":
    main()
