#!/usr/bin/env python
"""Quickstart: solve a small UnSNAP problem and inspect the result.

Builds the twisted unstructured mesh from a SNAP structured grid, runs the
discontinuous Galerkin discrete ordinates sweep with the SNAP "option 1"
artificial data, and prints the solve summary, the particle balance, and the
Table I matrix-size overview.

Run with:  python examples/quickstart.py
"""

from repro import ProblemSpec, TransportSolver
from repro.analysis.reporting import format_table
from repro.analysis.tables import table1_matrix_sizes


def main() -> None:
    # A small but representative problem: 6^3 cells derived from the SNAP
    # grid, twisted by 0.001 rad so the mesh is genuinely unstructured,
    # 4 angles per octant, 4 energy groups, linear finite elements.
    spec = ProblemSpec(
        nx=6, ny=6, nz=6,
        order=1,
        angles_per_octant=4,
        num_groups=4,
        max_twist=0.001,
        num_inners=20,
        num_outers=5,
        inner_tolerance=1e-6,
        outer_tolerance=1e-6,
        solver="ge",
    )

    print("Setting up the transport solver (mesh, schedules, local matrices)...")
    solver = TransportSolver(spec)
    print(f"  cells: {solver.mesh.num_cells}, angles: {spec.num_angles}, "
          f"groups: {spec.num_groups}, nodes/element: {spec.nodes_per_element}")
    print(f"  unique sweep schedules: {solver.schedule.num_unique_schedules()} "
          f"(one per octant on this gently twisted mesh)")
    memory = solver.memory_report()
    print(f"  angular flux footprint: {memory['angular_flux_bytes'] / 1e6:.1f} MB "
          f"({memory['fem_to_fd_ratio']:.0f}x the finite-difference footprint)")

    print("\nSolving...")
    result = solver.solve()
    summary = result.summary()
    rows = [(k, v) for k, v in summary.items()]
    print(format_table(("quantity", "value"), rows, title="Solve summary"))

    balance = result.balance
    rows = [
        (g,
         f"{balance.emission[g]:.4f}",
         f"{balance.absorption[g]:.4f}",
         f"{balance.leakage[g]:.4f}",
         f"{balance.residual[g]:+.2e}")
        for g in range(spec.num_groups)
    ]
    print()
    print(format_table(("group", "emission", "absorption", "leakage", "residual"),
                       rows, title="Particle balance"))
    print(f"total relative balance residual: {balance.relative_residual():.2e}")

    print()
    print(format_table(
        ("order", "matrix size", "FP64 footprint (kB)"),
        [r.as_tuple() for r in table1_matrix_sizes()],
        title="Table I: local matrix sizes for the supported element orders",
    ))


if __name__ == "__main__":
    main()
