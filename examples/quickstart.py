#!/usr/bin/env python
"""Quickstart: solve a small UnSNAP problem through the ``repro.run`` facade.

Builds the twisted unstructured mesh from a SNAP structured grid, runs the
discontinuous Galerkin discrete ordinates sweep with the SNAP "option 1"
artificial data through the unified entry point, and prints the solve
summary, the particle balance, and the Table I matrix-size overview.  The
same call dispatches to the multi-rank block-Jacobi driver when the spec
carries a rank grid, and the ``engine=`` keyword swaps the sweep execution
strategy.

Run with:  python examples/quickstart.py
"""

import repro
from repro.analysis.reporting import format_table
from repro.analysis.tables import table1_matrix_sizes


def main() -> None:
    # A small but representative problem: 6^3 cells derived from the SNAP
    # grid, twisted by 0.001 rad so the mesh is genuinely unstructured,
    # 4 angles per octant, 4 energy groups, linear finite elements.
    spec = repro.ProblemSpec(
        nx=6, ny=6, nz=6,
        order=1,
        angles_per_octant=4,
        num_groups=4,
        max_twist=0.001,
        num_inners=20,
        num_outers=5,
        inner_tolerance=1e-6,
        outer_tolerance=1e-6,
        solver="ge",
    )

    print(f"Problem: {spec.num_cells} cells, {spec.num_angles} angles, "
          f"{spec.num_groups} groups, {spec.nodes_per_element} nodes/element")
    print(f"  angular flux footprint: {spec.angular_flux_bytes() / 1e6:.1f} MB "
          f"({spec.nodes_per_element}x the finite-difference footprint)")
    print(f"  registered engines: {', '.join(repro.available_engines())}")

    print("\nSolving with the vectorized sweep engine...")
    result = repro.run(spec, engine="vectorized")
    rows = [(k, v) for k, v in result.summary().items()]
    print(format_table(("quantity", "value"), rows, title="Solve summary"))

    balance = result.balance
    rows = [
        (g,
         f"{balance.emission[g]:.4f}",
         f"{balance.absorption[g]:.4f}",
         f"{balance.leakage[g]:.4f}",
         f"{balance.residual[g]:+.2e}")
        for g in range(spec.num_groups)
    ]
    print()
    print(format_table(("group", "emission", "absorption", "leakage", "residual"),
                       rows, title="Particle balance"))
    print(f"total relative balance residual: {balance.relative_residual():.2e}")

    print()
    print(format_table(
        ("order", "matrix size", "FP64 footprint (kB)"),
        [r.as_tuple() for r in table1_matrix_sizes()],
        title="Table I: local matrix sizes for the supported element orders",
    ))

    # The same entry point runs the per-element reference engine...
    reference = repro.run(spec.with_(num_inners=2, num_outers=1))
    # ...and a block-Jacobi decomposition over a 2x2 rank grid.
    parallel = repro.run(spec.with_(num_inners=2, num_outers=1, npex=2, npey=2),
                         engine="vectorized")
    print(f"\nreference engine, 1 rank  : mean flux {reference.mean_flux:.6f} "
          f"({reference.solve_seconds:.2f} s)")
    print(f"vectorized engine, 4 ranks: mean flux {parallel.mean_flux:.6f} "
          f"({parallel.solve_seconds:.2f} s, {parallel.messages} halo messages)")


if __name__ == "__main__":
    main()
