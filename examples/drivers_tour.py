#!/usr/bin/env python
"""Drivers tour: the three outer loops over the same sweep core.

Runs one small reflected (infinite-medium) problem through every
registered driver -- the ``fixed_source`` default, the ``k_eigenvalue``
power iteration and the ``time_dependent`` backward-Euler stepper -- and
compares the computed k-effective and the transient decay against their
closed-form infinite-medium references.  Everything below goes through
the one ``repro.run`` facade; the driver is just another spec field, so
decks, the CLI and campaign studies can select it the same way.

Run with:  python examples/drivers_tour.py
"""

import math

import repro
from repro.analysis.reporting import format_table
from repro.drivers import driver_listing
from repro.materials import snap_driver_library


def main() -> None:
    print("Registered drivers:")
    for name, aliases, description in driver_listing():
        print(f"  {name:<16} [{aliases or '-'}]  {description}")

    # A reflected 2^3 box: with mirror boundaries on every face and uniform
    # data the problem is an infinite medium, so both drivers have textbook
    # closed-form references to hit.
    base = repro.ProblemSpec(
        nx=2, ny=2, nz=2,
        max_twist=0.0,
        angles_per_octant=1,
        num_groups=2,
        num_inners=30,
        inner_tolerance=1e-12,
        boundary=repro.BoundaryCondition(kind="reflective"),
    )
    material = snap_driver_library(base.num_groups, base.scattering_ratio).materials[0]

    # 1. The default fixed-source outers (exactly the pre-driver behaviour).
    steady = repro.run(base)
    print(f"\nfixed_source : mean flux {steady.mean_flux:.6f} "
          f"({len(steady.history.inner_errors)} inners)")

    # 2. Power iteration: normalise the fission source, update k, repeat.
    keff = repro.run(base.with_(driver="k_eigenvalue", k_tolerance=1e-10,
                                max_power_iters=100))
    k_analytic = material.k_infinity()
    print(f"k_eigenvalue : k_eff = {keff.k_effective:.10f} in "
          f"{len(keff.k_history)} power iterations "
          f"(dominance ratio {keff.dominance_ratio:.4f})")
    print(f"               analytic k_inf = {k_analytic:.10f}, "
          f"error {abs(keff.k_effective - k_analytic):.3e}")
    rows = [(m, f"{k:.10f}") for m, k in enumerate(keff.k_history)]
    print(format_table(("iteration", "k estimate"), rows,
                       title="k history (one row per power iteration)"))

    # 3. Backward Euler: pure absorber decaying from a flat unit flux.
    #    The discrete solution is phi_0 / (1 + v*sigma_a*dt)^n, converging
    #    at first order in dt to the analytic phi_0 * exp(-v*sigma_a*t).
    decay_spec = base.with_(
        driver="time_dependent",
        scattering_ratio=0.0,
        source_strength=0.0,
        initial_flux_value=1.0,
        dt=0.1, n_steps=10,
    )
    pure = snap_driver_library(base.num_groups, 0.0).materials[0]
    rate = pure.velocity[0] * pure.sigma_t[0]  # fastest group decays fastest
    transient = repro.run(decay_spec)
    rows = [
        (f"{t:.1f}",
         f"{flux[0]:.6f}",
         f"{math.exp(-rate * t):.6f}",
         f"{1.0 / (1.0 + rate * decay_spec.dt) ** (i + 1):.6f}")
        for i, (t, flux) in enumerate(zip(transient.times,
                                          transient.step_mean_flux))
    ]
    print()
    print(format_table(
        ("t", "group-0 flux", "analytic exp", "discrete BE"),
        rows,
        title="time_dependent: backward-Euler decay vs references",
    ))

    # The driver fields are ordinary study axes: a dt refinement through the
    # campaign layer (any backend works; stores make it resumable).  Fixing
    # t_end (which overrides n_steps) keeps every run ending at the same
    # time, so the errors are comparable across the dt axis.
    study = repro.Study.grid(decay_spec.with_(t_end=0.8),
                             dt=[0.4, 0.2, 0.1], name="dt-refine")
    result = repro.run_study(study)
    errors = []
    for run in result.runs:
        dt = run.spec.dt
        final = run.result.step_mean_flux[-1][0]
        exact = math.exp(-rate * run.result.times[-1])
        errors.append((dt, abs(final - exact) / exact))
    rows = []
    for i, (dt, err) in enumerate(errors):
        order = "-"
        if i > 0:
            prev_dt, prev_err = errors[i - 1]
            order = f"{math.log(prev_err / err) / math.log(prev_dt / dt):.3f}"
        rows.append((f"{dt:g}", f"{err:.3e}", order))
    print()
    print(format_table(("dt", "relative error", "observed order"), rows,
                       title="dt-refinement study: first-order convergence"))


if __name__ == "__main__":
    main()
