#!/usr/bin/env python
"""Table II study: hand-written Gaussian elimination vs LAPACK ``dgesv``.

Runs the scaled-down Table II problem for element orders 1-3 with both local
solvers, prints the reproduced table (assemble/solve time and % of time in
the solve) and the paper's observations that survive the Python substitution.

Run with:  python examples/solver_comparison.py
"""

from repro.analysis.reporting import format_table
from repro.analysis.tables import table2_solver_comparison
from repro.config import ProblemSpec


def main() -> None:
    base = ProblemSpec(
        nx=5, ny=5, nz=5,
        angles_per_octant=2,
        num_groups=4,
        max_twist=0.001,
        num_inners=2,
        num_outers=1,
    )
    print("Running the scaled-down Table II sweep over element orders and solvers")
    print(f"  problem: {base.nx}^3 cells, {base.angles_per_octant} angles/octant, "
          f"{base.num_groups} groups, {base.num_inners} inners")
    print("  (the paper uses 32^3 cells, 10 angles/octant, 16 groups, 5 inners)\n")

    rows = table2_solver_comparison(orders=(1, 2, 3), base_spec=base)
    print(format_table(
        ("order", "solver", "assemble/solve (s)", "% in solve", "systems solved"),
        [r.as_tuple() for r in rows],
        title="Table II (reproduced, scaled down)",
    ))

    by_key = {(r.order, r.solver): r for r in rows}
    print("\nObservations:")
    for order in (1, 2, 3):
        ge, la = by_key[(order, "ge")], by_key[(order, "lapack")]
        print(f"  order {order}: GE {ge.assemble_solve_seconds:.2f}s "
              f"({100 * ge.solve_fraction:.0f}% in solve)  |  "
              f"LAPACK {la.assemble_solve_seconds:.2f}s "
              f"({100 * la.solve_fraction:.0f}% in solve)")
    print(
        "\nAs in the paper, higher orders are far more expensive and the solve's\n"
        "share of the runtime grows with element order.  Unlike the paper, the\n"
        "hand-written GE never beats LAPACK here: in C++ the GE wins for small\n"
        "matrices by avoiding library call overhead, while in CPython the\n"
        "interpreter overhead sits on the GE side instead (see EXPERIMENTS.md)."
    )


if __name__ == "__main__":
    main()
