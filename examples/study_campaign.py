#!/usr/bin/env python
"""Campaign API tour: a declarative study, sharded execution, resumable store.

Builds the engine x order grid as a ``repro.Study``, executes it three ways
(serially, sharded across processes -- bit-for-bit identical -- and resumed
from a warm ``ResultStore`` with zero new runs), and pivots the tidy per-run
records into a paper-style table.

Run with:  python examples/study_campaign.py
"""

import tempfile
import time

import numpy as np

import repro
from repro.analysis.reporting import format_table
from repro.campaign import ResultStore


def main() -> None:
    base = repro.ProblemSpec(
        nx=4, ny=4, nz=4,
        angles_per_octant=2,
        num_groups=4,
        max_twist=0.001,
        num_inners=2,
        num_outers=1,
    )
    study = repro.Study.grid(
        base,
        engine=["vectorized", "prefactorized"],
        order=[1, 2],
        name="engine-x-order",
    )
    print(f"study {study.name!r}: {len(study)} runs over axes {study.axis_names}")

    t0 = time.perf_counter()
    serial = repro.run_study(study)  # backend="serial" is the default
    print(f"serial backend:  {time.perf_counter() - t0:.2f} s")

    t0 = time.perf_counter()
    sharded = repro.run_study(study, backend="process", jobs=4)
    print(f"process backend: {time.perf_counter() - t0:.2f} s (bit-for-bit equal)")
    for a, b in zip(serial, sharded):
        np.testing.assert_array_equal(a.result.scalar_flux, b.result.scalar_flux)

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(tmp)
        repro.run_study(study, store=store)
        resumed = repro.run_study(study, store=store)
        print(f"resumed study:   {resumed.new_run_count} new runs, "
              f"{resumed.cached_run_count} loaded from the store\n")

    pivot = serial.pivot("order", "engine", "wall_seconds")
    print(format_table(
        ("order", *pivot.cols),
        [(row, *[f"{pivot.at(row, col):.2f}s" for col in pivot.cols])
         for row in pivot.rows],
        title="wall seconds per (order, engine) grid point",
    ))
    print("\nSame grid from the command line:")
    print("  unsnap study --nx 4 --ny 4 --nz 4 --nang 2 --groups 4 --inners 2 \\")
    print("      --axis engine=vectorized,prefactorized --axis order=1,2 \\")
    print("      --backend process --store runs/")


if __name__ == "__main__":
    main()
