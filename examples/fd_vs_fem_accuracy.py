#!/usr/bin/env python
"""FD (SNAP) vs FEM (UnSNAP): the Section II-C trade-off, measured.

Solves the same multigroup fixed-source problem with the structured
diamond-difference baseline and with the DG finite element sweep (on the
untwisted mesh so the two grids coincide), and reports the flux agreement,
the work and memory ratios, and how the twist perturbs the FEM solution.

Run with:  python examples/fd_vs_fem_accuracy.py
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.baseline.snap_fd import SnapDiamondDifferenceSolver
from repro.config import ProblemSpec
from repro.runner import run
from repro.perfmodel.workload import SweepWorkload


def main() -> None:
    n, groups, angles = 6, 3, 2
    spec = ProblemSpec(
        nx=n, ny=n, nz=n,
        order=1,
        angles_per_octant=angles,
        num_groups=groups,
        max_twist=0.0,
        num_inners=30,
        num_outers=5,
        inner_tolerance=1e-8,
        outer_tolerance=1e-8,
    )

    print(f"Problem: {n}^3 cells, {angles} angles/octant, {groups} groups, SNAP option-1 data\n")

    print("Solving with the diamond-difference finite-difference baseline (SNAP)...")
    fd = SnapDiamondDifferenceSolver(
        n, n, n, num_groups=groups, angles_per_octant=angles,
        num_inners=30, num_outers=5, inner_tolerance=1e-8,
    ).solve()

    print("Solving with the DG finite element sweep (UnSNAP, untwisted mesh)...")
    fem = run(spec, engine="vectorized")

    fd_cells = fd.scalar_flux.transpose(2, 1, 0, 3).reshape(-1, groups)
    rel = np.abs(fem.cell_average_flux - fd_cells) / np.maximum(fd_cells, 1e-12)

    work = SweepWorkload(order=1, num_groups=groups)
    rows = [
        ("mean |FEM - FD| / FD", f"{rel.mean():.4f}"),
        ("max  |FEM - FD| / FD", f"{rel.max():.4f}"),
        ("FD mean cell flux", f"{fd_cells.mean():.5f}"),
        ("FEM mean cell flux", f"{fem.cell_average_flux.mean():.5f}"),
        ("FEM angular-flux memory / FD", f"{spec.nodes_per_element}x"),
        ("FEM FLOPs per cell-angle-group", f"{work.total_flops():.0f}"),
        ("FD FLOPs per cell-angle-group", "~16 (diamond relations + centre update)"),
        ("FEM balance residual", f"{fem.balance.relative_residual():.2e}"),
    ]
    print()
    print(format_table(("quantity", "value"), rows,
                       title="FD vs FEM on the same structured problem (Section II-C)"))

    print("\nNow twisting the mesh by 0.001 rad (the unstructured configuration)...")
    twisted = run(spec.with_(max_twist=0.001), engine="vectorized")
    delta = np.abs(twisted.cell_average_flux - fem.cell_average_flux) / np.maximum(
        fem.cell_average_flux, 1e-12
    )
    print(f"  max flux change caused by the twist: {delta.max():.2e} "
          "(tiny, as expected for a 0.001 rad distortion)")
    print(
        "\nThe FEM reproduces the FD solution to within a few per cent while paying\n"
        "the 8x memory and ~100x per-item work overheads the paper quantifies --\n"
        "in exchange it runs unchanged on genuinely unstructured (twisted) meshes\n"
        "and offers higher-order accuracy per cell."
    )


if __name__ == "__main__":
    main()
