#!/usr/bin/env python
"""The Figure 3 / Figure 4 concurrency-scheme study.

Uses the node performance model (parameterised with the paper's dual-socket
Skylake 8176 node) to predict the assemble/solve time of the paper's exact
thread-scaling experiment -- 16^3 elements, 36 angles per octant, 64 energy
groups, twist 0.001 rad, 5 inners -- for all six loop-ordering / data-layout /
threading schemes, for linear and cubic elements, and prints the two series
together with the headline findings of Section IV-A.

Run with:  python examples/loop_ordering_study.py
"""

from repro.analysis.figures import PAPER_THREAD_COUNTS, figure3_series, figure4_series
from repro.analysis.reporting import format_scaling_series
from repro.config import ProblemSpec
from repro.perfmodel.machine import skylake_8176_node
from repro.perfmodel.roofline import arithmetic_intensity, is_memory_bound
from repro.perfmodel.schemes import angle_threading_scheme
from repro.perfmodel.simulator import SweepPerformanceModel
from repro.perfmodel.workload import SweepWorkload


def main() -> None:
    node = skylake_8176_node()
    print(f"Machine model: {node.name}")
    print(f"  {node.num_cores} cores, {node.stream_bandwidth_gbs:.0f} GB/s STREAM, "
          f"{node.sustained_gflops(node.num_cores):.0f} sustained GFLOP/s\n")

    for order, series_fn, figure in (
        (1, figure3_series, "Figure 3"), (3, figure4_series, "Figure 4")
    ):
        workload = SweepWorkload(order=order, num_groups=64)
        bound = "memory" if is_memory_bound(node, workload) else "compute"
        print(f"{figure}: order {order} elements (arithmetic intensity "
              f"{arithmetic_intensity(workload):.2f} FLOP/byte, {bound} bound)")
        series = series_fn()
        print(format_scaling_series(series.thread_counts, series.series))
        print(f"  fastest scheme at 56 threads: {series.fastest_at(56)}")
        for label in series.series:
            print(f"  speedup 1 -> 56 threads, {label}: {series.speedup(label):.1f}x")
        print()

    # The scheme the paper rejects: threading angles within the octant needs an
    # atomic scalar-flux reduction and does not scale (Section IV-A.3).
    model = SweepPerformanceModel(ProblemSpec.paper_figure3_4(order=1))
    atomic = angle_threading_scheme()
    times = [model.sweep_time(atomic, t).seconds for t in PAPER_THREAD_COUNTS]
    print("Angle-threaded scheme (atomic scalar-flux update), modelled:")
    print("  threads:", list(PAPER_THREAD_COUNTS))
    print("  seconds:", [round(t, 1) for t in times])
    print("  -> runtime increases with thread count, matching the paper's observation.")


if __name__ == "__main__":
    main()
