"""The UnSNAP single-rank transport solver facade.

:class:`TransportSolver` wires together every substrate -- mesh construction
with twist, reference element and per-element factors, angular quadrature,
SNAP-style materials and source, the per-angle sweep schedules and the local
dense solver -- from a single :class:`~repro.config.ProblemSpec`, and exposes
``solve()`` which runs the inner/outer iteration and returns a
:class:`TransportResult` bundling the scalar flux, the iteration history, the
assemble/solve timing split (Table II) and the particle-balance diagnostics.

Multi-rank (block Jacobi) execution is provided by
:class:`repro.parallel.block_jacobi.BlockJacobiDriver`, which reuses the same
building blocks per subdomain.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..angular.quadrature import AngularQuadrature, snap_dummy_quadrature
from ..config import ProblemSpec
from ..fem.element import HexElementFactors
from ..fem.reference import ReferenceElement
from ..materials.cross_sections import MaterialLibrary
from ..materials.library import snap_option1_library
from ..materials.source_terms import FixedSource, uniform_source
from ..mesh.builder import StructuredGridSpec, build_snap_mesh
from ..mesh.hexmesh import UnstructuredHexMesh
from ..sweepsched.schedule import SweepSchedule, build_sweep_schedule
from .assembly import AssemblyTimings, ElementMatrices
from .balance import BalanceReport, particle_balance
from .flux import AngularFluxBank, node_integration_weights
from .iteration import IterationController, IterationHistory
from .reflect import ReflectiveBoundary
from .sweep import SweepExecutor

__all__ = ["TransportSolver", "TransportResult"]


@dataclass
class TransportResult:
    """Everything a solve produces.

    Attributes
    ----------
    scalar_flux:
        ``(E, G, N)`` nodal scalar flux of the final iterate.
    cell_average_flux:
        ``(E, G)`` volume-averaged scalar flux per cell.
    leakage:
        ``(G,)`` net boundary leakage of the final sweep.
    history:
        Inner/outer iteration record.
    timings:
        Assemble/solve wall-clock split accumulated over all sweeps.
    balance:
        Particle-balance diagnostics of the final iterate.
    setup_seconds, solve_seconds:
        Wall-clock time spent building the problem and running the iteration.
    spec:
        The problem specification that was solved.
    angular_flux:
        Full ``(E, A, G, N)`` angular flux of the final sweep (only when the
        solver was built with ``store_angular_flux=True``).
    """

    scalar_flux: np.ndarray
    cell_average_flux: np.ndarray
    leakage: np.ndarray
    history: IterationHistory
    timings: AssemblyTimings
    balance: BalanceReport
    setup_seconds: float
    solve_seconds: float
    spec: ProblemSpec | None = None
    angular_flux: "AngularFluxBank | None" = None

    @property
    def wall_seconds(self) -> float:
        """True wall-clock time: problem setup plus the iteration loop."""
        return self.setup_seconds + self.solve_seconds

    def summary(self) -> dict:
        """Compact dictionary used by reports and the CLI.

        ``wall_seconds`` is the true setup + solve wall clock; the iteration
        loop alone is reported as ``solve_wall_seconds`` (``solve_seconds``
        remains the in-kernel dense-solve time of the assemble/solve split).
        """
        return {
            "cells": self.scalar_flux.shape[0],
            "groups": self.scalar_flux.shape[1],
            "nodes_per_element": self.scalar_flux.shape[2],
            "total_inners": self.history.total_inners,
            "outers": self.history.num_outers,
            "assembly_seconds": self.timings.assembly_seconds,
            "solve_seconds": self.timings.solve_seconds,
            "solve_fraction": self.timings.solve_fraction,
            "balance_residual": self.balance.relative_residual(),
            "mean_flux": float(self.scalar_flux.mean()),
            "setup_seconds": self.setup_seconds,
            "solve_wall_seconds": self.solve_seconds,
            "wall_seconds": self.setup_seconds + self.solve_seconds,
        }


class TransportSolver:
    """Build and solve an UnSNAP problem on a single rank.

    Parameters
    ----------
    spec:
        The problem specification.
    materials, fixed_source, quadrature, mesh:
        Optional overrides of the SNAP-style defaults; anything not supplied
        is generated from ``spec`` (material/source "option 1", SNAP dummy
        quadrature, twisted structured-derived mesh).
    engine:
        Sweep-engine override (name or instance); defaults to ``spec.engine``.
    num_threads:
        Worker threads (octant-level with ``octant_parallel``, otherwise
        the reference engine's independent bucket elements).
    octant_parallel:
        Octant-parallel sweep override; defaults to ``spec.octant_parallel``.
    store_angular_flux:
        Keep the full angular flux of the final sweep.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` instrument handed to the
        sweep executor (phases ``source``/``sweep``/``convergence`` plus the
        sweep counters); ``None`` keeps every path uninstrumented.
    """

    def __init__(
        self,
        spec: ProblemSpec,
        materials: MaterialLibrary | None = None,
        fixed_source: FixedSource | None = None,
        quadrature: AngularQuadrature | None = None,
        mesh: UnstructuredHexMesh | None = None,
        engine=None,
        num_threads: int = 1,
        octant_parallel: bool | None = None,
        store_angular_flux: bool = False,
        telemetry=None,
    ):
        t0 = time.perf_counter()
        self.spec = spec
        self.telemetry = telemetry

        self.mesh = mesh if mesh is not None else build_snap_mesh(
            StructuredGridSpec(spec.nx, spec.ny, spec.nz, spec.lx, spec.ly, spec.lz),
            max_twist=spec.max_twist,
            twist_axis=spec.twist_axis,
        )
        self.ref = ReferenceElement(spec.order)
        self.factors = HexElementFactors.build(self.mesh.cell_vertices(), self.ref)
        self.matrices = ElementMatrices.build(self.factors, self.ref)

        self.quadrature = (
            quadrature if quadrature is not None else snap_dummy_quadrature(spec.angles_per_octant)
        )
        self.materials = (
            materials if materials is not None else snap_option1_library(
                spec.num_groups, spec.scattering_ratio
            )
        ).for_cells(self.mesh.num_cells)
        self.fixed_source = (
            fixed_source
            if fixed_source is not None
            else uniform_source(
                self.mesh.num_cells, self.materials.num_groups, spec.source_strength
            )
        )

        self.schedule: SweepSchedule = build_sweep_schedule(
            self.mesh, self.factors, self.quadrature
        )
        # Reflective boundaries reuse the halo machinery: every domain
        # boundary face collects its outgoing traces, which the iteration
        # controller mirrors back in as lagged ghosts (see core.reflect).
        reflective = None
        halo_faces = None
        if spec.boundary.kind == "reflective":
            reflective = ReflectiveBoundary(self.quadrature, self.ref.basis)
            halo_faces = self.mesh.boundary_faces()
        self.executor = SweepExecutor(
            mesh=self.mesh,
            factors=self.factors,
            ref=self.ref,
            matrices=self.matrices,
            schedule=self.schedule,
            quadrature=self.quadrature,
            materials=self.materials,
            boundary=spec.boundary,
            solver=spec.solver,
            engine=engine if engine is not None else spec.engine,
            halo_faces=halo_faces,
            num_threads=num_threads,
            octant_parallel=(
                spec.octant_parallel if octant_parallel is None else bool(octant_parallel)
            ),
            store_angular_flux=store_angular_flux,
            telemetry=telemetry,
            factor_cache_budget_bytes=spec.factor_cache_budget_bytes,
        )
        self.executor.reflective = reflective
        self.node_weights = node_integration_weights(self.factors, self.ref)
        self.setup_seconds = time.perf_counter() - t0

    # ---------------------------------------------------- factor-cache hooks
    def update_materials(self, materials: MaterialLibrary) -> None:
        """Swap the cross sections mid-run (invalidates cached LU factors).

        The next :meth:`solve` (or any further sweep through the executor)
        re-factorises against the new materials; see the factor-cache
        lifecycle notes in :mod:`repro.engines.base`.
        """
        self.materials = materials.for_cells(self.mesh.num_cells)
        self.executor.update_materials(self.materials)

    def invalidate_factor_cache(self) -> None:
        """Drop the executor's engine-memoised state (LU factors etc.)."""
        self.executor.invalidate_factor_cache()

    def set_engine(self, engine) -> None:
        """Switch the sweep engine on the reused executor (cache-safe).

        Forwards to :meth:`SweepExecutor.set_engine`, which invalidates the
        factor cache through the *outgoing* engine's hook.  ``self.spec``
        keeps its original ``engine`` name -- the spec describes the problem
        as built; reporting of the engine that actually ran is the
        :func:`repro.run` facade's job.
        """
        self.executor.set_engine(engine)

    # -------------------------------------------------------------------- solve
    def solve(
        self,
        initial_flux: np.ndarray | None = None,
        angular_source: np.ndarray | None = None,
    ) -> TransportResult:
        """Run the inner/outer iteration and return the full result bundle.

        ``angular_source`` is an optional ``(A, E, G, N)`` per-ordinate fixed
        source added to every sweep (see :meth:`SweepExecutor.sweep
        <repro.core.sweep.SweepExecutor.sweep>`); the manufactured-solutions
        suite drives convergence studies through it.
        """
        controller = IterationController(
            executor=self.executor,
            materials=self.materials,
            fixed_source=self.fixed_source,
            num_inners=self.spec.num_inners,
            num_outers=self.spec.num_outers,
            inner_tolerance=self.spec.inner_tolerance,
            outer_tolerance=self.spec.outer_tolerance,
        )
        t0 = time.perf_counter()
        scalar, last_sweep, history, timings = controller.run(
            initial_flux=initial_flux, angular_source=angular_source
        )
        solve_seconds = time.perf_counter() - t0

        balance = particle_balance(
            scalar_flux=scalar,
            node_weights=self.node_weights,
            materials=self.materials,
            fixed=self.fixed_source,
            leakage=last_sweep.leakage,
            volumes=self.factors.volumes,
        )
        cell_average = (
            np.einsum("egn,en->eg", scalar, self.node_weights) / self.factors.volumes[:, None]
        )
        return TransportResult(
            scalar_flux=scalar,
            cell_average_flux=cell_average,
            leakage=last_sweep.leakage,
            history=history,
            timings=timings,
            balance=balance,
            setup_seconds=self.setup_seconds,
            solve_seconds=solve_seconds,
            spec=self.spec,
            angular_flux=last_sweep.angular_flux,
        )

    # --------------------------------------------------------------- inspection
    def memory_report(self) -> dict:
        """Memory footprint of the major arrays (Section II-C discussion)."""
        angular_bytes = self.spec.angular_flux_bytes()
        return {
            "angular_flux_bytes": angular_bytes,
            "element_factor_bytes": self.factors.memory_footprint_bytes(),
            "element_matrix_bytes": self.matrices.memory_footprint_bytes(),
            "fd_equivalent_angular_flux_bytes": angular_bytes // self.spec.nodes_per_element,
            "fem_to_fd_ratio": float(self.spec.nodes_per_element),
        }
