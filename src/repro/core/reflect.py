"""Specular reflective boundaries via lagged mirror traces.

A reflective boundary returns every outgoing particle along the mirrored
direction: the incoming angular flux of ordinate ``m`` on a face with normal
axis ``a`` equals the outgoing flux of the ordinate whose direction has the
``a`` component negated.  UnSNAP implements this without touching the sweep
engines by reusing the block-Jacobi lagging machinery:

* every domain-boundary face is registered as a *halo* face on the
  :class:`~repro.core.sweep.SweepExecutor`, so each sweep collects the
  outgoing ``(G, N)`` nodal traces into ``SweepResult.outgoing_halo`` (and
  excludes those faces from the leakage tally -- a reflective boundary leaks
  nothing);
* after each sweep the traces are mirrored into a
  :class:`~repro.core.sweep.BoundaryValues` ghost table that the *next*
  sweep consumes as lagged upwind data, exactly like a rank halo swap.

The ghost entry must be a nodal vector of the (virtual) mirror-image
neighbour element.  Because the mirror element is the element itself
reflected across the face plane, its nodal vector is the element's own
``psi`` with the tensor-product node indices flipped along the face's normal
axis; the neighbour-trace coupling matrices then reproduce the element's own
outgoing face trace at the mirrored ordinate.  The mirrored ordinate is
computed from the octant structure of the quadrature: flipping axis ``a``
flips bit ``a`` of the octant index while the within-octant index is
unchanged.

Lagging converges the reflected flux together with the scattering source in
the same outer fixed-point iteration, and keeps every determinism contract:
the update is a dict rewrite keyed per ``(cell, face, angle)``, independent
of thread count, engine and backend.
"""

from __future__ import annotations

import numpy as np

from ..angular.quadrature import AngularQuadrature
from ..fem.lagrange import FACE_NORMAL_AXIS, LagrangeHexBasis
from .sweep import BoundaryValues

__all__ = ["ReflectiveBoundary", "mirror_angle_table", "mirror_node_permutations"]


def mirror_angle_table(quadrature: AngularQuadrature) -> np.ndarray:
    """``(3, A)`` table of mirrored ordinate indices per reflection axis.

    ``table[axis, m]`` is the ordinate whose direction equals ordinate ``m``
    with the ``axis`` component negated.  Relies on the SNAP octant layout
    (identical base set replicated over the 8 sign octants, octant index bit
    ``axis`` flipping that axis) and verifies the claim against the actual
    direction vectors.
    """
    per_octant = quadrature.per_octant
    octants = quadrature.octants
    angles = np.arange(quadrature.num_angles)
    within = angles - octants * per_octant
    table = np.empty((3, quadrature.num_angles), dtype=np.int64)
    for axis in range(3):
        mirrored = (octants ^ (1 << axis)) * per_octant + within
        expected = quadrature.directions.copy()
        expected[:, axis] = -expected[:, axis]
        if not np.allclose(quadrature.directions[mirrored], expected):
            raise ValueError(
                "quadrature set is not mirror-symmetric across axis "
                f"{axis}; reflective boundaries need the SNAP octant layout"
            )
        table[axis] = mirrored
    return table


def mirror_node_permutations(basis: LagrangeHexBasis) -> np.ndarray:
    """``(3, N)`` node permutations flipping the tensor index along one axis.

    ``perm[axis, n]`` is the node whose tensor-product index equals node
    ``n``'s with the ``axis`` component replaced by ``order - index``; a
    nodal vector indexed through it is the element's mirror image across the
    mid-plane orthogonal to ``axis``.
    """
    idx = basis.node_indices  # (N, 3), x fastest in the flat ordering
    n1 = basis.nodes_per_direction
    flat = idx[:, 0] + n1 * idx[:, 1] + n1 * n1 * idx[:, 2]
    lookup = np.empty_like(flat)
    lookup[flat] = np.arange(idx.shape[0])
    perm = np.empty((3, idx.shape[0]), dtype=np.int64)
    for axis in range(3):
        mirrored = idx.copy()
        mirrored[:, axis] = basis.order - mirrored[:, axis]
        perm[axis] = lookup[mirrored[:, 0] + n1 * mirrored[:, 1] + n1 * n1 * mirrored[:, 2]]
    return perm


class ReflectiveBoundary:
    """Mirrors outgoing boundary traces into lagged ghost values.

    Parameters
    ----------
    quadrature:
        The angular quadrature set (must be octant-structured).
    basis:
        The Lagrange basis of the elements.
    """

    def __init__(self, quadrature: AngularQuadrature, basis: LagrangeHexBasis):
        self.mirror_angle = mirror_angle_table(quadrature)
        self.node_perm = mirror_node_permutations(basis)
        self.num_angles = quadrature.num_angles
        self.num_nodes = basis.num_nodes

    def update(
        self, boundary_values: BoundaryValues, outgoing_halo: dict
    ) -> BoundaryValues:
        """Fold one sweep's outgoing halo traces into the ghost table.

        Every outgoing ``(cell, face, angle)`` trace becomes the incoming
        ghost of the mirrored angle on the same face; entries not touched by
        this sweep keep their previous (lagged) value.
        """
        for (cell, face, angle), psi in outgoing_halo.items():
            axis = FACE_NORMAL_AXIS[face]
            mirrored = int(self.mirror_angle[axis, angle])
            boundary_values.put(cell, face, mirrored, psi[:, self.node_perm[axis]])
        return boundary_values

    def seed_flat(
        self, boundary_faces: np.ndarray, value: float, num_groups: int
    ) -> BoundaryValues:
        """Ghost table holding a uniform isotropic trace on every face.

        Used to start time-dependent solves from an exactly-flat state: a
        spatially-flat isotropic angular flux of ``value`` is a discrete
        fixed point of the reflective sweep only if the very first sweep
        already sees its own mirror image.  A single ``(G, N)`` array is
        shared by all entries.
        """
        boundary_values = BoundaryValues()
        trace = np.full((num_groups, self.num_nodes), float(value))
        for cell, face in np.asarray(boundary_faces)[:, :2].tolist():
            for angle in range(self.num_angles):
                boundary_values.values[(int(cell), int(face), int(angle))] = trace
        return boundary_values
