"""Flux storage containers.

The FEM stores a solution for the angular flux on each node of each cell for
each angular direction and energy group -- the dominant memory consumer of
the application (8x the finite-difference footprint for linear elements).
During the sweep only the current angle's nodal fluxes are live per element,
so the default containers hold:

* :class:`FluxMoments` -- the nodal *scalar* flux (and the previous iterate
  needed for convergence tests and the Jacobi source lags);
* :class:`AngularFluxBank` -- an optional full ``(E, A, G, N)`` angular-flux
  store for diagnostics, accuracy studies and the memory-footprint analysis
  of Section II-C.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fem.element import HexElementFactors
from ..fem.reference import ReferenceElement

__all__ = ["FluxMoments", "AngularFluxBank", "node_integration_weights"]


def node_integration_weights(factors: HexElementFactors, ref: ReferenceElement) -> np.ndarray:
    """Per-node integration weights ``w[e, n]`` with ``int_K f dV ~= sum_n w f_n``."""
    return np.einsum("eq,qn->en", factors.vol_weights, ref.phi_vol)


@dataclass
class FluxMoments:
    """Nodal scalar flux (zeroth angular moment) per element, group and node.

    Attributes
    ----------
    scalar:
        ``(E, G, N)`` nodal scalar flux of the current iterate.
    """

    scalar: np.ndarray

    @classmethod
    def zeros(cls, num_elements: int, num_groups: int, num_nodes: int) -> "FluxMoments":
        return cls(scalar=np.zeros((num_elements, num_groups, num_nodes), dtype=float))

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.scalar.shape

    def copy(self) -> "FluxMoments":
        return FluxMoments(scalar=self.scalar.copy())

    def cell_average(self, volumes: np.ndarray, node_weights: np.ndarray) -> np.ndarray:
        """Volume-averaged scalar flux per cell and group, ``(E, G)``."""
        integrals = np.einsum("egn,en->eg", self.scalar, node_weights)
        return integrals / volumes[:, None]

    def group_integrals(self, node_weights: np.ndarray) -> np.ndarray:
        """Domain-integrated scalar flux per group, ``(G,)``."""
        return np.einsum("egn,en->g", self.scalar, node_weights)

    def memory_footprint_bytes(self) -> int:
        return self.scalar.nbytes


@dataclass
class AngularFluxBank:
    """Full angular flux storage, ``psi[e, a, g, n]``.

    This is optional: the sweep itself only needs the upwind traces of the
    current angle, but storing the full angular flux enables the
    memory-footprint studies of Section II-C, boundary-leakage spectra and
    pointwise verification against analytic solutions.
    """

    psi: np.ndarray

    @classmethod
    def zeros(
        cls, num_elements: int, num_angles: int, num_groups: int, num_nodes: int
    ) -> "AngularFluxBank":
        return cls(psi=np.zeros((num_elements, num_angles, num_groups, num_nodes), dtype=float))

    @property
    def shape(self) -> tuple[int, int, int, int]:
        return self.psi.shape

    def scalar_flux(self, weights: np.ndarray) -> np.ndarray:
        """Collapse to the nodal scalar flux with the quadrature weights."""
        return np.einsum("a,eagn->egn", weights, self.psi)

    def memory_footprint_bytes(self) -> int:
        return self.psi.nbytes

    def fd_footprint_ratio(self) -> float:
        """Ratio of this storage to the equivalent finite-difference storage.

        The FD method keeps a single value per cell/angle/group, so the ratio
        is simply the number of nodes per element (8 for linear elements, as
        quoted in Section II-C).
        """
        return float(self.psi.shape[3])
