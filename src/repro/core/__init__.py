"""The UnSNAP transport solver core.

This package holds the paper's primary contribution: the discontinuous
Galerkin finite element sweep on an unstructured hexahedral mesh, organised
exactly as the pseudocode of Figure 2 --

    for all angular directions:
        for all elements in the angle's schedule (bucket by bucket):
            for all energy groups:
                assemble the local matrix A and vector b
                solve A psi = b

-- wrapped in SNAP's inner/outer source-iteration structure, with the
assemble and solve phases instrumented separately (the split reported in
Table II).
"""

from .assembly import ElementMatrices, AssemblyTimings
from .flux import FluxMoments, AngularFluxBank, node_integration_weights
from .source import build_outer_source, build_total_source, scattering_source
from .sweep import SweepExecutor, SweepResult, BoundaryValues
from .reflect import ReflectiveBoundary
from .iteration import IterationController, IterationHistory
from .solver import TransportSolver, TransportResult
from .convergence import relative_change, max_relative_difference
from .balance import BalanceReport, particle_balance

__all__ = [
    "ElementMatrices",
    "AssemblyTimings",
    "FluxMoments",
    "AngularFluxBank",
    "node_integration_weights",
    "build_outer_source",
    "build_total_source",
    "scattering_source",
    "SweepExecutor",
    "SweepResult",
    "BoundaryValues",
    "ReflectiveBoundary",
    "IterationController",
    "IterationHistory",
    "TransportSolver",
    "TransportResult",
    "relative_change",
    "max_relative_difference",
    "BalanceReport",
    "particle_balance",
]
