"""Particle balance diagnostics.

For a converged steady-state solution the integrated balance must close:

    (fixed source emission) = (absorption) + (net boundary leakage)

per group *after* accounting for energy transfer by scattering, and summed
over groups exactly.  The balance residual is a strong end-to-end check of
the discretisation, the sweep order and the source iteration, and is used by
the integration tests (SNAP prints the same diagnostic).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..materials.cross_sections import MaterialLibrary
from ..materials.source_terms import FixedSource

__all__ = ["BalanceReport", "particle_balance"]


@dataclass(frozen=True)
class BalanceReport:
    """Group-wise particle balance of a solution.

    All quantities are volume/surface integrated rates per group.

    Attributes
    ----------
    emission:
        Fixed-source emission.
    absorption:
        Absorption (``sigma_a`` weighted flux integral).
    leakage:
        Net leakage through the domain boundary.
    scattering_in:
        Scattering gains from other groups.
    scattering_out:
        Scattering losses to other groups (in-group scattering cancels and is
        excluded from both).
    """

    emission: np.ndarray
    absorption: np.ndarray
    leakage: np.ndarray
    scattering_in: np.ndarray
    scattering_out: np.ndarray

    @property
    def residual(self) -> np.ndarray:
        """Per-group balance residual (should vanish at convergence)."""
        return (
            self.emission
            + self.scattering_in
            - self.scattering_out
            - self.absorption
            - self.leakage
        )

    @property
    def total_residual(self) -> float:
        """Residual of the group-summed balance (scattering transfer cancels)."""
        return float(self.emission.sum() - self.absorption.sum() - self.leakage.sum())

    def relative_residual(self) -> float:
        """Total residual normalised by the total emission."""
        total = float(self.emission.sum())
        return abs(self.total_residual) / total if total > 0.0 else abs(self.total_residual)


def particle_balance(
    scalar_flux: np.ndarray,
    node_weights: np.ndarray,
    materials: MaterialLibrary,
    fixed: FixedSource,
    leakage: np.ndarray,
    volumes: np.ndarray,
) -> BalanceReport:
    """Compute the group-wise particle balance of a solution.

    Parameters
    ----------
    scalar_flux:
        ``(E, G, N)`` nodal scalar flux.
    node_weights:
        ``(E, N)`` nodal integration weights
        (:func:`repro.core.flux.node_integration_weights`).
    materials:
        Material library covering the mesh.
    fixed:
        The fixed source.
    leakage:
        ``(G,)`` net boundary leakage accumulated during the final sweep.
    volumes:
        ``(E,)`` element volumes.
    """
    flux_integral = np.einsum("egn,en->eg", scalar_flux, node_weights)  # (E, G)

    sigma_t = materials.sigma_t_per_cell()  # (E, G)
    sigma_s = materials.sigma_s_per_cell()  # (E, G, G)
    sigma_a = sigma_t - sigma_s.sum(axis=2)

    absorption = np.einsum("eg,eg->g", sigma_a, flux_integral)
    emission = fixed.total_emission(volumes)

    off_diag = sigma_s.copy()
    eye = np.eye(sigma_s.shape[1], dtype=bool)
    off_diag[:, eye] = 0.0
    scattering_out = np.einsum("egh,eg->g", off_diag, flux_integral)
    scattering_in = np.einsum("egh,eg->h", off_diag, flux_integral)

    return BalanceReport(
        emission=np.asarray(emission, dtype=float),
        absorption=absorption,
        leakage=np.asarray(leakage, dtype=float),
        scattering_in=scattering_in,
        scattering_out=scattering_out,
    )
