"""Local matrix and right-hand-side assembly for the DG transport operator.

For element ``K``, direction ``Omega`` and group ``g`` the local system is

.. math::

    A_{ij} = -\\int_K \\phi_j\\, (\\Omega\\cdot\\nabla\\phi_i)\\,dV
             + \\sigma_{t,g} \\int_K \\phi_i\\phi_j\\,dV
             + \\sum_{f\\,\\text{outflow}} \\oint_f (\\Omega\\cdot n)\\,\\phi_i\\phi_j\\,dS

    b_i = \\int_K S_g\\,\\phi_i\\,dV
          - \\sum_{f\\,\\text{inflow}} \\oint_f (\\Omega\\cdot n)\\,\\phi_i\\,\\psi^{up}\\,dS

The direction-independent pieces (mass matrix, the three components of the
gradient matrix and the normal-weighted face coupling matrices) are
precomputed once per element and combined per angle with two AXPY-like
contractions -- this is the "assembly" whose cost Table II separates from the
solve.  The 13 coefficient arrays the paper's Section III-C mentions map onto
the precomputed factor arrays held by :class:`ElementMatrices`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fem.element import HexElementFactors
from ..fem.reference import ReferenceElement

__all__ = ["ElementMatrices", "AssemblyTimings"]


@dataclass
class AssemblyTimings:
    """Accumulated wall-clock split between assembly and solve.

    The paper instruments the assemble/solve routine the same way to produce
    the "% in solve" column of Table II.
    """

    assembly_seconds: float = 0.0
    solve_seconds: float = 0.0
    systems_solved: int = 0

    @property
    def total_seconds(self) -> float:
        return self.assembly_seconds + self.solve_seconds

    @property
    def solve_fraction(self) -> float:
        """Fraction of the assemble/solve time spent in the solve."""
        total = self.total_seconds
        return self.solve_seconds / total if total > 0.0 else 0.0

    def merge(self, other: "AssemblyTimings") -> "AssemblyTimings":
        return AssemblyTimings(
            assembly_seconds=self.assembly_seconds + other.assembly_seconds,
            solve_seconds=self.solve_seconds + other.solve_seconds,
            systems_solved=self.systems_solved + other.systems_solved,
        )


@dataclass
class ElementMatrices:
    """Precomputed direction-independent local matrices for every element.

    Attributes
    ----------
    mass:
        ``(E, N, N)`` mass matrices ``M_ij = int phi_i phi_j dV``.
    gradient:
        ``(E, 3, N, N)`` gradient matrices
        ``G[d]_ij = int phi_j d(phi_i)/d(x_d) dV``.
    face_own:
        ``(E, 6, 3, N, N)`` normal-weighted own-face coupling matrices
        ``F[f, d]_ij = oint_f n_d phi_i phi_j dS`` (both traces from the
        element itself).
    face_neighbor:
        ``(E, 6, 3, N, N)`` normal-weighted cross-face coupling matrices; the
        ``j`` index refers to the *neighbour's* basis across face ``f``.
    node_int_weights:
        ``(E, N)`` integration weights turning nodal values into cell
        integrals, ``int f dV ~= sum_n w_n f_n``.
    """

    mass: np.ndarray
    gradient: np.ndarray
    face_own: np.ndarray
    face_neighbor: np.ndarray
    node_int_weights: np.ndarray

    @classmethod
    def build(cls, factors: HexElementFactors, ref: ReferenceElement) -> "ElementMatrices":
        """Precompute the local matrices for all elements of a mesh."""
        phi = ref.phi_vol  # (nq, N)
        vol_w = factors.vol_weights  # (E, nq)

        mass = np.einsum("eq,qi,qj->eij", vol_w, phi, phi, optimize=True)
        gradient = np.einsum(
            "eq,eqid,qj->edij", vol_w, factors.grad_phys, phi, optimize=True
        )
        node_int_weights = np.einsum("eq,qi->ei", vol_w, phi)

        num_elements, _, nqf = factors.face_weights.shape
        n = ref.num_nodes
        face_own = np.empty((num_elements, 6, 3, n, n), dtype=float)
        face_neighbor = np.empty((num_elements, 6, 3, n, n), dtype=float)
        for f in range(6):
            w = factors.face_weights[:, f]  # (E, nqf)
            normals = factors.face_normals[:, f]  # (E, nqf, 3)
            phi_own = ref.phi_face[f]  # (nqf, N)
            phi_nbr = ref.phi_face_neighbor[f]  # (nqf, N)
            wn = w[:, :, None] * normals  # (E, nqf, 3)
            face_own[:, f] = np.einsum("eqd,qi,qj->edij", wn, phi_own, phi_own, optimize=True)
            face_neighbor[:, f] = np.einsum(
                "eqd,qi,qj->edij", wn, phi_own, phi_nbr, optimize=True
            )

        return cls(
            mass=mass,
            gradient=gradient,
            face_own=face_own,
            face_neighbor=face_neighbor,
            node_int_weights=node_int_weights,
        )

    # ------------------------------------------------------------------ sizes
    @property
    def num_elements(self) -> int:
        return self.mass.shape[0]

    @property
    def num_nodes(self) -> int:
        return self.mass.shape[1]

    def memory_footprint_bytes(self) -> int:
        return sum(
            a.nbytes
            for a in (
                self.mass,
                self.gradient,
                self.face_own,
                self.face_neighbor,
                self.node_int_weights,
            )
        )

    # -------------------------------------------------------------- assembly
    def streaming_matrix(
        self, element: int, direction: np.ndarray, orientation: np.ndarray
    ) -> np.ndarray:
        """Direction-dependent, group-independent part of ``A`` for one element.

        ``-Omega . G + sum_{f outflow} Omega . F_own[f]``; the group term
        ``sigma_t,g M`` is added per group by :meth:`assemble_systems`.

        Parameters
        ----------
        element:
            Element index.
        direction:
            The ordinate direction ``Omega``.
        orientation:
            ``(6,)`` face orientation of this element for this direction
            (+1 outflow, -1 inflow, 0 tangential) as produced by
            :func:`repro.sweepsched.graph.classify_faces`.
        """
        a = -np.einsum("d,dij->ij", direction, self.gradient[element])
        for f in np.nonzero(orientation == 1)[0]:
            a += np.einsum("d,dij->ij", direction, self.face_own[element, f])
        return a

    def assemble_systems(
        self,
        element: int,
        direction: np.ndarray,
        orientation: np.ndarray,
        sigma_t: np.ndarray,
        source_moments: np.ndarray,
        upwind_traces: dict[int, np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Assemble the ``(G, N, N)`` matrices and ``(G, N)`` right-hand sides.

        Parameters
        ----------
        element:
            Element index.
        direction:
            Ordinate direction.
        orientation:
            ``(6,)`` face orientation for this direction.
        sigma_t:
            ``(G,)`` total cross section of this element's material.
        source_moments:
            ``(G, N)`` isotropic source density at the element nodes
            (fixed + scattering, already per unit solid angle in the
            normalised-weight convention).
        upwind_traces:
            Mapping from inflow face index to the ``(G, N)`` nodal angular
            flux of the upwind neighbour (or the boundary values).

        Returns
        -------
        ``(A, b)`` with shapes ``(G, N, N)`` and ``(G, N)``.
        """
        base = self.streaming_matrix(element, direction, orientation)
        mass = self.mass[element]
        a = base[None, :, :] + sigma_t[:, None, None] * mass[None, :, :]

        b = source_moments @ mass.T  # (G, N): int phi_i S dV with S nodal
        for f in np.nonzero(orientation == -1)[0]:
            trace = upwind_traces.get(int(f))
            if trace is None:
                continue
            coupling = np.einsum("d,dij->ij", direction, self.face_neighbor[element, f])
            b -= trace @ coupling.T
        return a, b

    def outgoing_partial_current(
        self, element: int, face: int, direction: np.ndarray, psi: np.ndarray
    ) -> np.ndarray:
        """Face-integrated outgoing flow ``oint_f (Omega.n) psi dS`` per group.

        Used for leakage accounting in the particle-balance diagnostics.
        ``psi`` has shape ``(G, N)``.
        """
        coupling = np.einsum("d,dij->ij", direction, self.face_own[element, face])
        # sum_i sum_j psi_j * F_ij  =  1^T F psi  (test function = 1 is in the space)
        return psi @ coupling.sum(axis=0)
