"""Budgeted engine-memoisation storage for :class:`~repro.core.sweep.SweepExecutor`.

Caching engines (``prefactorized``, ``compiled``) memoise per-(angle, bucket)
LU factors and coupling matrices on the executor's factor cache.  Unbounded,
that cache costs ``E * A * G * N^2`` doubles over the whole quadrature --
fine for bench problems, but a paper-scale 16^3 x 36-angle x 64-group run
wants several GiB of factors.  :class:`FactorCache` is the dict-shaped store
behind :attr:`SweepExecutor.factor_cache` that makes the trade explicit:

* **Unbudgeted** (``budget_bytes == 0``, the default): behaves exactly like
  the plain dict it replaces -- no locks, no LRU bookkeeping on the hot
  ``get`` path -- so existing engines and tests see no change.
* **Budgeted** (``budget_bytes > 0``): entries are kept in LRU order and the
  least-recently-used ones are *spilled* (dropped) whenever the accounted
  byte total exceeds the budget.  A spilled entry is transparently recomputed
  by the owning engine on its next miss -- results are bit-for-bit identical
  to an unbudgeted run, only slower.  The path is refusal-free: an entry
  larger than the whole budget is still accepted and immediately spilled, so
  the engine degrades to recompute-every-sweep instead of failing.

Telemetry (optional, assigned by the executor): every spill increments the
``factor_cache_spills`` counter and the resident total is published as the
``factor_cache_bytes`` gauge.  Both happen only on the rare mutation paths
(insert/evict), never on hits, and only when an enabled instrument is
attached -- the zero-overhead contract of :mod:`repro.telemetry` holds.

Entry sizes are accounted with :func:`entry_nbytes`, which walks the nested
tuples/lists/dicts engines actually cache and sums ndarray payloads;
non-array leaves (ints, cffi handles, ...) count zero.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from ..telemetry import active

__all__ = ["FactorCache", "entry_nbytes"]

_MISSING = object()


def entry_nbytes(entry) -> int:
    """Accounted byte size of one cache entry (nested ndarray payloads)."""
    if isinstance(entry, np.ndarray):
        return entry.nbytes
    if isinstance(entry, dict):
        return sum(entry_nbytes(value) for value in entry.values())
    if isinstance(entry, (tuple, list)):
        return sum(entry_nbytes(value) for value in entry)
    return 0


class FactorCache:
    """Dict-shaped engine memoisation store with an optional LRU byte budget.

    Engines use it exactly like the plain dict it replaced: ``cache.get``,
    ``cache[key] = entry``, ``key in cache``, ``len(cache)``,
    ``cache.clear()``.  The budget semantics live entirely here, so every
    caching engine -- present and future -- inherits them without code.
    """

    def __init__(self, budget_bytes: int = 0):
        budget = int(budget_bytes or 0)
        if budget < 0:
            raise ValueError("factor-cache budget must be >= 0 bytes (0 = unbudgeted)")
        self.budget_bytes = budget
        #: Optional :class:`~repro.telemetry.Telemetry`; assigned by the
        #: executor, consulted only on insert/evict (never on hits).
        self.telemetry = None
        #: Cumulative count of entries spilled to stay under budget (the
        #: telemetry counter mirrors it; this one is always available).
        self.spill_count = 0
        self._entries: OrderedDict = OrderedDict()
        self._sizes: dict = {}
        self.total_bytes = 0
        # Budgeted mutations (LRU reorder + evict) can race between octant
        # workers; unbudgeted reads stay lock-free.
        self._lock = threading.Lock()

    # ------------------------------------------------------------- reads
    def get(self, key, default=None):
        if self.budget_bytes == 0:
            return self._entries.get(key, default)
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                return default
            self._entries.move_to_end(key)
            return entry

    def __getitem__(self, key):
        entry = self.get(key, _MISSING)
        if entry is _MISSING:
            raise KeyError(key)
        return entry

    def __contains__(self, key) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def keys(self):
        return self._entries.keys()

    # ------------------------------------------------------------ writes
    def __setitem__(self, key, entry) -> None:
        size = entry_nbytes(entry)
        with self._lock:
            if key in self._entries:
                self.total_bytes -= self._sizes.get(key, 0)
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self._sizes[key] = size
            self.total_bytes += size
            spilled = 0
            if self.budget_bytes > 0:
                while self.total_bytes > self.budget_bytes and self._entries:
                    old_key, _ = self._entries.popitem(last=False)
                    self.total_bytes -= self._sizes.pop(old_key, 0)
                    spilled += 1
            self.spill_count += spilled
        tel = active(self.telemetry)
        if tel is not None:
            if spilled:
                tel.incr("factor_cache_spills", spilled)
            tel.gauge("factor_cache_bytes", self.total_bytes)

    def pop(self, key, default=_MISSING):
        with self._lock:
            if key not in self._entries:
                if default is _MISSING:
                    raise KeyError(key)
                return default
            entry = self._entries.pop(key)
            self.total_bytes -= self._sizes.pop(key, 0)
            return entry

    def clear(self) -> None:
        """Drop everything (invalidation, *not* a spill: no counters move)."""
        with self._lock:
            self._entries.clear()
            self._sizes.clear()
            self.total_bytes = 0
