"""Inner/outer source-iteration controller.

UnSNAP retains SNAP's iteration structure: outer iterations perform Jacobi
updates of the group-to-group scattering coupling, and inner iterations
converge the within-group scattering source, each inner performing a full
sweep of every octant, angle and group.  The controller is independent of how
the sweep itself is executed (single rank or one subdomain of a block-Jacobi
decomposition), which is why the parallel driver reuses it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..materials.cross_sections import MaterialLibrary
from ..materials.source_terms import FixedSource
from ..telemetry import active, phase
from .assembly import AssemblyTimings
from .convergence import max_relative_difference
from .source import build_outer_source, build_total_source
from .sweep import BoundaryValues, SweepExecutor, SweepResult

__all__ = ["IterationHistory", "IterationController"]


@dataclass
class IterationHistory:
    """Record of the iteration progress.

    Attributes
    ----------
    inner_errors:
        Maximum relative scalar-flux change of every inner iteration, in
        execution order.
    outer_errors:
        Maximum relative scalar-flux change of every outer iteration.
    inners_per_outer:
        Number of inner iterations actually performed in each outer.
    converged:
        Whether the final outer satisfied its tolerance (always ``False``
        when tolerances are disabled, as in the paper's timing runs).
    """

    inner_errors: list[float] = field(default_factory=list)
    outer_errors: list[float] = field(default_factory=list)
    inners_per_outer: list[int] = field(default_factory=list)
    converged: bool = False

    @property
    def total_inners(self) -> int:
        return sum(self.inners_per_outer)

    @property
    def num_outers(self) -> int:
        return len(self.outer_errors)


class IterationController:
    """Drives the inner/outer source iteration over a sweep executor.

    Parameters
    ----------
    executor:
        The sweep executor for this (sub)domain.
    materials:
        Material library covering the executor's mesh.
    fixed_source:
        The fixed (external) source.
    num_inners, num_outers:
        Iteration limits.
    inner_tolerance, outer_tolerance:
        Early-exit tolerances on the maximum relative scalar-flux change;
        non-positive values disable the test (fixed iteration counts).
    """

    def __init__(
        self,
        executor: SweepExecutor,
        materials: MaterialLibrary,
        fixed_source: FixedSource,
        num_inners: int = 5,
        num_outers: int = 1,
        inner_tolerance: float = 0.0,
        outer_tolerance: float = 0.0,
    ):
        self.executor = executor
        self.materials = materials.for_cells(executor.mesh.num_cells)
        self.fixed_source = fixed_source
        self.num_inners = int(num_inners)
        self.num_outers = int(num_outers)
        self.inner_tolerance = float(inner_tolerance)
        self.outer_tolerance = float(outer_tolerance)

        if fixed_source.num_cells != executor.mesh.num_cells:
            raise ValueError("fixed source does not cover the executor's mesh")
        if fixed_source.num_groups != self.materials.num_groups:
            raise ValueError("fixed source and materials disagree on the group count")

    def run(
        self,
        initial_flux: np.ndarray | None = None,
        boundary_values: BoundaryValues | None = None,
        angular_source: np.ndarray | None = None,
    ) -> tuple[np.ndarray, SweepResult, IterationHistory, AssemblyTimings]:
        """Run the full outer/inner iteration.

        ``angular_source`` is an optional ``(A, E, G, N)`` per-ordinate fixed
        source forwarded to every sweep (the manufactured-solutions hook of
        :mod:`repro.verify.mms`); the scattering sources built here stay
        isotropic.

        Returns
        -------
        ``(scalar_flux, last_sweep, history, timings)`` where ``scalar_flux``
        is the final ``(E, G, N)`` nodal scalar flux, ``last_sweep`` the
        result of the final sweep (leakage, halo data), ``history`` the
        iteration record and ``timings`` the accumulated assemble/solve
        split over all sweeps.
        """
        executor = self.executor
        num_elements = executor.mesh.num_cells
        shape = (num_elements, executor.num_groups, executor.num_nodes)
        scalar = (
            np.zeros(shape, dtype=float)
            if initial_flux is None
            else np.array(initial_flux, dtype=float, copy=True)
        )
        if scalar.shape != shape:
            raise ValueError(f"initial_flux must have shape {shape}, got {scalar.shape}")

        history = IterationHistory()
        timings = AssemblyTimings()
        last_sweep: SweepResult | None = None
        # Reflective boundaries lag the mirrored boundary traces through the
        # same BoundaryValues table the block-Jacobi halo swap uses; the
        # table persists across sweeps (and, when the caller owns it, across
        # driver iterations).
        reflective = getattr(executor, "reflective", None)
        if reflective is not None and boundary_values is None:
            boundary_values = BoundaryValues()
        # The sweep itself records its own phase; the controller attributes
        # the source builds and convergence tests around it.  With telemetry
        # off, phase() hands back a shared no-op context.
        tel = active(getattr(executor, "telemetry", None))

        for _outer in range(self.num_outers):
            outer_flux = scalar.copy()
            with phase(tel, "source"):
                outer_source = build_outer_source(
                    self.fixed_source, self.materials, outer_flux, executor.num_nodes
                )
            inners_done = 0
            for _inner in range(self.num_inners):
                with phase(tel, "source"):
                    total_source = build_total_source(outer_source, self.materials, scalar)
                result = executor.sweep(
                    total_source,
                    boundary_values=boundary_values,
                    angular_source=angular_source,
                )
                timings = timings.merge(result.timings)
                last_sweep = result
                if reflective is not None:
                    reflective.update(boundary_values, result.outgoing_halo)
                with phase(tel, "convergence"):
                    inner_error = max_relative_difference(result.scalar_flux, scalar)
                history.inner_errors.append(inner_error)
                scalar = result.scalar_flux
                inners_done += 1
                if self.inner_tolerance > 0.0 and inner_error <= self.inner_tolerance:
                    break
            history.inners_per_outer.append(inners_done)
            with phase(tel, "convergence"):
                outer_error = max_relative_difference(scalar, outer_flux)
            history.outer_errors.append(outer_error)
            if self.outer_tolerance > 0.0 and outer_error <= self.outer_tolerance:
                history.converged = True
                break

        assert last_sweep is not None
        return scalar, last_sweep, history, timings
