"""Convergence measures for the source iteration.

SNAP (and UnSNAP) monitor the pointwise relative change of the scalar flux
between successive iterates; the inner iteration of a group set stops when
the maximum relative change falls below the inner tolerance, the outer
iteration when it falls below the outer tolerance.  The paper's timing runs
deliberately fix the iteration counts (5 inners, 1 outer) so that every
configuration does identical work; setting the tolerances to zero reproduces
that behaviour.
"""

from __future__ import annotations

import numpy as np

__all__ = ["max_relative_difference", "relative_change", "is_converged"]

#: Absolute floor below which flux values are compared absolutely rather than
#: relatively, to avoid division by (near) zero in void-like regions.
_FLOOR = 1e-12


def max_relative_difference(new: np.ndarray, old: np.ndarray) -> float:
    """Maximum pointwise relative difference between two flux iterates."""
    new = np.asarray(new, dtype=float)
    old = np.asarray(old, dtype=float)
    if new.shape != old.shape:
        raise ValueError(f"shape mismatch: {new.shape} vs {old.shape}")
    denom = np.maximum(np.abs(new), _FLOOR)
    return float(np.max(np.abs(new - old) / denom)) if new.size else 0.0


def relative_change(new: np.ndarray, old: np.ndarray) -> float:
    """Global (L2) relative change, a smoother convergence indicator."""
    new = np.asarray(new, dtype=float)
    old = np.asarray(old, dtype=float)
    norm = np.linalg.norm(new)
    if norm < _FLOOR:
        return float(np.linalg.norm(new - old))
    return float(np.linalg.norm(new - old) / norm)


def is_converged(new: np.ndarray, old: np.ndarray, tolerance: float) -> bool:
    """True when the maximum relative difference is below a positive tolerance.

    A non-positive tolerance disables the test (the fixed-iteration-count
    mode used for the paper's timing experiments).
    """
    if tolerance <= 0.0:
        return False
    return max_relative_difference(new, old) <= tolerance
