"""The transport sweep executor.

For each angular direction the sweep follows the direction's bucket schedule;
how the buckets are executed is delegated to a pluggable *sweep engine*
(:mod:`repro.engines`): the ``reference`` engine runs the per-element
assemble/solve loop of the paper's Figure 2 pseudocode, the ``vectorized``
engine batch-assembles and batch-solves whole buckets.  In both cases the
assemble and solve phases are timed separately to reproduce the split of
Table II.

Boundary handling:

* domain-boundary inflow faces use the problem's boundary condition (vacuum
  or a prescribed isotropic incident flux);
* rank-boundary inflow faces (present when the mesh is a subdomain of a
  block-Jacobi decomposition) use *lagged* upwind traces supplied through
  :class:`BoundaryValues`, which is exactly the parallel block Jacobi scheme
  of Section III-A.1.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..angular.quadrature import AngularQuadrature
from ..config import BoundaryCondition
from ..engines.base import SweepEngine
from ..engines.registry import get_engine
from ..fem.element import HexElementFactors
from ..fem.reference import ReferenceElement
from ..materials.cross_sections import MaterialLibrary
from ..mesh.hexmesh import UnstructuredHexMesh
from ..solvers.registry import LocalSolver, get_solver
from ..sweepsched.schedule import SweepSchedule
from ..telemetry import Telemetry
from ..telemetry import active as telemetry_active
from .assembly import AssemblyTimings, ElementMatrices
from .factor_cache import FactorCache
from .flux import AngularFluxBank

__all__ = ["BoundaryValues", "SweepResult", "SweepExecutor"]


@dataclass
class BoundaryValues:
    """Lagged upwind traces for faces whose neighbour lives on another rank.

    ``values[(cell, face, angle)]`` holds the ``(G, N)`` nodal angular flux of
    the remote upwind neighbour from the previous block-Jacobi iteration.
    Faces not present fall back to the domain boundary condition, which also
    covers the very first iteration (zero initial guess).
    """

    values: dict[tuple[int, int, int], np.ndarray] = field(default_factory=dict)

    def get(self, cell: int, face: int, angle: int) -> np.ndarray | None:
        return self.values.get((cell, face, angle))

    def put(self, cell: int, face: int, angle: int, trace: np.ndarray) -> None:
        self.values[(cell, face, angle)] = np.asarray(trace, dtype=float)

    def __len__(self) -> int:
        return len(self.values)


@dataclass
class SweepResult:
    """Outcome of one full sweep over all octants, angles and groups.

    Attributes
    ----------
    scalar_flux:
        ``(E, G, N)`` nodal scalar flux accumulated with the quadrature
        weights.
    leakage:
        ``(G,)`` net outflow through the domain boundary.
    timings:
        Assemble/solve wall-clock split.
    outgoing_halo:
        Nodal angular-flux traces of this rank's cells on rank-boundary
        faces, keyed ``(cell, face, angle)`` -- the data exchanged by the
        block-Jacobi halo swap.
    angular_flux:
        Optional full angular-flux bank (only when requested).
    """

    scalar_flux: np.ndarray
    leakage: np.ndarray
    timings: AssemblyTimings
    outgoing_halo: dict[tuple[int, int, int], np.ndarray] = field(default_factory=dict)
    angular_flux: AngularFluxBank | None = None


class SweepExecutor:
    """Performs transport sweeps over a (sub)mesh.

    Parameters
    ----------
    mesh, factors, ref:
        The mesh, its per-element geometric factors and the shared
        reference-element tabulation.
    matrices:
        Precomputed direction-independent local matrices.
    schedule:
        Per-angle sweep schedules.
    quadrature:
        The angular quadrature set.
    materials:
        Material library with a per-cell assignment covering the mesh.
    boundary:
        Domain boundary condition.
    solver:
        Local solver instance or registry name (``"ge"`` / ``"lapack"``).
    engine:
        Sweep engine instance or registry name (``"reference"`` /
        ``"vectorized"``; see :mod:`repro.engines`).
    halo_faces:
        Optional ``(n_halo, >=2)`` array whose first two columns are
        ``(cell, face)`` pairs owned by other ranks; outgoing traces on these
        faces are collected into :attr:`SweepResult.outgoing_halo`.
    num_threads:
        Number of worker threads (functional parallelism; the performance
        study of the paper is reproduced by :mod:`repro.perfmodel`).  With
        ``octant_parallel`` the threads dispatch whole octants; otherwise
        the ``reference`` engine uses them to process independent elements
        of a bucket concurrently.
    octant_parallel:
        Sweep the 8 octants concurrently on a thread pool.  The buckets of
        different octants are independent, so each octant's angles are
        processed by one worker and the per-octant partial results are
        reduced in a fixed octant order -- the scalar flux is bit-for-bit
        identical whatever ``num_threads`` is.
    store_angular_flux:
        Keep the full ``(E, A, G, N)`` angular flux in the sweep result.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` instrument.  When set,
        every sweep is recorded as a ``sweep`` phase with counters (local
        solves, assemble/solve seconds, factor-cache hits/misses/spills from
        caching engines, octant-pool occupancy); when ``None`` (the default)
        the sweep path performs no telemetry work at all.
    factor_cache_budget_bytes:
        Byte budget of the engine factor cache (:class:`~repro.core.
        factor_cache.FactorCache`); 0 (the default) keeps it unbounded.
        Budgeted caches spill least-recently-used entries and the owning
        engine transparently recomputes them -- results are bit-for-bit
        identical either way.
    """

    def __init__(
        self,
        mesh: UnstructuredHexMesh,
        factors: HexElementFactors,
        ref: ReferenceElement,
        matrices: ElementMatrices,
        schedule: SweepSchedule,
        quadrature: AngularQuadrature,
        materials: MaterialLibrary,
        boundary: BoundaryCondition | None = None,
        solver: LocalSolver | str = "ge",
        engine: SweepEngine | str = "reference",
        halo_faces: np.ndarray | None = None,
        num_threads: int = 1,
        octant_parallel: bool = False,
        store_angular_flux: bool = False,
        telemetry: Telemetry | None = None,
        factor_cache_budget_bytes: int = 0,
    ):
        self.mesh = mesh
        self.factors = factors
        self.ref = ref
        self.matrices = matrices
        self.schedule = schedule
        self.quadrature = quadrature
        self.materials = materials.for_cells(mesh.num_cells)
        self.boundary = boundary if boundary is not None else BoundaryCondition()
        self._solver = get_solver(solver) if isinstance(solver, str) else solver
        self._engine = get_engine(engine)
        self.num_threads = max(1, int(num_threads))
        self.octant_parallel = bool(octant_parallel)
        self.store_angular_flux = bool(store_angular_flux)
        #: Optional phase/counter instrument; ``None`` keeps sweeps free of
        #: any telemetry work (the zero-overhead contract).
        self.telemetry = telemetry

        self.sigma_t = self.materials.sigma_t_per_cell()  # (E, G)
        self.num_groups = self.materials.num_groups
        self.num_nodes = matrices.num_nodes

        #: Engine-owned memoisation storage (e.g. the ``prefactorized``
        #: engine's LU factors), keyed by engine-namespaced tuples; see the
        #: factor-cache lifecycle notes in :mod:`repro.engines.base`.
        #: Dict-shaped; an optional byte budget adds LRU spill semantics.
        self.factor_cache = FactorCache(factor_cache_budget_bytes)
        self.factor_cache.telemetry = telemetry
        self._factor_epoch = 0
        # Lazily-created octant worker pool, reused across sweeps (a solve
        # runs num_outers * num_inners of them).
        self._octant_pool: ThreadPoolExecutor | None = None

        self._halo_set: set[tuple[int, int]] = set()
        if halo_faces is not None and len(halo_faces):
            halo_faces = np.asarray(halo_faces, dtype=np.int64)
            self._halo_set = {(int(c), int(f)) for c, f in halo_faces[:, :2]}

        #: Optional :class:`~repro.core.reflect.ReflectiveBoundary` helper.
        #: When set (by :class:`~repro.core.solver.TransportSolver` for
        #: ``boundary.kind == "reflective"``), the iteration controller
        #: mirrors each sweep's outgoing halo traces back into the lagged
        #: ghost table.
        self.reflective = None

    # ------------------------------------------------- engine/solver switching
    @property
    def engine(self) -> SweepEngine:
        """The sweep engine; assigning goes through :meth:`set_engine`."""
        return self._engine

    @engine.setter
    def engine(self, value: SweepEngine | str) -> None:
        self.set_engine(value)

    @property
    def solver(self) -> LocalSolver:
        """The local solver; assigning goes through :meth:`set_solver`."""
        return self._solver

    @solver.setter
    def solver(self, value: LocalSolver | str) -> None:
        self.set_solver(value)

    def set_engine(self, engine: SweepEngine | str) -> None:
        """Switch the sweep engine on this (reused) executor.

        Engine-memoised state in :attr:`factor_cache` belongs to the outgoing
        engine, so switching invalidates the cache first -- with the *old*
        engine still installed, so its ``invalidate_cache`` hook (not the new
        engine's) is the one notified.  Re-assigning the same engine instance
        is a no-op and keeps the cache warm.
        """
        new = get_engine(engine)
        if new is self._engine:
            return
        self.invalidate_factor_cache()
        self._engine = new

    def set_solver(self, solver: LocalSolver | str) -> None:
        """Switch the local solver on this (reused) executor.

        Cached factorisations were produced by the outgoing solver's
        ``factor_batched`` and are meaningless to another solver's
        ``solve_factored`` (the packed formats differ), so switching
        invalidates the factor cache.  Re-assigning the same solver is a
        no-op.
        """
        new = get_solver(solver) if isinstance(solver, str) else solver
        if new is self._solver:
            return
        self.invalidate_factor_cache()
        self._solver = new

    # ----------------------------------------------------- factor-cache hooks
    @property
    def element_threads(self) -> int:
        """Threads available for *within-bucket* element parallelism.

        When the executor parallelises over octants the worker threads are
        spent at the octant level, so engines must not nest their own pools.
        """
        return 1 if self.octant_parallel else self.num_threads

    @property
    def factor_epoch(self) -> int:
        """Monotone counter bumped by every cache invalidation."""
        return self._factor_epoch

    def invalidate_factor_cache(self) -> None:
        """Drop all engine-memoised state (LU factors, cached couplings).

        Called whenever an input the cached data depends on changes -- the
        cross sections via :meth:`update_materials`, or externally mutated
        materials/matrices.  Engines exposing an ``invalidate_cache`` hook
        are notified before the storage is cleared.
        """
        self._factor_epoch += 1
        hook = getattr(self.engine, "invalidate_cache", None)
        if hook is not None:
            hook(self)
        self.factor_cache.clear()

    def update_materials(self, materials: MaterialLibrary) -> None:
        """Swap the material library mid-run and invalidate cached factors.

        The new library must cover the executor's mesh and keep the group
        count (the flux shapes are fixed at construction time).
        """
        materials = materials.for_cells(self.mesh.num_cells)
        if materials.num_groups != self.num_groups:
            raise ValueError(
                f"new materials have {materials.num_groups} groups, "
                f"executor was built with {self.num_groups}"
            )
        self.materials = materials
        self.sigma_t = materials.sigma_t_per_cell()
        self.invalidate_factor_cache()

    # ------------------------------------------------------------------ sweep
    def sweep(
        self,
        total_source: np.ndarray,
        boundary_values: BoundaryValues | None = None,
        angular_source: np.ndarray | None = None,
    ) -> SweepResult:
        """Perform one full sweep of all octants, angles and groups.

        Parameters
        ----------
        total_source:
            ``(E, G, N)`` isotropic source density at the element nodes
            (fixed + scattering).
        boundary_values:
            Lagged upwind traces for rank-boundary faces (block Jacobi).
        angular_source:
            Optional ``(A, E, G, N)`` per-ordinate source added on top of the
            isotropic one.  Engines never see it as a separate argument: the
            executor hands each angle the combined ``(E, G, N)`` density, so
            every registered engine supports it unchanged.  This is the
            method-of-manufactured-solutions hook used by
            :mod:`repro.verify.mms` (a manufactured angular flux needs the
            anisotropic ``Omega . grad psi`` term in its source).
        """
        tel = telemetry_active(self.telemetry)
        if tel is None:
            # Telemetry off: the exact pre-instrumentation code path -- no
            # timers, no context managers, no counter updates.
            return self._sweep_impl(total_source, boundary_values, angular_source)
        with tel.phase("sweep"):
            result = self._sweep_impl(total_source, boundary_values, angular_source)
        tel.incr("sweeps")
        tel.incr("local_solves", result.timings.systems_solved)
        tel.incr("sweep_assembly_seconds", result.timings.assembly_seconds)
        tel.incr("sweep_solve_seconds", result.timings.solve_seconds)
        if self.octant_parallel:
            tel.gauge(
                "octant_pool_workers",
                min(len(self.quadrature.octant_order()), self.num_threads) or 1,
            )
        return result

    def _sweep_impl(
        self,
        total_source: np.ndarray,
        boundary_values: BoundaryValues | None = None,
        angular_source: np.ndarray | None = None,
    ) -> SweepResult:
        mesh = self.mesh
        num_elements = mesh.num_cells
        num_groups = self.num_groups
        num_nodes = self.num_nodes
        expected = (num_elements, num_groups, num_nodes)
        total_source = np.asarray(total_source, dtype=float)
        if total_source.shape != expected:
            raise ValueError(f"total_source must have shape {expected}, got {total_source.shape}")
        if angular_source is not None:
            angular_source = np.asarray(angular_source, dtype=float)
            expected_angular = (self.quadrature.num_angles, *expected)
            if angular_source.shape != expected_angular:
                raise ValueError(
                    f"angular_source must have shape {expected_angular}, "
                    f"got {angular_source.shape}"
                )

        scalar = np.zeros(expected, dtype=float)
        leakage = np.zeros(num_groups, dtype=float)
        timings = AssemblyTimings()
        outgoing_halo: dict[tuple[int, int, int], np.ndarray] = {}
        bank = (
            AngularFluxBank.zeros(num_elements, self.quadrature.num_angles, num_groups, num_nodes)
            if self.store_angular_flux
            else None
        )

        incident = self.boundary.incoming_value()
        octants = self.quadrature.octant_order()

        if self.octant_parallel:
            # The buckets of different octants are independent, so whole
            # octants are dispatched across a thread pool.  Each worker
            # accumulates its own partials (in fixed angle order) and the
            # main thread reduces them in fixed octant order, so the result
            # is bit-for-bit identical for any number of worker threads.
            if self._octant_pool is None:
                self._octant_pool = ThreadPoolExecutor(
                    max_workers=min(len(octants), self.num_threads) or 1
                )
            futures = [
                self._octant_pool.submit(
                    self._sweep_octant,
                    octant_angles, total_source, boundary_values, incident, bank,
                    angular_source,
                )
                for octant_angles in octants
            ]
            partials = [f.result() for f in futures]
            for part_scalar, part_leakage, part_halo, part_timings in partials:
                scalar += part_scalar
                leakage += part_leakage
                outgoing_halo.update(part_halo)
                timings.assembly_seconds += part_timings.assembly_seconds
                timings.solve_seconds += part_timings.solve_seconds
                timings.systems_solved += part_timings.systems_solved
        else:
            for octant_angles in octants:
                for angle in octant_angles.tolist():
                    psi_angle = self._sweep_one_angle(
                        angle, total_source, boundary_values, incident, timings,
                        angular_source,
                    )
                    weight = self.quadrature.weights[angle]
                    scalar += weight * psi_angle
                    leakage += weight * self._boundary_leakage(angle, psi_angle, incident)
                    self._collect_halo(angle, psi_angle, outgoing_halo)
                    if bank is not None:
                        bank.psi[:, angle] = psi_angle

        return SweepResult(
            scalar_flux=scalar,
            leakage=leakage,
            timings=timings,
            outgoing_halo=outgoing_halo,
            angular_flux=bank,
        )

    # ----------------------------------------------------------- one octant
    def _sweep_octant(
        self,
        octant_angles: np.ndarray,
        total_source: np.ndarray,
        boundary_values: BoundaryValues | None,
        incident: float,
        bank: AngularFluxBank | None,
        angular_source: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, dict, AssemblyTimings]:
        """Sweep one octant's angles and return its partial reductions.

        Runs on an octant worker thread: every accumulator is thread-local
        (angles are processed in quadrature order) and the angular-flux bank
        slots of different angles are disjoint, so concurrent octants never
        write the same memory.
        """
        timings = AssemblyTimings()
        scalar = np.zeros((self.mesh.num_cells, self.num_groups, self.num_nodes), dtype=float)
        leakage = np.zeros(self.num_groups, dtype=float)
        outgoing_halo: dict[tuple[int, int, int], np.ndarray] = {}
        for angle in octant_angles.tolist():
            psi_angle = self._sweep_one_angle(
                angle, total_source, boundary_values, incident, timings,
                angular_source,
            )
            weight = self.quadrature.weights[angle]
            scalar += weight * psi_angle
            leakage += weight * self._boundary_leakage(angle, psi_angle, incident)
            self._collect_halo(angle, psi_angle, outgoing_halo)
            if bank is not None:
                bank.psi[:, angle] = psi_angle
        return scalar, leakage, outgoing_halo, timings

    # ----------------------------------------------------------- single angle
    def _sweep_one_angle(
        self,
        angle: int,
        total_source: np.ndarray,
        boundary_values: BoundaryValues | None,
        incident: float,
        timings: AssemblyTimings,
        angular_source: np.ndarray | None = None,
    ) -> np.ndarray:
        source = (
            total_source if angular_source is None else total_source + angular_source[angle]
        )
        return self.engine.sweep_angle(
            self, angle, source, boundary_values, incident, timings
        )

    # ------------------------------------------------------------ diagnostics
    def _boundary_leakage(self, angle: int, psi_angle: np.ndarray, incident: float) -> np.ndarray:
        """Net outflow minus inflow through the domain boundary, per group."""
        direction = self.quadrature.directions[angle]
        orientation = self.schedule.for_angle(angle).classification.orientation
        leak = np.zeros(self.num_groups, dtype=float)
        for element, face in self.mesh.boundary_faces():
            if (int(element), int(face)) in self._halo_set:
                # Rank-interface faces are not part of the domain boundary;
                # their flow is handled by the halo exchange.
                continue
            orient = orientation[element, face]
            if orient == 1:
                leak += self.matrices.outgoing_partial_current(
                    int(element), int(face), direction, psi_angle[element]
                )
            elif orient == -1 and incident != 0.0:
                coupling = np.einsum(
                    "d,dij->ij", direction, self.matrices.face_own[int(element), int(face)]
                )
                # Incident flux is constant over the face: psi = incident.
                leak += incident * coupling.sum()
        return leak

    def _collect_halo(
        self,
        angle: int,
        psi_angle: np.ndarray,
        outgoing_halo: dict[tuple[int, int, int], np.ndarray],
    ) -> None:
        if not self._halo_set:
            return
        orientation = self.schedule.for_angle(angle).classification.orientation
        for cell, face in self._halo_set:
            if orientation[cell, face] == 1:
                outgoing_halo[(cell, face, angle)] = psi_angle[cell].copy()
