"""Source construction: fixed source plus scattering source.

The solution of the transport equation proceeds by "simple iterations on the
scattering source", with Jacobi iterations on the group-to-group coupling
(Section II of the paper).  SNAP's structure, retained by UnSNAP, splits the
right-hand side per group ``g`` into

* the **outer source** -- the fixed source plus scattering *from other
  groups*, built once per outer iteration from the previous outer iterate of
  the scalar flux (Jacobi in energy), and
* the **inner (within-group) source** -- in-group scattering built from the
  previous inner iterate.

With the quadrature weights normalised to sum to one, the isotropic angular
source density equals the isotropic emission density, so no ``1/4pi`` factor
appears.
"""

from __future__ import annotations

import numpy as np

from ..materials.cross_sections import MaterialLibrary
from ..materials.source_terms import FixedSource

__all__ = ["scattering_source", "build_outer_source", "build_total_source"]


def scattering_source(
    scalar_flux: np.ndarray, sigma_s: np.ndarray, within_group_only: bool = False,
    exclude_within_group: bool = False,
) -> np.ndarray:
    """Isotropic scattering source density at the element nodes.

    Parameters
    ----------
    scalar_flux:
        ``(E, G, N)`` nodal scalar flux.
    sigma_s:
        ``(E, G, G)`` scattering matrices (``[e, g_from, g_to]``).
    within_group_only:
        Keep only the diagonal (in-group) part of the scattering matrix.
    exclude_within_group:
        Zero the diagonal (used for the outer/cross-group source).

    Returns
    -------
    ``(E, G, N)`` source density, indexed by the *destination* group.
    """
    if within_group_only and exclude_within_group:
        raise ValueError("within_group_only and exclude_within_group are mutually exclusive")
    sig = sigma_s
    if within_group_only or exclude_within_group:
        eye = np.eye(sigma_s.shape[1], dtype=bool)
        if within_group_only:
            sig = np.where(eye[None, :, :], sigma_s, 0.0)
        else:
            sig = np.where(eye[None, :, :], 0.0, sigma_s)
    # source[e, g_to, n] = sum_{g_from} sigma_s[e, g_from, g_to] * phi[e, g_from, n]
    return np.einsum("efg,efn->egn", sig, scalar_flux, optimize=True)


def build_outer_source(
    fixed: FixedSource,
    materials: MaterialLibrary,
    scalar_flux: np.ndarray,
    num_nodes: int,
) -> np.ndarray:
    """Outer-iteration source: fixed source + cross-group scattering.

    The fixed source density is uniform within each cell, so it broadcasts to
    every node; the cross-group scattering uses the previous outer iterate of
    the nodal scalar flux (Jacobi on the group coupling).
    """
    sigma_s = materials.sigma_s_per_cell()
    cross_group = scattering_source(scalar_flux, sigma_s, exclude_within_group=True)
    return fixed.density[:, :, None] * np.ones((1, 1, num_nodes)) + cross_group


def build_total_source(
    outer_source: np.ndarray,
    materials: MaterialLibrary,
    scalar_flux: np.ndarray,
) -> np.ndarray:
    """Total source for one inner iteration: outer source + in-group scattering."""
    sigma_s = materials.sigma_s_per_cell()
    within = scattering_source(scalar_flux, sigma_s, within_group_only=True)
    return outer_source + within
