"""The sweep schedule container.

For each angular direction the schedule holds the ordered wavefront buckets
(elements sharing a tlevel) and the face classification that produced them.
"For each angular direction in the problem, a sweep schedule is constructed
by following the outgoing faces of the elements.  This schedule can then be
followed, where for each element the angular flux for all energy groups can
be calculated using the finite element method." (Section III of the paper.)

Directions with an identical dependency structure -- always the case for all
angles of an octant on an untwisted mesh, and typically still the case for
the very small twists the paper uses -- share a single
:class:`AngleSchedule` instance, which both saves memory and mirrors the
structured-mesh special case where "the order is identical for all angular
directions in a given octant".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..angular.quadrature import AngularQuadrature
from ..fem.element import HexElementFactors
from ..mesh.hexmesh import UnstructuredHexMesh
from .graph import FaceClassification, classify_faces
from .tlevel import buckets_from_tlevels, compute_tlevels

__all__ = ["AngleSchedule", "SweepSchedule", "build_sweep_schedule"]


@dataclass
class AngleSchedule:
    """Sweep order of one direction (or of all directions sharing it).

    Attributes
    ----------
    classification:
        The per-face upwind classification used for assembly and scheduling.
    tlevels:
        ``(E,)`` wavefront index of each element.
    buckets:
        Ordered list of element-id arrays; elements within a bucket are
        independent, buckets must be processed in order.
    """

    classification: FaceClassification
    tlevels: np.ndarray
    buckets: list[np.ndarray]

    @property
    def num_buckets(self) -> int:
        return len(self.buckets)

    @property
    def num_elements(self) -> int:
        return int(self.tlevels.shape[0])

    def bucket_sizes(self) -> np.ndarray:
        return np.array([b.shape[0] for b in self.buckets], dtype=np.int64)

    def max_parallel_elements(self) -> int:
        """The widest wavefront -- the peak element-level concurrency."""
        sizes = self.bucket_sizes()
        return int(sizes.max()) if sizes.size else 0

    def validate_topological_order(self, mesh: UnstructuredHexMesh) -> bool:
        """Check that every interior inflow neighbour has a strictly smaller tlevel."""
        orientation = self.classification.orientation
        nbrs = mesh.face_neighbors
        cells, faces = np.nonzero((orientation == -1) & (nbrs != -1))
        upwind = nbrs[cells, faces]
        return bool(np.all(self.tlevels[upwind] < self.tlevels[cells]))


@dataclass
class SweepSchedule:
    """Sweep schedules for every direction of a quadrature set.

    Attributes
    ----------
    quadrature:
        The angular quadrature the schedule was built for.
    angle_schedules:
        One :class:`AngleSchedule` per ordinate; entries may be shared
        objects when directions have identical dependency structure.
    """

    quadrature: AngularQuadrature
    angle_schedules: list[AngleSchedule] = field(default_factory=list)

    def for_angle(self, angle: int) -> AngleSchedule:
        return self.angle_schedules[angle]

    @property
    def num_angles(self) -> int:
        return len(self.angle_schedules)

    def num_unique_schedules(self) -> int:
        """Number of distinct schedule objects after structural sharing."""
        return len({id(s) for s in self.angle_schedules})

    def total_buckets(self) -> int:
        """Sum of bucket counts over all angles (a proxy for sweep latency)."""
        return int(sum(s.num_buckets for s in self.angle_schedules))

    def concurrency_summary(self) -> dict:
        """Summary statistics used by the performance model and reports."""
        bucket_sizes = np.concatenate(
            [s.bucket_sizes() for s in self.angle_schedules]
        ) if self.angle_schedules else np.empty(0, dtype=np.int64)
        return {
            "num_angles": self.num_angles,
            "num_unique_schedules": self.num_unique_schedules(),
            "total_buckets": self.total_buckets(),
            "mean_bucket_size": float(bucket_sizes.mean()) if bucket_sizes.size else 0.0,
            "max_bucket_size": int(bucket_sizes.max()) if bucket_sizes.size else 0,
            "min_bucket_size": int(bucket_sizes.min()) if bucket_sizes.size else 0,
        }


def build_sweep_schedule(
    mesh: UnstructuredHexMesh,
    factors: HexElementFactors,
    quadrature: AngularQuadrature,
) -> SweepSchedule:
    """Construct the per-angle sweep schedules for a mesh.

    Directions whose face classification is identical share one
    :class:`AngleSchedule` object.
    """
    cache: dict[bytes, AngleSchedule] = {}
    schedules: list[AngleSchedule] = []
    for angle in range(quadrature.num_angles):
        direction = quadrature.directions[angle]
        classification = classify_faces(factors, direction)
        key = classification.signature()
        schedule = cache.get(key)
        if schedule is None:
            tlevels = compute_tlevels(mesh, classification)
            buckets = buckets_from_tlevels(tlevels)
            schedule = AngleSchedule(
                classification=classification, tlevels=tlevels, buckets=buckets
            )
            cache[key] = schedule
        schedules.append(schedule)
    return SweepSchedule(quadrature=quadrature, angle_schedules=schedules)
