"""Cycle detection in the per-angle upwind dependency graph.

On a sufficiently distorted unstructured mesh the upwind dependency graph can
contain cycles, in which case no sweep order exists without breaking an edge.
The paper's first UnSNAP version explicitly assumes cycles do not occur and
defers cycle breaking to future work.  We take the same position for the
solve itself, but rather than silently hanging we detect cycles during
schedule construction and raise :class:`CycleError` carrying the offending
cells and a set of representative cycles (found with :mod:`networkx`) so that
the failure is diagnosable.
"""

from __future__ import annotations

import numpy as np

try:  # networkx is a hard dependency of the package, but keep the import local
    import networkx as nx
except ImportError:  # pragma: no cover - environment without networkx
    nx = None

from ..mesh.hexmesh import BOUNDARY, UnstructuredHexMesh
from .graph import FaceClassification

__all__ = ["CycleError", "find_dependency_cycles"]


class CycleError(RuntimeError):
    """Raised when a per-angle upwind dependency graph is not acyclic."""

    def __init__(self, unscheduled_cells: np.ndarray, cycles: list[list[int]]):
        self.unscheduled_cells = np.asarray(unscheduled_cells, dtype=np.int64)
        self.cycles = cycles
        preview = ", ".join(str(c) for c in self.unscheduled_cells[:8].tolist())
        more = "..." if self.unscheduled_cells.size > 8 else ""
        message = (
            f"sweep dependency graph contains cycles: {self.unscheduled_cells.size} "
            f"cells could not be scheduled (cells {preview}{more}); "
            f"{len(cycles)} representative cycle(s) found. "
            "Cycle breaking is not implemented (matching the paper's first "
            "version of UnSNAP); reduce the mesh distortion."
        )
        super().__init__(message)


def find_dependency_cycles(
    mesh: UnstructuredHexMesh,
    classification: FaceClassification,
    restrict_to: np.ndarray | None = None,
    max_cycles: int = 10,
) -> list[list[int]]:
    """Find representative cycles of the upwind dependency graph.

    Parameters
    ----------
    mesh, classification:
        The mesh and the per-direction face classification.
    restrict_to:
        Optional subset of cells to consider (e.g. the cells left unscheduled
        by the tlevel construction); edges to cells outside the subset are
        ignored.
    max_cycles:
        Cap on the number of cycles returned (cycle enumeration can be
        exponential).
    """
    if nx is None:  # pragma: no cover - environment without networkx
        return []

    orientation = classification.orientation
    nbrs = mesh.face_neighbors
    allowed = None
    if restrict_to is not None:
        allowed = set(np.asarray(restrict_to, dtype=np.int64).tolist())

    graph = nx.DiGraph()
    cells, faces = np.nonzero((orientation == 1) & (nbrs != BOUNDARY))
    for cell, face in zip(cells.tolist(), faces.tolist()):
        target = int(nbrs[cell, face])
        if allowed is not None and (cell not in allowed or target not in allowed):
            continue
        graph.add_edge(int(cell), target)

    cycles: list[list[int]] = []
    try:
        for cycle in nx.simple_cycles(graph):
            cycles.append([int(c) for c in cycle])
            if len(cycles) >= max_cycles:
                break
    except nx.NetworkXNoCycle:  # pragma: no cover - defensive
        return []
    return cycles
