"""Sweep scheduling for unstructured discrete-ordinates transport.

Solving the transport equation requires a sweep of the spatial domain for
each angular direction.  Cells cannot all be solved concurrently because of
the upwind dependency between a cell and its inflow-face neighbours, so a
schedule determines the order in which cells are solved.  On an unstructured
mesh the order may be unique per direction; the schedule forms a directed
(acyclic) graph distributed between processors.

This sub-package implements the *local* (on-process) schedule of the paper:

* :mod:`repro.sweepsched.graph` -- per-angle face classification and upwind
  dependency graph construction from the actual (possibly twisted) face
  normals.
* :mod:`repro.sweepsched.tlevel` -- the tlevel/bucket construction (Pautz's
  tlevel, computed with the dependency-counter algorithm described in
  Section III-A.2 of the paper).
* :mod:`repro.sweepsched.schedule` -- the :class:`SweepSchedule` container
  bundling all angles, with structural sharing when several angles have the
  same dependency structure (always the case within an octant on an
  untwisted mesh).
* :mod:`repro.sweepsched.cycles` -- cycle detection and reporting (the paper
  assumes no cycles occur and leaves breaking them to future work; we detect
  them and fail loudly with diagnostics).
"""

from .graph import FaceClassification, classify_faces, build_dependency_graph
from .tlevel import compute_tlevels, buckets_from_tlevels
from .schedule import AngleSchedule, SweepSchedule, build_sweep_schedule
from .cycles import CycleError, find_dependency_cycles

__all__ = [
    "FaceClassification",
    "classify_faces",
    "build_dependency_graph",
    "compute_tlevels",
    "buckets_from_tlevels",
    "AngleSchedule",
    "SweepSchedule",
    "build_sweep_schedule",
    "CycleError",
    "find_dependency_cycles",
]
