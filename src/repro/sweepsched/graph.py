"""Per-angle face classification and upwind dependency graph.

For a direction :math:`\\Omega`, each face of each element is classified by
the sign of the face-integrated normal flow :math:`\\oint_f \\Omega \\cdot n\\,
dS`:

* **outflow** (positive): the trace of the element's own (unknown) solution
  enters the local matrix ``A``;
* **inflow** (negative): the already-computed trace of the upwind neighbour
  (or the boundary condition) enters the right-hand side ``b``;
* **tangential** (negligible): the face does not couple the two elements for
  this direction.

The same classification drives both the assembly (which side of ``A psi = b``
a face contributes to) and the sweep schedule (which neighbours must be
solved first), so the two can never disagree.  Whole-face upwinding is exact
for planar faces and is the appropriate choice for the mildly twisted meshes
used by the paper (twist <= 0.001 rad).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fem.element import HexElementFactors
from ..mesh.hexmesh import BOUNDARY, UnstructuredHexMesh

__all__ = ["FaceClassification", "classify_faces", "build_dependency_graph"]

#: Relative tolerance below which a face is considered tangential to the
#: sweep direction (no upwind coupling).
TANGENTIAL_RTOL = 1e-12


@dataclass(frozen=True)
class FaceClassification:
    """Face classification of every element for one direction.

    Attributes
    ----------
    orientation:
        ``(E, 6)`` int8 array: +1 outflow, -1 inflow, 0 tangential.
    flow:
        ``(E, 6)`` float array with the signed face-integrated normal flow
        ``oint_f Omega . n dS`` (useful for diagnostics and the performance
        model's halo-volume estimates).
    """

    orientation: np.ndarray
    flow: np.ndarray

    @property
    def num_elements(self) -> int:
        return self.orientation.shape[0]

    def incoming_faces(self, element: int) -> np.ndarray:
        return np.nonzero(self.orientation[element] == -1)[0]

    def outgoing_faces(self, element: int) -> np.ndarray:
        return np.nonzero(self.orientation[element] == +1)[0]

    def signature(self) -> bytes:
        """A hashable signature used to share schedules between directions
        with identical dependency structure."""
        return self.orientation.tobytes()


def classify_faces(factors: HexElementFactors, direction: np.ndarray) -> FaceClassification:
    """Classify every face of every element for the given direction."""
    direction = np.asarray(direction, dtype=float)
    if direction.shape != (3,):
        raise ValueError("direction must be a 3-vector")
    # flow[e, f] = sum_q w[e, f, q] * (Omega . n[e, f, q])
    omega_dot_n = np.einsum("efqa,a->efq", factors.face_normals, direction)
    flow = np.einsum("efq,efq->ef", factors.face_weights, omega_dot_n)
    scale = np.abs(flow).max() if flow.size else 1.0
    tol = TANGENTIAL_RTOL * max(scale, 1e-300)
    orientation = np.zeros(flow.shape, dtype=np.int8)
    orientation[flow > tol] = 1
    orientation[flow < -tol] = -1
    return FaceClassification(orientation=orientation, flow=flow)


def build_dependency_graph(
    mesh: UnstructuredHexMesh, classification: FaceClassification
) -> tuple[np.ndarray, list[list[int]]]:
    """Build the upwind dependency structure for one direction.

    Returns
    -------
    in_degree:
        ``(E,)`` number of *interior* inflow faces of each element, i.e. the
        number of upwind neighbours that must be solved before it.
        Boundary inflow faces are satisfied by the boundary condition and do
        not count.
    downstream:
        ``downstream[e]`` lists the elements whose inflow face is fed by an
        outflow face of ``e`` (the edges of the sweep DAG).
    """
    orientation = classification.orientation
    nbrs = mesh.face_neighbors
    num_elements = mesh.num_cells

    interior_inflow = (orientation == -1) & (nbrs != BOUNDARY)
    in_degree = interior_inflow.sum(axis=1).astype(np.int64)

    downstream: list[list[int]] = [[] for _ in range(num_elements)]
    out_cells, out_faces = np.nonzero((orientation == 1) & (nbrs != BOUNDARY))
    for cell, face in zip(out_cells.tolist(), out_faces.tolist()):
        downstream[cell].append(int(nbrs[cell, face]))
    return in_degree, downstream
