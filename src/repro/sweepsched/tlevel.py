"""tlevel computation and bucket construction.

The local schedule of the paper "calculates the tlevel of each element for
each angle (see Pautz for a definition), and places cells with the same
tlevel in a bucket.  The buckets represent the cells on each
hyperplane/wavefront as the sweep progresses across the mesh."

The construction is exactly the dependency-counter algorithm described in
Section III-A.2: elements whose incoming faces are all satisfied by boundary
conditions form the first bucket; solving them increments a counter on each
downstream neighbour, and a neighbour whose counter reaches its number of
interior inflow faces joins the next bucket; and so on until every element is
scheduled.  This is Kahn's topological sort processed in layers, and the
layer index of an element is its tlevel.
"""

from __future__ import annotations

import numpy as np

from ..mesh.hexmesh import UnstructuredHexMesh
from .cycles import CycleError, find_dependency_cycles
from .graph import FaceClassification, build_dependency_graph

__all__ = ["compute_tlevels", "buckets_from_tlevels"]


def compute_tlevels(
    mesh: UnstructuredHexMesh, classification: FaceClassification
) -> np.ndarray:
    """Compute the tlevel (wavefront index) of every element for one direction.

    Raises
    ------
    CycleError
        If the upwind dependency graph contains a cycle (possible on heavily
        distorted meshes).  The paper's first version of UnSNAP assumes no
        cycles occur; we detect them and report the cells involved.
    """
    in_degree, downstream = build_dependency_graph(mesh, classification)
    num_elements = mesh.num_cells
    tlevel = -np.ones(num_elements, dtype=np.int64)

    remaining = in_degree.copy()
    current = np.nonzero(remaining == 0)[0].tolist()
    level = 0
    scheduled = 0
    while current:
        next_bucket: list[int] = []
        for cell in current:
            tlevel[cell] = level
            scheduled += 1
            for nbr in downstream[cell]:
                remaining[nbr] -= 1
                if remaining[nbr] == 0:
                    next_bucket.append(nbr)
        current = next_bucket
        level += 1

    if scheduled != num_elements:
        unscheduled = np.nonzero(tlevel < 0)[0]
        cycles = find_dependency_cycles(mesh, classification, restrict_to=unscheduled)
        raise CycleError(unscheduled_cells=unscheduled, cycles=cycles)
    return tlevel


def buckets_from_tlevels(tlevels: np.ndarray) -> list[np.ndarray]:
    """Group element ids by tlevel into ordered buckets.

    The returned list is ordered by increasing tlevel; the cells within each
    bucket are mutually independent and may be solved concurrently, but the
    buckets must be processed in order.
    """
    tlevels = np.asarray(tlevels, dtype=np.int64)
    if tlevels.size == 0:
        return []
    if tlevels.min() < 0:
        raise ValueError("tlevels contain unscheduled (-1) entries")
    order = np.argsort(tlevels, kind="stable")
    sorted_levels = tlevels[order]
    boundaries = np.nonzero(np.diff(sorted_levels))[0] + 1
    return [np.asarray(b) for b in np.split(order, boundaries)]
