"""repro -- a Python reproduction of the UnSNAP mini-app.

UnSNAP (Deakin et al., WRAp @ IEEE CLUSTER 2018) extends the SNAP discrete
ordinates transport proxy to unstructured hexahedral meshes discretised with
the discontinuous Galerkin finite element method, and studies sweep
scheduling and local dense-solver performance on fat multi-core nodes.

Public API highlights
---------------------
* :func:`repro.run` -- the single execution entry point: solves any
  :class:`~repro.config.ProblemSpec` (single rank or block-Jacobi
  multi-rank), with a pluggable sweep engine, and returns a unified
  :class:`~repro.runner.RunResult`.
* :class:`repro.config.ProblemSpec` -- problem definition (grid, twist,
  element order, angles, groups, iterations, solver, engine,
  octant-parallel flag, rank grid).
* :mod:`repro.engines` -- the sweep-engine registry
  (:func:`~repro.engines.register_engine`; ``reference``, ``vectorized``
  and ``prefactorized`` built-ins).
* :mod:`repro.solvers` -- the local dense-solver registry
  (:func:`~repro.solvers.register_solver`, ``ge`` and ``lapack`` built-ins).
* :mod:`repro.drivers` -- the outer-loop driver registry
  (:func:`~repro.drivers.register_driver`; ``fixed_source``,
  ``k_eigenvalue`` and ``time_dependent`` built-ins), selected via
  ``ProblemSpec.driver`` / ``repro.run(spec, mode=...)``.
* :func:`repro.run_study` -- the batch execution surface: a declarative
  :class:`repro.Study` (base spec + axis grids) executed through a pluggable
  backend (``serial`` / ``thread`` / ``process``) with an optional resumable
  :class:`repro.campaign.ResultStore` (see :mod:`repro.campaign`).
* :class:`repro.core.TransportSolver` -- the underlying single-rank DGFEM
  sweep solver (prefer :func:`repro.run`).
* :class:`repro.parallel.BlockJacobiDriver` -- the underlying multi-rank
  block-Jacobi driver (prefer :func:`repro.run`).
* :class:`repro.baseline.SnapDiamondDifferenceSolver` -- the structured
  finite-difference SNAP baseline for the FD-vs-FEM trade-off study.
* :mod:`repro.perfmodel` -- the node performance model that regenerates the
  thread-scaling figures (Figures 3 and 4).
* :mod:`repro.analysis` -- generators for every table and figure of the
  paper's evaluation.
* :mod:`repro.verify` -- the verification subsystem: manufactured-solution
  convergence orders, the engine x solver x backend conformance matrix and
  the golden regression store (``unsnap verify`` /
  :func:`repro.verify.run_suite`).
* :mod:`repro.bench` -- the benchmark subsystem: registered benchmark cases
  over a shrinkable workload, ``unsnap-bench-v1`` reports with a regression
  gate, and the measured-vs-model roofline overlay (``unsnap bench`` /
  :func:`repro.bench.run_benchmarks`).
* :class:`repro.Telemetry` -- opt-in phase-level instrumentation threaded
  through :func:`repro.run` (``run(spec, telemetry=True)`` →
  ``result.telemetry``), zero overhead when off.
* :mod:`repro.service` -- transport-as-a-service: the job-queue daemon
  (:class:`repro.service.ServiceDaemon`), the stdlib HTTP gateway
  (``unsnap serve`` / :func:`repro.service.make_server`) and the client
  (:class:`repro.service.ServiceClient`), with ResultStore-backed request
  dedup and telemetry-streamed progress.
"""

from .campaign import (
    ResultStore,
    Study,
    StudyResult,
    WorkItem,
    available_backends,
    get_backend,
    register_backend,
    run_study,
)
from .config import BoundaryCondition, ProblemSpec
from .core.solver import TransportResult, TransportSolver
from .drivers import available_drivers, get_driver, register_driver
from .engines import available_engines, get_engine, register_engine
from .runner import RunResult, run
from .solvers import available_solvers, get_solver, register_solver
from .telemetry import Telemetry
from . import bench
from . import obs
from . import service
from . import verify

__version__ = "1.6.0"

__all__ = [
    "run",
    "RunResult",
    "run_study",
    "Study",
    "StudyResult",
    "ResultStore",
    "WorkItem",
    "register_backend",
    "get_backend",
    "available_backends",
    "ProblemSpec",
    "BoundaryCondition",
    "TransportSolver",
    "TransportResult",
    "register_engine",
    "get_engine",
    "available_engines",
    "register_solver",
    "get_solver",
    "available_solvers",
    "register_driver",
    "get_driver",
    "available_drivers",
    "Telemetry",
    "bench",
    "obs",
    "service",
    "verify",
    "__version__",
]
