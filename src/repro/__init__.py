"""repro -- a Python reproduction of the UnSNAP mini-app.

UnSNAP (Deakin et al., WRAp @ IEEE CLUSTER 2018) extends the SNAP discrete
ordinates transport proxy to unstructured hexahedral meshes discretised with
the discontinuous Galerkin finite element method, and studies sweep
scheduling and local dense-solver performance on fat multi-core nodes.

Public API highlights
---------------------
* :class:`repro.config.ProblemSpec` -- problem definition (grid, twist,
  element order, angles, groups, iterations, solver).
* :class:`repro.core.TransportSolver` -- single-rank DGFEM sweep solver.
* :class:`repro.parallel.BlockJacobiDriver` -- multi-rank parallel block
  Jacobi solve over a KBA-style 2-D decomposition.
* :class:`repro.baseline.SnapDiamondDifferenceSolver` -- the structured
  finite-difference SNAP baseline for the FD-vs-FEM trade-off study.
* :mod:`repro.perfmodel` -- the node performance model that regenerates the
  thread-scaling figures (Figures 3 and 4).
* :mod:`repro.analysis` -- generators for every table and figure of the
  paper's evaluation.
"""

from .config import BoundaryCondition, ProblemSpec
from .core.solver import TransportResult, TransportSolver

__version__ = "1.0.0"

__all__ = [
    "ProblemSpec",
    "BoundaryCondition",
    "TransportSolver",
    "TransportResult",
    "__version__",
]
