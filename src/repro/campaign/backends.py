"""Pluggable study-execution backends.

A backend executes the resolved runs of a :class:`~repro.campaign.study.
Study` and returns their :class:`~repro.runner.RunResult`\\ s in study order.
Backends are registered by name on the generic :class:`repro.registry.
Registry` (the third instantiation, after sweep engines and local solvers),
so third-party execution strategies -- a cluster scheduler, an async queue --
plug in with the same decorator pattern::

    from repro.campaign import register_backend

    @register_backend("my-queue", aliases=("queue",))
    class MyQueueBackend:
        \"\"\"One-line description shown by ``unsnap backends``.\"\"\"

        def execute(self, points, *, jobs=None):
            ...

Built-in backends
-----------------
``serial``
    One run after another in the calling process (alias: ``sequential``).
``thread``
    Runs dispatched to a ``ThreadPoolExecutor`` (alias: ``threads``) --
    useful when the per-run work releases the GIL (LAPACK solves).
``process``
    Runs sharded across a ``ProcessPoolExecutor`` (aliases: ``processes``,
    ``mp``): each worker re-imports :mod:`repro` and calls
    :func:`repro.run` on a pickled spec payload, so results are bit-for-bit
    identical to ``serial`` for the same specs.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, Protocol, Sequence, runtime_checkable

from ..registry import Registry
from ..runner import RunResult
from .study import StudyPoint

__all__ = [
    "ExecutionBackend",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "available_backends",
    "backend_aliases",
    "backend_listing",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
]


@runtime_checkable
class ExecutionBackend(Protocol):
    """Protocol every execution backend implements."""

    def execute(
        self, points: Sequence[StudyPoint], *, jobs: int | None = None
    ) -> Iterable[RunResult]:
        """Run every point and return their results *in the same order*.

        The return value may be lazy (a generator): :func:`repro.run_study`
        consumes it one result at a time and persists each to the result
        store as it arrives, so completed runs survive a mid-study failure.
        A plain list satisfies the contract too.  ``jobs`` caps the worker
        count for concurrent backends (``None`` means the executor's
        default); serial backends ignore it.
        """
        ...  # pragma: no cover


_BACKENDS: Registry[ExecutionBackend] = Registry("backend")


def register_backend(
    name: str,
    *,
    description: str | None = None,
    aliases: tuple[str, ...] = (),
    overwrite: bool = False,
):
    """Class (or instance) decorator registering an execution backend."""

    def decorate(obj):
        backend = obj() if isinstance(obj, type) else obj
        if not callable(getattr(backend, "execute", None)):
            raise TypeError(
                f"backend {name!r} must implement execute(points, *, jobs=None); "
                f"got {type(backend)!r}"
            )
        backend.name = name.strip().lower()
        backend.description = description or next(
            iter((backend.__doc__ or "").strip().splitlines()), ""
        )
        _BACKENDS.add(backend.name, backend, aliases=aliases, overwrite=overwrite)
        return obj

    return decorate


def unregister_backend(name: str) -> None:
    """Remove a backend (and its aliases) from the registry."""
    _BACKENDS.remove(name)


def available_backends() -> list[str]:
    """Names of all registered backends (aliases excluded)."""
    return _BACKENDS.available()


def backend_aliases(name: str) -> list[str]:
    """Aliases registered for the given backend name."""
    return _BACKENDS.aliases_of(name)


def backend_listing() -> list[tuple[str, str, str]]:
    """``(name, aliases, description)`` rows for ``unsnap backends``."""
    return _BACKENDS.listing()


def get_backend(backend: ExecutionBackend | str) -> ExecutionBackend:
    """Resolve a backend instance from a name, alias or instance."""
    if not isinstance(backend, str):
        if callable(getattr(backend, "execute", None)):
            return backend
        raise TypeError(f"not an execution backend: {backend!r}")
    return _BACKENDS.resolve(backend)


def _execute_point(payload: tuple) -> RunResult:
    """Run one pickled ``(spec, run_options)`` payload.

    Module-level so :class:`ProcessBackend` can ship it to workers by
    reference; the import of :func:`repro.run` happens lazily to avoid a
    circular import at package load.
    """
    from ..runner import run

    spec, run_options = payload
    return run(spec, **run_options)


def _clamp_jobs(jobs: int | None, num_points: int) -> int | None:
    """Sanitise a worker cap for the pool executors (which reject <= 0)."""
    if jobs is None:
        return None
    return max(1, min(jobs, num_points))


@register_backend("serial", aliases=("sequential",))
class SerialBackend:
    """One run after another in the calling process."""

    def execute(
        self, points: Sequence[StudyPoint], *, jobs: int | None = None
    ) -> Iterable[RunResult]:
        return (_execute_point((p.spec, p.run_options)) for p in points)


@register_backend("thread", aliases=("threads",))
class ThreadBackend:
    """Runs dispatched to a thread pool (wins when the solver releases the GIL)."""

    def execute(
        self, points: Sequence[StudyPoint], *, jobs: int | None = None
    ) -> Iterable[RunResult]:
        if not points:
            return
        with ThreadPoolExecutor(max_workers=_clamp_jobs(jobs, len(points))) as pool:
            yield from pool.map(_execute_point, [(p.spec, p.run_options) for p in points])


@register_backend("process", aliases=("processes", "mp"))
class ProcessBackend:
    """Runs sharded across worker processes (bit-for-bit equal to serial)."""

    def execute(
        self, points: Sequence[StudyPoint], *, jobs: int | None = None
    ) -> Iterable[RunResult]:
        if not points:
            return
        with ProcessPoolExecutor(max_workers=_clamp_jobs(jobs, len(points))) as pool:
            yield from pool.map(_execute_point, [(p.spec, p.run_options) for p in points])
