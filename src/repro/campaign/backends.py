"""Pluggable study-execution backends.

A backend executes the resolved runs of a :class:`~repro.campaign.study.
Study` and returns their :class:`~repro.runner.RunResult`\\ s.  Backends are
registered by name on the generic :class:`repro.registry.Registry` (the
third instantiation, after sweep engines and local solvers), so third-party
execution strategies -- a cluster scheduler, an async queue -- plug in with
the same decorator pattern::

    from repro.campaign import register_backend

    @register_backend("my-queue", aliases=("queue",))
    class MyQueueBackend:
        \"\"\"One-line description shown by ``unsnap backends``.\"\"\"

        def execute(self, items, *, jobs=None):
            ...

Backend contract (v2)
---------------------
Work arrives as :class:`~repro.campaign.workitem.WorkItem`\\ s (the shared
frozen payload carrying spec, run options, study index and cost estimate;
:func:`~repro.campaign.workitem.as_work_items` also adapts
:class:`~repro.campaign.study.StudyPoint`\\ s).  A backend implements one or
both of:

``execute(items, *, jobs=None) -> Iterable[RunResult]``
    The v1 contract: one result per item, *in input order* (may be lazy).
``execute_iter(items, *, jobs=None) -> Iterator[tuple]``
    The v2 streaming contract: yields ``(index, result)`` -- or
    ``(index, result, meta)`` with a JSON-safe execution-metadata mapping
    (``worker_id``, ``attempts``, ``queue_wait_seconds``...) -- **as runs
    complete, in any order**.  :func:`repro.run_study` reorders and feeds
    its ``on_result`` progress callback from this stream.

A backend providing only ``execute`` is wrapped automatically
(:func:`iter_backend_results`), so the v1 contract keeps working unchanged.

Built-in backends
-----------------
``serial``
    One run after another in the calling process (alias: ``sequential``).
``thread``
    Runs dispatched to a ``ThreadPoolExecutor`` (alias: ``threads``) --
    useful when the per-run work releases the GIL (LAPACK solves).
``process``
    Runs sharded across a ``ProcessPoolExecutor`` (aliases: ``processes``,
    ``mp``): each worker re-imports :mod:`repro` and calls
    :func:`repro.run` on a pickled payload, so results are bit-for-bit
    identical to ``serial`` for the same specs.
``distributed``
    Runs fanned out to worker *processes on any number of hosts* through a
    file-based spool protocol (:mod:`repro.campaign.distributed`); results
    merge through a shared :class:`~repro.campaign.store.ResultStore` and
    stay bit-for-bit identical to ``serial``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from typing import Iterable, Iterator, Protocol, Sequence, runtime_checkable

from ..registry import Registry
from ..runner import RunResult
from .workitem import WorkItem, as_work_items

__all__ = [
    "ExecutionBackend",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "available_backends",
    "backend_aliases",
    "backend_listing",
    "iter_backend_results",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
]


@runtime_checkable
class ExecutionBackend(Protocol):
    """Protocol every execution backend implements."""

    def execute(
        self, items: Sequence, *, jobs: int | None = None
    ) -> Iterable[RunResult]:
        """Run every item and return their results *in the same order*.

        ``items`` are :class:`~repro.campaign.workitem.WorkItem`\\ s (or any
        shape :func:`~repro.campaign.workitem.as_work_items` adapts).  The
        return value may be lazy (a generator): :func:`repro.run_study`
        consumes it one result at a time and persists each to the result
        store as it arrives, so completed runs survive a mid-study failure.
        A plain list satisfies the contract too.  ``jobs`` caps the worker
        count for concurrent backends (``None`` means the executor's
        default); serial backends ignore it.
        """
        ...  # pragma: no cover


_BACKENDS: Registry[ExecutionBackend] = Registry("backend")

#: Sentinel distinguishing "stream exhausted" from any real result.
_NO_RESULT = object()


def register_backend(
    name: str,
    *,
    description: str | None = None,
    aliases: tuple[str, ...] = (),
    overwrite: bool = False,
):
    """Class (or instance) decorator registering an execution backend."""

    def decorate(obj):
        backend = obj() if isinstance(obj, type) else obj
        if not callable(getattr(backend, "execute", None)):
            raise TypeError(
                f"backend {name!r} must implement execute(items, *, jobs=None); "
                f"got {type(backend)!r}"
            )
        backend.name = name.strip().lower()
        backend.description = description or next(
            iter((backend.__doc__ or "").strip().splitlines()), ""
        )
        _BACKENDS.add(backend.name, backend, aliases=aliases, overwrite=overwrite)
        return obj

    return decorate


def unregister_backend(name: str) -> None:
    """Remove a backend (and its aliases) from the registry."""
    _BACKENDS.remove(name)


def available_backends() -> list[str]:
    """Names of all registered backends (aliases excluded)."""
    return _BACKENDS.available()


def backend_aliases(name: str) -> list[str]:
    """Aliases registered for the given backend name."""
    return _BACKENDS.aliases_of(name)


def backend_listing() -> list[tuple[str, str, str]]:
    """``(name, aliases, description)`` rows for ``unsnap backends``."""
    return _BACKENDS.listing()


def get_backend(backend: ExecutionBackend | str) -> ExecutionBackend:
    """Resolve a backend instance from a name, alias or instance."""
    if not isinstance(backend, str):
        if callable(getattr(backend, "execute", None)):
            return backend
        raise TypeError(f"not an execution backend: {backend!r}")
    return _BACKENDS.resolve(backend)


def iter_backend_results(
    backend: ExecutionBackend,
    items: Sequence[WorkItem],
    *,
    jobs: int | None = None,
) -> Iterator[tuple[int, RunResult, dict]]:
    """Stream ``(index, result, meta)`` triples from any backend.

    The v2 entry point :func:`repro.run_study` consumes: backends providing
    ``execute_iter`` stream natively (out of completion order, with optional
    per-run metadata); plain ``execute`` backends are wrapped automatically
    -- their in-order results are zipped back onto the items, with the
    result count enforced (a short or surplus stream raises
    ``RuntimeError`` naming the backend).
    """
    items = as_work_items(items)
    execute_iter = getattr(backend, "execute_iter", None)
    if callable(execute_iter):
        for event in execute_iter(items, jobs=jobs):
            index, result, *rest = event
            meta = dict(rest[0]) if rest and rest[0] is not None else {}
            yield int(index), result, meta
        return
    stream = iter(backend.execute(items, jobs=jobs))
    executed = 0
    for item, result in zip(items, stream):
        executed += 1
        yield item.index, result, {}
    surplus = next(stream, _NO_RESULT)
    if executed != len(items) or surplus is not _NO_RESULT:
        returned = f"> {executed}" if surplus is not _NO_RESULT else str(executed)
        raise RuntimeError(
            f"backend {getattr(backend, 'name', backend)!r} returned "
            f"{returned} results for {len(items)} runs"
        )


def _execute_point(payload) -> RunResult:
    """Run one pickled :class:`WorkItem` (or :class:`StudyPoint`) payload.

    Module-level so :class:`ProcessBackend` can ship it to workers by
    reference; the import of :func:`repro.run` happens lazily to avoid a
    circular import at package load.
    """
    from ..runner import run

    item = WorkItem.coerce(payload)
    return run(item.spec, **item.run_options)


def _clamp_jobs(jobs: int | None, num_items: int) -> int | None:
    """Sanitise a worker cap for the pool executors (which reject <= 0)."""
    if jobs is None:
        return None
    return max(1, min(jobs, num_items))


@register_backend("serial", aliases=("sequential",))
class SerialBackend:
    """One run after another in the calling process."""

    def execute(
        self, items: Sequence, *, jobs: int | None = None
    ) -> Iterable[RunResult]:
        return (_execute_point(item) for item in as_work_items(items))


class _PoolBackend:
    """Shared body of the thread/process pool backends.

    ``execute`` preserves input order (``Executor.map``); ``execute_iter``
    streams ``(index, result)`` in completion order (``as_completed``) --
    both over the same per-item :func:`_execute_point` payloads, so the two
    paths are bit-for-bit identical.
    """

    _executor_cls: type

    def execute(
        self, items: Sequence, *, jobs: int | None = None
    ) -> Iterable[RunResult]:
        items = as_work_items(items)
        if not items:
            return
        with self._executor_cls(max_workers=_clamp_jobs(jobs, len(items))) as pool:
            yield from pool.map(_execute_point, items)

    def execute_iter(
        self, items: Sequence, *, jobs: int | None = None
    ) -> Iterator[tuple[int, RunResult]]:
        items = as_work_items(items)
        if not items:
            return
        with self._executor_cls(max_workers=_clamp_jobs(jobs, len(items))) as pool:
            futures = {pool.submit(_execute_point, item): item.index for item in items}
            for future in as_completed(futures):
                yield futures[future], future.result()


@register_backend("thread", aliases=("threads",))
class ThreadBackend(_PoolBackend):
    """Runs dispatched to a thread pool (wins when the solver releases the GIL)."""

    _executor_cls = ThreadPoolExecutor


@register_backend("process", aliases=("processes", "mp"))
class ProcessBackend(_PoolBackend):
    """Runs sharded across worker processes (bit-for-bit equal to serial)."""

    _executor_cls = ProcessPoolExecutor
