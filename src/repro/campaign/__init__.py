"""Declarative multi-run campaigns: studies, backends and the result store.

The paper's results are ensembles -- order x solver grids (Table II),
scheme x thread-count grids (Figures 3/4) -- and this package is the
first-class batch surface over :func:`repro.run` that executes them:

* :class:`~repro.campaign.study.Study` -- a base
  :class:`~repro.config.ProblemSpec` plus axis grids applied through
  ``ProblemSpec.with_`` (``Study.grid`` / ``Study.zip`` / ``Study.cases``).
* :mod:`~repro.campaign.backends` -- pluggable execution backends
  (``serial`` / ``thread`` / ``process`` / ``distributed``) on the generic
  :class:`repro.registry.Registry`; ``process`` shards runs across a
  ``ProcessPoolExecutor`` and ``distributed`` fans them out to spool
  workers on any number of hosts (:mod:`~repro.campaign.distributed`),
  both with bit-for-bit identical results to ``serial``.
* :class:`~repro.campaign.workitem.WorkItem` -- the shared frozen unit of
  campaign work (spec + run options + index + cost + ``run_key``) passed
  between backends, the store, the spool and the service.
* :class:`~repro.campaign.store.ResultStore` -- a content-hashed
  one-JSON-per-run store making studies resumable: re-running a completed
  study executes zero new runs.
* :func:`~repro.campaign.runner.run_study` -- the facade tying the three
  together, returning a :class:`~repro.campaign.result.StudyResult` of tidy
  per-run records with pivot helpers.
"""

from .backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    backend_aliases,
    backend_listing,
    get_backend,
    iter_backend_results,
    register_backend,
    unregister_backend,
)
from .distributed import DistributedBackend, SpoolDir, SpoolWorker, SshLauncher
from .result import PivotTable, StudyResult, StudyRun
from .runner import run_study
from .store import ResultStore, run_key
from .study import RUN_OPTION_KEYS, Study, StudyPoint
from .workitem import WorkItem, as_work_items, estimate_cost

__all__ = [
    "Study",
    "StudyPoint",
    "StudyResult",
    "StudyRun",
    "PivotTable",
    "ResultStore",
    "run_key",
    "run_study",
    "WorkItem",
    "as_work_items",
    "estimate_cost",
    "ExecutionBackend",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "available_backends",
    "backend_aliases",
    "backend_listing",
    "iter_backend_results",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "DistributedBackend",
    "SpoolDir",
    "SpoolWorker",
    "SshLauncher",
    "RUN_OPTION_KEYS",
]
