"""Declarative multi-run studies.

A :class:`Study` is a base :class:`~repro.config.ProblemSpec` plus a set of
*points*: per-run override mappings applied with ``ProblemSpec.with_``.  The
paper's evaluation is exactly this shape -- the spatial-order x scheme x
thread-count grids behind Figures 3/4 and the order x solver grid behind
Table II -- and a study captures the whole ensemble as one value that the
execution backends (:mod:`repro.campaign.backends`) can run serially, on a
thread pool, or sharded across processes.

Axes name either :class:`~repro.config.ProblemSpec` fields (``engine``,
``nx``, ``order``, ``solver``, ...) or one of the *run options* forwarded to
:func:`repro.run` per run (currently ``num_threads``).  The three
constructors cover the common shapes::

    Study.grid(base, engine=["vectorized", "prefactorized"], nx=[4, 8, 16])
    Study.zip(base, npex=[1, 2, 4], npey=[1, 2, 2])
    Study.cases(base, [{"order": 1}, {"order": 3, "solver": "lapack"}])
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields

from ..config import ProblemSpec

__all__ = ["Study", "StudyPoint", "RUN_OPTION_KEYS"]

#: Axis keys routed to :func:`repro.run` keyword arguments instead of
#: ``ProblemSpec.with_`` (they affect execution, not the problem).
RUN_OPTION_KEYS = ("num_threads",)


def _spec_field_names() -> tuple[str, ...]:
    return tuple(f.name for f in fields(ProblemSpec))


def _validate_axis_keys(keys) -> None:
    valid = set(_spec_field_names()) | set(RUN_OPTION_KEYS)
    unknown = sorted(set(keys) - valid)
    if unknown:
        raise KeyError(
            f"unknown study axis key(s) {unknown}; valid keys: "
            f"{sorted(valid)}"
        )


def _as_values(axis: str, values) -> tuple:
    """Normalise one axis' values to a non-empty tuple (scalar -> 1-tuple)."""
    if isinstance(values, (str, bytes)) or not hasattr(values, "__iter__"):
        values = (values,)
    values = tuple(values)
    if not values:
        raise ValueError(f"study axis {axis!r} has no values")
    return values


@dataclass(frozen=True)
class StudyPoint:
    """One run of a study: its axis coordinates resolved onto a spec.

    Attributes
    ----------
    index:
        Position of the run in the study (stable across backends and
        resumption, so results always report in declaration order).
    axes:
        The override mapping that produced this point (axis name -> value).
    spec:
        The fully-resolved problem specification.
    run_options:
        Extra keyword arguments for :func:`repro.run` (``num_threads``...).
    """

    index: int
    axes: dict
    spec: ProblemSpec
    run_options: dict


@dataclass(frozen=True)
class Study:
    """A declarative ensemble of runs over a base problem specification.

    Build one with :meth:`grid`, :meth:`zip` or :meth:`cases` rather than
    directly; execute it with :func:`repro.run_study`.
    """

    base: ProblemSpec
    points: tuple[dict, ...]
    name: str = "study"

    def __post_init__(self) -> None:
        for point in self.points:
            _validate_axis_keys(point)

    # ------------------------------------------------------------ builders
    @classmethod
    def grid(cls, base: ProblemSpec, *, name: str = "study", **axes) -> "Study":
        """Cartesian product of the given axes (last axis varies fastest)."""
        _validate_axis_keys(axes)
        names = list(axes)
        value_lists = [_as_values(axis, axes[axis]) for axis in names]
        points = tuple(
            dict(zip(names, combo)) for combo in itertools.product(*value_lists)
        )
        return cls(base=base, points=points, name=name)

    @classmethod
    def zip(cls, base: ProblemSpec, *, name: str = "study", **axes) -> "Study":
        """Parallel axes of equal length (one run per position)."""
        _validate_axis_keys(axes)
        names = list(axes)
        value_lists = [_as_values(axis, axes[axis]) for axis in names]
        lengths = {len(v) for v in value_lists}
        if len(lengths) > 1:
            detail = ", ".join(f"{n}={len(v)}" for n, v in zip(names, value_lists))
            raise ValueError(f"Study.zip axes must have equal lengths, got {detail}")
        points = tuple(dict(zip(names, combo)) for combo in zip(*value_lists))
        return cls(base=base, points=points, name=name)

    @classmethod
    def cases(cls, base: ProblemSpec, cases, *, name: str = "study") -> "Study":
        """Explicit list of per-run override mappings."""
        return cls(base=base, points=tuple(dict(c) for c in cases), name=name)

    @classmethod
    def from_axes(cls, base: ProblemSpec, axes: dict, *, name: str = "study") -> "Study":
        """Grid study from an axes mapping; empty axes mean one base run.

        The shared constructor behind deck-parsed (:func:`repro.input_deck.
        loads_study`) and CLI-assembled (``unsnap study``) studies.
        """
        if not axes:
            return cls.cases(base, [{}], name=name)
        return cls.grid(base, name=name, **axes)

    # ------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.points)

    @property
    def axis_names(self) -> list[str]:
        """Axis names in first-appearance order across all points."""
        names: dict[str, None] = {}
        for point in self.points:
            for key in point:
                names.setdefault(key)
        return list(names)

    def axis_values(self, axis: str) -> list:
        """Distinct values of one axis in first-appearance order."""
        values: dict = {}
        for point in self.points:
            if axis in point:
                values.setdefault(point[axis])
        return list(values)

    def runs(self) -> list[StudyPoint]:
        """Resolve every point onto a concrete spec + run options."""
        resolved = []
        for index, point in enumerate(self.points):
            spec_fields = {k: v for k, v in point.items() if k not in RUN_OPTION_KEYS}
            run_options = {k: v for k, v in point.items() if k in RUN_OPTION_KEYS}
            resolved.append(
                StudyPoint(
                    index=index,
                    axes=dict(point),
                    spec=self.base.with_(**spec_fields),
                    run_options=run_options,
                )
            )
        return resolved
