"""Study outcomes: tidy per-run records plus pivot helpers.

A :class:`StudyResult` keeps one :class:`StudyRun` per study point, in
declaration order, whether the run was freshly executed or loaded from a
:class:`~repro.campaign.store.ResultStore`.  Analysis code consumes it two
ways: :meth:`StudyResult.records` yields tidy dictionaries (axis values
merged with the run summary -- one row per run, ready for tabulation), and
:meth:`StudyResult.pivot` reshapes one quantity onto a (row axis, column
axis) grid for the paper-style tables and scaling series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ProblemSpec
from ..runner import RunResult
from .study import Study

__all__ = ["StudyRun", "StudyResult", "PivotTable"]


@dataclass(frozen=True)
class StudyRun:
    """One executed (or cache-loaded) run of a study.

    :attr:`meta` is the backend's per-run execution metadata (v2 streaming
    contract): the ``distributed`` backend reports ``worker_id``,
    ``attempts`` and ``queue_wait_seconds`` per point, so a re-executed
    straggler (dead worker, expired lease) is visible in the study records.
    Empty for backends that report none.
    """

    index: int
    axes: dict
    spec: ProblemSpec
    run_options: dict
    result: RunResult
    from_cache: bool = False
    meta: dict = field(default_factory=dict)

    def record(self) -> dict:
        """Axes + execution metadata merged with the result summary.

        Axis values win over summary keys of the same name; metadata keys
        (``worker_id``, ``attempts``...) are merged first so an axis named
        like one still wins.
        """
        row = self.result.summary()
        row.update(self.meta)
        row.update(self.axes)
        row["from_cache"] = self.from_cache
        return row


@dataclass(frozen=True)
class PivotTable:
    """One quantity reshaped onto a (row axis, column axis) grid."""

    row_axis: str
    col_axis: str
    value: str
    rows: tuple
    cols: tuple
    cells: dict

    def at(self, row, col):
        return self.cells[(row, col)]

    def as_rows(self) -> list[tuple]:
        """``(row_label, v_col0, v_col1, ...)`` tuples for text tables."""
        return [
            (row, *[self.cells.get((row, col)) for col in self.cols]) for row in self.rows
        ]


@dataclass(frozen=True)
class StudyResult:
    """Outcome of :func:`repro.run_study`: all runs, in declaration order."""

    study: Study
    runs: tuple[StudyRun, ...]

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self):
        return iter(self.runs)

    def __getitem__(self, index: int) -> StudyRun:
        return self.runs[index]

    # ---------------------------------------------------------- accounting
    @property
    def new_run_count(self) -> int:
        """Runs actually executed by the backend this invocation."""
        return sum(1 for r in self.runs if not r.from_cache)

    @property
    def cached_run_count(self) -> int:
        """Runs satisfied from the result store."""
        return sum(1 for r in self.runs if r.from_cache)

    # ------------------------------------------------------------- tidy API
    def records(self) -> list[dict]:
        """One tidy dictionary per run: axes + summary + ``from_cache``."""
        return [run.record() for run in self.runs]

    def values(self, key: str) -> list:
        """One record value per run, in study order."""
        return [record[key] for record in self.records()]

    def pivot(self, row_axis: str, col_axis: str, value: str) -> PivotTable:
        """Reshape one record quantity onto a (row axis, column axis) grid.

        Row/column labels keep the study's declaration order; a duplicated
        (row, col) coordinate keeps the last run's value.
        """
        rows: dict = {}
        cols: dict = {}
        cells: dict = {}
        for record in self.records():
            r, c = record[row_axis], record[col_axis]
            rows.setdefault(r)
            cols.setdefault(c)
            cells[(r, c)] = record[value]
        return PivotTable(
            row_axis=row_axis,
            col_axis=col_axis,
            value=value,
            rows=tuple(rows),
            cols=tuple(cols),
            cells=cells,
        )

    def series(self, x_axis: str, value: str, series_axis: str | None = None) -> dict:
        """``{label: [(x, value), ...]}`` grouped by an optional series axis.

        With ``series_axis=None`` everything lands under the study name.
        Points keep study order; the caller sorts if the axis demands it.
        """
        grouped: dict = {}
        for record in self.records():
            label = (
                f"{series_axis}={record[series_axis]}"
                if series_axis is not None
                else self.study.name
            )
            grouped.setdefault(label, []).append((record[x_axis], record[value]))
        return grouped
