"""Content-hashed, on-disk result store making studies resumable.

Every completed run is written as one JSON file named by the SHA-256 of its
canonical ``(spec, run_options)`` payload, so the key depends only on *what*
was asked for -- never on execution order, backend or wall-clock.
Re-invoking a study against a warm store loads the finished runs
(:meth:`ResultStore.get`) and executes only the missing ones; a store can
also be read back standalone (:meth:`ResultStore.results`) by analysis code
long after the campaign that filled it.

Stored payloads embed the flux arrays (``include_flux=True``), so a reloaded
:class:`~repro.runner.RunResult` compares bit-for-bit with the freshly
computed one -- JSON serialises doubles exactly.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from pathlib import Path

from ..config import ProblemSpec
from ..runner import RunResult
from .workitem import WorkItem, run_key

__all__ = ["ResultStore", "run_key", "GOLDEN_MARKER"]

#: Format marker written into every record for forward compatibility.
_FORMAT = "unsnap-run-v1"

#: Marker file identifying a store directory as a blessed golden store
#: (owned by :mod:`repro.verify.golden`).  Garbage collection refuses to
#: touch directories carrying it -- goldens are regression baselines, not
#: cache.
GOLDEN_MARKER = ".unsnap-golden"


class ResultStore:
    """One-JSON-per-run result store rooted at a directory.

    Parameters
    ----------
    root:
        Directory holding the records (created on first write).  Records are
        self-describing (spec, run options, full result payload), so a store
        directory is a portable artifact -- CI uploads one per PR.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        #: In-process cache statistics: every :meth:`get` counts one hit or
        #: one miss (:meth:`contains` only probes and never counts).  The
        #: service daemon's ``/stats`` cache-hit ratio reads these.
        self.hits = 0
        self.misses = 0
        self._stats_lock = threading.Lock()

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    @staticmethod
    def _atomic_write(path: Path, payload: str) -> None:
        """Publish a record atomically: unique temp file + fsync + rename.

        The per-writer temp name keeps concurrent writers of the *same*
        record from interleaving bytes; last ``os.replace`` wins with a
        complete record either way.  The fsync before the rename matters on
        the multi-host spool path: a reader on another machine (or after a
        crash) must never observe the record name pointing at unflushed
        bytes -- a record either exists complete or not at all, which is
        what lets :meth:`_load_record` treat truncated JSON as damage
        rather than an in-progress write.
        """
        tmp = path.with_name(f"{path.stem}.{os.getpid()}-{uuid.uuid4().hex[:8]}.tmp")
        try:
            with open(tmp, "w") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def _load_record(self, path: Path) -> dict:
        """Read one record file, rejecting corrupt, foreign or future-format JSON."""
        try:
            record = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            # A record is published atomically (temp file + rename), so a
            # truncated or garbled file was damaged *after* the fact -- name
            # it so the operator can delete or restore it.
            raise ValueError(
                f"{path} is not valid JSON ({exc}); the record is corrupt -- "
                f"delete it to let the run be recomputed"
            ) from None
        found = record.get("format") if isinstance(record, dict) else None
        if found != _FORMAT:
            raise ValueError(
                f"{path} is not a result-store record "
                f"(format={found!r}, expected {_FORMAT!r})"
            )
        return record

    # ------------------------------------------------------------- access
    def _count(self, hit: bool) -> None:
        with self._stats_lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1

    @property
    def hit_ratio(self) -> float:
        """Fraction of :meth:`get` calls that found a record (0.0 when none)."""
        with self._stats_lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    @staticmethod
    def _spec_options(spec_or_item, run_options: dict | None) -> tuple[ProblemSpec, dict]:
        """Unpack a ``(spec, options)`` pair or a :class:`WorkItem`."""
        if isinstance(spec_or_item, WorkItem):
            if run_options is not None:
                raise TypeError("pass run_options on the WorkItem, not alongside it")
            return spec_or_item.spec, dict(spec_or_item.run_options)
        return spec_or_item, dict(run_options or {})

    def contains(self, key_or_spec, run_options: dict | None = None) -> bool:
        """Whether a record exists for a key, ``(spec, options)`` or item.

        A pure probe: unlike :meth:`get` it neither loads the record nor
        updates the :attr:`hits`/:attr:`misses` statistics, so callers can
        test for the dedup fast path without skewing the hit ratio.
        """
        if isinstance(key_or_spec, (ProblemSpec, WorkItem)):
            key_or_spec = run_key(*self._spec_options(key_or_spec, run_options))
        return self.path_for(key_or_spec).exists()

    def get(
        self, spec: ProblemSpec | WorkItem, run_options: dict | None = None
    ) -> RunResult | None:
        """Load the stored result of a run, or ``None`` if not yet computed.

        Accepts either a ``(spec, run_options)`` pair or one
        :class:`~repro.campaign.workitem.WorkItem` carrying both.
        """
        path = self.path_for(run_key(*self._spec_options(spec, run_options)))
        if not path.exists():
            self._count(hit=False)
            return None
        result = RunResult.from_dict(self._load_record(path)["result"])
        self._count(hit=True)
        return result

    def put(
        self,
        spec: ProblemSpec | WorkItem,
        result: RunResult,
        run_options: dict | None = None,
        *,
        include_flux: bool = True,
    ) -> Path:
        """Persist one run (atomic publish, see :meth:`_atomic_write`).

        The run is identified by a ``(spec, run_options)`` pair or one
        :class:`~repro.campaign.workitem.WorkItem`.  ``include_flux=False``
        writes the record without the embedded flux arrays (the per-job
        memory/disk opt-out of the service daemon): the record still loads
        and still satisfies the dedup fast path, but only with summary
        statistics -- the same trade as ``gc(drop_flux=True)``.
        """
        spec, run_options = self._spec_options(spec, run_options)
        self.root.mkdir(parents=True, exist_ok=True)
        key = run_key(spec, run_options)
        record = {
            "format": _FORMAT,
            "key": key,
            "spec": spec.to_dict(),
            "run_options": dict(run_options or {}),
            "result": result.to_dict(include_flux=include_flux),
        }
        path = self.path_for(key)
        self._atomic_write(path, json.dumps(record) + "\n")
        return path

    def __contains__(self, key_or_spec) -> bool:
        return self.contains(key_or_spec)

    def __len__(self) -> int:
        return len(self.keys())

    def keys(self) -> list[str]:
        """Sorted content keys of every stored run."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    def results(self) -> list[tuple[ProblemSpec, dict, RunResult]]:
        """Load every stored run as ``(spec, run_options, result)``."""
        loaded = []
        for key in self.keys():
            record = self._load_record(self.path_for(key))
            loaded.append(
                (
                    ProblemSpec.from_dict(record["spec"]),
                    dict(record.get("run_options", {})),
                    RunResult.from_dict(record["result"]),
                )
            )
        return loaded

    # --------------------------------------------------------------- merging
    def merge(self, other: "ResultStore | str | Path", *, overwrite: bool = False) -> dict:
        """Fold another store's records into this one (the multi-host join).

        The merge point of sharded campaigns: hosts (or spool workers) fill
        *independent* store directories keyed by the same content hash, and
        one ``merge`` per shard folds them into a single store a resumed
        million-point study satisfies with **zero new runs**.  Record files
        are copied byte-for-byte (after format validation) with the same
        atomic temp-file + rename publish as :meth:`put`, so a reader racing
        the merge never sees a partial record.

        Parameters
        ----------
        other:
            The source store (or its directory).  It is never modified.
        overwrite:
            Replace records this store already has.  The default ``False``
            keeps the local record: both sides hold the *same* key only for
            the same canonical ``(spec, run_options)``, and results are
            deterministic, so which copy wins is immaterial -- skipping is
            just cheaper.

        Returns statistics: ``merged``/``skipped`` record counts and the
        resulting ``records`` total.

        Raises
        ------
        ValueError
            If this store carries the :data:`GOLDEN_MARKER` (goldens are
            re-blessed, never merged into), or a source record is corrupt
            or foreign-format (nothing is copied blindly across hosts).
        """
        if (self.root / GOLDEN_MARKER).exists():
            raise ValueError(
                f"{self.root} is a golden regression store (it carries "
                f"{GOLDEN_MARKER!r}); refusing to merge into it -- re-bless "
                f"goldens with 'unsnap verify --suite golden --update-golden'"
            )
        if not isinstance(other, ResultStore):
            other = ResultStore(other)
        if other.root.resolve() == self.root.resolve():
            raise ValueError(f"cannot merge {self.root} into itself")
        merged = 0
        skipped = 0
        for key in other.keys():
            if not overwrite and self.contains(key):
                skipped += 1
                continue
            source = other.path_for(key)
            text = source.read_text()
            # Validate the exact bytes being published (never copy a corrupt
            # or foreign record across hosts blindly).
            try:
                record = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{source} is not valid JSON ({exc}); the record is corrupt -- "
                    f"delete it to let the run be recomputed"
                ) from None
            found = record.get("format") if isinstance(record, dict) else None
            if found != _FORMAT:
                raise ValueError(
                    f"{source} is not a result-store record "
                    f"(format={found!r}, expected {_FORMAT!r})"
                )
            self.root.mkdir(parents=True, exist_ok=True)
            self._atomic_write(self.path_for(key), text)
            merged += 1
        return {"merged": merged, "skipped": skipped, "records": len(self)}

    # ----------------------------------------------------- garbage collection
    def gc(
        self,
        *,
        keep_latest: int | None = None,
        max_age_days: float | None = None,
        max_bytes: int | None = None,
        drop_flux: bool = False,
        dry_run: bool = False,
    ) -> dict:
        """Compact the store: drop old records and/or their flux payloads.

        The three retention policies compose (a record survives only if it
        passes all of them): ``max_age_days`` drops stale records first,
        ``keep_latest`` caps the count, then ``max_bytes`` drops the oldest
        of what remains until the store fits the byte budget.

        Parameters
        ----------
        keep_latest:
            Keep only the ``N`` most recently written records (file mtime,
            newest first; key order breaks ties) and delete the rest.
            ``None`` keeps everything.
        max_age_days:
            Drop records whose file mtime is older than this many days.
            ``None`` applies no age limit.
        max_bytes:
            Drop the oldest surviving records (same mtime order) until the
            remaining files total at most this many bytes.  ``None`` applies
            no size budget; ``0`` empties the store.
        drop_flux:
            Rewrite the surviving records without the embedded flux arrays
            -- they dominate the record size.  Compacted records still load
            (``RunResult.from_dict`` supports flux-less payloads: summary
            statistics, histories and balance survive), but no longer
            satisfy a resumed study bit-for-bit, so compact archives, not
            stores a campaign is still filling.
        dry_run:
            Only report what would happen; touch nothing.

        Returns statistics: ``removed``/``compacted`` record counts and the
        store's byte size before/after.

        Raises
        ------
        ValueError
            If the directory carries the :data:`GOLDEN_MARKER` file -- the
            golden regression store is never garbage-collected (re-bless it
            through ``unsnap verify --update-golden`` instead).
        """
        if (self.root / GOLDEN_MARKER).exists():
            raise ValueError(
                f"{self.root} is a golden regression store (it carries "
                f"{GOLDEN_MARKER!r}); refusing to garbage-collect it -- "
                f"manage goldens with 'unsnap verify --suite golden "
                f"--update-golden'"
            )
        if keep_latest is not None and keep_latest < 0:
            raise ValueError("keep_latest must be >= 0")
        if max_age_days is not None and max_age_days < 0:
            raise ValueError("max_age_days must be >= 0")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        paths = [self.path_for(key) for key in self.keys()]
        bytes_before = sum(p.stat().st_size for p in paths)

        # Newest first; key order breaks mtime ties so coarse filesystem
        # timestamps cannot make the policy nondeterministic.
        by_age = sorted(paths, key=lambda p: (p.stat().st_mtime, p.stem), reverse=True)
        doomed_set: set[Path] = set()
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86400.0
            doomed_set.update(p for p in by_age if p.stat().st_mtime < cutoff)
            by_age = [p for p in by_age if p not in doomed_set]
        if keep_latest is not None and len(by_age) > keep_latest:
            doomed_set.update(by_age[keep_latest:])
            by_age = by_age[:keep_latest]
        if max_bytes is not None:
            # Keep the newest prefix that fits the budget; the first record
            # that overflows it and everything older go.
            total = 0
            for index, path in enumerate(by_age):
                total += path.stat().st_size
                if total > max_bytes:
                    doomed_set.update(by_age[index:])
                    break
        doomed = sorted(doomed_set)
        survivors = [p for p in paths if p not in doomed_set]

        compacted = 0
        bytes_after = 0
        for path in survivors:
            if not drop_flux:
                bytes_after += path.stat().st_size
                continue
            record = self._load_record(path)
            result = record.get("result", {})
            if "scalar_flux" not in result and "cell_average_flux" not in result:
                bytes_after += path.stat().st_size
                continue
            result.pop("scalar_flux", None)
            result.pop("cell_average_flux", None)
            payload = json.dumps(record) + "\n"
            compacted += 1
            bytes_after += len(payload.encode())
            if not dry_run:
                self._atomic_write(path, payload)
        if not dry_run:
            for path in doomed:
                path.unlink(missing_ok=True)
        return {
            "records": len(paths),
            "removed": len(doomed),
            "compacted": compacted,
            "bytes_before": bytes_before,
            "bytes_after": bytes_after,
            "dry_run": dry_run,
        }
