"""The study-execution facade: ``repro.run_study(study)``.

Splits a study into cached and pending runs against an optional
:class:`~repro.campaign.store.ResultStore`, streams the pending runs
through the chosen execution backend (each fresh result is persisted as it
completes, so an interrupted campaign resumes from the finished prefix),
and returns a :class:`~repro.campaign.result.StudyResult` with every run
in declaration order::

    import repro
    from repro.campaign import ResultStore

    study = repro.Study.grid(
        repro.ProblemSpec(nx=4, ny=4, nz=4),
        engine=["vectorized", "prefactorized"],
        order=[1, 2],
    )
    result = repro.run_study(study, backend="process", store=ResultStore("runs/"))
    for record in result.records():
        print(record["engine"], record["order"], record["wall_seconds"])

Re-invoking the same study against the same store executes zero new runs
(``result.new_run_count == 0``) and merges the stored results back in.
"""

from __future__ import annotations

from pathlib import Path

from .backends import ExecutionBackend, get_backend
from .result import StudyResult, StudyRun
from .store import ResultStore
from .study import Study

__all__ = ["run_study"]

#: Sentinel distinguishing "stream exhausted" from any real result.
_NO_RESULT = object()


def run_study(
    study: Study,
    *,
    backend: ExecutionBackend | str = "serial",
    store: ResultStore | str | Path | None = None,
    jobs: int | None = None,
) -> StudyResult:
    """Execute every run of a study and return a :class:`StudyResult`.

    Parameters
    ----------
    study:
        The declarative study to execute.
    backend:
        Execution backend name, alias or instance (``"serial"``,
        ``"thread"``, ``"process"``, or any
        :func:`repro.campaign.register_backend`-ed name).
    store:
        Optional :class:`ResultStore` (or a directory path, wrapped into
        one).  Completed runs found in the store are *not* re-executed;
        fresh runs are persisted into it, making the study resumable.
    jobs:
        Worker cap for concurrent backends (``None``: executor default).
    """
    backend_obj = get_backend(backend)
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)

    points = study.runs()
    cached: dict[int, object] = {}
    pending = []
    for point in points:
        hit = store.get(point.spec, point.run_options) if store is not None else None
        if hit is not None:
            cached[point.index] = hit
        else:
            pending.append(point)

    # Consume the backend's (possibly lazy) result stream one run at a time,
    # persisting each as it arrives: if a later run fails or the study is
    # interrupted, every completed run is already in the store and the
    # re-invocation resumes from there.
    by_index = dict(cached)
    executed = 0
    if pending:
        stream = iter(backend_obj.execute(pending, jobs=jobs))
        for point, result in zip(pending, stream):
            if store is not None:
                store.put(point.spec, result, point.run_options)
            by_index[point.index] = result
            executed += 1
        surplus = next(stream, _NO_RESULT)
        if executed != len(pending) or surplus is not _NO_RESULT:
            returned = f"> {executed}" if surplus is not _NO_RESULT else str(executed)
            raise RuntimeError(
                f"backend {getattr(backend_obj, 'name', backend_obj)!r} returned "
                f"{returned} results for {len(pending)} runs"
            )

    runs = tuple(
        StudyRun(
            index=point.index,
            axes=point.axes,
            spec=point.spec,
            run_options=point.run_options,
            result=by_index[point.index],
            from_cache=point.index in cached,
        )
        for point in points
    )
    return StudyResult(study=study, runs=runs)
