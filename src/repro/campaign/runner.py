"""The study-execution facade: ``repro.run_study(study)``.

Splits a study into cached and pending runs against an optional
:class:`~repro.campaign.store.ResultStore`, streams the pending runs
through the chosen execution backend (each fresh result is persisted as it
completes, so an interrupted campaign resumes from the finished prefix),
and returns a :class:`~repro.campaign.result.StudyResult` with every run
in declaration order::

    import repro
    from repro.campaign import ResultStore

    study = repro.Study.grid(
        repro.ProblemSpec(nx=4, ny=4, nz=4),
        engine=["vectorized", "prefactorized"],
        order=[1, 2],
    )
    result = repro.run_study(study, backend="process", store=ResultStore("runs/"))
    for record in result.records():
        print(record["engine"], record["order"], record["wall_seconds"])

Re-invoking the same study against the same store executes zero new runs
(``result.new_run_count == 0``) and merges the stored results back in.

Backends supporting the v2 streaming contract (``execute_iter``, see
:mod:`repro.campaign.backends`) deliver results *as they complete, out of
order*; ``run_study`` reorders them and invokes the optional ``on_result``
progress callback per completed run, so a million-point campaign reports
progress without waiting for the slowest shard.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from .backends import ExecutionBackend, get_backend, iter_backend_results
from .result import StudyResult, StudyRun
from .store import ResultStore
from .study import Study
from .workitem import WorkItem

__all__ = ["run_study"]


def run_study(
    study: Study,
    *,
    backend: ExecutionBackend | str = "serial",
    store: ResultStore | str | Path | None = None,
    jobs: int | None = None,
    on_result: Callable[[StudyRun], None] | None = None,
) -> StudyResult:
    """Execute every run of a study and return a :class:`StudyResult`.

    Parameters
    ----------
    study:
        The declarative study to execute.
    backend:
        Execution backend name, alias or instance (``"serial"``,
        ``"thread"``, ``"process"``, ``"distributed"``, or any
        :func:`repro.campaign.register_backend`-ed name).
    store:
        Optional :class:`ResultStore` (or a directory path, wrapped into
        one).  Completed runs found in the store are *not* re-executed;
        fresh runs are persisted into it, making the study resumable.
    jobs:
        Worker cap for concurrent backends (``None``: executor default).
    on_result:
        Optional progress callback invoked once per run with its
        :class:`~repro.campaign.result.StudyRun` **in completion order**
        (store-cached runs first, then fresh runs as the backend yields
        them -- which for v2 streaming backends is not study order).  The
        returned :class:`StudyResult` is always in declaration order
        regardless.
    """
    backend_obj = get_backend(backend)
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)

    points = study.runs()
    by_index: dict[int, StudyRun] = {}
    pending = []
    for point in points:
        hit = store.get(point.spec, point.run_options) if store is not None else None
        if hit is not None:
            run = StudyRun(
                index=point.index,
                axes=point.axes,
                spec=point.spec,
                run_options=point.run_options,
                result=hit,
                from_cache=True,
            )
            by_index[point.index] = run
            if on_result is not None:
                on_result(run)
        else:
            pending.append(point)

    # Consume the backend's completion stream one run at a time, persisting
    # each as it arrives: if a later run fails or the study is interrupted,
    # every completed run is already in the store and the re-invocation
    # resumes from there.  v2 backends stream out of order; v1 backends are
    # wrapped by iter_backend_results and arrive in input order.
    if pending:
        point_by_index = {point.index: point for point in pending}
        items = [
            WorkItem(spec=p.spec, run_options=dict(p.run_options), index=p.index)
            for p in pending
        ]
        backend_name = getattr(backend_obj, "name", backend_obj)
        for index, result, meta in iter_backend_results(backend_obj, items, jobs=jobs):
            point = point_by_index.get(index)
            if point is None:
                raise RuntimeError(
                    f"backend {backend_name!r} returned a result for unknown "
                    f"run index {index}"
                )
            if index in by_index:
                raise RuntimeError(
                    f"backend {backend_name!r} returned run index {index} twice"
                )
            if store is not None:
                store.put(point.spec, result, point.run_options)
            run = StudyRun(
                index=point.index,
                axes=point.axes,
                spec=point.spec,
                run_options=point.run_options,
                result=result,
                from_cache=False,
                meta=meta,
            )
            by_index[index] = run
            if on_result is not None:
                on_result(run)
        if len(by_index) != len(points):
            executed = len(by_index) - (len(points) - len(pending))
            raise RuntimeError(
                f"backend {backend_name!r} returned "
                f"{executed} results for {len(pending)} runs"
            )

    return StudyResult(study=study, runs=tuple(by_index[point.index] for point in points))
