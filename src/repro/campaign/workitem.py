"""The unit of campaign work: one ``(spec, run options)`` payload.

Campaign backends, the :class:`~repro.campaign.store.ResultStore` and the
service :class:`~repro.service.job.Job` all used to pass loose
``(spec, run_options)`` tuples around, each re-deriving the content key and
the scheduling metadata on its own.  :class:`WorkItem` is the shared frozen
value replacing them: the spec, the run options forwarded to
:func:`repro.run`, the stable study index, a :attr:`cost` estimate the
distributed scheduler dispatches largest-first, and the canonical
:attr:`run_key` content hash -- the same key the store files records under,
the service dedups on and the spool protocol names job files with.

:func:`as_work_items` normalises a backend's input sequence: backends accept
``WorkItem``\\ s and :class:`~repro.campaign.study.StudyPoint`\\ s through it.
(The legacy loose-tuple shape was accepted for one release after PR-7 and
has since been removed -- passing a ``(spec, run_options)`` tuple now raises
``TypeError`` naming the accepted shapes.)
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from ..config import ProblemSpec

__all__ = ["WorkItem", "as_work_items", "estimate_cost", "run_key"]


def run_key(spec: ProblemSpec, run_options: dict | None = None) -> str:
    """Content hash identifying one run: canonical spec + run options.

    This is the single key of the whole stack: the
    :class:`~repro.campaign.store.ResultStore` files records under it, the
    service daemon dedups on it and the distributed spool names job files
    with it.  It depends only on *what* is asked for -- never on execution
    order, backend, host or wall-clock.
    """
    payload = {
        "spec": spec.to_dict(),
        "run_options": dict(sorted((run_options or {}).items())),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def estimate_cost(spec: ProblemSpec, run_options: dict | None = None) -> float:
    """Relative execution-cost estimate of one run (arbitrary units).

    Proportional to the dominant sweep work: local systems solved
    (cells x angles x groups x inners x outers) times the per-system dense
    solve cost (``nodes_per_element`` cubed), so cubic-element points tower
    over linear ones -- exactly the stragglers the distributed scheduler
    must dispatch first.
    """
    systems = spec.num_cells * spec.num_angles * spec.num_groups
    sweeps = spec.num_inners * spec.num_outers
    return float(systems * sweeps) * float(spec.nodes_per_element) ** 3


@dataclass(frozen=True)
class WorkItem:
    """One schedulable run: spec + run options + scheduling metadata.

    Attributes
    ----------
    spec:
        The fully-resolved problem specification.
    run_options:
        Extra keyword arguments for :func:`repro.run` (``num_threads``...).
        Treat as immutable -- the dataclass is frozen and the mapping is
        part of the content identity.
    index:
        Stable position of the run in its campaign (results are reassembled
        in index order whatever completion order a backend yields).
    cost:
        Relative execution-cost estimate used by cost-aware schedulers
        (largest first); defaults to :func:`estimate_cost` of the spec.
    """

    spec: ProblemSpec
    run_options: dict = field(default_factory=dict)
    index: int = 0
    cost: float | None = None

    def __post_init__(self) -> None:
        if self.cost is None:
            object.__setattr__(self, "cost", estimate_cost(self.spec, self.run_options))

    @property
    def run_key(self) -> str:
        """Canonical content hash of this item (see :func:`run_key`)."""
        return run_key(self.spec, self.run_options)

    def with_(self, **changes) -> "WorkItem":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # ---------------------------------------------------------------- dict I/O
    def to_dict(self) -> dict:
        """JSON-safe payload (the spool job-file body)."""
        return {
            "spec": self.spec.to_dict(),
            "run_options": dict(self.run_options),
            "index": int(self.index),
            "cost": float(self.cost),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkItem":
        return cls(
            spec=ProblemSpec.from_dict(data["spec"]),
            run_options=dict(data.get("run_options", {})),
            index=int(data.get("index", 0)),
            cost=float(data["cost"]) if data.get("cost") is not None else None,
        )

    @classmethod
    def coerce(cls, obj, index: int | None = None) -> "WorkItem":
        """Adapt one payload of any accepted shape to a :class:`WorkItem`.

        Accepts a ``WorkItem`` (returned as-is) or anything with ``spec`` /
        ``run_options`` attributes (a :class:`~repro.campaign.study.
        StudyPoint`, whose ``index`` is kept).  ``index`` overrides only
        when the payload carries none of its own.  The legacy
        ``(spec, run_options)`` tuple shape was removed after its one-release
        deprecation window (PR-7): build a ``WorkItem`` instead.
        """
        if isinstance(obj, cls):
            return obj
        if hasattr(obj, "spec") and hasattr(obj, "run_options"):
            return cls(
                spec=obj.spec,
                run_options=dict(obj.run_options),
                index=int(getattr(obj, "index", index or 0)),
            )
        raise TypeError(
            f"cannot adapt {type(obj).__name__!r} to a WorkItem; pass a WorkItem "
            f"or a StudyPoint (the legacy (spec, run_options) tuple shape was "
            f"removed -- build a WorkItem(spec, run_options) instead)"
        )


def as_work_items(payloads: Iterable) -> list[WorkItem]:
    """Normalise a backend's input sequence to :class:`WorkItem`\\ s.

    Accepts ``WorkItem``\\ s and ``StudyPoint``\\ s (which carry their study
    index); payloads without an index of their own get sequential ones.

    Raises ``ValueError`` on duplicate indexes -- results could not be
    reassembled unambiguously.
    """
    items = [
        WorkItem.coerce(payload, index=position)
        for position, payload in enumerate(payloads)
    ]
    indexes = [item.index for item in items]
    if len(set(indexes)) != len(indexes):
        dupes = sorted({i for i in indexes if indexes.count(i) > 1})
        raise ValueError(f"duplicate work-item indexes {dupes}")
    return items


def order_by_cost(items: Sequence[WorkItem]) -> list[WorkItem]:
    """Items sorted for dispatch: largest cost first, index breaks ties."""
    return sorted(items, key=lambda item: (-float(item.cost), item.index))
