"""Distributed campaign execution over a file-based work-queue spool.

The first multi-host layer of the stack: the ``distributed`` execution
backend (:class:`~repro.campaign.distributed.coordinator.
DistributedBackend`) fans :class:`~repro.campaign.workitem.WorkItem`
payloads out to worker processes -- on this machine or any number of others
-- through a dependency-free **spool directory** protocol
(:class:`~repro.campaign.distributed.spool.SpoolDir`):

* the coordinator publishes one claimable job file per point (largest
  cost first, so cubic stragglers dispatch before cheap linear points);
* workers (``unsnap worker SPOOL_DIR``, local or started remotely by the
  :class:`~repro.campaign.distributed.launcher.SshLauncher`) claim jobs by
  **atomic rename** -- exactly one winner per job, no locks, no sockets;
* every worker maintains a heartbeat file; the coordinator re-queues the
  claims of dead or stalled workers once their lease expires (work
  stealing), so a killed worker's points are re-executed elsewhere;
* results merge through the spool's shared
  :class:`~repro.campaign.store.ResultStore` keyed by the content
  ``run_key`` -- re-execution is idempotent and results are bit-for-bit
  identical to the ``serial`` backend (asserted by the conformance
  matrix, which discovers this backend through the registry).

Everything is plain files, so any shared filesystem (NFS, sshfs, a cloud
bucket mount) is a cluster fabric.
"""

from .coordinator import DistributedBackend
from .launcher import SshLauncher
from .spool import SpoolClaim, SpoolDir
from .worker import SpoolWorker, run_worker

__all__ = [
    "DistributedBackend",
    "SshLauncher",
    "SpoolClaim",
    "SpoolDir",
    "SpoolWorker",
    "run_worker",
]
