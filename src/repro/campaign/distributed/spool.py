"""The spool directory: a dependency-free multi-host work queue.

A :class:`SpoolDir` is a directory on a filesystem every participant can
see (local disk for same-machine workers, NFS/sshfs for a cluster).  Its
layout *is* the protocol -- there is no server, no socket, no lock file::

    spool/
      store/        shared ResultStore (the merge point for results)
      jobs/         claimable job files, one per pending WorkItem
      claims/       jobs currently owned by a worker
      done/         one marker per finished job (execution metadata)
      workers/      one heartbeat file per live worker
      quarantine/   job files whose payload failed to parse
      trace/        per-participant unsnap-trace-v1 span files (opt-in)
      STOP          cooperative shutdown marker (drains idle workers)

Three filesystem properties carry the whole design:

* ``os.rename`` within a directory tree is **atomic** -- claiming a job is
  one rename from ``jobs/`` into ``claims/``; exactly one contender wins
  and the loser's rename raises.  Ownership is encoded in the *name* of
  the claim file (``...@worker_id.json``), so there is no read-modify-
  write anywhere.
* File **mtimes are monotone enough for leases**: a worker touches its
  heartbeat file every second or so; a claim whose owner heartbeat (and
  the claim itself) went stale past the lease is presumed orphaned and
  the coordinator re-queues it (work stealing).
* Job file **names sort in dispatch order**: the name embeds an inverted
  cost priority, so a plain lexicographic directory listing yields the
  most expensive pending point first.

Re-execution is harmless by construction: results land in the shared
:class:`~repro.campaign.store.ResultStore` under the content
``run_key`` -- a stolen-then-finished-twice job writes the same bytes
twice.  The done marker is written *before* the claim is removed, so a
job observed in neither ``jobs/`` nor ``claims/`` nor ``done/`` was
genuinely lost (e.g. quarantined) and must be republished.
"""

from __future__ import annotations

import json
import os
import re
import socket
import time
from dataclasses import dataclass
from pathlib import Path

from ..store import ResultStore
from ..workitem import WorkItem

__all__ = ["SpoolDir", "SpoolClaim", "worker_identity"]

#: Format marker embedded in every job payload (reject foreign files).
JOB_FORMAT = "unsnap-spool-job-v1"

#: Jobs are named ``{priority:016d}-{index:06d}-a{attempts:02d}-{key16}.json``
#: with ``priority = PRIORITY_BASE - cost`` (clamped to >= 0), so *larger*
#: cost means a *smaller* number and lexicographic order dispatches the most
#: expensive work first.  16 digits hold any realistic cost estimate.
PRIORITY_BASE = 10**15

_JOB_NAME = re.compile(
    r"^(?P<priority>\d{16})-(?P<index>\d{6})-a(?P<attempts>\d{2})"
    r"-(?P<key16>[0-9a-f]{16})\.json$"
)
_CLAIM_NAME = re.compile(
    r"^(?P<stem>\d{16}-\d{6}-a\d{2}-[0-9a-f]{16})@(?P<worker_id>[A-Za-z0-9_.-]+)\.json$"
)
_DONE_NAME = re.compile(r"^(?P<index>\d{6})-(?P<key16>[0-9a-f]{16})\.json$")


def worker_identity(suffix: str | None = None) -> str:
    """A filesystem-safe worker id: ``host-pid`` (plus an optional suffix)."""
    base = f"{socket.gethostname()}-{os.getpid()}"
    if suffix:
        base = f"{base}-{suffix}"
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", base)


def _job_priority(cost: float) -> int:
    return max(0, PRIORITY_BASE - int(cost))


@dataclass(frozen=True)
class SpoolClaim:
    """One job owned by a worker (the renamed file in ``claims/``)."""

    path: Path
    worker_id: str
    index: int
    attempts: int
    key16: str
    priority: int

    @property
    def job_name(self) -> str:
        """The original ``jobs/`` filename this claim was renamed from."""
        return f"{self.priority:016d}-{self.index:06d}-a{self.attempts:02d}-{self.key16}.json"

    def load(self) -> tuple[WorkItem, dict]:
        """Parse the claimed payload; ``ValueError`` if damaged or foreign."""
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"spool job {self.path.name} is unreadable: {exc}") from None
        if not isinstance(payload, dict) or payload.get("format") != JOB_FORMAT:
            raise ValueError(
                f"spool job {self.path.name} is not a {JOB_FORMAT} payload"
            )
        try:
            item = WorkItem.from_dict(payload["item"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"spool job {self.path.name} has a bad work item: {exc}") from None
        return item, payload


class SpoolDir:
    """The work-queue directory (see the module docstring for the protocol)."""

    SUBDIRS = ("store", "jobs", "claims", "done", "workers", "quarantine", "trace")

    def __init__(self, root: str | Path):
        self.root = Path(root)
        for name in self.SUBDIRS:
            (self.root / name).mkdir(parents=True, exist_ok=True)

    @property
    def store(self) -> ResultStore:
        """The shared result store every worker writes into."""
        return ResultStore(self.root / "store")

    @property
    def trace_dir(self) -> Path:
        """Where traced participants append their span JSONL files."""
        return self.root / "trace"

    def trace_path(self, name: str) -> Path:
        """The span file a participant (worker, coordinator) writes."""
        safe = re.sub(r"[^A-Za-z0-9_.-]+", "-", name)
        return self.trace_dir / f"{safe}.jsonl"

    # ------------------------------------------------------------- publishing
    def publish(
        self,
        item: WorkItem,
        *,
        attempts: int = 1,
        max_attempts: int = 3,
        trace: dict | None = None,
    ) -> Path:
        """Queue one work item as a claimable job file and return its path.

        ``attempts`` is the execution attempt this publication represents
        (1 for fresh work; the coordinator republishes stolen or lost jobs
        with the counter bumped).  ``trace`` optionally carries the
        publisher's trace context (``{"trace_id": ..., "parent_id": ...}``)
        for the executing worker to continue; absent by default, so
        untraced payloads stay byte-identical to pre-tracing ones.  The
        write is atomic -- temp file then rename -- so a worker never
        claims a half-written job.
        """
        name = (
            f"{_job_priority(item.cost):016d}-{item.index:06d}"
            f"-a{attempts:02d}-{item.run_key[:16]}.json"
        )
        payload = {
            "format": JOB_FORMAT,
            "item": item.to_dict(),
            "run_key": item.run_key,
            "attempts": int(attempts),
            "max_attempts": int(max_attempts),
            "enqueued_at": time.time(),
        }
        if trace:
            payload["trace"] = dict(trace)
        path = self.root / "jobs" / name
        tmp = path.with_name(f".{name}.{worker_identity()}.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)
        return path

    def pending(self) -> list[Path]:
        """Unclaimed job files, most expensive first (lexicographic order)."""
        jobs = self.root / "jobs"
        return sorted(p for p in jobs.iterdir() if _JOB_NAME.match(p.name))

    def pending_indexes(self) -> set[int]:
        return {int(_JOB_NAME.match(p.name)["index"]) for p in self.pending()}

    # --------------------------------------------------------------- claiming
    def claim_next(self, worker_id: str) -> SpoolClaim | None:
        """Claim the highest-priority pending job, or ``None`` if idle.

        The claim is a single atomic rename into ``claims/`` with the
        worker's id appended to the name; under contention every loser's
        rename raises and the loop moves to the next job.
        """
        for job in self.pending():
            match = _JOB_NAME.match(job.name)
            target = self.root / "claims" / f"{job.stem}@{worker_id}.json"
            try:
                os.rename(job, target)
            except OSError:
                continue  # lost the race (or the job vanished) -- next one
            return SpoolClaim(
                path=target,
                worker_id=worker_id,
                index=int(match["index"]),
                attempts=int(match["attempts"]),
                key16=match["key16"],
                priority=int(match["priority"]),
            )
        return None

    def claims(self) -> list[SpoolClaim]:
        """Every live claim (jobs currently owned by some worker)."""
        out = []
        for path in sorted((self.root / "claims").iterdir()):
            match = _CLAIM_NAME.match(path.name)
            if not match:
                continue
            job = _JOB_NAME.match(match["stem"] + ".json")
            out.append(
                SpoolClaim(
                    path=path,
                    worker_id=match["worker_id"],
                    index=int(job["index"]),
                    attempts=int(job["attempts"]),
                    key16=job["key16"],
                    priority=int(job["priority"]),
                )
            )
        return out

    def claim_age(self, claim: SpoolClaim, now: float | None = None) -> float:
        """Seconds since the claim *or its owner's heartbeat* last moved.

        The claim file's mtime is fixed at claim time, so a long-running
        healthy job stays "fresh" through its owner's heartbeat; only when
        both are old past the lease is the owner presumed dead.  A vanished
        claim reports age 0 (its owner just completed or released it).
        """
        now = time.time() if now is None else now
        freshest = None
        for path in (claim.path, self.root / "workers" / f"{claim.worker_id}.json"):
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            freshest = mtime if freshest is None else max(freshest, mtime)
        if freshest is None:
            return 0.0
        return max(0.0, now - freshest)

    def steal(self, claim: SpoolClaim) -> bool:
        """Remove a (presumed-orphaned) claim so its job can be republished.

        Returns ``False`` if the claim vanished first -- its owner woke up
        and completed or released it, in which case the thief must *not*
        republish.
        """
        try:
            os.unlink(claim.path)
        except OSError:
            return False
        return True

    # -------------------------------------------------------------- finishing
    def complete(self, claim: SpoolClaim, meta: dict) -> Path:
        """Publish a done marker for a claimed job, then drop the claim.

        Marker before claim removal: an observer can see a job both claimed
        and done (benign overlap) but never in limbo -- "neither pending nor
        claimed nor done" always means *lost*.
        """
        path = self._write_done(claim.index, claim.key16, meta)
        try:
            os.unlink(claim.path)
        except OSError:
            pass  # already stolen; the done marker still settles the job
        return path

    def _write_done(self, index: int, key16: str, meta: dict) -> Path:
        name = f"{index:06d}-{key16}.json"
        path = self.root / "done" / name
        tmp = path.with_name(f".{name}.{worker_identity()}.tmp")
        tmp.write_text(json.dumps(meta, sort_keys=True))
        os.replace(tmp, path)
        return path

    def done_markers(self) -> dict[tuple[int, str], dict]:
        """``{(index, key16): metadata}`` for every finished job."""
        out = {}
        for path in (self.root / "done").iterdir():
            match = _DONE_NAME.match(path.name)
            if not match:
                continue
            try:
                meta = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue  # marker mid-write by another host; next poll sees it
            if isinstance(meta, dict):
                out[(int(match["index"]), match["key16"])] = meta
        return out

    def clear_done(self, index: int, key16: str) -> None:
        """Retract a done marker (only for marker-without-record damage)."""
        try:
            os.unlink(self.root / "done" / f"{index:06d}-{key16}.json")
        except OSError:
            pass

    def quarantine(self, claim: SpoolClaim, reason: str) -> Path:
        """Move an unparseable claimed job aside (with a ``.reason`` note).

        The job leaves the queue without a done marker, so the coordinator's
        lost-job scan notices and republishes the point from its own copy of
        the work item -- one corrupt file never wedges a campaign.
        """
        target = self.root / "quarantine" / claim.path.name
        try:
            os.rename(claim.path, target)
        except OSError:
            return target
        try:
            target.with_suffix(".reason").write_text(reason + "\n")
        except OSError:
            pass
        return target

    def quarantined(self) -> list[dict]:
        """Every quarantined job with its ``.reason`` excerpt.

        Sorted by name; a missing or unreadable reason sidecar reports an
        empty string (the quarantined file itself is the fact that counts).
        """
        out = []
        for path in sorted((self.root / "quarantine").glob("*.json")):
            try:
                reason = path.with_suffix(".reason").read_text().strip()
            except OSError:
                reason = ""
            out.append({"name": path.name, "reason": reason})
        return out

    # ------------------------------------------------------------- observing
    def status(self, lease_seconds: float = 15.0, now: float | None = None) -> dict:
        """One JSON-safe snapshot of the whole spool, straight off the files.

        The payload behind ``unsnap spool status`` and the gateway's spool
        metrics: pending/claimed/done/error counts, per-claim owner and
        age, per-worker heartbeat age and liveness (against
        ``lease_seconds``), the quarantine with reasons, and the STOP flag.
        Pure observation -- never writes, steals or republishes.
        """
        now = time.time() if now is None else now
        claims = [
            {
                "index": claim.index,
                "attempts": claim.attempts,
                "worker_id": claim.worker_id,
                "key16": claim.key16,
                "age_seconds": self.claim_age(claim, now),
            }
            for claim in self.claims()
        ]
        done = errors = 0
        for meta in self.done_markers().values():
            if meta.get("error"):
                errors += 1
            else:
                done += 1
        workers = []
        for path in sorted((self.root / "workers").iterdir()):
            if path.suffix != ".json" or path.name.startswith("."):
                continue
            try:
                age = max(0.0, now - path.stat().st_mtime)
            except OSError:
                continue
            workers.append(
                {
                    "worker_id": path.stem,
                    "age_seconds": age,
                    "live": age <= lease_seconds,
                }
            )
        return {
            "root": str(self.root),
            "lease_seconds": float(lease_seconds),
            "pending": len(self.pending()),
            "claims": claims,
            "done": done,
            "errors": errors,
            "workers": workers,
            "quarantined": self.quarantined(),
            "stop_requested": self.stop_requested(),
        }

    # -------------------------------------------------------------- liveness
    def heartbeat(self, worker_id: str, info: dict | None = None) -> Path:
        """Touch (or create) the worker's heartbeat file."""
        path = self.root / "workers" / f"{worker_id}.json"
        if info is not None or not path.exists():
            payload = dict(info or {})
            payload.setdefault("worker_id", worker_id)
            tmp = path.with_name(f".{path.name}.tmp")
            tmp.write_text(json.dumps(payload, sort_keys=True))
            os.replace(tmp, path)
        else:
            os.utime(path)
        return path

    def retire(self, worker_id: str) -> None:
        """Remove the worker's heartbeat file (clean shutdown)."""
        try:
            os.unlink(self.root / "workers" / f"{worker_id}.json")
        except OSError:
            pass

    def live_workers(self, lease_seconds: float, now: float | None = None) -> list[str]:
        """Worker ids whose heartbeat moved within the lease window."""
        now = time.time() if now is None else now
        live = []
        for path in sorted((self.root / "workers").iterdir()):
            if path.suffix != ".json" or path.name.startswith("."):
                continue
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue
            if age <= lease_seconds:
                live.append(path.stem)
        return live

    # ------------------------------------------------------------------ stop
    @property
    def stop_path(self) -> Path:
        return self.root / "STOP"

    def request_stop(self) -> None:
        """Ask every worker to exit once it finishes its current job."""
        self.stop_path.touch()

    def clear_stop(self) -> None:
        try:
            os.unlink(self.stop_path)
        except OSError:
            pass

    def stop_requested(self) -> bool:
        return self.stop_path.exists()
