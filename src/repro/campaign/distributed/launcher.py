"""Remote worker launchers: thin process wrappers over ``unsnap worker``.

A launcher is any object with ``start(spool_dir) -> list[Popen]`` and
``stop()``.  The built-in :class:`SshLauncher` shells out to ``ssh`` --
the spool directory must resolve to the *same shared filesystem path* on
every host (NFS, sshfs...), because the spool protocol is nothing but
files.  There is no remote deployment magic: the remote host needs
``unsnap`` (or any equivalent command) on its PATH, exactly like running
it by hand::

    ssh node07 unsnap worker /shared/spool

which is all the launcher does, once per host, with ``BatchMode`` so a
missing key fails fast instead of prompting.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import Sequence

__all__ = ["SshLauncher"]


class SshLauncher:
    """Start one ``unsnap worker`` per host over ssh; stop drains them.

    Parameters
    ----------
    hosts:
        Hostnames (repeat a host for multiple workers on it).
    remote_spool:
        Spool path *as seen by the remote hosts*; defaults to the
        coordinator-side path (correct whenever the share is mounted at
        the same place everywhere).
    ssh_command:
        The ssh argv prefix; override to add ``-i``/``-J``/port options.
    worker_command:
        The remote worker argv prefix (before the spool path); override
        e.g. to ``("python", "-m", "repro.cli", "worker")`` or to a
        wrapper script that activates an environment first.
    worker_args:
        Extra arguments appended after the spool path (``--poll`` ...).
    """

    def __init__(
        self,
        hosts: Sequence[str],
        *,
        remote_spool: str | Path | None = None,
        ssh_command: Sequence[str] = ("ssh", "-o", "BatchMode=yes"),
        worker_command: Sequence[str] = ("unsnap", "worker"),
        worker_args: Sequence[str] = (),
    ):
        self.hosts = list(hosts)
        self.remote_spool = remote_spool
        self.ssh_command = tuple(ssh_command)
        self.worker_command = tuple(worker_command)
        self.worker_args = tuple(worker_args)
        self.procs: list[subprocess.Popen] = []

    def command_for(self, host: str, spool_dir: str | Path) -> list[str]:
        """The full local argv that starts one worker on ``host``."""
        spool = str(self.remote_spool if self.remote_spool is not None else spool_dir)
        return [
            *self.ssh_command,
            host,
            *self.worker_command,
            spool,
            *self.worker_args,
        ]

    def start(self, spool_dir: str | Path) -> list[subprocess.Popen]:
        """Launch every host's worker; returns the local ssh processes."""
        self.procs = [
            subprocess.Popen(
                self.command_for(host, spool_dir),
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            for host in self.hosts
        ]
        return self.procs

    def stop(self, *, timeout: float = 10.0) -> None:
        """Reap the ssh processes (workers exit via the spool STOP marker)."""
        for proc in self.procs:
            try:
                proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=timeout)
                except subprocess.TimeoutExpired:
                    proc.kill()
        self.procs = []

    def __enter__(self) -> "SshLauncher":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
