"""The ``distributed`` execution backend: coordinator side of the spool.

The coordinator turns a batch of :class:`~repro.campaign.workitem.
WorkItem`\\ s into spool jobs and streams completions back as the v2
``execute_iter`` contract.  It owns the campaign-level policy:

* **store short-circuit** -- points already present in the spool's shared
  :class:`~repro.campaign.store.ResultStore` are yielded immediately
  without queueing (a resumed or sharded-then-merged campaign executes
  zero new runs);
* **cost-aware dispatch** -- jobs are published largest cost estimate
  first, so the cubic stragglers start before the cheap linear points and
  the tail of the campaign is short;
* **work stealing** -- a claim whose owner's heartbeat (and the claim
  itself) went stale past the lease is stolen and the job republished
  with its attempt counter bumped; a job found in neither ``jobs/`` nor
  ``claims/`` nor ``done/`` (e.g. quarantined as corrupt) is likewise
  republished from the coordinator's own copy of the work item;
* **worker supply** -- with no live workers on the spool and no
  ``launcher``, the coordinator spawns local ``unsnap worker``
  subprocesses (``workers=N`` forces the count, ``workers=0`` forbids
  spawning -- e.g. when external workers are expected); a
  :class:`~repro.campaign.distributed.launcher.SshLauncher` starts them
  on remote hosts instead.  Workers the coordinator started are drained
  with the STOP marker when the campaign ends.

Results are bit-for-bit identical to the ``serial`` backend: workers call
the same :func:`repro.run` on the same specs and the store's JSON
round-trip is exact (the cross-engine conformance matrix asserts this by
auto-discovering the backend from the registry).
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ...obs.trace import current_trace
from ...runner import RunResult
from ..backends import register_backend
from ..workitem import WorkItem, as_work_items, order_by_cost
from .spool import SpoolDir

__all__ = ["DistributedBackend", "worker_command"]

#: Environment knobs (explicit constructor arguments win over all of them).
ENV_SPOOL_DIR = "UNSNAP_SPOOL_DIR"
ENV_LEASE = "UNSNAP_SPOOL_LEASE"
ENV_POLL = "UNSNAP_SPOOL_POLL"
ENV_WORKERS = "UNSNAP_SPOOL_WORKERS"

DEFAULT_LEASE_SECONDS = 15.0
DEFAULT_POLL_SECONDS = 0.1
DEFAULT_WORKERS = 2


def worker_command(
    spool_dir: Path,
    *,
    poll_seconds: float,
    heartbeat_seconds: float,
) -> list[str]:
    """The argv that starts one local worker subprocess on this interpreter."""
    return [
        sys.executable,
        "-m",
        "repro.cli",
        "worker",
        str(spool_dir),
        "--poll",
        str(poll_seconds),
        "--heartbeat",
        str(heartbeat_seconds),
    ]


def _quarantine_note(spool: SpoolDir) -> str:
    """Quarantine count and reason excerpts, for drain-error messages.

    Quarantined payloads are usually *why* a campaign is wedged or slow
    (each one costs a republish); surfacing them in the error beats
    leaving them discoverable only by listing ``quarantine/``.
    """
    entries = spool.quarantined()
    if not entries:
        return ""
    excerpts = "; ".join(
        f"{entry['name']}: {entry['reason'][:80] or '(no reason recorded)'}"
        for entry in entries[:3]
    )
    more = f" (+{len(entries) - 3} more)" if len(entries) > 3 else ""
    return f" [{len(entries)} quarantined job(s): {excerpts}{more}]"


def _env_float(name: str, fallback: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return fallback
    try:
        return float(raw)
    except ValueError:
        return fallback


class DistributedBackend:
    """Runs fanned out to spool workers on any number of hosts.

    Parameters (every one defaults from an ``UNSNAP_SPOOL_*`` environment
    variable, so ``--backend distributed`` works untouched from the CLI):

    spool_dir:
        The shared spool directory.  ``None`` (and no ``UNSNAP_SPOOL_DIR``)
        means a private temporary spool, local workers, and cleanup on
        completion -- the "just parallelise this machine" mode.
    lease_seconds:
        Claim lease: a claim is stolen once claim file *and* owner
        heartbeat are both older than this.
    poll_seconds:
        Coordinator poll period (also the spawned workers' queue poll).
    workers:
        Local workers to spawn.  ``None``: spawn only when the spool has no
        live workers (count = ``jobs`` or {DEFAULT_WORKERS}); ``0``: never
        spawn (external workers expected); ``N``: always spawn N.
    launcher:
        Optional object with ``start(spool_dir) -> list[Popen]`` and
        ``stop()`` (see :class:`~repro.campaign.distributed.launcher.
        SshLauncher`) starting workers elsewhere; suppresses local spawns.
    max_attempts:
        Executions allowed per point before its failure is surfaced.
    timeout_seconds:
        Overall campaign deadline (``None``: none).
    telemetry:
        Optional :class:`repro.telemetry.Telemetry` accumulating
        coordinator counters (``distributed.*``).
    """

    def __init__(
        self,
        *,
        spool_dir: str | Path | None = None,
        lease_seconds: float | None = None,
        poll_seconds: float | None = None,
        workers: int | None = None,
        launcher=None,
        max_attempts: int = 3,
        timeout_seconds: float | None = None,
        heartbeat_seconds: float | None = None,
        telemetry=None,
    ):
        self.spool_dir = spool_dir
        self.lease_seconds = lease_seconds
        self.poll_seconds = poll_seconds
        self.workers = workers
        self.launcher = launcher
        self.max_attempts = int(max_attempts)
        self.timeout_seconds = timeout_seconds
        self.heartbeat_seconds = heartbeat_seconds
        self.telemetry = telemetry

    # ----------------------------------------------------------- v1 contract
    def execute(self, items: Sequence, *, jobs: int | None = None) -> Iterable[RunResult]:
        """Execute every item and return results in input order (v1 shape)."""
        items = as_work_items(items)
        slot = {item.index: position for position, item in enumerate(items)}
        results: list = [None] * len(items)
        for index, result, _meta in self.execute_iter(items, jobs=jobs):
            results[slot[index]] = result
        return results

    # ----------------------------------------------------------- v2 contract
    def execute_iter(
        self, items: Sequence, *, jobs: int | None = None
    ) -> Iterator[tuple[int, RunResult, dict]]:
        """Stream ``(index, result, meta)`` as spool workers finish points.

        ``meta`` carries ``worker_id``, ``attempts`` and
        ``queue_wait_seconds`` per point (``worker_id="store"`` with zero
        attempts for store short-circuits), which :func:`repro.run_study`
        lands in the study records.
        """
        items = as_work_items(items)
        if not items:
            return

        lease = (
            float(self.lease_seconds)
            if self.lease_seconds is not None
            else _env_float(ENV_LEASE, DEFAULT_LEASE_SECONDS)
        )
        poll = (
            float(self.poll_seconds)
            if self.poll_seconds is not None
            else _env_float(ENV_POLL, DEFAULT_POLL_SECONDS)
        )
        heartbeat = (
            float(self.heartbeat_seconds)
            if self.heartbeat_seconds is not None
            else max(0.2, lease / 10.0)
        )

        spool_root = self.spool_dir or os.environ.get(ENV_SPOOL_DIR, "").strip() or None
        temp_spool = spool_root is None
        if temp_spool:
            spool_root = tempfile.mkdtemp(prefix="unsnap-spool-")
        spool = SpoolDir(spool_root)
        store = spool.store

        procs: list[subprocess.Popen] = []
        launched = False
        try:
            # A STOP left behind by a previous campaign would drain the
            # workers we are about to start; publishing work implies go.
            spool.clear_stop()

            # Store short-circuit: merged/resumed points cost zero new runs.
            outstanding: dict[int, WorkItem] = {}
            for item in items:
                hit = store.get(item) if store.contains(item) else None
                if hit is not None:
                    self._incr("distributed.store_hits")
                    yield (
                        item.index,
                        hit,
                        {"worker_id": "store", "attempts": 0, "queue_wait_seconds": 0.0},
                    )
                else:
                    outstanding[item.index] = item

            if not outstanding:
                return

            # The ambient trace context (set by a traced daemon job or
            # `unsnap study --trace`) rides every published payload, so the
            # executing workers' spans join the caller's trace.  No ambient
            # context -- the default -- publishes byte-identical payloads.
            ambient = current_trace()
            trace = None if ambient is None else ambient.to_dict()

            attempts = {index: 1 for index in outstanding}
            for item in order_by_cost(list(outstanding.values())):
                spool.publish(
                    item, attempts=1, max_attempts=self.max_attempts, trace=trace
                )
                self._incr("distributed.points_dispatched")

            procs, launched = self._supply_workers(
                spool,
                lease=lease,
                poll=poll,
                heartbeat=heartbeat,
                jobs=jobs,
                pending=len(outstanding),
            )

            yield from self._drain(
                spool,
                outstanding,
                attempts,
                procs=procs,
                lease=lease,
                poll=poll,
                trace=trace,
            )
        finally:
            if procs or launched or temp_spool:
                spool.request_stop()
            for proc in procs:
                try:
                    proc.wait(timeout=max(2.0, 10 * poll))
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=5.0)
            if launched:
                self.launcher.stop()
            if temp_spool:
                shutil.rmtree(spool_root, ignore_errors=True)

    # ------------------------------------------------------------ internals
    def _incr(self, counter: str, value: float = 1) -> None:
        if self.telemetry is not None:
            self.telemetry.incr(counter, value)

    def _supply_workers(
        self,
        spool: SpoolDir,
        *,
        lease: float,
        poll: float,
        heartbeat: float,
        jobs: int | None,
        pending: int,
    ) -> tuple[list[subprocess.Popen], bool]:
        """Start workers per policy; returns (local procs, launcher used)."""
        if self.launcher is not None:
            self.launcher.start(spool.root)
            return [], True
        requested = self.workers
        if requested is None:
            raw = os.environ.get(ENV_WORKERS, "").strip()
            requested = int(raw) if raw.isdigit() else None
        if requested is None:
            if spool.live_workers(lease):
                return [], False  # external workers already serve this spool
            requested = min(jobs or DEFAULT_WORKERS, pending)
        count = min(int(requested), pending)
        if count <= 0:
            return [], False
        env = dict(os.environ)
        src_dir = str(Path(__file__).resolve().parents[3])
        parts = [src_dir, env.get("PYTHONPATH", "")]
        env["PYTHONPATH"] = os.pathsep.join(p for p in parts if p)
        procs = [
            subprocess.Popen(
                worker_command(spool.root, poll_seconds=poll, heartbeat_seconds=heartbeat),
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            for _ in range(count)
        ]
        self._incr("distributed.workers_spawned", count)
        return procs, False

    def _drain(
        self,
        spool: SpoolDir,
        outstanding: dict[int, WorkItem],
        attempts: dict[int, int],
        *,
        procs: list[subprocess.Popen],
        lease: float,
        poll: float,
        trace: dict | None = None,
    ) -> Iterator[tuple[int, RunResult, dict]]:
        """Poll the spool until every outstanding point completes (or fails)."""
        store = spool.store
        started = time.time()
        last_recovery = 0.0
        while outstanding:
            progressed = False
            done = spool.done_markers()
            for index, item in list(outstanding.items()):
                meta = done.get((index, item.run_key[:16]))
                if meta is None:
                    continue
                if meta.get("error"):
                    raise RuntimeError(
                        f"distributed run {index} failed after "
                        f"{meta.get('attempts', '?')} attempts on worker "
                        f"{meta.get('worker_id', '?')}: {meta['error']}"
                        f"{_quarantine_note(spool)}"
                    )
                result = store.get(item)
                if result is None:
                    # Marker without record: the protocol writes the record
                    # first, so this is damage -- retract the marker and
                    # re-execute the point.
                    spool.clear_done(index, item.run_key[:16])
                    self._republish(spool, item, attempts, trace=trace)
                    continue
                self._incr("distributed.queue_wait_seconds", meta.get("queue_wait_seconds", 0.0))
                del outstanding[index]
                progressed = True
                yield index, result, dict(meta)
            if not outstanding:
                return
            if progressed:
                continue

            now = time.time()
            if now - last_recovery >= min(poll * 5, lease / 3):
                last_recovery = now
                self._recover(
                    spool, outstanding, attempts, lease=lease, now=now, trace=trace
                )

            if self.timeout_seconds is not None and now - started > self.timeout_seconds:
                raise RuntimeError(
                    f"distributed campaign timed out after {self.timeout_seconds}s "
                    f"with {len(outstanding)} points outstanding"
                    f"{_quarantine_note(spool)}"
                )
            if (
                procs
                and all(proc.poll() is not None for proc in procs)
                and not spool.live_workers(lease)
            ):
                codes = sorted({proc.returncode for proc in procs})
                raise RuntimeError(
                    f"all {len(procs)} spawned spool workers exited "
                    f"(return codes {codes}) with {len(outstanding)} points outstanding"
                    f"{_quarantine_note(spool)}"
                )
            time.sleep(poll)

    def _recover(
        self,
        spool: SpoolDir,
        outstanding: dict[int, WorkItem],
        attempts: dict[int, int],
        *,
        lease: float,
        now: float,
        trace: dict | None = None,
    ) -> None:
        """Steal stale claims and republish lost jobs (the healing pass)."""
        pending = spool.pending_indexes()
        claimed = set()
        for claim in spool.claims():
            if claim.index not in outstanding:
                continue
            claimed.add(claim.index)
            if spool.claim_age(claim, now) > lease:
                if spool.steal(claim):
                    self._incr("distributed.claims_stolen")
                    self._republish(
                        spool, outstanding[claim.index], attempts, trace=trace
                    )
        done = spool.done_markers()
        for index, item in outstanding.items():
            settled = (index, item.run_key[:16]) in done
            if index not in pending and index not in claimed and not settled:
                # Quarantined, crashed mid-rename, or swept away: requeue.
                self._republish(spool, item, attempts, trace=trace)

    def _republish(
        self,
        spool: SpoolDir,
        item: WorkItem,
        attempts: dict[int, int],
        *,
        trace: dict | None = None,
    ) -> None:
        attempts[item.index] += 1
        self._incr("distributed.points_recovered")
        spool.publish(
            item,
            attempts=min(attempts[item.index], self.max_attempts),
            max_attempts=self.max_attempts,
            trace=trace,
        )


register_backend(
    "distributed",
    aliases=("spool", "cluster"),
    description="Runs fanned out to spool workers on any number of hosts "
    "(work stealing, shared result store; bit-for-bit equal to serial).",
)(DistributedBackend())
