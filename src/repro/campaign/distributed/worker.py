"""The spool worker: claim, execute, store, mark done -- repeat.

``unsnap worker SPOOL_DIR`` runs one of these per process; start as many
as you like, on as many machines as share the spool filesystem.  Workers
are completely stateless between jobs: everything they know arrives in
the claimed job file, everything they produce lands in the spool's shared
:class:`~repro.campaign.store.ResultStore` plus one done marker, so a
worker killed mid-job loses nothing -- the coordinator steals the stale
claim after the lease and the point re-executes elsewhere.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from .spool import SpoolClaim, SpoolDir, worker_identity

__all__ = ["SpoolWorker", "run_worker"]


class SpoolWorker:
    """One worker process' claim/execute loop over a spool directory.

    Parameters
    ----------
    spool:
        The :class:`SpoolDir` (or its path) to serve.
    worker_id:
        Stable identity written into claims, heartbeats and done markers;
        defaults to a filesystem-safe ``host-pid``.
    poll_seconds:
        Idle sleep between queue checks.
    heartbeat_seconds:
        Heartbeat-file touch period (keep well under the campaign lease).
    max_jobs:
        Exit after this many executed jobs (``None``: run until stopped).
    idle_exit_seconds:
        Exit after this long with an empty queue (``None``: wait forever
        for the STOP marker).
    """

    def __init__(
        self,
        spool: SpoolDir | str | Path,
        *,
        worker_id: str | None = None,
        poll_seconds: float = 0.2,
        heartbeat_seconds: float = 1.0,
        max_jobs: int | None = None,
        idle_exit_seconds: float | None = None,
    ):
        self.spool = spool if isinstance(spool, SpoolDir) else SpoolDir(spool)
        self.worker_id = worker_id or worker_identity()
        self.poll_seconds = float(poll_seconds)
        self.heartbeat_seconds = float(heartbeat_seconds)
        self.max_jobs = max_jobs
        self.idle_exit_seconds = idle_exit_seconds
        self.executed = 0
        self.failed = 0

    # ------------------------------------------------------------- one job
    def run_claim(self, claim: SpoolClaim) -> bool:
        """Execute one claimed job end to end; ``True`` if it produced a result.

        Failure handling: a payload that cannot be parsed is quarantined
        (the coordinator republishes the point); an execution error
        releases the job for another attempt, or -- once ``max_attempts``
        is exhausted -- publishes an *error* done marker that the
        coordinator surfaces to the caller.

        A payload carrying a ``trace`` field continues that trace: the
        worker appends ``spool.wait`` / ``worker.execute`` /
        ``worker.store`` spans (plus the solve's telemetry phases) to its
        own ``trace/{worker_id}.jsonl`` file.  No ``trace`` field -- the
        default -- keeps the execution on the exact pre-tracing path.
        """
        from ...runner import run

        try:
            item, payload = claim.load()
        except ValueError as exc:
            self.spool.quarantine(claim, str(exc))
            return False
        exporter = self._trace_exporter(claim, payload)
        started = time.time()
        queue_wait = max(0.0, started - float(payload.get("enqueued_at", started)))
        meta = {
            "worker_id": self.worker_id,
            "attempts": claim.attempts,
            "queue_wait_seconds": queue_wait,
        }
        run_options = dict(item.run_options)
        if exporter is not None:
            exporter.emit(
                "spool.wait", start=started - queue_wait, end=started,
                attrs={"attempts": claim.attempts},
            )
            from ...telemetry import Telemetry

            run_options["telemetry"] = Telemetry().attach_exporter(exporter)
        try:
            if exporter is None:
                result = run(item.spec, **run_options)
            else:
                with exporter.span(
                    "worker.execute", attrs={"attempts": claim.attempts}
                ):
                    result = run(item.spec, **run_options)
        except Exception as exc:  # noqa: BLE001 - any run failure is the job's
            self.failed += 1
            if claim.attempts >= int(payload.get("max_attempts", 1)):
                meta["error"] = f"{type(exc).__name__}: {exc}"
                self.spool.complete(claim, meta)
            else:
                self.spool.publish(
                    item,
                    attempts=claim.attempts + 1,
                    max_attempts=int(payload.get("max_attempts", 1)),
                    trace=payload.get("trace"),
                )
                self.spool.steal(claim)
            if exporter is not None:
                exporter.close()
            return False
        meta["execute_seconds"] = time.time() - started
        # Result first, marker second: a done marker *guarantees* the store
        # record exists.  Re-executions (stolen leases) rewrite identical
        # bytes under the same run_key, so the order is safe to repeat.
        if exporter is None:
            self.spool.store.put(item, result)
        else:
            with exporter.span("worker.store"):
                self.spool.store.put(item, result)
            exporter.close()
        self.spool.complete(claim, meta)
        self.executed += 1
        return True

    def _trace_exporter(self, claim: SpoolClaim, payload: dict):
        """A per-claim span exporter continuing the payload's trace, or
        ``None`` for the untraced (default) path."""
        from ...obs.trace import SpanExporter, TraceContext

        context = TraceContext.from_dict(payload.get("trace"))
        if context is None:
            return None
        return SpanExporter(
            self.spool.trace_path(self.worker_id),
            context=context,
            attrs={"worker_id": self.worker_id, "index": claim.index},
        )

    # ---------------------------------------------------------- the loop
    def run(self) -> int:
        """Serve the spool until stopped; returns the number of executed jobs.

        Exits when the STOP marker appears (after finishing the current
        job), after ``max_jobs`` executions, or after ``idle_exit_seconds``
        of empty queue.  A heartbeat thread keeps the worker's liveness
        file fresh even through long-running solves.
        """
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(self.heartbeat_seconds):
                self.spool.heartbeat(self.worker_id)

        self.spool.heartbeat(self.worker_id, {"started_at": time.time()})
        beater = threading.Thread(target=beat, name="spool-heartbeat", daemon=True)
        beater.start()
        idle_since = time.time()
        try:
            while True:
                if self.spool.stop_requested():
                    break
                if self.max_jobs is not None and self.executed >= self.max_jobs:
                    break
                claim = self.spool.claim_next(self.worker_id)
                if claim is None:
                    if (
                        self.idle_exit_seconds is not None
                        and time.time() - idle_since > self.idle_exit_seconds
                    ):
                        break
                    time.sleep(self.poll_seconds)
                    continue
                self.run_claim(claim)
                idle_since = time.time()
        finally:
            stop.set()
            beater.join(timeout=2 * self.heartbeat_seconds)
            self.spool.retire(self.worker_id)
        return self.executed


def run_worker(
    spool_dir: str | Path,
    *,
    worker_id: str | None = None,
    poll_seconds: float = 0.2,
    heartbeat_seconds: float = 1.0,
    max_jobs: int | None = None,
    idle_exit_seconds: float | None = None,
) -> int:
    """Entry point behind ``unsnap worker``: serve a spool until stopped."""
    worker = SpoolWorker(
        spool_dir,
        worker_id=worker_id,
        poll_seconds=poll_seconds,
        heartbeat_seconds=heartbeat_seconds,
        max_jobs=max_jobs,
        idle_exit_seconds=idle_exit_seconds,
    )
    return worker.run()
