"""Machine descriptions for the node performance model.

The paper's results were recorded on a single node of the Cray XC40 "Swan":
a dual-socket Intel Xeon Platinum 8176 (Skylake) with 28 cores per socket at
2.1 GHz and 192 GB of DDR4-2666.  :func:`skylake_8176_node` encodes that
node; other machines can be described with :class:`MachineModel` directly to
explore how the concurrency schemes behave elsewhere (one of UnSNAP's stated
purposes).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineModel", "skylake_8176_node"]


@dataclass(frozen=True)
class MachineModel:
    """A simple throughput/bandwidth description of one compute node.

    Attributes
    ----------
    name:
        Human-readable identifier.
    num_cores:
        Physical cores of the node (the paper threads up to this count,
        without hyper-threading).
    frequency_ghz:
        Sustained clock under vector load.
    simd_doubles:
        FP64 lanes per SIMD instruction (8 for AVX-512).
    fma_per_cycle:
        Fused multiply-add instructions issued per cycle per core.
    l1_kb, l2_kb, llc_mb:
        Cache capacities (L1 and L2 per core, LLC per socket).
    stream_bandwidth_gbs:
        Aggregate sustainable memory bandwidth of the node (STREAM triad).
    per_core_bandwidth_gbs:
        Bandwidth a single core can extract on its own (concurrency-limited).
    vector_efficiency:
        Fraction of peak vector throughput the assemble/solve kernel attains
        (covers non-FMA operations, remainders of short node loops, and the
        divides in the elimination).
    """

    name: str
    num_cores: int
    frequency_ghz: float
    simd_doubles: int
    fma_per_cycle: int
    l1_kb: float
    l2_kb: float
    llc_mb: float
    stream_bandwidth_gbs: float
    per_core_bandwidth_gbs: float
    vector_efficiency: float = 0.25

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        if min(self.frequency_ghz, self.stream_bandwidth_gbs, self.per_core_bandwidth_gbs) <= 0:
            raise ValueError("rates must be positive")
        if not 0.0 < self.vector_efficiency <= 1.0:
            raise ValueError("vector_efficiency must be in (0, 1]")

    # ----------------------------------------------------------------- rates
    def peak_core_gflops(self) -> float:
        """Peak FP64 GFLOP/s of one core (2 FLOPs per FMA)."""
        return self.frequency_ghz * self.simd_doubles * self.fma_per_cycle * 2.0

    def sustained_core_gflops(self) -> float:
        """Sustained GFLOP/s of one core for the sweep kernel."""
        return self.peak_core_gflops() * self.vector_efficiency

    def sustained_gflops(self, threads: int) -> float:
        """Sustained GFLOP/s of ``threads`` cores."""
        threads = self._clamp_threads(threads)
        return self.sustained_core_gflops() * threads

    def bandwidth_gbs(self, threads: int) -> float:
        """Aggregate memory bandwidth available to ``threads`` cores.

        Bandwidth grows with the number of requesting cores until the node's
        STREAM limit saturates -- the usual shape on Skylake-class nodes.
        """
        threads = self._clamp_threads(threads)
        return min(self.stream_bandwidth_gbs, self.per_core_bandwidth_gbs * threads)

    def l1_bytes(self) -> float:
        return self.l1_kb * 1024.0

    def l2_bytes(self) -> float:
        return self.l2_kb * 1024.0

    def _clamp_threads(self, threads: int) -> int:
        if threads < 1:
            raise ValueError("threads must be >= 1")
        return min(int(threads), self.num_cores)


def skylake_8176_node() -> MachineModel:
    """The dual-socket Xeon Platinum 8176 node used by the paper ("Swan")."""
    return MachineModel(
        name="2x Intel Xeon Platinum 8176 (Skylake), 2.1 GHz, DDR4-2666",
        num_cores=56,
        frequency_ghz=2.1,
        simd_doubles=8,
        fma_per_cycle=2,
        l1_kb=32.0,
        l2_kb=1024.0,
        llc_mb=38.5,
        stream_bandwidth_gbs=205.0,
        per_core_bandwidth_gbs=12.0,
        vector_efficiency=0.25,
    )
