"""Angular-flux data layouts and their stride analysis.

The paper stores the angular flux, scalar flux and source arrays with extents
matching the loop ordering of the sweep, and shows that the choice controls
how much *contiguous, predictable* memory each indirect element access
touches:

* ``angle/element/group`` layout (group and node fastest within an element):
  adjacent element indices are ``G * N * 8`` bytes apart -- 4 kB for linear
  elements with 64 groups, 32 kB for cubic -- so every indirect access into
  the schedule bucket streams a long contiguous block.
* ``angle/group/element`` layout (element and node fastest within a group):
  adjacent element indices are only ``N * 8`` bytes apart -- 64 B (one cache
  line) for linear elements -- so the indirect accesses look random to the
  prefetchers.

The efficiency factor below turns the contiguous-run length into the fraction
of the STREAM bandwidth the access pattern sustains; the constants are not
fitted to the paper's curves, only the run lengths are.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fem.lagrange import nodes_per_element

__all__ = ["DataLayout", "LAYOUT_ELEMENT_MAJOR", "LAYOUT_GROUP_MAJOR"]

#: Bytes of lost/prefetch-miss traffic charged at every discontinuity of the
#: access stream (a couple of cache lines plus a DRAM page activation).
_DISCONTINUITY_PENALTY_BYTES = 256.0


@dataclass(frozen=True)
class DataLayout:
    """One ordering of the angular-flux array extents.

    Attributes
    ----------
    name:
        The paper's loop-order label, e.g. ``"angle/element/group"`` (the
        extent order is angle, element, group, node with node fastest).
    group_fastest:
        ``True`` when the group index moves faster than the element index in
        memory (the ``angle/element/group`` layout).
    """

    name: str
    group_fastest: bool

    def element_stride_bytes(self, order: int, num_groups: int) -> float:
        """Distance in memory between the same node of adjacent elements."""
        n = nodes_per_element(order)
        if self.group_fastest:
            return 8.0 * n * num_groups
        return 8.0 * n

    def contiguous_run_bytes(self, order: int, num_groups: int, group_loop_inner: bool) -> float:
        """Contiguous bytes touched per indirect element access.

        With the group-fastest layout and the group loop innermost, one
        element visit streams all groups and nodes (``G*N*8`` bytes); with
        the element-fastest layout each group visit touches only ``N*8``
        bytes before jumping to another element.
        """
        n = nodes_per_element(order)
        if self.group_fastest and group_loop_inner:
            return 8.0 * n * num_groups
        return 8.0 * n

    def access_efficiency(self, order: int, num_groups: int, group_loop_inner: bool) -> float:
        """Fraction of STREAM bandwidth sustained by this access pattern."""
        run = self.contiguous_run_bytes(order, num_groups, group_loop_inner)
        return run / (run + _DISCONTINUITY_PENALTY_BYTES)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: The two layouts studied in Figures 3 and 4.
LAYOUT_ELEMENT_MAJOR = DataLayout(name="angle/element/group", group_fastest=True)
LAYOUT_GROUP_MAJOR = DataLayout(name="angle/group/element", group_fastest=False)
