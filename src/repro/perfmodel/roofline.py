"""Roofline estimates for the assemble/solve kernel.

The paper characterises the linear-element kernel as strongly memory bound
(arithmetic intensity around 0.25 FLOP/byte under the Roofline model) and
notes that higher orders raise the FLOP count faster than the traffic, moving
the kernel towards the compute bound -- which is why the GE-vs-LAPACK
comparison flips with order (Table II) and why the thread-scaling curves of
Figure 4 keep improving at high thread counts.
"""

from __future__ import annotations

from .machine import MachineModel
from .workload import SweepWorkload

__all__ = ["arithmetic_intensity", "roofline_gflops", "machine_balance", "is_memory_bound"]


def arithmetic_intensity(workload: SweepWorkload, l2_bytes: float = 1 << 20) -> float:
    """FLOPs per byte of DRAM traffic of one element-angle-group item."""
    total_bytes = workload.total_bytes(l2_bytes)
    if total_bytes <= 0:
        raise ValueError("workload byte count must be positive")
    return workload.total_flops() / total_bytes


def machine_balance(machine: MachineModel, threads: int | None = None) -> float:
    """FLOPs per byte the machine can sustain (the roofline ridge point)."""
    threads = machine.num_cores if threads is None else threads
    return machine.sustained_gflops(threads) / machine.bandwidth_gbs(threads)


def roofline_gflops(
    machine: MachineModel, workload: SweepWorkload, threads: int | None = None
) -> float:
    """Attainable GFLOP/s of the kernel under the classic roofline."""
    threads = machine.num_cores if threads is None else threads
    ai = arithmetic_intensity(workload, machine.l2_bytes())
    return min(machine.sustained_gflops(threads), ai * machine.bandwidth_gbs(threads))


def is_memory_bound(
    machine: MachineModel, workload: SweepWorkload, threads: int | None = None
) -> bool:
    """True when the kernel sits left of the roofline ridge point."""
    threads = machine.num_cores if threads is None else threads
    return arithmetic_intensity(workload, machine.l2_bytes()) < machine_balance(machine, threads)
