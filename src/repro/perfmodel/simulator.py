"""Thread-scaling simulator for the assemble/solve portion of the sweep.

For a problem specification, a machine description and a threading scheme the
simulator predicts the wall-clock time of the assemble/solve routine as a
function of the thread count by walking the *actual* bucket schedule of the
mesh (the same tlevel buckets the real sweep uses) and charging each bucket

* a **compute time** -- critical-path work items (which encode the OpenMP
  semantics of the scheme, including the ``collapse(2)`` benefit for small
  buckets and the load imbalance of large thread counts) divided by the
  sustained per-core throughput, and
* a **memory time** -- the bucket's DRAM traffic divided by the bandwidth the
  active threads can draw, derated by the access-efficiency factor of the
  chosen data layout (the 64 B vs 4 kB vs 32 kB stride effect of the paper).

The bucket time is the maximum of the two (a bulk-synchronous roofline), and
bucket times are summed over angles, octants and inner iterations.  Nothing
is fitted to the paper's measurements; the model exists to reproduce the
*shape* of Figures 3 and 4 from first principles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..angular.quadrature import snap_dummy_quadrature
from ..config import ProblemSpec
from ..fem.element import HexElementFactors
from ..fem.reference import ReferenceElement
from ..mesh.builder import StructuredGridSpec, build_snap_mesh
from ..sweepsched.schedule import build_sweep_schedule
from .machine import MachineModel, skylake_8176_node
from .schemes import ThreadingScheme
from .workload import SweepWorkload

__all__ = ["ScalingPoint", "SweepPerformanceModel"]


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a thread-scaling curve."""

    threads: int
    seconds: float
    compute_seconds: float
    memory_seconds: float

    @property
    def bound(self) -> str:
        """Which resource limits this point ("compute" or "memory")."""
        return "compute" if self.compute_seconds >= self.memory_seconds else "memory"


@dataclass
class SweepPerformanceModel:
    """Predicts assemble/solve time of the sweep for a problem and machine.

    Parameters
    ----------
    spec:
        The problem specification (grid, order, angles, groups, inners).
    machine:
        Node description; defaults to the paper's Skylake 8176 node.
    bucket_sizes:
        Optional explicit wavefront sizes (one entry per bucket of one
        representative angle).  When omitted they are computed from the real
        sweep schedule of the specified mesh, which is exact but requires
        building the mesh; the schedule depends only on the mesh and twist,
        not on the element order, so the order-1 geometry is used.
    """

    spec: ProblemSpec
    machine: MachineModel = field(default_factory=skylake_8176_node)
    bucket_sizes: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.bucket_sizes is None:
            self.bucket_sizes = self._schedule_bucket_sizes()
        self.bucket_sizes = np.asarray(self.bucket_sizes, dtype=np.int64)
        if self.bucket_sizes.sum() != self.spec.num_cells:
            raise ValueError(
                "bucket sizes must partition the mesh cells "
                f"({self.bucket_sizes.sum()} != {self.spec.num_cells})"
            )
        self.workload = SweepWorkload(order=self.spec.order, num_groups=self.spec.num_groups)

    # ----------------------------------------------------------- schedule data
    def _schedule_bucket_sizes(self) -> np.ndarray:
        """Bucket sizes of one representative angle of the real schedule."""
        spec = self.spec
        mesh = build_snap_mesh(
            StructuredGridSpec(spec.nx, spec.ny, spec.nz, spec.lx, spec.ly, spec.lz),
            max_twist=spec.max_twist,
            twist_axis=spec.twist_axis,
        )
        ref = ReferenceElement(1)
        factors = HexElementFactors.build(mesh.cell_vertices(), ref)
        quadrature = snap_dummy_quadrature(1)
        schedule = build_sweep_schedule(mesh, factors, quadrature)
        return schedule.for_angle(0).bucket_sizes()

    # --------------------------------------------------------------- modelling
    def bucket_time(
        self, scheme: ThreadingScheme, bucket_size: int, threads: int
    ) -> tuple[float, float]:
        """(compute, memory) seconds of one bucket for one angle."""
        groups = self.spec.num_groups
        wall_items = scheme.wall_iterations(bucket_size, groups, threads)
        flops_per_item = self.workload.total_flops()
        compute = wall_items * flops_per_item / (self.machine.sustained_core_gflops() * 1e9)

        streams = scheme.concurrent_streams(bucket_size, groups, threads)
        bandwidth = self.machine.bandwidth_gbs(streams) * 1e9
        efficiency = scheme.layout.access_efficiency(
            self.spec.order, groups, scheme.group_loop_inner
        )
        total_bytes = bucket_size * groups * self.workload.total_bytes(self.machine.l2_bytes())
        memory = total_bytes / (bandwidth * efficiency)
        return compute, memory

    def sweep_time(self, scheme: ThreadingScheme, threads: int) -> ScalingPoint:
        """Predicted assemble/solve time of the whole run (all inners)."""
        threads = min(int(threads), self.machine.num_cores)
        if threads < 1:
            raise ValueError("threads must be >= 1")
        compute_total = 0.0
        memory_total = 0.0
        elapsed_total = 0.0
        angle_multiplier = 8 * self.spec.angles_per_octant
        if scheme.thread_angles:
            # Angles of an octant processed concurrently, but the atomic
            # scalar-flux update serialises the accumulation: model it as no
            # speedup plus a contention penalty growing with the thread count.
            contention = 1.0 + 0.15 * (threads - 1)
        else:
            contention = 1.0
        for bucket_size in self.bucket_sizes.tolist():
            compute, memory = self.bucket_time(scheme, int(bucket_size), threads)
            compute_total += compute
            memory_total += memory
            elapsed_total += max(compute, memory)
        scale = angle_multiplier * self.spec.num_inners * self.spec.num_outers * contention
        return ScalingPoint(
            threads=threads,
            seconds=elapsed_total * scale,
            compute_seconds=compute_total * scale,
            memory_seconds=memory_total * scale,
        )

    def scaling_curve(
        self, scheme: ThreadingScheme, thread_counts: list[int]
    ) -> list[ScalingPoint]:
        """Thread-scaling curve for one scheme."""
        return [self.sweep_time(scheme, t) for t in thread_counts]

    def best_scheme(self, schemes: list[ThreadingScheme], threads: int) -> ThreadingScheme:
        """The scheme with the lowest predicted time at the given thread count."""
        times = [self.sweep_time(s, threads).seconds for s in schemes]
        return schemes[int(np.argmin(times))]
