"""Node performance model for the sweep concurrency study.

The paper's Figures 3 and 4 measure the assemble/solve time of the sweep on a
dual-socket Skylake node for six combinations of loop ordering, data layout
and OpenMP threading.  Those measurements cannot be faithfully repeated from
CPython (GIL, interpreter overhead, NumPy's own threading), so this package
provides an explicit analytic model of the node and of the sweep workload:

* :mod:`repro.perfmodel.machine` -- the machine description (cores, frequency,
  SIMD width, cache sizes, memory bandwidth) with the Skylake 8176 node of
  the paper as the default.
* :mod:`repro.perfmodel.workload` -- FLOP and byte counts of the
  assemble/solve kernel per element, angle and group, as a function of the
  element order.
* :mod:`repro.perfmodel.layouts` -- the two data layouts of the paper
  (element-major vs group-major angular-flux extents) and their stride
  analysis.
* :mod:`repro.perfmodel.schemes` -- the six loop-ordering/threading schemes of
  the figures' legend.
* :mod:`repro.perfmodel.simulator` -- the thread-scaling simulator combining
  work, bucket-limited parallelism, load imbalance, access efficiency and
  bandwidth saturation into a predicted assemble/solve time.
* :mod:`repro.perfmodel.roofline` -- arithmetic-intensity / roofline
  estimates (the paper quotes 0.25 FLOP/byte for the linear-element kernel).

Every quantity is derived from the problem specification and the machine
description; nothing is fitted to the paper's curves, so the model
reproduces *shapes* (which scheme wins, where scaling saturates) rather than
absolute seconds.
"""

from .machine import MachineModel, skylake_8176_node
from .workload import SweepWorkload
from .layouts import DataLayout, LAYOUT_ELEMENT_MAJOR, LAYOUT_GROUP_MAJOR
from .schemes import ThreadingScheme, paper_schemes
from .simulator import SweepPerformanceModel, ScalingPoint
from .roofline import arithmetic_intensity, roofline_gflops

__all__ = [
    "MachineModel",
    "skylake_8176_node",
    "SweepWorkload",
    "DataLayout",
    "LAYOUT_ELEMENT_MAJOR",
    "LAYOUT_GROUP_MAJOR",
    "ThreadingScheme",
    "paper_schemes",
    "SweepPerformanceModel",
    "ScalingPoint",
    "arithmetic_intensity",
    "roofline_gflops",
]
