"""FLOP and byte counts of the assemble/solve kernel.

The runtime of UnSNAP "is dominated by the assembly and solve of the local
linear system for each angle/element/group" (Section III-C).  The workload
model counts, per element-angle-group work item:

* **assembly FLOPs** -- combining the three gradient-matrix components with
  the direction cosines, adding ``sigma_t M``, accumulating the outflow-face
  matrices and forming the right-hand side; all of these are ``O(N^2)``
  operations on the ``N x N`` local matrix.
* **solve FLOPs** -- ``(2/3) N^3`` for the dense factorisation/solve, the
  figure quoted by the paper for LAPACK's ``dgesv``.
* **assembly bytes** -- the reads of the 13 coefficient arrays (pre-computed
  basis-pair integrals, cross sections, quadrature cosines, upwind angular
  flux) plus the write of the new nodal angular flux; this is what drags the
  arithmetic intensity down to the ~0.25 FLOP/byte the paper reports for
  linear elements.
* **solve bytes** -- the constructed matrix is small and stays in cache, so
  only matrices that exceed the L2 capacity add DRAM traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fem.lagrange import nodes_per_element

__all__ = ["SweepWorkload"]

#: Number of distinct coefficient arrays the assembly reads (Section III-C).
NUM_COEFFICIENT_ARRAYS = 13


@dataclass(frozen=True)
class SweepWorkload:
    """Work per element-angle-group item for a given element order.

    Parameters
    ----------
    order:
        Lagrange element order.
    num_groups:
        Energy groups (needed to amortise per-element reads over the group
        loop when the group loop is innermost).
    """

    order: int
    num_groups: int

    def __post_init__(self) -> None:
        if self.order < 1:
            raise ValueError("order must be >= 1")
        if self.num_groups < 1:
            raise ValueError("num_groups must be >= 1")

    # ------------------------------------------------------------------ sizes
    @property
    def nodes(self) -> int:
        """Local matrix dimension N = (p + 1)^3."""
        return nodes_per_element(self.order)

    @property
    def face_nodes(self) -> int:
        """Nodes on one face, (p + 1)^2."""
        return (self.order + 1) ** 2

    def matrix_bytes(self) -> int:
        """FP64 footprint of one local matrix (Table I)."""
        return self.nodes * self.nodes * 8

    # ------------------------------------------------------------------ FLOPs
    def assembly_flops(self) -> float:
        """FLOPs to assemble A and b for one element-angle-group item."""
        n = self.nodes
        nf = self.face_nodes
        streaming = 2.0 * 3.0 * n * n        # Omega . G (3 scaled additions)
        collision = 2.0 * n * n              # + sigma_t * M
        faces = 2.0 * 3.0 * 3.0 * nf * nf    # ~3 outflow faces, 3 components
        rhs = 2.0 * n * n + 2.0 * 3.0 * n * nf  # M S and upwind couplings
        return streaming + collision + faces + rhs

    def solve_flops(self) -> float:
        """FLOPs of the dense solve, 0.67 N^3 (paper, Section II-C)."""
        return (2.0 / 3.0) * float(self.nodes) ** 3

    def total_flops(self) -> float:
        return self.assembly_flops() + self.solve_flops()

    # ------------------------------------------------------------------ bytes
    def psi_bytes(self) -> float:
        """Angular-flux traffic: write own nodal values, read ~3 upwind traces."""
        return 8.0 * self.nodes * (1.0 + 3.0)

    def coefficient_bytes(self) -> float:
        """Reads of the pre-computed basis-pair integral arrays and small data.

        The mass matrix, the three gradient components and the face coupling
        matrices are unique per element but shared across the angle and group
        loops; with the group loop innermost they are read from memory once
        per element-angle and amortised over the groups.
        """
        n = self.nodes
        nf = self.face_nodes
        per_element_angle = 8.0 * (n * n + 3 * n * n + 6 * 3 * nf * nf)
        small_arrays = 8.0 * NUM_COEFFICIENT_ARRAYS  # cosines, sigma_t, weights, ...
        return per_element_angle / self.num_groups + small_arrays + 8.0 * n  # + source

    def assembly_bytes(self) -> float:
        return self.psi_bytes() + self.coefficient_bytes()

    def solve_bytes(self, l2_bytes: float = 1024.0 * 1024.0) -> float:
        """DRAM traffic of the solve: zero while the matrix is cache resident.

        Matrices larger than the L2 capacity (order >= 5 on Skylake) spill and
        are streamed once more.
        """
        matrix = float(self.matrix_bytes())
        return 0.0 if matrix <= l2_bytes else matrix

    def total_bytes(self, l2_bytes: float = 1024.0 * 1024.0) -> float:
        return self.assembly_bytes() + self.solve_bytes(l2_bytes)

    # -------------------------------------------------------------- aggregate
    def item_count(self, num_elements: int, num_angles: int) -> int:
        """Total element-angle-group work items of one sweep."""
        return num_elements * num_angles * self.num_groups

    def sweep_flops(self, num_elements: int, num_angles: int) -> float:
        return self.item_count(num_elements, num_angles) * self.total_flops()

    def sweep_bytes(self, num_elements: int, num_angles: int, l2_bytes: float = 1 << 20) -> float:
        return self.item_count(num_elements, num_angles) * self.total_bytes(l2_bytes)
