"""The six loop-ordering / threading schemes of Figures 3 and 4.

Each scheme fixes

* the **loop order / data layout** (``angle/element/group`` or
  ``angle/group/element`` -- the storage arrays always match the loop
  ordering, as in the paper), and
* **which loops are parallelised with OpenMP** (shown in bold in the paper's
  legend): the elements-in-bucket loop, the energy-group loop, or both
  collapsed with ``collapse(2)``.

Threading over angles within the octant is not part of the figures because
the atomic scalar-flux update made it slower than serial (Section IV-A.3); a
scheme constant is still provided so the ablation benchmark can quantify that
penalty with the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from .layouts import LAYOUT_ELEMENT_MAJOR, LAYOUT_GROUP_MAJOR, DataLayout

__all__ = ["ThreadingScheme", "paper_schemes", "angle_threading_scheme"]


@dataclass(frozen=True)
class ThreadingScheme:
    """One concurrency scheme for processing the local sweep schedule.

    Attributes
    ----------
    layout:
        The data layout / loop order.
    thread_elements:
        The elements-in-bucket loop is OpenMP parallel.
    thread_groups:
        The energy-group loop is OpenMP parallel.
    collapsed:
        Both loops are collapsed into one parallel iteration space
        (requires both ``thread_elements`` and ``thread_groups``).
    thread_angles:
        Angles within an octant are threaded (needs an atomic scalar-flux
        reduction; only used by the ablation model).
    """

    layout: DataLayout
    thread_elements: bool = False
    thread_groups: bool = False
    collapsed: bool = False
    thread_angles: bool = False

    def __post_init__(self) -> None:
        if self.collapsed and not (self.thread_elements and self.thread_groups):
            raise ValueError("a collapsed scheme must thread both elements and groups")
        if not (self.thread_elements or self.thread_groups or self.thread_angles):
            raise ValueError("at least one loop must be threaded")

    # ---------------------------------------------------------------- labels
    @property
    def label(self) -> str:
        """Legend label in the paper's style, bold loops marked with ``*``."""
        parts = []
        parts.append("*angle*" if self.thread_angles else "angle")
        if self.layout is LAYOUT_ELEMENT_MAJOR or self.layout.group_fastest:
            middle = ("element", self.thread_elements)
            inner = ("group", self.thread_groups)
        else:
            middle = ("group", self.thread_groups)
            inner = ("element", self.thread_elements)
        for name, threaded in (middle, inner):
            parts.append(f"*{name}*" if threaded else name)
        return "/".join(parts)

    @property
    def group_loop_inner(self) -> bool:
        """True when the group loop is the innermost of the two (layout order)."""
        return self.layout.group_fastest

    # ------------------------------------------------------------ scheduling
    def wall_iterations(self, bucket_size: int, num_groups: int, threads: int) -> float:
        """Element-group items on the critical path of one bucket.

        This encodes the OpenMP semantics of the three threading choices:
        threading one loop leaves the other serial inside each thread, while
        ``collapse(2)`` exposes the product iteration space (the paper's fix
        for small buckets).
        """
        if bucket_size < 0 or num_groups < 1 or threads < 1:
            raise ValueError("bucket_size, num_groups and threads must be positive")
        if bucket_size == 0:
            return 0.0
        if self.collapsed:
            return ceil(bucket_size * num_groups / threads)
        if self.thread_elements and not self.thread_groups:
            return ceil(bucket_size / threads) * num_groups
        if self.thread_groups and not self.thread_elements:
            return bucket_size * ceil(num_groups / threads)
        if self.thread_elements and self.thread_groups:
            # Nested parallelism without collapse behaves like threading the
            # outer of the two loops (the inner team is serialised).
            if self.group_loop_inner:
                return ceil(bucket_size / threads) * num_groups
            return bucket_size * ceil(num_groups / threads)
        # Angle-only threading: the whole bucket is serial per angle.
        return float(bucket_size * num_groups)

    def concurrent_streams(self, bucket_size: int, num_groups: int, threads: int) -> int:
        """Threads actually busy in a bucket (limits aggregate bandwidth)."""
        if self.collapsed:
            width = bucket_size * num_groups
        elif self.thread_elements:
            width = bucket_size
        elif self.thread_groups:
            width = num_groups
        else:
            width = 1
        return max(1, min(threads, width))


def paper_schemes() -> list[ThreadingScheme]:
    """The six schemes plotted in Figures 3 and 4 (legend order)."""
    return [
        # angle/element/group layout: thread elements; thread both (collapse);
        # thread groups.
        ThreadingScheme(layout=LAYOUT_ELEMENT_MAJOR, thread_elements=True),
        ThreadingScheme(
            layout=LAYOUT_ELEMENT_MAJOR, thread_elements=True, thread_groups=True, collapsed=True
        ),
        ThreadingScheme(layout=LAYOUT_ELEMENT_MAJOR, thread_groups=True),
        # angle/group/element layout: same three threading choices.
        ThreadingScheme(layout=LAYOUT_GROUP_MAJOR, thread_elements=True),
        ThreadingScheme(
            layout=LAYOUT_GROUP_MAJOR, thread_elements=True, thread_groups=True, collapsed=True
        ),
        ThreadingScheme(layout=LAYOUT_GROUP_MAJOR, thread_groups=True),
    ]


def angle_threading_scheme() -> ThreadingScheme:
    """The angle-threaded scheme (atomic scalar-flux update) for the ablation."""
    return ThreadingScheme(layout=LAYOUT_ELEMENT_MAJOR, thread_angles=True)
