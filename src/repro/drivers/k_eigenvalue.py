"""The k-eigenvalue power-iteration driver.

Solves the homogeneous eigenproblem ``(L - S) psi = (1/k) F phi`` where
``F phi = chi (nu_sigma_f . phi)`` is the isotropic fission source.  Each
power iteration performs one steady within/between-group solve through the
existing :class:`~repro.core.iteration.IterationController` with the fission
source of the previous iterate injected per ordinate (isotropically, through
the executor's ``angular_source`` hook), then updates the eigenvalue from
the fission-production ratio:

``k_{m+1} = k_m * <F phi_{m+1}> / <F phi_m>``.

The flux is renormalised to unit fission production after every update, so
``<F phi_m> = 1`` and the ratio reduces to the new production integral.  The
change of the normalised fission source between iterations yields the
standard dominance-ratio estimate ``||dF_m|| / ||dF_{m-1}||``.

Reflective problems lag the mirrored boundary traces through a single
:class:`~repro.core.sweep.BoundaryValues` table that persists across power
iterations, converging the reflected flux in the same fixed point; on a
spatially-flat (infinite-medium) problem every iterate stays exactly flat
and the converged ``k`` matches the analytic
:meth:`~repro.materials.cross_sections.CrossSections.k_infinity` to solver
tolerance -- the verification suite asserts 1e-8.
"""

from __future__ import annotations

import time

import numpy as np

from ..config import ProblemSpec
from ..core.assembly import AssemblyTimings
from ..core.balance import particle_balance
from ..core.iteration import IterationController, IterationHistory
from ..core.solver import TransportSolver
from ..core.sweep import BoundaryValues
from ..materials.source_terms import FixedSource, uniform_source
from ..telemetry import active, phase
from .base import (
    cell_average,
    merge_history,
    reject_angular_source,
    require_single_rank,
    resolve_driver_materials,
)
from .registry import register_driver

__all__ = ["k_eigenvalue_driver"]


@register_driver("k_eigenvalue", aliases=("k", "power", "keff"))
def k_eigenvalue_driver(
    spec: ProblemSpec,
    *,
    engine_obj,
    engine_name: str,
    num_threads: int = 1,
    octant_parallel: bool | None = None,
    store_angular_flux: bool = False,
    materials=None,
    fixed_source=None,
    quadrature=None,
    angular_source=None,
    telemetry=None,
):
    """Power iteration for the multiplication factor k-effective."""
    from ..runner import RunResult

    require_single_rank(spec, "k_eigenvalue")
    reject_angular_source(angular_source, "k_eigenvalue")
    if fixed_source is not None:
        raise ValueError(
            "k_eigenvalue solves the homogeneous eigenproblem; "
            "a fixed source is not accepted"
        )
    tel = active(telemetry)
    library = resolve_driver_materials(spec, materials)
    if not library.has_fission:
        raise ValueError(
            "k_eigenvalue needs fission data on every material; attach it "
            "with repro.materials.with_snap_fission_data or pass nu_sigma_f/chi"
        )

    with phase(tel, "setup"):
        solver = TransportSolver(
            spec,
            materials=library,
            fixed_source=uniform_source(spec.num_cells, library.num_groups, 0.0),
            quadrature=quadrature,
            engine=engine_obj,
            num_threads=num_threads,
            octant_parallel=octant_parallel,
            store_angular_flux=store_angular_flux,
            telemetry=tel,
        )
    executor = solver.executor
    controller = IterationController(
        executor=executor,
        materials=solver.materials,
        fixed_source=solver.fixed_source,
        num_inners=spec.num_inners,
        num_outers=spec.num_outers,
        inner_tolerance=spec.inner_tolerance,
        outer_tolerance=spec.outer_tolerance,
    )

    nsf = solver.materials.nu_sigma_f_per_cell()  # (E, G)
    chi = solver.materials.chi_per_cell()  # (E, G)
    weights = solver.node_weights  # (E, N)
    num_angles = solver.quadrature.num_angles
    shape = (solver.mesh.num_cells, solver.materials.num_groups, executor.num_nodes)

    def production(flux: np.ndarray) -> float:
        """Total fission production integral ``<F phi> = int nu_sigma_f phi``."""
        return float(np.einsum("egn,eg,en->", flux, nsf, weights))

    guess = spec.initial_flux_value if spec.initial_flux_value > 0.0 else 1.0
    phi = np.full(shape, guess)
    prod = production(phi)
    if prod <= 0.0:
        raise ValueError("the initial guess produces no fission source")
    phi /= prod

    boundary_values = None
    if executor.reflective is not None:
        # Seed the lagged ghost table with the flat initial iterate so a
        # spatially-flat problem stays exactly flat from the first sweep.
        boundary_values = executor.reflective.seed_flat(
            solver.mesh.boundary_faces(), guess / prod, solver.materials.num_groups
        )

    k = 1.0
    k_history: list[float] = []
    diffs: list[float] = []
    rate_prev: np.ndarray | None = None
    dominance: float | None = None
    history = IterationHistory()
    timings = AssemblyTimings()
    converged = False
    last_sweep = None

    t0 = time.perf_counter()
    with phase(tel, "solve"):
        for _ in range(spec.max_power_iters):
            rate = np.einsum("egn,eg->en", phi, nsf)  # (E, N) production rate
            fission_nodal = chi[:, :, None] * rate[:, None, :] / k  # (E, G, N)
            angular = np.broadcast_to(fission_nodal[None], (num_angles,) + shape)
            scalar, last_sweep, part, part_timings = controller.run(
                initial_flux=phi,
                boundary_values=boundary_values,
                angular_source=angular,
            )
            timings = timings.merge(part_timings)
            merge_history(history, part)
            with phase(tel, "power"):
                prod_new = production(scalar)
                if prod_new <= 0.0:
                    raise ValueError("fission production vanished during power iteration")
                # <F phi_m> is normalised to 1, so the update ratio is just
                # the new production integral.
                k_new = k * prod_new
                phi = scalar / prod_new
                rate_new = np.einsum("egn,eg->en", phi, nsf)
                if rate_prev is not None:
                    diffs.append(float(np.linalg.norm(rate_new - rate_prev)))
                    if len(diffs) >= 2 and diffs[-2] > 0.0:
                        dominance = diffs[-1] / diffs[-2]
                rate_prev = rate_new
                k_history.append(k_new)
                delta_k = abs(k_new - k)
                k = k_new
            if tel is not None:
                tel.incr("power_iterations")
            if (
                spec.k_tolerance > 0.0
                and len(k_history) >= 2
                and delta_k <= spec.k_tolerance
            ):
                converged = True
                break
    solve_seconds = time.perf_counter() - t0
    history.converged = converged

    assert last_sweep is not None
    scale = 1.0 / production(last_sweep.scalar_flux)
    leakage = last_sweep.leakage * scale
    angular_flux = last_sweep.angular_flux
    if angular_flux is not None:
        angular_flux.psi = angular_flux.psi * scale

    # Balance against the normalised eigen-source chi <F phi> / k: a
    # converged eigenpair satisfies the steady balance with the fission
    # source as emission.
    rate_avg = cell_average(
        chi[:, :, None] * np.einsum("egn,eg->en", phi, nsf)[:, None, :] / k,
        weights,
        solver.factors.volumes,
    )
    balance = particle_balance(
        scalar_flux=phi,
        node_weights=weights,
        materials=solver.materials,
        fixed=FixedSource(density=rate_avg),
        leakage=leakage,
        volumes=solver.factors.volumes,
    )
    return RunResult(
        scalar_flux=phi,
        cell_average_flux=cell_average(phi, weights, solver.factors.volumes),
        leakage=leakage,
        history=history,
        timings=timings,
        balance=balance,
        setup_seconds=solver.setup_seconds,
        solve_seconds=solve_seconds,
        num_ranks=1,
        messages=0,
        bytes_exchanged=0,
        engine=engine_name,
        solver=spec.solver,
        spec=spec,
        angular_flux=angular_flux,
        telemetry=tel,
        k_effective=k,
        k_history=k_history,
        dominance_ratio=dominance,
    )
