"""The driver contract and shared helpers.

A *driver* is the outer loop of a solve: it decides what sequence of sweeps
to run and what sources to feed them, and folds the outcome into a single
:class:`~repro.runner.RunResult`.  The :func:`repro.run` facade normalises
its inputs (telemetry instance, resolved engine object and reporting name)
and hands everything to the driver resolved from ``mode`` /
``spec.driver``.

Driver signature
----------------
Every registered driver is a callable::

    driver(spec, *,
           engine_obj, engine_name,
           num_threads, octant_parallel, store_angular_flux,
           materials, fixed_source, quadrature, angular_source,
           telemetry) -> RunResult

with the same semantics as the corresponding :func:`repro.run` keyword
arguments; ``engine_obj`` is the resolved engine instance, ``engine_name``
its registry name for reporting, and ``telemetry`` is either an *enabled*
:class:`~repro.telemetry.Telemetry` or ``None``.  Drivers own the
``setup``/``solve`` phase envelope so reports from every driver nest the
sweep breakdown (``solve.source``/``solve.sweep``/``solve.convergence``)
identically; driver-specific bookkeeping goes into sibling leaf phases
(``solve.power``, ``solve.step``) with matching counters
(``power_iterations``, ``time_steps``).

Determinism contract: a driver must produce bit-identical results for any
``num_threads``, any backend and any engine family configuration the
underlying sweeps guarantee it for -- which is automatic as long as all
numerical work happens through :class:`~repro.core.iteration.
IterationController` / :class:`~repro.core.sweep.SweepExecutor` and any
driver-level reductions use fixed-order numpy operations.
"""

from __future__ import annotations

import numpy as np

from ..config import ProblemSpec
from ..core.iteration import IterationHistory
from ..materials.cross_sections import MaterialLibrary
from ..materials.library import snap_driver_library

__all__ = [
    "require_single_rank",
    "reject_angular_source",
    "resolve_driver_materials",
    "merge_history",
    "cell_average",
]


def require_single_rank(spec: ProblemSpec, driver_name: str) -> None:
    """Drivers that lag reflective/previous-step state run on one rank."""
    if spec.npex * spec.npey > 1:
        raise ValueError(
            f"the {driver_name} driver supports single-rank runs only "
            f"(got npex*npey = {spec.npex * spec.npey}); set npex=npey=1"
        )


def reject_angular_source(angular_source, driver_name: str) -> None:
    """Drivers that own the per-ordinate source reject the MMS hook."""
    if angular_source is not None:
        raise ValueError(
            f"the {driver_name} driver builds its own angular source; "
            "the angular_source hook is only available with fixed_source"
        )


def resolve_driver_materials(spec: ProblemSpec, materials) -> MaterialLibrary:
    """The caller's materials, or the option-1 library with driver data.

    The default driver library carries the artificial fission data and group
    speeds on top of the fixed-source option-1 cross sections, synthesised
    purely from the spec -- so distributed workers rebuild identical data.
    """
    if materials is not None:
        return materials
    return snap_driver_library(spec.num_groups, spec.scattering_ratio)


def merge_history(total: IterationHistory, part: IterationHistory) -> None:
    """Append one driver iteration's inner/outer record to the running one."""
    total.inner_errors.extend(part.inner_errors)
    total.outer_errors.extend(part.outer_errors)
    total.inners_per_outer.extend(part.inners_per_outer)
    total.converged = part.converged


def cell_average(nodal: np.ndarray, node_weights: np.ndarray, volumes: np.ndarray) -> np.ndarray:
    """Collapse an ``(E, G, N)`` nodal field to ``(E, G)`` cell averages."""
    return np.einsum("egn,en->eg", nodal, node_weights) / volumes[:, None]
