"""Outer-loop drivers: how sweeps compose into a solve.

The paper's workload is a single steady fixed-source iteration; this package
generalises the outer loop behind a registry so new solve *modes* plug into
every existing surface (facade, deck, CLI, campaign axes, verification,
benchmarks, telemetry) through registration alone:

* ``fixed_source`` -- the steady inner/outer source iteration (default);
* ``k_eigenvalue`` -- power iteration for the multiplication factor, with
  per-iteration ``k`` history and a dominance-ratio estimate;
* ``time_dependent`` -- backward-Euler stepping reusing the factor cache
  across steps.

Select a driver with ``ProblemSpec(driver=...)``, ``repro.run(spec,
mode=...)``, the deck's ``[driver]`` section or ``unsnap run --driver``;
register new ones with :func:`register_driver` (see :mod:`repro.drivers.
base` for the callable contract).
"""

from .base import (
    cell_average,
    merge_history,
    reject_angular_source,
    require_single_rank,
    resolve_driver_materials,
)
from .registry import (
    DRIVERS,
    available_drivers,
    driver_listing,
    get_driver,
    register_driver,
)

# Importing the built-in driver modules registers them.
from .fixed_source import fixed_source_driver
from .k_eigenvalue import k_eigenvalue_driver
from .time_dependent import time_dependent_driver

__all__ = [
    "DRIVERS",
    "register_driver",
    "get_driver",
    "available_drivers",
    "driver_listing",
    "fixed_source_driver",
    "k_eigenvalue_driver",
    "time_dependent_driver",
    "require_single_rank",
    "reject_angular_source",
    "resolve_driver_materials",
    "merge_history",
    "cell_average",
]
