"""The steady fixed-source driver (the paper's workload; the default).

This is the original :func:`repro.run` body extracted behind the driver
contract: one inner/outer source iteration, dispatched to the single-rank
:class:`~repro.core.solver.TransportSolver` or the multi-rank
:class:`~repro.parallel.block_jacobi.BlockJacobiDriver` on
``spec.npex * spec.npey``.  Every result it produced before the extraction
is reproduced bit for bit -- the fixed-source goldens and the conformance
matrix guard that contract.
"""

from __future__ import annotations

import time

from ..config import ProblemSpec
from ..core.iteration import IterationHistory
from ..core.solver import TransportSolver
from ..parallel.block_jacobi import BlockJacobiDriver
from ..telemetry import active, phase
from .registry import register_driver

__all__ = ["fixed_source_driver"]


@register_driver("fixed_source", aliases=("steady", "source"))
def fixed_source_driver(
    spec: ProblemSpec,
    *,
    engine_obj,
    engine_name: str,
    num_threads: int = 1,
    octant_parallel: bool | None = None,
    store_angular_flux: bool = False,
    materials=None,
    fixed_source=None,
    quadrature=None,
    angular_source=None,
    telemetry=None,
):
    """Steady inner/outer source iteration (single rank or block Jacobi)."""
    from ..runner import RunResult

    tel = active(telemetry)

    if spec.npex * spec.npey > 1:
        if store_angular_flux:
            raise ValueError("store_angular_flux is not supported for multi-rank runs")
        if angular_source is not None:
            raise ValueError("angular_source is not supported for multi-rank runs")
        t0 = time.perf_counter()
        with phase(tel, "setup"):
            driver = BlockJacobiDriver(
                spec,
                materials=materials,
                fixed_source=fixed_source,
                quadrature=quadrature,
                engine=engine_obj,
                num_threads=num_threads,
                octant_parallel=octant_parallel,
                telemetry=tel,
            )
        setup_seconds = time.perf_counter() - t0
        with phase(tel, "solve"):
            result = driver.solve()
        history = IterationHistory(
            inner_errors=result.inner_errors,
            outer_errors=result.outer_errors,
            inners_per_outer=result.inners_per_outer,
            converged=bool(
                spec.outer_tolerance > 0.0
                and result.outer_errors
                and result.outer_errors[-1] <= spec.outer_tolerance
            ),
        )
        return RunResult(
            scalar_flux=result.scalar_flux,
            cell_average_flux=result.cell_average_flux,
            leakage=result.leakage,
            history=history,
            timings=result.timings,
            balance=result.balance,
            setup_seconds=setup_seconds,
            solve_seconds=result.wall_seconds,
            num_ranks=result.num_ranks,
            messages=result.messages,
            bytes_exchanged=result.bytes_exchanged,
            engine=engine_name,
            solver=spec.solver,
            spec=spec,
            telemetry=tel,
        )

    with phase(tel, "setup"):
        solver = TransportSolver(
            spec,
            materials=materials,
            fixed_source=fixed_source,
            quadrature=quadrature,
            engine=engine_obj,
            num_threads=num_threads,
            octant_parallel=octant_parallel,
            store_angular_flux=store_angular_flux,
            telemetry=tel,
        )
    with phase(tel, "solve"):
        result = solver.solve(angular_source=angular_source)
    return RunResult(
        scalar_flux=result.scalar_flux,
        cell_average_flux=result.cell_average_flux,
        leakage=result.leakage,
        history=result.history,
        timings=result.timings,
        balance=result.balance,
        setup_seconds=result.setup_seconds,
        solve_seconds=result.solve_seconds,
        num_ranks=1,
        messages=0,
        bytes_exchanged=0,
        engine=engine_name,
        solver=spec.solver,
        spec=spec,
        angular_flux=result.angular_flux,
        telemetry=tel,
    )
