"""The outer-loop driver registry.

The sixth registry-driven subsystem (after engines, solvers, backends,
benchmark cases and verification suites): an instance of the generic
:class:`repro.registry.Registry` holding *drivers* -- the outer loops that
orchestrate sweeps into a complete solve.  The built-ins are registered on
import of :mod:`repro.drivers`:

* ``fixed_source`` -- the steady inner/outer source iteration (the paper's
  workload; the default).
* ``k_eigenvalue`` -- power iteration for the multiplication factor.
* ``time_dependent`` -- backward-Euler time stepping.

A driver is a callable with the signature documented in
:mod:`repro.drivers.base`; registering one makes it reachable from
``ProblemSpec.driver``, ``repro.run(..., mode=...)``, the input deck's
``[driver]`` section, ``unsnap run --driver`` and every campaign axis.
"""

from __future__ import annotations

from ..registry import Registry

__all__ = [
    "DRIVERS",
    "register_driver",
    "get_driver",
    "available_drivers",
    "driver_listing",
]


def _describe(driver) -> str:
    doc = getattr(driver, "__doc__", None) or ""
    return doc.strip().splitlines()[0] if doc.strip() else ""


DRIVERS = Registry("driver", describe=_describe)


def register_driver(name: str, *, aliases: tuple[str, ...] = (), overwrite: bool = False):
    """Class/function decorator registering an outer-loop driver.

    The decorated object must be callable with the driver signature (see
    :mod:`repro.drivers.base`).  Returns the object unchanged so modules can
    register their public API in place.
    """

    def decorator(driver):
        if not callable(driver):
            raise TypeError(f"driver {name!r} must be callable")
        DRIVERS.add(name, driver, aliases=aliases, overwrite=overwrite)
        return driver

    return decorator


def get_driver(name: str):
    """Resolve a driver by registry name or alias."""
    return DRIVERS.resolve(name)


def available_drivers() -> tuple[str, ...]:
    """Canonical names of every registered driver."""
    return DRIVERS.available()


def driver_listing() -> dict[str, dict]:
    """Name -> {description, aliases} mapping for CLI listings."""
    return DRIVERS.listing()
