"""The backward-Euler time-dependent driver.

Implicit (backward-Euler) discretisation of the time-dependent transport
equation ``(1/v) d psi/dt + L psi = S psi + q``: each step solves the steady
problem

``(L + 1/(v dt) - S) psi^{n+1} = q + psi^n / (v dt)``

through the existing iteration controller.  The ``1/(v_g dt)`` term is folded
into the total cross section once, before the solver is built
(:meth:`~repro.materials.cross_sections.MaterialLibrary.with_time_absorption`),
so the modified system matrix -- and any engine factor cache built on it
(e.g. the ``prefactorized`` engine's LU factors) -- is reused unchanged for
every step: the system is time-invariant, only the right-hand side moves.
The previous step's angular flux enters per ordinate through the executor's
``angular_source`` hook.

On a reflected, spatially-flat pure-absorber problem the discrete solution
is exactly ``phi^n = phi^0 / (1 + v sigma dt)^n``, the backward-Euler
approximation of the analytic decay ``phi(t) = phi^0 exp(-v sigma t)`` --
first-order accurate in ``dt``, which the verification suite asserts as an
observed convergence order.
"""

from __future__ import annotations

import time

import numpy as np

from ..config import ProblemSpec
from ..core.assembly import AssemblyTimings
from ..core.balance import particle_balance
from ..core.iteration import IterationController, IterationHistory
from ..core.solver import TransportSolver
from ..materials.source_terms import FixedSource, uniform_source
from ..telemetry import active, phase
from .base import (
    cell_average,
    merge_history,
    reject_angular_source,
    require_single_rank,
    resolve_driver_materials,
)
from .registry import register_driver

__all__ = ["time_dependent_driver"]


@register_driver("time_dependent", aliases=("time", "transient", "backward_euler"))
def time_dependent_driver(
    spec: ProblemSpec,
    *,
    engine_obj,
    engine_name: str,
    num_threads: int = 1,
    octant_parallel: bool | None = None,
    store_angular_flux: bool = False,
    materials=None,
    fixed_source=None,
    quadrature=None,
    angular_source=None,
    telemetry=None,
):
    """Backward-Euler time stepping over the steady sweep core."""
    from ..runner import RunResult

    require_single_rank(spec, "time_dependent")
    reject_angular_source(angular_source, "time_dependent")
    tel = active(telemetry)
    library = resolve_driver_materials(spec, materials)
    if not library.has_velocity:
        raise ValueError(
            "time_dependent needs group speeds on every material; attach "
            "them with repro.materials.with_snap_velocities or pass velocity"
        )
    dt = spec.dt
    n_steps = spec.num_time_steps

    with phase(tel, "setup"):
        solver = TransportSolver(
            spec,
            materials=library.with_time_absorption(dt),
            fixed_source=(
                fixed_source
                if fixed_source is not None
                else uniform_source(spec.num_cells, library.num_groups, spec.source_strength)
            ),
            quadrature=quadrature,
            engine=engine_obj,
            num_threads=num_threads,
            octant_parallel=octant_parallel,
            # The next step's source needs the full angular flux whether or
            # not the caller wants it on the result.
            store_angular_flux=True,
            telemetry=tel,
        )
    executor = solver.executor
    controller = IterationController(
        executor=executor,
        materials=solver.materials,
        fixed_source=solver.fixed_source,
        num_inners=spec.num_inners,
        num_outers=spec.num_outers,
        inner_tolerance=spec.inner_tolerance,
        outer_tolerance=spec.outer_tolerance,
    )

    inv_vdt = 1.0 / (solver.materials.velocity_per_cell() * dt)  # (E, G)
    num_angles = solver.quadrature.num_angles
    shape = (solver.mesh.num_cells, solver.materials.num_groups, executor.num_nodes)
    volumes = solver.factors.volumes
    weights = solver.node_weights

    phi = np.full(shape, spec.initial_flux_value)
    # Isotropic initial condition: psi^0 = phi^0 (quadrature weights sum to 1).
    psi_prev = np.full((shape[0], num_angles) + shape[1:], spec.initial_flux_value)

    boundary_values = None
    if executor.reflective is not None:
        # A flat initial state is a fixed point of the reflected sweep only
        # if the first sweep already sees its own mirror trace.
        boundary_values = executor.reflective.seed_flat(
            solver.mesh.boundary_faces(), spec.initial_flux_value, shape[1]
        )

    times: list[float] = []
    step_mean_flux: list[list[float]] = []
    snapshots: list[np.ndarray] | None = [] if spec.snapshot_every > 0 else None
    history = IterationHistory()
    timings = AssemblyTimings()
    phi_prev = phi
    last_sweep = None

    t0 = time.perf_counter()
    with phase(tel, "solve"):
        for step in range(1, n_steps + 1):
            source = psi_prev.transpose(1, 0, 2, 3) * inv_vdt[None, :, :, None]
            scalar, last_sweep, part, part_timings = controller.run(
                initial_flux=phi,
                boundary_values=boundary_values,
                angular_source=source,
            )
            timings = timings.merge(part_timings)
            merge_history(history, part)
            with phase(tel, "step"):
                phi_prev = phi
                phi = scalar
                psi_prev = last_sweep.angular_flux.psi
                times.append(step * dt)
                averages = cell_average(phi, weights, volumes)  # (E, G)
                step_mean_flux.append(
                    [float(x) for x in (volumes @ averages) / volumes.sum()]
                )
                if snapshots is not None and step % spec.snapshot_every == 0:
                    snapshots.append(phi.copy())
            if tel is not None:
                tel.incr("time_steps")
    solve_seconds = time.perf_counter() - t0

    assert last_sweep is not None
    # Balance for the final step: the lagged-flux source's isotropic
    # equivalent is phi^{n-1}/(v dt), folded into the emission density.
    emission = FixedSource(
        density=solver.fixed_source.density
        + cell_average(phi_prev, weights, volumes) * inv_vdt
    )
    balance = particle_balance(
        scalar_flux=phi,
        node_weights=weights,
        materials=solver.materials,
        fixed=emission,
        leakage=last_sweep.leakage,
        volumes=volumes,
    )
    return RunResult(
        scalar_flux=phi,
        cell_average_flux=cell_average(phi, weights, volumes),
        leakage=last_sweep.leakage,
        history=history,
        timings=timings,
        balance=balance,
        setup_seconds=solver.setup_seconds,
        solve_seconds=solve_seconds,
        num_ranks=1,
        messages=0,
        bytes_exchanged=0,
        engine=engine_name,
        solver=spec.solver,
        spec=spec,
        angular_flux=last_sweep.angular_flux if store_angular_flux else None,
        telemetry=tel,
        times=times,
        step_mean_flux=step_mean_flux,
        flux_snapshots=snapshots,
    )
