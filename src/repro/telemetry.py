"""Phase-level telemetry: wall-clock phases, counters and gauges.

The paper's claim is about *performance*, so the execution paths need an
instrument that can say where the time went -- not just the aggregate
assemble/solve split of :class:`~repro.core.assembly.AssemblyTimings`.  A
:class:`Telemetry` object is threaded through :func:`repro.run` ->
:class:`~repro.core.solver.TransportSolver` /
:class:`~repro.parallel.block_jacobi.BlockJacobiDriver` ->
:class:`~repro.core.iteration.IterationController` ->
:meth:`~repro.core.sweep.SweepExecutor.sweep` and records:

* **phases** -- nested wall-clock sections (``setup``, ``solve``,
  ``solve.source``, ``solve.sweep``, ``solve.halo``, ...), identified by the
  dotted path of the enclosing phases, with per-phase call counts;
* **counters** -- monotonically accumulated event counts (local solves,
  factor-cache hits/misses, halo bytes);
* **gauges** -- last-written point-in-time values (octant-pool occupancy).

Telemetry is strictly opt-in: every instrumented call site keeps the object
optional (``telemetry=None``) and guards with a single ``is None`` check (or
a no-op context manager), so a run without telemetry executes the exact same
arithmetic with no timer calls, no allocations and no locks on the hot path
-- the zero-overhead contract asserted by ``tests/bench/test_telemetry.py``.
Numerics are never affected either way: telemetry only ever *observes*.

Phase nesting is tracked per thread, so octant-pool workers incrementing
counters concurrently are safe (counter updates take a lock) while phase
paths stay well-formed on the thread that opened them.
"""

from __future__ import annotations

import threading
import time

__all__ = ["Telemetry", "PhaseTimer", "BucketSampler", "NULL_PHASE", "active", "phase"]


class _NullPhase:
    """Shared no-op context manager returned by disabled telemetry."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: The singleton no-op phase returned by :func:`phase` for ``None``.
NULL_PHASE = _NullPhase()


def active(telemetry: "Telemetry | None") -> "Telemetry | None":
    """Normalise an optional instrument for instrumented code: disabled
    instances become ``None``, so call sites need only one ``is None`` test
    (and must never use truthiness -- a fresh instrument is empty)."""
    return telemetry if telemetry is not None and telemetry.enabled else None


def phase(telemetry: "Telemetry | None", name: str):
    """``telemetry.phase(name)``, or the shared no-op context for ``None``.

    The standard guard for instrumented sections::

        tel = active(self.telemetry)
        with phase(tel, "source"):
            ...
    """
    return NULL_PHASE if telemetry is None else telemetry.phase(name)


class PhaseTimer:
    """Times one phase of one :class:`Telemetry` (use via ``tel.phase``)."""

    __slots__ = ("_telemetry", "_name", "_t0")

    def __init__(self, telemetry: "Telemetry", name: str):
        self._telemetry = telemetry
        self._name = name

    def __enter__(self) -> "PhaseTimer":
        self._telemetry._push(self._name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        seconds = time.perf_counter() - self._t0
        self._telemetry._pop(seconds)
        return False


class BucketSampler:
    """Deterministic per-bucket sampler for fine-grained sweep telemetry.

    Phase timers bracket whole sweeps; engines additionally offer *bucket
    sampling* -- timing a deterministic subset of their per-(angle, bucket)
    kernel invocations.  A Bresenham accumulator picks every ``1/rate``-th
    bucket with no RNG, so two identical runs sample identical buckets and
    the counters are reproducible.

    Engines obtain a sampler via :meth:`Telemetry.bucket_sampler`, which
    returns ``None`` when the instrument is disabled or the rate is zero --
    the standard ``is None`` guard keeps the rate-0 path free of timer calls
    and allocations (asserted by ``tests/bench/test_bucket_sampling.py``).
    """

    __slots__ = ("_telemetry", "rate", "_acc")

    def __init__(self, telemetry: "Telemetry", rate: float):
        self._telemetry = telemetry
        self.rate = rate
        self._acc = 0.0

    def want(self) -> bool:
        """True when the current bucket should be timed (advances the
        accumulator; call exactly once per bucket)."""
        self._acc += self.rate
        if self._acc >= 1.0:
            self._acc -= 1.0
            return True
        return False

    def record(self, seconds: float, systems: int) -> None:
        """Fold one sampled bucket's timing into the instrument's counters
        (``bucket_samples`` / ``bucket_sample_seconds`` /
        ``bucket_sample_systems``)."""
        tel = self._telemetry
        with tel._lock:
            tel.counters["bucket_samples"] = tel.counters.get("bucket_samples", 0) + 1
            tel.counters["bucket_sample_seconds"] = (
                tel.counters.get("bucket_sample_seconds", 0) + seconds
            )
            tel.counters["bucket_sample_systems"] = (
                tel.counters.get("bucket_sample_systems", 0) + systems
            )


class Telemetry:
    """Collects phase timings, counters and gauges of one run.

    Parameters
    ----------
    enabled:
        A disabled instance is a cheap universal no-op: ``phase`` returns the
        shared null context and ``incr``/``gauge`` return immediately, so an
        instrument can be handed around unconditionally and switched off in
        one place.
    bucket_sample_rate:
        Fraction of per-(angle, bucket) kernel invocations the engines time
        individually (0 disables bucket sampling entirely; 1 times every
        bucket).  See :class:`BucketSampler`.
    """

    def __init__(self, enabled: bool = True, bucket_sample_rate: float = 0.0):
        rate = float(bucket_sample_rate)
        if not 0.0 <= rate <= 1.0:
            raise ValueError("bucket_sample_rate must be within [0, 1]")
        self.enabled = bool(enabled)
        self.bucket_sample_rate = rate
        #: Dotted phase path -> accumulated wall seconds.
        self.phase_seconds: dict[str, float] = {}
        #: Dotted phase path -> number of times the phase was entered.
        self.phase_calls: dict[str, int] = {}
        #: Counter name -> accumulated value (ints stay ints).
        self.counters: dict[str, float] = {}
        #: Gauge name -> last written value.
        self.gauges: dict[str, float] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        #: Optional span exporter (see :class:`repro.obs.trace.SpanExporter`):
        #: when attached, every phase enter/exit additionally emits one
        #: ``unsnap-trace-v1`` span event.  ``None`` (the default) keeps the
        #: hooks on the exact pre-tracing path -- one ``is None`` test, no
        #: timer calls, no allocations -- mirroring the telemetry contract
        #: one level up.
        self.exporter = None
        self.exporter_context = None

    # -------------------------------------------------------------- tracing
    def attach_exporter(self, exporter, context=None) -> "Telemetry":
        """Attach a span exporter so phases export as trace spans.

        ``context`` optionally pins the trace/parent identity the phase
        spans belong to (e.g. the job's ``service.execute`` span); without
        it the exporter's own default context applies.  Returns ``self``
        for chaining.  Strictly additive: numerics are bit-identical with
        or without an exporter (asserted by the engine contract's
        telemetry clause).
        """
        self.exporter = exporter
        self.exporter_context = context
        return self

    # -------------------------------------------------------------- phases
    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def phase(self, name: str) -> "PhaseTimer | _NullPhase":
        """Context manager timing a (possibly nested) phase.

        Nested phases are recorded under the dotted path of their enclosing
        phases on the *same thread* (``solve.sweep``), so the breakdown is a
        tree flattened by path.
        """
        if not self.enabled:
            return NULL_PHASE
        return PhaseTimer(self, name)

    def _push(self, name: str) -> None:
        stack = self._stack()
        stack.append(f"{stack[-1]}.{name}" if stack else name)
        if self.exporter is not None:
            self.exporter.phase_started(stack[-1], self.exporter_context)

    def _pop(self, seconds: float) -> None:
        path = self._stack().pop()
        with self._lock:
            self.phase_seconds[path] = self.phase_seconds.get(path, 0.0) + seconds
            self.phase_calls[path] = self.phase_calls.get(path, 0) + 1
        if self.exporter is not None:
            self.exporter.phase_finished(path, seconds, self.exporter_context)

    # ------------------------------------------------------ bucket sampling
    def bucket_sampler(self) -> "BucketSampler | None":
        """A fresh :class:`BucketSampler`, or ``None`` when sampling is off.

        Engines request one sampler per ``sweep_angle`` call::

            sampler = None if tel is None else tel.bucket_sampler()
            ...
            sample = sampler is not None and sampler.want()

        ``None`` (disabled instrument, or ``bucket_sample_rate`` 0) keeps the
        bucket loop on the exact uninstrumented path.
        """
        if not self.enabled or self.bucket_sample_rate <= 0.0:
            return None
        return BucketSampler(self, self.bucket_sample_rate)

    # ---------------------------------------------------- counters / gauges
    def incr(self, counter: str, value: float = 1) -> None:
        """Accumulate ``value`` onto a named counter (thread-safe)."""
        if not self.enabled:
            return
        with self._lock:
            self.counters[counter] = self.counters.get(counter, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record a point-in-time value (last write wins)."""
        if not self.enabled:
            return
        with self._lock:
            self.gauges[name] = value

    # ------------------------------------------------------------- export
    def to_dict(self) -> dict:
        """JSON-safe export: phases (seconds + calls), counters, gauges.

        Keys are sorted so the export is deterministic; numeric values
        round-trip bit for bit through JSON (doubles serialise exactly).
        """
        return {
            "phases": {
                path: {
                    "seconds": self.phase_seconds[path],
                    "calls": self.phase_calls.get(path, 0),
                }
                for path in sorted(self.phase_seconds)
            },
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name] for name in sorted(self.gauges)},
        }

    def snapshot(self) -> dict:
        """Point-in-time :meth:`to_dict`, safe while a run is still mutating
        the instrument.

        :meth:`to_dict` reads the phase/counter dicts without the lock -- the
        normal export happens after the run.  The service gateway's progress
        stream instead samples a *live* instrument from another thread, so
        this variant takes the counter lock for a consistent copy.
        """
        with self._lock:
            return self.to_dict()

    @classmethod
    def from_dict(cls, data: dict) -> "Telemetry":
        """Rebuild a telemetry snapshot from :meth:`to_dict` output."""
        tel = cls()
        for path, entry in data.get("phases", {}).items():
            tel.phase_seconds[path] = float(entry["seconds"])
            tel.phase_calls[path] = int(entry.get("calls", 0))
        for name, value in data.get("counters", {}).items():
            tel.counters[name] = value
        for name, value in data.get("gauges", {}).items():
            tel.gauges[name] = value
        return tel

    def merge(self, other: "Telemetry") -> "Telemetry":
        """Fold another snapshot into this one (phases/counters add, gauges
        last-write-wins) and return ``self`` -- the multi-rank reduction."""
        with self._lock:
            for path, seconds in other.phase_seconds.items():
                self.phase_seconds[path] = self.phase_seconds.get(path, 0.0) + seconds
            for path, calls in other.phase_calls.items():
                self.phase_calls[path] = self.phase_calls.get(path, 0) + calls
            for name, value in other.counters.items():
                self.counters[name] = self.counters.get(name, 0) + value
            self.gauges.update(other.gauges)
        return self

    # ------------------------------------------------------------ reading
    def total_seconds(self, prefix: str = "") -> float:
        """Summed wall seconds of every *top-level* phase under ``prefix``."""
        depth = prefix.count(".") + 1 if prefix else 0
        total = 0.0
        for path, seconds in self.phase_seconds.items():
            if prefix and not path.startswith(f"{prefix}."):
                continue
            if path.count(".") == depth and (not prefix or path != prefix):
                total += seconds
        return total

    @property
    def empty(self) -> bool:
        """True when nothing was recorded yet.

        Deliberately *not* ``__bool__``: an instrument must stay truthy in
        ``if tel`` guards even before its first record.
        """
        return not (self.phase_seconds or self.counters or self.gauges)
