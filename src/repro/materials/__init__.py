"""Material and source data substrate.

SNAP (and therefore UnSNAP) uses artificial problem data auto-generated from
input parameters: a homogeneous material whose multigroup total cross section
grows slowly with group index, a down-scatter-dominant scattering matrix with
a fixed scattering ratio, and a uniform volumetric fixed source.  This
sub-package re-creates that data generation ("Source and Material Option 1"
in the paper's experiments) plus the general containers the solver consumes.
"""

from .cross_sections import CrossSections, MaterialLibrary
from .library import (
    pure_absorber,
    snap_driver_library,
    snap_option1_library,
    snap_option1_materials,
    with_snap_fission_data,
    with_snap_velocities,
)
from .source_terms import FixedSource, snap_option1_source, uniform_source

__all__ = [
    "CrossSections",
    "MaterialLibrary",
    "snap_option1_materials",
    "snap_option1_library",
    "pure_absorber",
    "with_snap_fission_data",
    "with_snap_velocities",
    "snap_driver_library",
    "FixedSource",
    "snap_option1_source",
    "uniform_source",
]
