"""Multigroup cross-section containers.

The transport equation needs, per material and energy group, the total cross
section ``sigma_t`` (probability of any interaction) and the group-to-group
scattering matrix ``sigma_s[g_from, g_to]`` (probability that an interaction
changes direction and/or energy into group ``g_to``).  Scattering is
isotropic in UnSNAP's experiments, so only the zeroth scattering moment is
stored.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CrossSections", "MaterialLibrary"]


@dataclass(frozen=True)
class CrossSections:
    """Multigroup cross sections of a single material.

    Attributes
    ----------
    sigma_t:
        ``(G,)`` total cross section per group.
    sigma_s:
        ``(G, G)`` isotropic scattering matrix; ``sigma_s[g_from, g_to]`` is
        the cross section for scattering *from* group ``g_from`` *to* group
        ``g_to``.
    name:
        Human-readable material name.
    """

    sigma_t: np.ndarray
    sigma_s: np.ndarray
    name: str = "material"

    def __post_init__(self) -> None:
        st = np.atleast_1d(np.asarray(self.sigma_t, dtype=float))
        ss = np.asarray(self.sigma_s, dtype=float)
        if ss.shape != (st.shape[0], st.shape[0]):
            raise ValueError(
                f"sigma_s must have shape (G, G) = ({st.shape[0]}, {st.shape[0]}), got {ss.shape}"
            )
        if np.any(st <= 0.0):
            raise ValueError("total cross sections must be positive")
        if np.any(ss < 0.0):
            raise ValueError("scattering cross sections must be non-negative")
        object.__setattr__(self, "sigma_t", st)
        object.__setattr__(self, "sigma_s", ss)

    @property
    def num_groups(self) -> int:
        return self.sigma_t.shape[0]

    @property
    def sigma_a(self) -> np.ndarray:
        """Absorption cross section per group (total minus total out-scatter)."""
        return self.sigma_t - self.sigma_s.sum(axis=1)

    def scattering_ratio(self) -> np.ndarray:
        """Per-group scattering ratio ``c_g = sum_g' sigma_s[g, g'] / sigma_t[g]``."""
        return self.sigma_s.sum(axis=1) / self.sigma_t

    def is_subcritical(self) -> bool:
        """True when every group scatters less than it removes (c < 1).

        Source iteration converges with spectral radius bounded by the
        maximum scattering ratio, so this is the condition under which the
        SNAP-style iteration is guaranteed to converge.
        """
        return bool(np.all(self.scattering_ratio() < 1.0))

    def infinite_medium_flux(self, source: np.ndarray) -> np.ndarray:
        """Analytic scalar flux of an infinite homogeneous medium.

        Solves ``(diag(sigma_t) - sigma_s^T) phi = q`` where ``q`` is the
        isotropic volumetric source per group.  Used by the integration tests
        as an exact reference solution.
        """
        q = np.asarray(source, dtype=float)
        if q.shape != (self.num_groups,):
            raise ValueError(f"source must have shape (G,) = ({self.num_groups},)")
        a = np.diag(self.sigma_t) - self.sigma_s.T
        return np.linalg.solve(a, q)


@dataclass
class MaterialLibrary:
    """A set of materials plus the per-cell material assignment.

    Attributes
    ----------
    materials:
        List of :class:`CrossSections`, indexed by material id.
    cell_material:
        ``(E,)`` material id of every cell.
    """

    materials: list[CrossSections]
    cell_material: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    def __post_init__(self) -> None:
        if not self.materials:
            raise ValueError("a material library needs at least one material")
        groups = {m.num_groups for m in self.materials}
        if len(groups) != 1:
            raise ValueError("all materials must have the same number of groups")
        self.cell_material = np.asarray(self.cell_material, dtype=np.int64)
        if self.cell_material.size and (
            self.cell_material.min() < 0 or self.cell_material.max() >= len(self.materials)
        ):
            raise ValueError("cell_material contains out-of-range material ids")

    @property
    def num_groups(self) -> int:
        return self.materials[0].num_groups

    @property
    def num_materials(self) -> int:
        return len(self.materials)

    def for_cells(self, num_cells: int) -> "MaterialLibrary":
        """Return a copy whose cell assignment covers ``num_cells`` cells.

        If no assignment was given, every cell gets material 0 (the SNAP
        "material option 1" homogeneous configuration).
        """
        if self.cell_material.size == num_cells:
            return self
        if self.cell_material.size == 0:
            assignment = np.zeros(num_cells, dtype=np.int64)
        else:
            raise ValueError(
                f"material assignment covers {self.cell_material.size} cells, "
                f"but the mesh has {num_cells}"
            )
        return MaterialLibrary(materials=self.materials, cell_material=assignment)

    def sigma_t_per_cell(self) -> np.ndarray:
        """``(E, G)`` total cross section of every cell."""
        table = np.stack([m.sigma_t for m in self.materials], axis=0)
        return table[self.cell_material]

    def sigma_s_per_cell(self) -> np.ndarray:
        """``(E, G, G)`` scattering matrix of every cell."""
        table = np.stack([m.sigma_s for m in self.materials], axis=0)
        return table[self.cell_material]
