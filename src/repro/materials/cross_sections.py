"""Multigroup cross-section containers.

The transport equation needs, per material and energy group, the total cross
section ``sigma_t`` (probability of any interaction) and the group-to-group
scattering matrix ``sigma_s[g_from, g_to]`` (probability that an interaction
changes direction and/or energy into group ``g_to``).  Scattering is
isotropic in UnSNAP's experiments, so only the zeroth scattering moment is
stored.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

__all__ = ["CrossSections", "MaterialLibrary"]


@dataclass(frozen=True)
class CrossSections:
    """Multigroup cross sections of a single material.

    Attributes
    ----------
    sigma_t:
        ``(G,)`` total cross section per group.
    sigma_s:
        ``(G, G)`` isotropic scattering matrix; ``sigma_s[g_from, g_to]`` is
        the cross section for scattering *from* group ``g_from`` *to* group
        ``g_to``.
    name:
        Human-readable material name.
    nu_sigma_f:
        Optional ``(G,)`` fission-production cross section ``nu * sigma_f``
        (``None`` for non-fissile materials; required by the ``k_eigenvalue``
        driver).
    chi:
        Optional ``(G,)`` fission emission spectrum, summing to 1.  Must be
        given together with ``nu_sigma_f``.
    velocity:
        Optional ``(G,)`` group speeds (required by the ``time_dependent``
        driver's ``1 / (v_g dt)`` time-absorption term).
    """

    sigma_t: np.ndarray
    sigma_s: np.ndarray
    name: str = "material"
    nu_sigma_f: np.ndarray | None = None
    chi: np.ndarray | None = None
    velocity: np.ndarray | None = None

    def __post_init__(self) -> None:
        st = np.atleast_1d(np.asarray(self.sigma_t, dtype=float))
        ss = np.asarray(self.sigma_s, dtype=float)
        if ss.shape != (st.shape[0], st.shape[0]):
            raise ValueError(
                f"sigma_s must have shape (G, G) = ({st.shape[0]}, {st.shape[0]}), got {ss.shape}"
            )
        if np.any(st <= 0.0):
            raise ValueError("total cross sections must be positive")
        if np.any(ss < 0.0):
            raise ValueError("scattering cross sections must be non-negative")
        object.__setattr__(self, "sigma_t", st)
        object.__setattr__(self, "sigma_s", ss)
        if (self.nu_sigma_f is None) != (self.chi is None):
            raise ValueError("nu_sigma_f and chi must be given together")
        if self.nu_sigma_f is not None:
            nf = np.atleast_1d(np.asarray(self.nu_sigma_f, dtype=float))
            cx = np.atleast_1d(np.asarray(self.chi, dtype=float))
            if nf.shape != st.shape or cx.shape != st.shape:
                raise ValueError("nu_sigma_f and chi must have shape (G,)")
            if np.any(nf < 0.0) or np.any(cx < 0.0):
                raise ValueError("fission data must be non-negative")
            if not np.isclose(cx.sum(), 1.0):
                raise ValueError("chi must sum to 1")
            object.__setattr__(self, "nu_sigma_f", nf)
            object.__setattr__(self, "chi", cx)
        if self.velocity is not None:
            v = np.atleast_1d(np.asarray(self.velocity, dtype=float))
            if v.shape != st.shape:
                raise ValueError("velocity must have shape (G,)")
            if np.any(v <= 0.0):
                raise ValueError("group speeds must be positive")
            object.__setattr__(self, "velocity", v)

    @property
    def num_groups(self) -> int:
        return self.sigma_t.shape[0]

    @property
    def sigma_a(self) -> np.ndarray:
        """Absorption cross section per group (total minus total out-scatter)."""
        return self.sigma_t - self.sigma_s.sum(axis=1)

    def scattering_ratio(self) -> np.ndarray:
        """Per-group scattering ratio ``c_g = sum_g' sigma_s[g, g'] / sigma_t[g]``."""
        return self.sigma_s.sum(axis=1) / self.sigma_t

    def is_subcritical(self) -> bool:
        """True when every group scatters less than it removes (c < 1).

        Source iteration converges with spectral radius bounded by the
        maximum scattering ratio, so this is the condition under which the
        SNAP-style iteration is guaranteed to converge.
        """
        return bool(np.all(self.scattering_ratio() < 1.0))

    def infinite_medium_flux(self, source: np.ndarray) -> np.ndarray:
        """Analytic scalar flux of an infinite homogeneous medium.

        Solves ``(diag(sigma_t) - sigma_s^T) phi = q`` where ``q`` is the
        isotropic volumetric source per group.  Used by the integration tests
        as an exact reference solution.
        """
        q = np.asarray(source, dtype=float)
        if q.shape != (self.num_groups,):
            raise ValueError(f"source must have shape (G,) = ({self.num_groups},)")
        a = np.diag(self.sigma_t) - self.sigma_s.T
        return np.linalg.solve(a, q)

    def k_infinity(self) -> float:
        """Analytic infinite-medium multiplication factor.

        In an infinite homogeneous medium the transport operator reduces to
        ``(diag(sigma_t) - sigma_s^T) phi = (1/k) chi (nu_sigma_f . phi)``;
        because the fission operator is rank one the eigenvalue is

        ``k_inf = nu_sigma_f . (diag(sigma_t) - sigma_s^T)^{-1} chi``.

        Used by the verification suite as the exact reference for the
        ``k_eigenvalue`` driver on reflected problems.
        """
        if self.nu_sigma_f is None:
            raise ValueError(f"material {self.name!r} carries no fission data")
        a = np.diag(self.sigma_t) - self.sigma_s.T
        return float(self.nu_sigma_f @ np.linalg.solve(a, self.chi))

    def with_time_absorption(self, dt: float) -> "CrossSections":
        """Cross sections with the backward-Euler term ``1/(v_g dt)`` added.

        The implicit time discretisation turns each step into a steady
        fixed-source solve against ``sigma_t + 1/(v_g dt)`` (scattering
        unchanged); since the increment is step-size invariant the modified
        material -- and any engine factor cache built on it -- is reused for
        every step.
        """
        if self.velocity is None:
            raise ValueError(f"material {self.name!r} carries no group speeds")
        if dt <= 0.0:
            raise ValueError("dt must be > 0")
        return replace(self, sigma_t=self.sigma_t + 1.0 / (self.velocity * dt))


@dataclass
class MaterialLibrary:
    """A set of materials plus the per-cell material assignment.

    Attributes
    ----------
    materials:
        List of :class:`CrossSections`, indexed by material id.
    cell_material:
        ``(E,)`` material id of every cell.
    """

    materials: list[CrossSections]
    cell_material: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    def __post_init__(self) -> None:
        if not self.materials:
            raise ValueError("a material library needs at least one material")
        groups = {m.num_groups for m in self.materials}
        if len(groups) != 1:
            raise ValueError("all materials must have the same number of groups")
        self.cell_material = np.asarray(self.cell_material, dtype=np.int64)
        if self.cell_material.size and (
            self.cell_material.min() < 0 or self.cell_material.max() >= len(self.materials)
        ):
            raise ValueError("cell_material contains out-of-range material ids")

    @property
    def num_groups(self) -> int:
        return self.materials[0].num_groups

    @property
    def num_materials(self) -> int:
        return len(self.materials)

    def for_cells(self, num_cells: int) -> "MaterialLibrary":
        """Return a copy whose cell assignment covers ``num_cells`` cells.

        If no assignment was given, every cell gets material 0 (the SNAP
        "material option 1" homogeneous configuration).
        """
        if self.cell_material.size == num_cells:
            return self
        if self.cell_material.size == 0:
            assignment = np.zeros(num_cells, dtype=np.int64)
        else:
            raise ValueError(
                f"material assignment covers {self.cell_material.size} cells, "
                f"but the mesh has {num_cells}"
            )
        return MaterialLibrary(materials=self.materials, cell_material=assignment)

    def sigma_t_per_cell(self) -> np.ndarray:
        """``(E, G)`` total cross section of every cell."""
        table = np.stack([m.sigma_t for m in self.materials], axis=0)
        return table[self.cell_material]

    def sigma_s_per_cell(self) -> np.ndarray:
        """``(E, G, G)`` scattering matrix of every cell."""
        table = np.stack([m.sigma_s for m in self.materials], axis=0)
        return table[self.cell_material]

    # ------------------------------------------------------ driver extensions
    @property
    def has_fission(self) -> bool:
        return all(m.nu_sigma_f is not None for m in self.materials)

    @property
    def has_velocity(self) -> bool:
        return all(m.velocity is not None for m in self.materials)

    def nu_sigma_f_per_cell(self) -> np.ndarray:
        """``(E, G)`` fission-production cross section of every cell."""
        if not self.has_fission:
            raise ValueError("not every material carries fission data")
        table = np.stack([m.nu_sigma_f for m in self.materials], axis=0)
        return table[self.cell_material]

    def chi_per_cell(self) -> np.ndarray:
        """``(E, G)`` fission spectrum of every cell."""
        if not self.has_fission:
            raise ValueError("not every material carries fission data")
        table = np.stack([m.chi for m in self.materials], axis=0)
        return table[self.cell_material]

    def velocity_per_cell(self) -> np.ndarray:
        """``(E, G)`` group speeds of every cell."""
        if not self.has_velocity:
            raise ValueError("not every material carries group speeds")
        table = np.stack([m.velocity for m in self.materials], axis=0)
        return table[self.cell_material]

    def with_time_absorption(self, dt: float) -> "MaterialLibrary":
        """Library whose every material absorbed the ``1/(v_g dt)`` term."""
        return MaterialLibrary(
            materials=[m.with_time_absorption(dt) for m in self.materials],
            cell_material=self.cell_material,
        )
