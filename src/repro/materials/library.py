"""SNAP-style auto-generated material data ("Material Option 1").

SNAP does not read physical nuclear data; it synthesises multigroup cross
sections from the input parameters so that the computational structure
(multigroup coupling, sub-critical scattering, down-scatter dominance) is
representative without any external files.  UnSNAP "uses the same artificial
data" (Section III of the paper).  The generator below follows that recipe:

* total cross section grows slowly with group index: ``sigma_t,g = 1 + 0.01 g``;
* a fixed fraction ``scattering_ratio`` of the total cross section is
  scattering, split between the in-group term and a short down-scatter tail;
* the material is homogeneous across the whole mesh for "option 1".
"""

from __future__ import annotations

import numpy as np

from .cross_sections import CrossSections, MaterialLibrary

__all__ = ["snap_option1_materials", "snap_option1_library", "pure_absorber"]

#: Fractions of the scattering cross section assigned to (in-group,
#: down-scatter by 1, 2, 3 groups).  Truncated and renormalised at the last
#: groups so that the per-group scattering ratio is preserved exactly.
_DOWNSCATTER_PROFILE = np.array([0.55, 0.25, 0.15, 0.05])


def snap_option1_materials(num_groups: int, scattering_ratio: float = 0.5) -> CrossSections:
    """Generate the SNAP "option 1" homogeneous material.

    Parameters
    ----------
    num_groups:
        Number of energy groups G.
    scattering_ratio:
        Fraction of the total cross section that is scattering (must be in
        ``[0, 1)`` for source iteration to converge).
    """
    if num_groups < 1:
        raise ValueError("num_groups must be >= 1")
    if not 0.0 <= scattering_ratio < 1.0:
        raise ValueError("scattering_ratio must be in [0, 1)")

    groups = np.arange(num_groups, dtype=float)
    sigma_t = 1.0 + 0.01 * groups

    sigma_s = np.zeros((num_groups, num_groups), dtype=float)
    for g in range(num_groups):
        total_scatter = scattering_ratio * sigma_t[g]
        reach = min(len(_DOWNSCATTER_PROFILE), num_groups - g)
        profile = _DOWNSCATTER_PROFILE[:reach]
        profile = profile / profile.sum()
        sigma_s[g, g : g + reach] = total_scatter * profile
    return CrossSections(sigma_t=sigma_t, sigma_s=sigma_s, name="snap-option-1")


def snap_option1_library(num_groups: int, scattering_ratio: float = 0.5) -> MaterialLibrary:
    """Material library for the homogeneous "material option 1" configuration."""
    return MaterialLibrary(materials=[snap_option1_materials(num_groups, scattering_ratio)])


def pure_absorber(num_groups: int, sigma_t: float = 1.0) -> CrossSections:
    """A purely absorbing material (no scattering).

    With no scattering the transport equation decouples per angle and group
    and admits simple analytic solutions (exponential attenuation of an
    incident beam, ``q / sigma_t`` infinite-medium flux), which the
    verification tests rely on.
    """
    if num_groups < 1:
        raise ValueError("num_groups must be >= 1")
    if sigma_t <= 0.0:
        raise ValueError("sigma_t must be positive")
    st = np.full(num_groups, float(sigma_t))
    ss = np.zeros((num_groups, num_groups), dtype=float)
    return CrossSections(sigma_t=st, sigma_s=ss, name="pure-absorber")
