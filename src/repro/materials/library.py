"""SNAP-style auto-generated material data ("Material Option 1").

SNAP does not read physical nuclear data; it synthesises multigroup cross
sections from the input parameters so that the computational structure
(multigroup coupling, sub-critical scattering, down-scatter dominance) is
representative without any external files.  UnSNAP "uses the same artificial
data" (Section III of the paper).  The generator below follows that recipe:

* total cross section grows slowly with group index: ``sigma_t,g = 1 + 0.01 g``;
* a fixed fraction ``scattering_ratio`` of the total cross section is
  scattering, split between the in-group term and a short down-scatter tail;
* the material is homogeneous across the whole mesh for "option 1".
"""

from __future__ import annotations

import numpy as np

from dataclasses import replace

from .cross_sections import CrossSections, MaterialLibrary

__all__ = [
    "snap_option1_materials",
    "snap_option1_library",
    "pure_absorber",
    "with_snap_fission_data",
    "with_snap_velocities",
    "snap_driver_library",
]

#: Fraction of the total cross section assigned to fission production by the
#: artificial fission recipe (kept well below the absorption share so the
#: fixed-source drivers remain sub-critical).
_FISSION_FRACTION = 0.3

#: Fractions of the scattering cross section assigned to (in-group,
#: down-scatter by 1, 2, 3 groups).  Truncated and renormalised at the last
#: groups so that the per-group scattering ratio is preserved exactly.
_DOWNSCATTER_PROFILE = np.array([0.55, 0.25, 0.15, 0.05])


def snap_option1_materials(num_groups: int, scattering_ratio: float = 0.5) -> CrossSections:
    """Generate the SNAP "option 1" homogeneous material.

    Parameters
    ----------
    num_groups:
        Number of energy groups G.
    scattering_ratio:
        Fraction of the total cross section that is scattering (must be in
        ``[0, 1)`` for source iteration to converge).
    """
    if num_groups < 1:
        raise ValueError("num_groups must be >= 1")
    if not 0.0 <= scattering_ratio < 1.0:
        raise ValueError("scattering_ratio must be in [0, 1)")

    groups = np.arange(num_groups, dtype=float)
    sigma_t = 1.0 + 0.01 * groups

    sigma_s = np.zeros((num_groups, num_groups), dtype=float)
    for g in range(num_groups):
        total_scatter = scattering_ratio * sigma_t[g]
        reach = min(len(_DOWNSCATTER_PROFILE), num_groups - g)
        profile = _DOWNSCATTER_PROFILE[:reach]
        profile = profile / profile.sum()
        sigma_s[g, g : g + reach] = total_scatter * profile
    return CrossSections(sigma_t=sigma_t, sigma_s=sigma_s, name="snap-option-1")


def snap_option1_library(num_groups: int, scattering_ratio: float = 0.5) -> MaterialLibrary:
    """Material library for the homogeneous "material option 1" configuration."""
    return MaterialLibrary(materials=[snap_option1_materials(num_groups, scattering_ratio)])


def pure_absorber(num_groups: int, sigma_t: float = 1.0) -> CrossSections:
    """A purely absorbing material (no scattering).

    With no scattering the transport equation decouples per angle and group
    and admits simple analytic solutions (exponential attenuation of an
    incident beam, ``q / sigma_t`` infinite-medium flux), which the
    verification tests rely on.
    """
    if num_groups < 1:
        raise ValueError("num_groups must be >= 1")
    if sigma_t <= 0.0:
        raise ValueError("sigma_t must be positive")
    st = np.full(num_groups, float(sigma_t))
    ss = np.zeros((num_groups, num_groups), dtype=float)
    return CrossSections(sigma_t=st, sigma_s=ss, name="pure-absorber")


def with_snap_fission_data(
    material: CrossSections, fission_fraction: float = _FISSION_FRACTION
) -> CrossSections:
    """Attach artificial fission data to a material, SNAP-style.

    ``nu_sigma_f,g`` is a fixed fraction of the total cross section and the
    emission spectrum ``chi`` is a renormalised geometric profile peaked at
    the fastest group -- pure functions of the group count, so every worker
    process of a distributed campaign synthesises bit-identical data from
    the spec alone.
    """
    if not 0.0 < fission_fraction < 1.0:
        raise ValueError("fission_fraction must be in (0, 1)")
    nu_sigma_f = fission_fraction * material.sigma_t
    raw_chi = 0.5 ** np.arange(material.num_groups, dtype=float)
    chi = raw_chi / raw_chi.sum()
    return replace(material, nu_sigma_f=nu_sigma_f, chi=chi)


def with_snap_velocities(material: CrossSections) -> CrossSections:
    """Attach artificial group speeds, decreasing with group index.

    ``v_g = 1 / (1 + 0.1 g)`` -- faster (lower-index) groups move faster,
    mirroring the physical energy ordering; again a pure function of the
    group count for cross-process determinism.
    """
    groups = np.arange(material.num_groups, dtype=float)
    return replace(material, velocity=1.0 / (1.0 + 0.1 * groups))


def snap_driver_library(num_groups: int, scattering_ratio: float = 0.5) -> MaterialLibrary:
    """Option-1 library carrying the artificial fission data and speeds.

    The driver subsystem's default: the ``k_eigenvalue`` and
    ``time_dependent`` drivers extend the fixed-source option-1 material
    with the data their operators need, leaving ``sigma_t``/``sigma_s`` --
    and therefore every fixed-source result -- untouched.
    """
    material = with_snap_velocities(
        with_snap_fission_data(snap_option1_materials(num_groups, scattering_ratio))
    )
    return MaterialLibrary(materials=[material])
