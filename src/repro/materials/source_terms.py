"""Fixed (external) source terms.

The transport equation's right-hand side contains a fixed source ``q_ex``
("a gain in particles that come from outside the physics modelled by the
equation") plus the scattering source computed by the iteration.  SNAP's
"source option 1" is a uniform, isotropic, unit-strength volumetric source in
every group and every cell; that is what the paper's experiments use and what
:func:`snap_option1_source` generates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FixedSource", "uniform_source", "snap_option1_source"]


@dataclass(frozen=True)
class FixedSource:
    """An isotropic volumetric fixed source.

    Attributes
    ----------
    density:
        ``(E, G)`` source density per cell and group (particles per unit
        volume, per unit solid-angle-integrated flux convention: the angular
        source is ``density * w_a`` when the quadrature weights sum to 1).
    """

    density: np.ndarray

    def __post_init__(self) -> None:
        d = np.asarray(self.density, dtype=float)
        if d.ndim != 2:
            raise ValueError("density must have shape (E, G)")
        if np.any(d < 0.0):
            raise ValueError("source density must be non-negative")
        object.__setattr__(self, "density", d)

    @property
    def num_cells(self) -> int:
        return self.density.shape[0]

    @property
    def num_groups(self) -> int:
        return self.density.shape[1]

    def total_emission(self, volumes: np.ndarray) -> np.ndarray:
        """Total emitted particles per group, ``sum_e q[e, g] * V_e``."""
        volumes = np.asarray(volumes, dtype=float)
        return volumes @ self.density


def uniform_source(num_cells: int, num_groups: int, strength: float = 1.0) -> FixedSource:
    """A spatially and spectrally uniform source of the given strength."""
    if strength < 0.0:
        raise ValueError("source strength must be non-negative")
    return FixedSource(density=np.full((num_cells, num_groups), float(strength)))


def snap_option1_source(num_cells: int, num_groups: int) -> FixedSource:
    """SNAP "source option 1": unit source everywhere, in every group."""
    return uniform_source(num_cells, num_groups, strength=1.0)
