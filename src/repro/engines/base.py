"""The sweep-engine protocol.

A *sweep engine* is the interchangeable strategy that executes the transport
sweep of one angular direction over a (sub)mesh.  The paper is a study of
exactly such interchangeable execution strategies -- sweep schedules, local
solvers, loop orderings -- so the engine is a first-class extension point:
:class:`~repro.core.sweep.SweepExecutor` owns the problem data (mesh, local
matrices, schedule, quadrature, materials, solver) and delegates the per-angle
work to its engine.

Engines are stateless objects registered by name through
:func:`repro.engines.register_engine`; the executor (and therefore
:func:`repro.run`, the input deck and the ``unsnap`` CLI) selects one by name.
Four engines ship with the package:

* ``reference`` -- the per-element loop of the paper's Figure 2 pseudocode,
  optionally threaded over the independent elements of a wavefront bucket;
* ``vectorized`` -- batch-assembles and batch-solves *all* elements of a
  bucket at once through stacked einsum contractions and
  ``LocalSolver.solve_batched`` over ``(B*G, N, N)`` systems;
* ``prefactorized`` -- like ``vectorized`` but LU-factorises every bucket
  batch once and reuses the factors across all inner/outer iterations
  (paper Section IV-B.1);
* ``compiled`` -- the prefactorized strategy driven through a JIT-compiled
  bucket kernel (numba or a cffi-built C translation).  It is a *soft*
  tier: the engine registers only when a provider is available, and is
  otherwise absent from the registry with an actionable
  :func:`repro.engines.get_engine` error (see
  :mod:`repro.engines.compiled`).

Factor-cache lifecycle
----------------------
Because engines are shared stateless instances, any per-problem state an
engine wants to memoise (LU factors, cached couplings, ...) must live on the
*executor*, in :attr:`SweepExecutor.factor_cache` -- a
:class:`~repro.core.factor_cache.FactorCache` (dict-shaped, optionally
memory-budgeted with LRU spill) whose keys the engine namespaces with its
own name.  Engines must treat every ``cache[key]`` miss as recomputable:
under a ``factor_cache_budget_bytes`` limit the cache silently evicts
least-recently-used entries, and correctness may never depend on an entry
surviving.  The executor owns the lifecycle:
:meth:`SweepExecutor.invalidate_factor_cache` clears the cache whenever the
cached inputs change (cross-section updates go through
:meth:`SweepExecutor.update_materials`; mesh changes rebuild the executor),
and both :class:`~repro.core.solver.TransportSolver` and
:class:`~repro.parallel.block_jacobi.BlockJacobiDriver` expose matching
``update_materials`` hooks that thread the invalidation through.  An engine
may additionally define ``invalidate_cache(executor)`` to be notified before
the cache is cleared.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-checking only
    from ..core.assembly import AssemblyTimings
    from ..core.sweep import BoundaryValues, SweepExecutor

__all__ = ["SweepEngine"]


@runtime_checkable
class SweepEngine(Protocol):
    """Strategy interface for executing the sweep of one angular direction.

    Implementations must be stateless (one shared instance serves every
    executor) and must honour the executor's sweep schedule: within an angle,
    buckets are processed in order and every element only reads upwind
    neighbours from earlier buckets.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"reference"`` or ``"vectorized"``.
    description:
        Human-readable description used by reports and ``unsnap engines``.
    """

    name: str
    description: str

    def sweep_angle(
        self,
        executor: "SweepExecutor",
        angle: int,
        total_source: np.ndarray,
        boundary_values: "BoundaryValues | None",
        incident: float,
        timings: "AssemblyTimings",
    ) -> np.ndarray:
        """Sweep one ordinate and return the ``(E, G, N)`` angular flux.

        Parameters
        ----------
        executor:
            The owning :class:`~repro.core.sweep.SweepExecutor`; provides the
            mesh, precomputed local matrices, per-angle schedule, quadrature,
            ``sigma_t`` table, local solver and thread count.
        angle:
            Ordinate index into the executor's quadrature.
        total_source:
            ``(E, G, N)`` nodal isotropic source (fixed + scattering).
        boundary_values:
            Lagged upwind traces for rank-boundary faces (block Jacobi), or
            ``None`` on a single rank.
        incident:
            Incoming angular flux on domain-boundary inflow faces.
        timings:
            Accumulator for the assemble/solve wall-clock split; engines add
            their measured times and the number of systems solved.
        """
        ...
