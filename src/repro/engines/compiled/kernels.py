"""The compiled tier's sweep kernel, in portable (njit-compatible) Python.

This module is the *single source of truth* for the compiled engine's
numerics: one fused per-bucket kernel that assembles the right-hand sides
(volumetric source term minus packed interior upwind couplings) and runs the
pivoted forward/backward substitutions against the cached packed LU factors,
writing the bucket's angular flux straight into the full ``psi`` array.

The providers (:mod:`repro.engines.compiled.providers`) turn this one
function into machine code two different ways -- ``numba.njit`` compiles it
directly, and the cffi provider carries a line-for-line C translation whose
loop nest mirrors this function exactly (same loop order, same accumulation
order, compiled with ``-ffp-contract=off`` so the arithmetic stays plain
IEEE double operations in source order).  Keeping the Python version the
reference lets the test-suite assert provider equivalence without a second
independent implementation of the physics.

Only explicit loops over preallocated contiguous arrays are used -- no numpy
API beyond indexing -- so the same body type-specialises cleanly under numba
and translates mechanically to C.

Kernel contract
---------------
``sweep_bucket_kernel(bucket, mass, source, cpl_pos, cpl_src, cpl_mat, lu,
piv, rhs, assemble, psi)`` with

* ``bucket`` -- ``(B,)`` int64 global element ids of the wavefront bucket;
* ``mass`` -- ``(B, N, N)`` mass matrices of the bucket elements;
* ``source`` -- ``(E, G, N)`` full per-ordinate total source (indexed
  through ``bucket``);
* ``cpl_pos``/``cpl_src``/``cpl_mat`` -- ``(K,)`` bucket positions, ``(K,)``
  global upwind element ids and ``(K, N, N)`` direction-weighted coupling
  matrices, the packed concatenation of
  :func:`repro.engines.batched.interior_upwind_couplings` over faces;
* ``lu``/``piv`` -- ``(B*G, N, N)`` packed factors and ``(B*G, N)`` row
  swaps from :func:`repro.solvers.prefactor.batched_gaussian_lu_factor`,
  system ``b*G + g`` belonging to element ``b``, group ``g``;
* ``rhs`` -- ``(B, G, N)`` scratch; holds the assembled right-hand sides
  when ``assemble`` is nonzero, otherwise arrives pre-assembled (the
  boundary path) and the kernel only substitutes.  Destroyed either way.
* ``psi`` -- ``(E, G, N)`` full angular flux; upwind values are read from
  earlier buckets and the bucket's solution is written back.
"""

from __future__ import annotations

__all__ = ["sweep_bucket_kernel"]


def sweep_bucket_kernel(
    bucket, mass, source, cpl_pos, cpl_src, cpl_mat, lu, piv, rhs, assemble, psi
):
    """Fused assemble + factored-solve of one wavefront bucket (see module docs)."""
    num_bucket = bucket.shape[0]
    num_groups = rhs.shape[1]
    num_nodes = rhs.shape[2]

    if assemble != 0:
        # Volumetric source: rhs[b, g, i] = sum_j source[e, g, j] * mass[b, i, j].
        for b in range(num_bucket):
            element = bucket[b]
            for g in range(num_groups):
                for i in range(num_nodes):
                    acc = 0.0
                    for j in range(num_nodes):
                        acc += source[element, g, j] * mass[b, i, j]
                    rhs[b, g, i] = acc
        # Interior upwind couplings: psi of earlier buckets is final.
        for k in range(cpl_pos.shape[0]):
            b = cpl_pos[k]
            upwind = cpl_src[k]
            for g in range(num_groups):
                for i in range(num_nodes):
                    acc = 0.0
                    for j in range(num_nodes):
                        acc += psi[upwind, g, j] * cpl_mat[k, i, j]
                    rhs[b, g, i] -= acc

    # Pivoted forward/backward substitution against the packed LU, in place
    # in rhs, then scatter into psi.  Mirrors batched_gaussian_lu_solve.
    for b in range(num_bucket):
        element = bucket[b]
        for g in range(num_groups):
            s = b * num_groups + g
            for k in range(num_nodes):
                p = piv[s, k]
                if p != k:
                    tmp = rhs[b, g, k]
                    rhs[b, g, k] = rhs[b, g, p]
                    rhs[b, g, p] = tmp
            for k in range(num_nodes - 1):
                bk = rhs[b, g, k]
                for j in range(k + 1, num_nodes):
                    rhs[b, g, j] -= lu[s, j, k] * bk
            for k in range(num_nodes - 1, -1, -1):
                acc = rhs[b, g, k]
                for j in range(k + 1, num_nodes):
                    acc -= lu[s, k, j] * rhs[b, g, j]
                rhs[b, g, k] = acc / lu[s, k, k]
            for i in range(num_nodes):
                psi[element, g, i] = rhs[b, g, i]
