"""The compiled sweep engine: one fused JIT kernel per (angle, bucket).

Where ``prefactorized`` replaces the per-sweep elimination with cached LU
factors but still pays numpy dispatch for the right-hand-side assembly and
the batched substitutions, this engine drops the whole steady-state bucket
loop into a single compiled kernel (:mod:`repro.engines.compiled.kernels`):
assemble the volumetric source, subtract the packed interior upwind
couplings reading ``psi`` of earlier buckets, and run the pivoted
forward/backward substitutions -- all in one pass over preallocated
contiguous arrays, no temporaries, no interpreter in the loop.

The engine follows the executor's factor-cache lifecycle exactly like
``prefactorized``: entries live in :attr:`SweepExecutor.factor_cache` under
``(engine_name, angle, bucket_index)`` keys, are rebuilt on a miss (the
one-time assembly + LU factorisation, against the executor's *current*
cross sections) and are dropped by ``invalidate_factor_cache`` /
``update_materials`` / ``set_engine``.  Under a factor-cache budget the
evicted entries are transparently recomputed on the next sweep -- the
kernel never sees a stale factor.

The boundary path (incident flux or lagged block-Jacobi traces) reuses the
numpy :func:`~repro.engines.batched.assemble_bucket_rhs` for the irregular
per-face scans and calls the kernel in solve-only mode, so vacuum interior
sweeps -- the hot path of every benchmark -- never leave compiled code.

The compiled tier carries its own factorisation
(:func:`~repro.solvers.prefactor.batched_gaussian_lu_factor`), matching the
substitution loops baked into the kernel; the executor's local-solver
choice selects the *other* engines' solve and does not change this one.
``bitwise_family`` is the tier's own (``"compiled"``): the fused loop nest
fixes its own summation order, which is not guaranteed to match the numpy
einsum reductions bit for bit -- cross-engine agreement is asserted by the
conformance matrix at tolerance instead.
"""

from __future__ import annotations

import time

import numpy as np

from ...solvers.prefactor import batched_gaussian_lu_factor
from ...telemetry import active
from ..batched import (
    assemble_bucket_matrices,
    assemble_bucket_rhs,
    interior_upwind_couplings,
)
from ..registry import register_engine
from .providers import as_contiguous_f64, as_contiguous_i64, select_provider

__all__ = ["CompiledSweepEngine"]


@register_engine("compiled", aliases=("jit", "native"))
class CompiledSweepEngine:
    """Fused JIT bucket kernel over cached packed LU factors (numba or cffi)."""

    #: Own family: the fused kernel fixes its own reduction order, so
    #: bit-equality with the numpy ``batched`` family is not guaranteed.
    bitwise_family = "compiled"

    def __init__(self):
        provider = select_provider()
        if provider is None:
            raise RuntimeError(
                "compiled sweep engine constructed without an available JIT provider"
            )
        self._provider = provider
        self.provider_name = provider.name

    def _build_entry(self, executor, direction, orient, bucket, timings):
        """Assemble, factor and pack one (angle, bucket) cache entry."""
        num_groups = executor.num_groups
        num_nodes = executor.num_nodes
        batch = bucket.shape[0]

        t0 = time.perf_counter()
        a = assemble_bucket_matrices(executor, direction, orient, bucket)
        interior = interior_upwind_couplings(executor, direction, orient, bucket)
        # Pack the per-face coupling dict into flat kernel arrays.  cpl_src
        # holds *global* upwind element ids (psi of earlier buckets is
        # final), cpl_pos the position within this bucket.
        positions: list[np.ndarray] = []
        sources: list[np.ndarray] = []
        mats: list[np.ndarray] = []
        for face in sorted(interior):
            idx, neighbors, coupling = interior[face]
            positions.append(np.asarray(idx, dtype=np.int64))
            sources.append(np.asarray(neighbors, dtype=np.int64))
            mats.append(coupling)
        if positions:
            cpl_pos = as_contiguous_i64(np.concatenate(positions))
            cpl_src = as_contiguous_i64(np.concatenate(sources))
            cpl_mat = as_contiguous_f64(np.concatenate(mats, axis=0))
        else:
            cpl_pos = np.empty(0, dtype=np.int64)
            cpl_src = np.empty(0, dtype=np.int64)
            cpl_mat = np.empty((0, num_nodes, num_nodes), dtype=np.float64)
        t1 = time.perf_counter()
        lu, piv = batched_gaussian_lu_factor(
            a.reshape(batch * num_groups, num_nodes, num_nodes)
        )
        t2 = time.perf_counter()
        timings.assembly_seconds += t1 - t0
        timings.solve_seconds += t2 - t1
        return {
            "bucket": as_contiguous_i64(bucket),
            "mass": as_contiguous_f64(executor.matrices.mass[bucket]),
            "cpl_pos": cpl_pos,
            "cpl_src": cpl_src,
            "cpl_mat": cpl_mat,
            "lu": as_contiguous_f64(lu),
            "piv": as_contiguous_i64(piv),
            "interior": interior,
            "rhs": np.empty((batch, num_groups, num_nodes), dtype=np.float64),
        }

    def sweep_angle(self, executor, angle, total_source, boundary_values, incident, timings):
        mesh = executor.mesh
        direction = executor.quadrature.directions[angle]
        asched = executor.schedule.for_angle(angle)
        orientation = asched.classification.orientation  # (E, 6)
        num_groups = executor.num_groups
        num_nodes = executor.num_nodes
        kernel = self._provider.kernel()
        cache = executor.factor_cache
        tel = active(getattr(executor, "telemetry", None))
        sampler = None if tel is None else tel.bucket_sampler()

        psi_angle = np.zeros((mesh.num_cells, num_groups, num_nodes), dtype=np.float64)
        source = as_contiguous_f64(total_source)
        have_lagged = boundary_values is not None and len(boundary_values) > 0
        # Vacuum interior sweep: the kernel assembles and solves; boundary
        # terms fall back to the shared numpy RHS assembly + solve-only.
        fused = not have_lagged and incident == 0.0

        for index, bucket in enumerate(asched.buckets):
            batch = bucket.shape[0]
            orient = orientation[bucket]  # (B, 6)
            key = (getattr(self, "name", "compiled"), angle, index)
            entry = cache.get(key)
            if tel is not None:
                tel.incr("factor_cache_misses" if entry is None else "factor_cache_hits")
            if entry is None:
                entry = cache[key] = self._build_entry(
                    executor, direction, orient, bucket, timings
                )

            sample = sampler is not None and sampler.want()
            t0 = time.perf_counter()
            if fused:
                t1 = t0
                kernel(
                    entry["bucket"], entry["mass"], source,
                    entry["cpl_pos"], entry["cpl_src"], entry["cpl_mat"],
                    entry["lu"], entry["piv"], entry["rhs"], 1, psi_angle,
                )
                t2 = time.perf_counter()
            else:
                rhs = assemble_bucket_rhs(
                    executor, angle, direction, orient, bucket, psi_angle,
                    total_source, boundary_values, incident,
                    interior=entry["interior"],
                )
                t1 = time.perf_counter()
                kernel(
                    entry["bucket"], entry["mass"], source,
                    entry["cpl_pos"], entry["cpl_src"], entry["cpl_mat"],
                    entry["lu"], entry["piv"], as_contiguous_f64(rhs), 0, psi_angle,
                )
                t2 = time.perf_counter()
            # The fused kernel does not separate assembly from solve; its
            # whole time is booked as solve, keeping the one-time entry
            # build (above) as the assembly share.
            timings.assembly_seconds += t1 - t0
            timings.solve_seconds += t2 - t1
            timings.systems_solved += batch * num_groups
            if sample:
                sampler.record(t2 - t0, batch * num_groups)
        return psi_angle
