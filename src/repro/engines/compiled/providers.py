"""JIT providers backing the ``compiled`` sweep engine.

The compiled tier is a *soft* dependency: at import the package probes, in
order of preference,

1. **numba** -- :func:`numba.njit` over the portable kernel of
   :mod:`repro.engines.compiled.kernels` (``fastmath`` off, so the compiled
   arithmetic keeps the kernel's IEEE semantics);
2. **cffi + a C compiler** -- a line-for-line C translation of the same
   kernel, built once into an on-disk module cache (keyed by a hash of the
   C source, so upgrades rebuild and concurrent processes share) and loaded
   thereafter with no compile cost.

When neither is available the engine simply is not registered --
``available_engines()`` never lists a broken tier -- and
``get_engine("compiled")`` raises a ``KeyError`` naming the missing
dependency (see :func:`repro.engines.registry.note_soft_dependency`).

The ``UNSNAP_COMPILED_PROVIDER`` environment variable overrides the probe:
``numba`` or ``cffi`` force one provider (unavailable -> engine unlisted),
``python`` runs the pure-Python kernel (far slower than the numpy engines;
a test-only escape hatch that keeps the full engine path exercised without
any compiler), and ``off`` disables the tier entirely (the fault-injection
tests use it to simulate the no-compiler environment).

Provider selection is resolved once per process and memoised; compilation
itself is lazy (first kernel call), so importing :mod:`repro` stays cheap.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
from pathlib import Path

import numpy as np

from .kernels import sweep_bucket_kernel

__all__ = ["Provider", "select_provider", "unavailable_reason", "INSTALL_HINT"]

_ENV_VAR = "UNSNAP_COMPILED_PROVIDER"

#: The message shown when the compiled tier cannot run anywhere.
INSTALL_HINT = (
    "the 'compiled' engine needs a JIT provider: install numba "
    "(pip install numba), or install cffi alongside a C compiler (cc/gcc)"
)


class Provider:
    """One way of turning the portable kernel into an executable one.

    ``kernel()`` returns a callable with the
    :func:`~repro.engines.compiled.kernels.sweep_bucket_kernel` signature;
    the first call may compile (memoised thereafter).
    """

    def __init__(self, name: str, build):
        self.name = name
        self._build = build
        self._kernel = None

    def kernel(self):
        if self._kernel is None:
            self._kernel = self._build()
        return self._kernel


# --------------------------------------------------------------------- numba
def _numba_available() -> bool:
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def _build_numba_kernel():  # pragma: no cover - needs numba (CI numba leg)
    import numba

    return numba.njit(cache=True, fastmath=False)(sweep_bucket_kernel)


# ---------------------------------------------------------------------- cffi
# Line-for-line C translation of kernels.sweep_bucket_kernel: same loop
# nest, same accumulation order.  Compiled with -ffp-contract=off so the
# optimiser cannot fuse multiply-adds -- the C arithmetic is then the same
# sequence of IEEE double operations as the Python kernel.
_C_DECL = """
void sweep_bucket(const int64_t *bucket, const double *mass,
                  const double *source, int64_t num_cpl,
                  const int64_t *cpl_pos, const int64_t *cpl_src,
                  const double *cpl_mat, const double *lu,
                  const int64_t *piv, double *rhs, int assemble,
                  double *psi, int64_t num_bucket, int64_t num_groups,
                  int64_t num_nodes);
"""

_C_SOURCE = """
#include <stdint.h>

void sweep_bucket(const int64_t *bucket, const double *mass,
                  const double *source, int64_t num_cpl,
                  const int64_t *cpl_pos, const int64_t *cpl_src,
                  const double *cpl_mat, const double *lu,
                  const int64_t *piv, double *rhs, int assemble,
                  double *psi, int64_t num_bucket, int64_t num_groups,
                  int64_t num_nodes)
{
    const int64_t G = num_groups, N = num_nodes, NN = N * N;

    if (assemble) {
        for (int64_t b = 0; b < num_bucket; ++b) {
            const double *m = mass + b * NN;
            const double *src = source + bucket[b] * G * N;
            double *out = rhs + b * G * N;
            for (int64_t g = 0; g < G; ++g) {
                for (int64_t i = 0; i < N; ++i) {
                    double acc = 0.0;
                    for (int64_t j = 0; j < N; ++j)
                        acc += src[g * N + j] * m[i * N + j];
                    out[g * N + i] = acc;
                }
            }
        }
        for (int64_t k = 0; k < num_cpl; ++k) {
            const double *c = cpl_mat + k * NN;
            const double *up = psi + cpl_src[k] * G * N;
            double *out = rhs + cpl_pos[k] * G * N;
            for (int64_t g = 0; g < G; ++g) {
                for (int64_t i = 0; i < N; ++i) {
                    double acc = 0.0;
                    for (int64_t j = 0; j < N; ++j)
                        acc += up[g * N + j] * c[i * N + j];
                    out[g * N + i] -= acc;
                }
            }
        }
    }

    for (int64_t b = 0; b < num_bucket; ++b) {
        double *out = psi + bucket[b] * G * N;
        for (int64_t g = 0; g < G; ++g) {
            const int64_t s = b * G + g;
            const double *f = lu + s * NN;
            const int64_t *pv = piv + s * N;
            double *x = rhs + (b * G + g) * N;
            for (int64_t k = 0; k < N; ++k) {
                const int64_t p = pv[k];
                if (p != k) {
                    const double tmp = x[k];
                    x[k] = x[p];
                    x[p] = tmp;
                }
            }
            for (int64_t k = 0; k < N - 1; ++k) {
                const double bk = x[k];
                for (int64_t j = k + 1; j < N; ++j)
                    x[j] -= f[j * N + k] * bk;
            }
            for (int64_t k = N - 1; k >= 0; --k) {
                double acc = x[k];
                for (int64_t j = k + 1; j < N; ++j)
                    acc -= f[k * N + j] * x[j];
                x[k] = acc / f[k * N + k];
            }
            for (int64_t i = 0; i < N; ++i)
                out[g * N + i] = x[i];
        }
    }
}
"""


def _cffi_available() -> bool:
    try:
        import cffi  # noqa: F401
    except ImportError:
        return False
    return any(shutil.which(cc) for cc in ("cc", "gcc", "clang"))


def _compile_cffi_module():
    """Build (or load from the on-disk cache) the cffi kernel module.

    The cache directory is keyed by a hash of the C source, so a changed
    kernel compiles into a fresh directory and stale modules are never
    loaded; the module name carries the same hash so two versions can
    coexist in one process.  Publication is atomic (build in a scratch
    directory, ``os.replace`` into place), making concurrent first calls
    from several processes safe.
    """
    import importlib.util

    import cffi

    digest = hashlib.sha256((_C_DECL + _C_SOURCE).encode()).hexdigest()[:16]
    module_name = f"_unsnap_compiled_{digest}"
    cache_dir = Path(tempfile.gettempdir()) / f"unsnap-compiled-{digest}"

    def _load(so_path: Path):
        spec = importlib.util.spec_from_file_location(module_name, so_path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    if cache_dir.is_dir():
        for so_path in sorted(cache_dir.glob(f"{module_name}*.so")):
            return _load(so_path)

    ffibuilder = cffi.FFI()
    ffibuilder.cdef(_C_DECL)
    ffibuilder.set_source(
        module_name,
        _C_SOURCE,
        extra_compile_args=["-O3", "-ffp-contract=off"],
    )
    with tempfile.TemporaryDirectory(prefix="unsnap-compiled-build-") as build_dir:
        so_path = Path(ffibuilder.compile(tmpdir=build_dir))
        cache_dir.mkdir(parents=True, exist_ok=True)
        target = cache_dir / so_path.name
        try:
            os.replace(so_path, target)
        except OSError:
            # Cross-device move or a concurrent publisher won the race;
            # fall back to loading the freshly built artefact in place.
            if not target.exists():
                return _load(so_path)
    return _load(target)


def _build_cffi_kernel():
    module = _compile_cffi_module()
    ffi, lib = module.ffi, module.lib

    def kernel(bucket, mass, source, cpl_pos, cpl_src, cpl_mat, lu, piv, rhs, assemble, psi):
        f64 = "double *"
        i64 = "int64_t *"
        lib.sweep_bucket(
            ffi.from_buffer(i64, bucket),
            ffi.from_buffer(f64, mass),
            ffi.from_buffer(f64, source),
            cpl_pos.shape[0],
            ffi.from_buffer(i64, cpl_pos),
            ffi.from_buffer(i64, cpl_src),
            ffi.from_buffer(f64, cpl_mat),
            ffi.from_buffer(f64, lu),
            ffi.from_buffer(i64, piv),
            ffi.from_buffer(f64, rhs, require_writable=True),
            int(assemble),
            ffi.from_buffer(f64, psi, require_writable=True),
            bucket.shape[0],
            rhs.shape[1],
            rhs.shape[2],
        )

    return kernel


# ----------------------------------------------------------------- selection
def _python_provider() -> Provider:
    return Provider("python", lambda: sweep_bucket_kernel)


_UNRESOLVED = object()
_selected = _UNRESOLVED
_reason: str | None = None


def select_provider() -> Provider | None:
    """The process-wide JIT provider, or ``None`` when the tier is off.

    Resolution order: the ``UNSNAP_COMPILED_PROVIDER`` override if set,
    otherwise numba, otherwise cffi + C compiler.  Memoised -- the engine,
    the registry hint and the tests all see one consistent answer.
    """
    global _selected, _reason
    if _selected is not _UNRESOLVED:
        return _selected

    forced = os.environ.get(_ENV_VAR, "").strip().lower()
    if forced == "off":
        _selected, _reason = None, f"disabled via {_ENV_VAR}=off; {INSTALL_HINT}"
    elif forced == "python":
        _selected, _reason = _python_provider(), None
    elif forced == "numba":
        if _numba_available():
            _selected, _reason = Provider("numba", _build_numba_kernel), None
        else:
            _selected, _reason = None, f"{_ENV_VAR}=numba but numba is not importable"
    elif forced == "cffi":
        if _cffi_available():
            _selected, _reason = Provider("cffi", _build_cffi_kernel), None
        else:
            _selected, _reason = (
                None,
                f"{_ENV_VAR}=cffi but cffi or a C compiler is missing",
            )
    elif forced:
        raise ValueError(
            f"unknown {_ENV_VAR}={forced!r}; expected numba, cffi, python or off"
        )
    elif _numba_available():
        _selected, _reason = Provider("numba", _build_numba_kernel), None
    elif _cffi_available():
        _selected, _reason = Provider("cffi", _build_cffi_kernel), None
    else:
        _selected, _reason = None, INSTALL_HINT
    return _selected


def unavailable_reason() -> str | None:
    """Why the compiled tier is off (``None`` when a provider is active)."""
    select_provider()
    return _reason


def _reset_selection_for_tests() -> None:
    """Forget the memoised provider (test hook; not public API)."""
    global _selected, _reason
    _selected, _reason = _UNRESOLVED, None


def as_contiguous_f64(array: np.ndarray) -> np.ndarray:
    """C-contiguous float64 view/copy (kernel inputs must be packed)."""
    return np.ascontiguousarray(array, dtype=np.float64)


def as_contiguous_i64(array: np.ndarray) -> np.ndarray:
    """C-contiguous int64 view/copy (kernel index inputs)."""
    return np.ascontiguousarray(array, dtype=np.int64)
