"""The ``compiled`` sweep-engine tier (soft dependency).

Importing this package probes for a JIT provider (numba preferred, then
cffi + C compiler; see :mod:`repro.engines.compiled.providers`) and
registers :class:`CompiledSweepEngine` only when one is available --
*absent, never broken*: without a provider the engine simply does not
appear in ``available_engines()`` and ``get_engine("compiled")`` raises a
``KeyError`` that names the missing dependency.
"""

from __future__ import annotations

from ..registry import note_soft_dependency
from .providers import select_provider, unavailable_reason

__all__ = ["select_provider", "unavailable_reason"]

if select_provider() is not None:
    from .engine import CompiledSweepEngine  # noqa: F401  (registers the engine)

    __all__.append("CompiledSweepEngine")
else:
    for _name in ("compiled", "jit", "native"):
        note_soft_dependency(_name, unavailable_reason())
    del _name
