"""Pluggable sweep-execution engines.

The engine is the strategy that executes the transport sweep of one angular
direction; see :mod:`repro.engines.base` for the protocol.  Engines are
registered by name (``@register_engine``) and selected through
:class:`~repro.config.ProblemSpec`, the input deck, :func:`repro.run` or the
``unsnap run --engine`` flag.

Built-in engines
----------------
``reference``
    The per-element assemble/solve loop of the paper's Figure 2 pseudocode
    (aliases: ``loop``, ``per-element``).
``vectorized``
    Batch-assembles and batch-solves all elements of a wavefront bucket at
    once (aliases: ``vec``, ``batched``).
``prefactorized``
    LU-factorises every bucket batch once per (angle, bucket) and reuses
    the cached factors across all inner/outer iterations, re-assembling
    only the right-hand sides (aliases: ``lu``, ``prefactor``,
    ``factor-cache``; paper Section IV-B.1).
``compiled``
    Fused JIT bucket kernel (numba, or a cffi-built C kernel) over the
    cached LU factors (aliases: ``jit``, ``native``).  A *soft* dependency:
    registered only when a JIT provider is available, so the name never
    appears broken -- see :mod:`repro.engines.compiled`.
"""

from .base import SweepEngine
from .registry import (
    available_engines,
    engine_aliases,
    engine_descriptions,
    engine_listing,
    get_engine,
    note_soft_dependency,
    register_engine,
    unregister_engine,
)

# Importing the engine modules registers the built-in engines.  The
# compiled package self-guards: it registers only when a JIT provider is
# importable and otherwise records the reason for get_engine's error.
from . import compiled  # noqa: F401
from .prefactorized import PrefactorizedSweepEngine
from .reference import ReferenceSweepEngine
from .vectorized import VectorizedSweepEngine

__all__ = [
    "SweepEngine",
    "register_engine",
    "unregister_engine",
    "get_engine",
    "note_soft_dependency",
    "available_engines",
    "engine_aliases",
    "engine_descriptions",
    "engine_listing",
    "ReferenceSweepEngine",
    "VectorizedSweepEngine",
    "PrefactorizedSweepEngine",
]
