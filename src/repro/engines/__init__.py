"""Pluggable sweep-execution engines.

The engine is the strategy that executes the transport sweep of one angular
direction; see :mod:`repro.engines.base` for the protocol.  Engines are
registered by name (``@register_engine``) and selected through
:class:`~repro.config.ProblemSpec`, the input deck, :func:`repro.run` or the
``unsnap run --engine`` flag.

Built-in engines
----------------
``reference``
    The per-element assemble/solve loop of the paper's Figure 2 pseudocode
    (aliases: ``loop``, ``per-element``).
``vectorized``
    Batch-assembles and batch-solves all elements of a wavefront bucket at
    once (aliases: ``vec``, ``batched``).
``prefactorized``
    LU-factorises every bucket batch once per (angle, bucket) and reuses
    the cached factors across all inner/outer iterations, re-assembling
    only the right-hand sides (aliases: ``lu``, ``prefactor``,
    ``factor-cache``; paper Section IV-B.1).
"""

from .base import SweepEngine
from .registry import (
    available_engines,
    engine_aliases,
    engine_descriptions,
    engine_listing,
    get_engine,
    register_engine,
    unregister_engine,
)

# Importing the engine modules registers the built-in engines.
from .prefactorized import PrefactorizedSweepEngine
from .reference import ReferenceSweepEngine
from .vectorized import VectorizedSweepEngine

__all__ = [
    "SweepEngine",
    "register_engine",
    "unregister_engine",
    "get_engine",
    "available_engines",
    "engine_aliases",
    "engine_descriptions",
    "engine_listing",
    "ReferenceSweepEngine",
    "VectorizedSweepEngine",
    "PrefactorizedSweepEngine",
]
