"""The vectorized sweep engine: batch-assemble and batch-solve whole buckets.

The reference engine pays CPython interpreter overhead for every element of
every bucket of every angle.  All elements of a wavefront bucket are mutually
independent and their upwind neighbours live in *earlier* buckets, so the
entire bucket can be assembled with stacked einsum contractions (shared with
the ``prefactorized`` engine via :mod:`repro.engines.batched`) and solved as
one ``(B*G, N, N)`` batch through ``LocalSolver.solve_batched`` -- the NumPy
analogue of the paper's discussion of batched local solves (Section IV-B).

Equivalence with the reference engine is exact up to floating-point
associativity (the property tests assert agreement to ~1e-12): the same
streaming matrix, mass term, upwind face couplings, lagged block-Jacobi
traces and incident-boundary terms are applied, only batched over the bucket
dimension.  Timing moves from per-element to per-bucket
``time.perf_counter()`` calls, which also removes the timer overhead from the
measured kernels.
"""

from __future__ import annotations

import time

import numpy as np

from ..telemetry import active
from .batched import assemble_bucket_matrices, assemble_bucket_rhs
from .registry import register_engine

__all__ = ["VectorizedSweepEngine"]


@register_engine("vectorized", aliases=("vec", "batched"))
class VectorizedSweepEngine:
    """Batched per-bucket assembly and dense solve (stacked (B*G, N, N) systems)."""

    #: Engines sharing a ``bitwise_family`` assemble and solve the same
    #: stacked systems in the same order, so the conformance matrix
    #: (:mod:`repro.verify.conformance`) asserts their fluxes equal *bit for
    #: bit* whenever the solver's factored path is exact
    #: (``LocalSolver.prefactorisation_exact``).
    bitwise_family = "batched"

    def sweep_angle(self, executor, angle, total_source, boundary_values, incident, timings):
        mesh = executor.mesh
        direction = executor.quadrature.directions[angle]
        asched = executor.schedule.for_angle(angle)
        orientation = asched.classification.orientation  # (E, 6)
        num_groups = executor.num_groups
        num_nodes = executor.num_nodes
        psi_angle = np.zeros((mesh.num_cells, num_groups, num_nodes), dtype=float)
        tel = active(getattr(executor, "telemetry", None))
        sampler = None if tel is None else tel.bucket_sampler()

        for bucket in asched.buckets:
            # The sampled bucket time reuses the t0/t2 stamps below -- the
            # rate-0 path is byte-identical to the uninstrumented loop.
            sample = sampler is not None and sampler.want()
            t0 = time.perf_counter()
            batch = bucket.shape[0]
            orient = orientation[bucket]  # (B, 6)
            a = assemble_bucket_matrices(executor, direction, orient, bucket)
            b = assemble_bucket_rhs(
                executor, angle, direction, orient, bucket, psi_angle,
                total_source, boundary_values, incident,
            )
            t1 = time.perf_counter()
            solution = executor.solver.solve_batched(
                a.reshape(batch * num_groups, num_nodes, num_nodes),
                b.reshape(batch * num_groups, num_nodes),
            )
            t2 = time.perf_counter()
            psi_angle[bucket] = solution.reshape(batch, num_groups, num_nodes)
            timings.assembly_seconds += t1 - t0
            timings.solve_seconds += t2 - t1
            timings.systems_solved += batch * num_groups
            if sample:
                sampler.record(t2 - t0, batch * num_groups)
        return psi_angle
