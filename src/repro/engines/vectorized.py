"""The vectorized sweep engine: batch-assemble and batch-solve whole buckets.

The reference engine pays CPython interpreter overhead for every element of
every bucket of every angle.  All elements of a wavefront bucket are mutually
independent and their upwind neighbours live in *earlier* buckets, so the
entire bucket can be assembled with stacked einsum contractions and solved as
one ``(B*G, N, N)`` batch through ``LocalSolver.solve_batched`` -- the NumPy
analogue of the paper's discussion of batched local solves (Section IV-B).

Equivalence with the reference engine is exact up to floating-point
associativity (the property tests assert agreement to ~1e-12): the same
streaming matrix, mass term, upwind face couplings, lagged block-Jacobi
traces and incident-boundary terms are applied, only batched over the bucket
dimension.  Timing moves from per-element to per-bucket
``time.perf_counter()`` calls, which also removes the timer overhead from the
measured kernels.
"""

from __future__ import annotations

import time

import numpy as np

from ..mesh.hexmesh import BOUNDARY
from .registry import register_engine

__all__ = ["VectorizedSweepEngine"]


@register_engine("vectorized", aliases=("vec", "batched"))
class VectorizedSweepEngine:
    """Batched per-bucket assembly and dense solve (stacked (B*G, N, N) systems)."""

    def sweep_angle(self, executor, angle, total_source, boundary_values, incident, timings):
        mesh = executor.mesh
        direction = executor.quadrature.directions[angle]
        asched = executor.schedule.for_angle(angle)
        orientation = asched.classification.orientation  # (E, 6)
        matrices = executor.matrices
        num_groups = executor.num_groups
        num_nodes = executor.num_nodes
        psi_angle = np.zeros((mesh.num_cells, num_groups, num_nodes), dtype=float)

        have_lagged = boundary_values is not None and len(boundary_values) > 0

        for bucket in asched.buckets:
            t0 = time.perf_counter()
            batch = bucket.shape[0]
            orient = orientation[bucket]  # (B, 6)

            # Streaming matrix: -Omega.G plus the outflow own-face couplings.
            a_base = -np.einsum(
                "d,edij->eij", direction, matrices.gradient[bucket], optimize=True
            )
            outflow = (orient == 1).astype(float)  # (B, 6)
            a_base += np.einsum(
                "ef,d,efdij->eij", outflow, direction, matrices.face_own[bucket], optimize=True
            )
            # Per-group systems: A[e, g] = base[e] + sigma_t[e, g] * M[e].
            mass = matrices.mass[bucket]  # (B, N, N)
            a = (
                a_base[:, None, :, :]
                + executor.sigma_t[bucket][:, :, None, None] * mass[:, None, :, :]
            )

            # Right-hand sides: volumetric source then inflow-face couplings.
            b = np.einsum("egj,eij->egi", total_source[bucket], mass, optimize=True)
            for face in range(6):
                inflow = orient[:, face] == -1
                if not np.any(inflow):
                    continue
                neighbors = mesh.face_neighbors[bucket, face]
                interior = inflow & (neighbors != BOUNDARY)
                if np.any(interior):
                    idx = np.nonzero(interior)[0]
                    coupling = np.einsum(
                        "d,kdij->kij",
                        direction,
                        matrices.face_neighbor[bucket[idx], face],
                        optimize=True,
                    )
                    # Upwind neighbours live in earlier buckets: psi is final.
                    traces = psi_angle[neighbors[idx]]  # (K, G, N)
                    b[idx] -= np.einsum("kgj,kij->kgi", traces, coupling, optimize=True)
                if not have_lagged and incident == 0.0:
                    # Vacuum domain boundary with no lagged traces: nothing to
                    # add, skip the per-element boundary scan entirely.
                    continue
                domain = inflow & (neighbors == BOUNDARY)
                if not np.any(domain):
                    continue
                idx = np.nonzero(domain)[0]
                lagged_local: list[int] = []
                lagged_traces: list[np.ndarray] = []
                incident_local: list[int] = []
                for k in idx.tolist():
                    element = int(bucket[k])
                    lagged = (
                        boundary_values.get(element, face, angle) if have_lagged else None
                    )
                    if lagged is not None:
                        lagged_local.append(k)
                        lagged_traces.append(lagged)
                    elif incident != 0.0:
                        incident_local.append(k)
                if lagged_local:
                    sel = np.asarray(lagged_local, dtype=np.int64)
                    coupling = np.einsum(
                        "d,kdij->kij",
                        direction,
                        matrices.face_neighbor[bucket[sel], face],
                        optimize=True,
                    )
                    traces = np.stack(lagged_traces, axis=0)  # (K, G, N)
                    b[sel] -= np.einsum("kgj,kij->kgi", traces, coupling, optimize=True)
                if incident_local:
                    sel = np.asarray(incident_local, dtype=np.int64)
                    coupling = np.einsum(
                        "d,kdij->kij",
                        direction,
                        matrices.face_own[bucket[sel], face],
                        optimize=True,
                    )
                    # Incident flux is constant over the face: psi = incident.
                    b[sel] -= incident * coupling.sum(axis=2)[:, None, :]

            t1 = time.perf_counter()
            solution = executor.solver.solve_batched(
                a.reshape(batch * num_groups, num_nodes, num_nodes),
                b.reshape(batch * num_groups, num_nodes),
            )
            t2 = time.perf_counter()
            psi_angle[bucket] = solution.reshape(batch, num_groups, num_nodes)
            timings.assembly_seconds += t1 - t0
            timings.solve_seconds += t2 - t1
            timings.systems_solved += batch * num_groups
        return psi_angle
