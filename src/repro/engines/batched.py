"""Shared batched per-bucket assembly used by the vectorized-family engines.

All elements of a wavefront bucket are mutually independent and their upwind
neighbours live in *earlier* buckets, so the whole bucket can be assembled
with stacked einsum contractions: the ``(B, G, N, N)`` left-hand sides, the
``(B, G, N)`` volumetric right-hand sides and the upwind face couplings.
The ``vectorized`` engine rebuilds everything per sweep; the
``prefactorized`` engine reuses :func:`assemble_bucket_matrices` once per
(angle, bucket) to build the systems it LU-factorises and caches, and calls
:func:`assemble_bucket_rhs` every sweep with the cached interior couplings.
"""

from __future__ import annotations

import numpy as np

from ..mesh.hexmesh import BOUNDARY

__all__ = [
    "assemble_bucket_matrices",
    "interior_upwind_couplings",
    "assemble_bucket_rhs",
]


def assemble_bucket_matrices(executor, direction, orient, bucket) -> np.ndarray:
    """Assemble the ``(B, G, N, N)`` local systems of one wavefront bucket.

    Parameters
    ----------
    executor:
        The owning :class:`~repro.core.sweep.SweepExecutor`.
    direction:
        The ordinate direction ``Omega``.
    orient:
        ``(B, 6)`` face orientation of the bucket elements for this
        direction (+1 outflow, -1 inflow, 0 tangential).
    bucket:
        ``(B,)`` element indices of the bucket.
    """
    matrices = executor.matrices
    # Streaming matrix: -Omega.G plus the outflow own-face couplings.
    a_base = -np.einsum("d,edij->eij", direction, matrices.gradient[bucket], optimize=True)
    outflow = (orient == 1).astype(float)  # (B, 6)
    a_base += np.einsum(
        "ef,d,efdij->eij", outflow, direction, matrices.face_own[bucket], optimize=True
    )
    # Per-group systems: A[e, g] = base[e] + sigma_t[e, g] * M[e].
    mass = matrices.mass[bucket]  # (B, N, N)
    return (
        a_base[:, None, :, :]
        + executor.sigma_t[bucket][:, :, None, None] * mass[:, None, :, :]
    )


def interior_upwind_couplings(
    executor, direction, orient, bucket
) -> dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Direction-weighted couplings to *interior* upwind neighbours.

    Returns a mapping ``face -> (idx, neighbors, coupling)`` covering every
    face with at least one interior inflow element, where ``idx`` indexes
    into the bucket, ``neighbors`` are the upwind element ids and
    ``coupling`` is the ``(K, N, N)`` contraction
    ``Omega . face_neighbor``.  Everything here depends only on the mesh,
    the schedule and the direction -- it is invariant across sweeps, which
    is why the ``prefactorized`` engine caches it alongside the LU factors.
    """
    mesh = executor.mesh
    couplings: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    for face in range(6):
        inflow = orient[:, face] == -1
        if not np.any(inflow):
            continue
        neighbors = mesh.face_neighbors[bucket, face]
        interior = inflow & (neighbors != BOUNDARY)
        if not np.any(interior):
            continue
        idx = np.nonzero(interior)[0]
        coupling = np.einsum(
            "d,kdij->kij",
            direction,
            executor.matrices.face_neighbor[bucket[idx], face],
            optimize=True,
        )
        couplings[face] = (idx, neighbors[idx], coupling)
    return couplings


def assemble_bucket_rhs(
    executor,
    angle,
    direction,
    orient,
    bucket,
    psi_angle,
    total_source,
    boundary_values,
    incident,
    interior=None,
) -> np.ndarray:
    """Assemble the ``(B, G, N)`` right-hand sides of one wavefront bucket.

    Volumetric source first, then per face the interior upwind couplings
    (``psi`` of earlier buckets is final) and the domain-boundary inflow
    terms: lagged block-Jacobi traces where present, otherwise the incident
    boundary flux.  ``interior`` takes a precomputed
    :func:`interior_upwind_couplings` result (the ``prefactorized`` cache);
    when ``None`` the couplings are built on the fly.
    """
    mesh = executor.mesh
    matrices = executor.matrices
    have_lagged = boundary_values is not None and len(boundary_values) > 0
    if interior is None:
        interior = interior_upwind_couplings(executor, direction, orient, bucket)

    b = np.einsum("egj,eij->egi", total_source[bucket], matrices.mass[bucket], optimize=True)
    for face in range(6):
        entry = interior.get(face)
        if entry is not None:
            idx, neighbors, coupling = entry
            # Upwind neighbours live in earlier buckets: psi is final.
            traces = psi_angle[neighbors]  # (K, G, N)
            b[idx] -= np.einsum("kgj,kij->kgi", traces, coupling, optimize=True)
        if not have_lagged and incident == 0.0:
            # Vacuum domain boundary with no lagged traces: nothing to add,
            # skip the per-element boundary scan entirely.
            continue
        inflow = orient[:, face] == -1
        if not np.any(inflow):
            continue
        neighbors = mesh.face_neighbors[bucket, face]
        domain = inflow & (neighbors == BOUNDARY)
        if not np.any(domain):
            continue
        idx = np.nonzero(domain)[0]
        lagged_local: list[int] = []
        lagged_traces: list[np.ndarray] = []
        incident_local: list[int] = []
        for k in idx.tolist():
            element = int(bucket[k])
            lagged = boundary_values.get(element, face, angle) if have_lagged else None
            if lagged is not None:
                lagged_local.append(k)
                lagged_traces.append(lagged)
            elif incident != 0.0:
                incident_local.append(k)
        if lagged_local:
            sel = np.asarray(lagged_local, dtype=np.int64)
            coupling = np.einsum(
                "d,kdij->kij",
                direction,
                matrices.face_neighbor[bucket[sel], face],
                optimize=True,
            )
            traces = np.stack(lagged_traces, axis=0)  # (K, G, N)
            b[sel] -= np.einsum("kgj,kij->kgi", traces, coupling, optimize=True)
        if incident_local:
            sel = np.asarray(incident_local, dtype=np.int64)
            coupling = np.einsum(
                "d,kdij->kij",
                direction,
                matrices.face_own[bucket[sel], face],
                optimize=True,
            )
            # Incident flux is constant over the face: psi = incident.
            b[sel] -= incident * coupling.sum(axis=2)[:, None, :]
    return b
