"""The pre-factorised sweep engine: LU-factor once, back-substitute every sweep.

Paper Section IV-B.1: the per-element streaming + collision systems depend
only on the mesh geometry, the ordinate direction and the total cross
sections -- none of which change across the inner/outer iterations of a
fixed-source solve.  The ``vectorized`` engine nevertheless re-assembles and
re-eliminates every ``(B*G, N, N)`` bucket batch on every sweep.  This
engine assembles and LU-factorises each bucket batch *once* per (angle,
bucket), caches the packed factors (plus the equally invariant interior
upwind coupling matrices), and on every subsequent sweep only assembles the
right-hand sides and runs the ``O(N^2)`` triangular substitutions.

The cache lives on the executor (:attr:`SweepExecutor.factor_cache`), not on
the engine -- engines are stateless shared instances -- and follows the
executor's factor-cache lifecycle: ``SweepExecutor.invalidate_factor_cache``
clears it whenever the cross sections change (``update_materials``) so the
next sweep re-factorises; building a new executor covers mesh changes.  The
memory cost is the cached factors, ``E * A * G * N^2`` doubles across the
whole quadrature -- the same memory-for-time trade the paper discusses for
pre-assembled matrices.

The factor/solve pair comes from the local solver when it provides one
(``LocalSolver.factor_batched`` / ``solve_factored``; both built-ins do), so
``prefactorized`` + ``ge`` reproduces the hand-written elimination bit for
bit, and falls back to the hand-written batched LU otherwise.
"""

from __future__ import annotations

import time

import numpy as np

from ..solvers.prefactor import batched_gaussian_lu_factor, batched_gaussian_lu_solve
from ..telemetry import active
from .batched import (
    assemble_bucket_matrices,
    assemble_bucket_rhs,
    interior_upwind_couplings,
)
from .registry import register_engine

__all__ = ["PrefactorizedSweepEngine"]


@register_engine("prefactorized", aliases=("lu", "prefactor", "factor-cache"))
class PrefactorizedSweepEngine:
    """Cached per-bucket LU factors; sweeps only assemble RHS and back-substitute."""

    #: Same stacked systems in the same order as ``vectorized``; exact flux
    #: equality is asserted by the conformance matrix for solvers with
    #: ``prefactorisation_exact`` (see :mod:`repro.verify.conformance`).
    bitwise_family = "batched"

    def _factor_pair(self, executor):
        solver = executor.solver
        if getattr(solver, "supports_prefactorisation", False):
            return solver.factor_batched, solver.solve_factored
        return batched_gaussian_lu_factor, batched_gaussian_lu_solve

    def sweep_angle(self, executor, angle, total_source, boundary_values, incident, timings):
        mesh = executor.mesh
        direction = executor.quadrature.directions[angle]
        asched = executor.schedule.for_angle(angle)
        orientation = asched.classification.orientation  # (E, 6)
        num_groups = executor.num_groups
        num_nodes = executor.num_nodes
        factor, solve_factored = self._factor_pair(executor)
        cache = executor.factor_cache
        tel = active(getattr(executor, "telemetry", None))
        sampler = None if tel is None else tel.bucket_sampler()
        psi_angle = np.zeros((mesh.num_cells, num_groups, num_nodes), dtype=float)

        for index, bucket in enumerate(asched.buckets):
            # The sampled bucket time reuses the steady-state t0/t2 stamps
            # below, so sampling adds no timer calls to the bucket loop.
            sample = sampler is not None and sampler.want()
            batch = bucket.shape[0]
            orient = orientation[bucket]  # (B, 6)
            # Namespaced by the registered engine name so distinct engines
            # sharing one executor can never read each other's entries.
            key = (getattr(self, "name", "prefactorized"), angle, index)
            entry = cache.get(key)
            if tel is not None:
                tel.incr("factor_cache_misses" if entry is None else "factor_cache_hits")
            if entry is None:
                # Factor-once path: assemble the invariant systems and
                # couplings, eliminate, and cache the packed factors.  The
                # assembly is booked as assembly time, the elimination as
                # solve time (it is the LU of the one-shot solve).
                t0 = time.perf_counter()
                a = assemble_bucket_matrices(executor, direction, orient, bucket)
                interior = interior_upwind_couplings(executor, direction, orient, bucket)
                t1 = time.perf_counter()
                factors = factor(a.reshape(batch * num_groups, num_nodes, num_nodes))
                t2 = time.perf_counter()
                entry = cache[key] = (factors, interior)
                timings.assembly_seconds += t1 - t0
                timings.solve_seconds += t2 - t1
            factors, interior = entry

            t0 = time.perf_counter()
            b = assemble_bucket_rhs(
                executor, angle, direction, orient, bucket, psi_angle,
                total_source, boundary_values, incident, interior=interior,
            )
            t1 = time.perf_counter()
            solution = solve_factored(factors, b.reshape(batch * num_groups, num_nodes))
            t2 = time.perf_counter()
            psi_angle[bucket] = solution.reshape(batch, num_groups, num_nodes)
            timings.assembly_seconds += t1 - t0
            timings.solve_seconds += t2 - t1
            timings.systems_solved += batch * num_groups
            if sample:
                sampler.record(t2 - t0, batch * num_groups)
        return psi_angle
