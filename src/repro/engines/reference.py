"""The reference per-element sweep engine (the pseudocode of Figure 2).

Within a bucket every element is independent and, per element, the systems of
all energy groups are assembled and solved together (a batch of ``G`` small
dense systems sharing the same streaming matrix but different ``sigma_t,g``).
The assemble and solve phases are timed separately, per element, to reproduce
the split of Table II.  Independent bucket elements may optionally be
processed by a thread pool (``executor.element_threads``), with the bucket
boundary acting as a synchronisation point.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..mesh.hexmesh import BOUNDARY
from ..telemetry import active
from .registry import register_engine

__all__ = ["ReferenceSweepEngine"]


@register_engine("reference", aliases=("loop", "per-element"))
class ReferenceSweepEngine:
    """Per-element assemble/solve loop following the bucket schedule (Figure 2)."""

    def sweep_angle(self, executor, angle, total_source, boundary_values, incident, timings):
        mesh = executor.mesh
        direction = executor.quadrature.directions[angle]
        asched = executor.schedule.for_angle(angle)
        orientation = asched.classification.orientation
        matrices = executor.matrices
        solver = executor.solver
        psi_angle = np.zeros(
            (mesh.num_cells, executor.num_groups, executor.num_nodes), dtype=float
        )

        def process_element(element: int) -> None:
            t0 = time.perf_counter()
            upwind: dict[int, np.ndarray] = {}
            boundary_inflow_faces: list[int] = []
            for face in np.nonzero(orientation[element] == -1)[0].tolist():
                neighbor = mesh.face_neighbors[element, face]
                if neighbor != BOUNDARY:
                    upwind[face] = psi_angle[neighbor]
                    continue
                lagged = (
                    boundary_values.get(element, face, angle)
                    if boundary_values is not None
                    else None
                )
                if lagged is not None:
                    upwind[face] = lagged
                elif incident != 0.0:
                    boundary_inflow_faces.append(face)
            a, b = matrices.assemble_systems(
                element,
                direction,
                orientation[element],
                executor.sigma_t[element],
                total_source[element],
                upwind,
            )
            for face in boundary_inflow_faces:
                coupling = np.einsum("d,dij->ij", direction, matrices.face_own[element, face])
                b -= incident * coupling.sum(axis=1)[None, :]
            t1 = time.perf_counter()
            psi_angle[element] = solver.solve_batched(a, b)
            t2 = time.perf_counter()
            timings.assembly_seconds += t1 - t0
            timings.solve_seconds += t2 - t1
            timings.systems_solved += executor.num_groups

        tel = active(getattr(executor, "telemetry", None))
        sampler = None if tel is None else tel.bucket_sampler()

        # element_threads is 1 under octant-parallel execution: the worker
        # threads are spent at the octant level, never nested.
        if executor.element_threads == 1:
            for bucket in asched.buckets:
                sample = sampler is not None and sampler.want()
                if sample:
                    ts = time.perf_counter()
                for element in bucket.tolist():
                    process_element(element)
                if sample:
                    sampler.record(
                        time.perf_counter() - ts, bucket.shape[0] * executor.num_groups
                    )
        else:
            with ThreadPoolExecutor(max_workers=executor.element_threads) as pool:
                for bucket in asched.buckets:
                    sample = sampler is not None and sampler.want()
                    if sample:
                        ts = time.perf_counter()
                    # Elements within a bucket are mutually independent; the
                    # bucket boundary is a synchronisation point.
                    list(pool.map(process_element, bucket.tolist()))
                    if sample:
                        sampler.record(
                            time.perf_counter() - ts, bucket.shape[0] * executor.num_groups
                        )
        return psi_angle
