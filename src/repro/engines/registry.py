"""Registry of sweep engines selectable by name.

Mirrors :mod:`repro.solvers.registry`: the input deck, :func:`repro.run` and
the ``unsnap`` CLI select the sweep engine by name, and third-party code can
plug in new execution strategies with the :func:`register_engine` decorator::

    from repro.engines import register_engine

    @register_engine("my-engine", aliases=("mine",))
    class MySweepEngine:
        \"\"\"One-line description shown by ``unsnap engines``.\"\"\"

        def sweep_angle(self, executor, angle, total_source,
                        boundary_values, incident, timings):
            ...

    repro.run(spec, engine="my-engine")
"""

from __future__ import annotations

from .base import SweepEngine

__all__ = [
    "register_engine",
    "unregister_engine",
    "get_engine",
    "available_engines",
    "engine_descriptions",
]

_REGISTRY: dict[str, SweepEngine] = {}
_ALIASES: dict[str, str] = {}


def register_engine(
    name: str,
    *,
    description: str | None = None,
    aliases: tuple[str, ...] = (),
    overwrite: bool = False,
):
    """Class (or instance) decorator registering a sweep engine under ``name``.

    Parameters
    ----------
    name:
        Registry key (matched case-insensitively by :func:`get_engine`).
    description:
        Human-readable description; defaults to the first line of the
        engine's docstring.
    aliases:
        Extra names accepted by :func:`get_engine`.
    overwrite:
        Allow replacing an existing registration (otherwise a duplicate name
        raises ``ValueError``).
    """
    key = name.strip().lower()

    def decorate(obj):
        engine = obj() if isinstance(obj, type) else obj
        if not callable(getattr(engine, "sweep_angle", None)):
            raise TypeError(
                f"engine {name!r} must implement sweep_angle(...); got {type(engine)!r}"
            )
        alias_keys = [alias.strip().lower() for alias in aliases]
        if not overwrite:
            # Validate every key before mutating anything so a conflict
            # cannot leave a partial registration behind.
            for k in (key, *alias_keys):
                if k in _REGISTRY or k in _ALIASES:
                    raise ValueError(f"engine name {k!r} is already registered")
        engine.name = key
        engine.description = description or next(
            iter((engine.__doc__ or "").strip().splitlines()), ""
        )
        _REGISTRY[key] = engine
        for alias_key in alias_keys:
            _ALIASES[alias_key] = key
        return obj

    return decorate


def unregister_engine(name: str) -> None:
    """Remove an engine (and its aliases) from the registry.

    Primarily a test/plugin-teardown convenience; the built-in engines can be
    removed too, so use with care.
    """
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    _REGISTRY.pop(key, None)
    for alias in [a for a, target in _ALIASES.items() if target == key]:
        del _ALIASES[alias]


def available_engines() -> list[str]:
    """Names of all registered engines (aliases excluded)."""
    return sorted(_REGISTRY)


def engine_descriptions() -> list[tuple[str, str]]:
    """``(name, description)`` pairs for reports and ``unsnap engines``."""
    return [(name, _REGISTRY[name].description) for name in available_engines()]


def get_engine(engine: SweepEngine | str) -> SweepEngine:
    """Resolve an engine instance from a name, alias or instance.

    Passing an object that already implements the protocol returns it
    unchanged, so call sites can accept ``engine: SweepEngine | str``.
    """
    if not isinstance(engine, str):
        if callable(getattr(engine, "sweep_angle", None)):
            return engine
        raise TypeError(f"not a sweep engine: {engine!r}")
    key = engine.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown engine {engine!r}; available: {available_engines()}"
        ) from None
