"""Registry of sweep engines selectable by name.

Built on the generic :class:`repro.registry.Registry` (shared with
:mod:`repro.solvers.registry`): the input deck, :func:`repro.run` and the
``unsnap`` CLI select the sweep engine by name, and third-party code can
plug in new execution strategies with the :func:`register_engine`
decorator::

    from repro.engines import register_engine

    @register_engine("my-engine", aliases=("mine",))
    class MySweepEngine:
        \"\"\"One-line description shown by ``unsnap engines``.\"\"\"

        def sweep_angle(self, executor, angle, total_source,
                        boundary_values, incident, timings):
            ...

    repro.run(spec, engine="my-engine")
"""

from __future__ import annotations

from ..registry import Registry
from .base import SweepEngine

__all__ = [
    "register_engine",
    "unregister_engine",
    "get_engine",
    "available_engines",
    "engine_aliases",
    "engine_descriptions",
    "engine_listing",
    "note_soft_dependency",
]

_ENGINES: Registry[SweepEngine] = Registry("engine")

#: name -> why an optional engine tier could not register (soft dependency).
_SOFT_HINTS: dict[str, str] = {}


def note_soft_dependency(name: str, reason: str | None) -> None:
    """Record why an optional engine is unavailable.

    Soft-dependency tiers (the ``compiled`` engine) register only when
    their dependency is importable; this hook lets them leave a hint so
    :func:`get_engine` can raise an actionable error instead of a bare
    unknown-name ``KeyError``.
    """
    _SOFT_HINTS[name.strip().lower()] = reason or "optional dependency missing"


def register_engine(
    name: str,
    *,
    description: str | None = None,
    aliases: tuple[str, ...] = (),
    overwrite: bool = False,
):
    """Class (or instance) decorator registering a sweep engine under ``name``.

    Parameters
    ----------
    name:
        Registry key (matched case-insensitively by :func:`get_engine`).
    description:
        Human-readable description; defaults to the first line of the
        engine's docstring.
    aliases:
        Extra names accepted by :func:`get_engine`.
    overwrite:
        Allow replacing an existing registration (otherwise a duplicate name
        raises ``ValueError``).
    """

    def decorate(obj):
        engine = obj() if isinstance(obj, type) else obj
        if not callable(getattr(engine, "sweep_angle", None)):
            raise TypeError(
                f"engine {name!r} must implement sweep_angle(...); got {type(engine)!r}"
            )
        engine.name = name.strip().lower()
        engine.description = description or next(
            iter((engine.__doc__ or "").strip().splitlines()), ""
        )
        _ENGINES.add(engine.name, engine, aliases=aliases, overwrite=overwrite)
        return obj

    return decorate


def unregister_engine(name: str) -> None:
    """Remove an engine (and its aliases) from the registry.

    Primarily a test/plugin-teardown convenience; the built-in engines can be
    removed too, so use with care.
    """
    _ENGINES.remove(name)


def available_engines() -> list[str]:
    """Names of all registered engines (aliases excluded)."""
    return _ENGINES.available()


def engine_aliases(name: str) -> list[str]:
    """Aliases registered for the given engine name."""
    return _ENGINES.aliases_of(name)


def engine_descriptions() -> list[tuple[str, str]]:
    """``(name, description)`` pairs for reports and ``unsnap engines``."""
    return _ENGINES.descriptions()


def engine_listing() -> list[tuple[str, str, str]]:
    """``(name, aliases, description)`` rows for ``unsnap engines``."""
    return _ENGINES.listing()


def get_engine(engine: SweepEngine | str) -> SweepEngine:
    """Resolve an engine instance from a name, alias or instance.

    Passing an object that already implements the protocol returns it
    unchanged, so call sites can accept ``engine: SweepEngine | str``.
    """
    if not isinstance(engine, str):
        if callable(getattr(engine, "sweep_angle", None)):
            return engine
        raise TypeError(f"not a sweep engine: {engine!r}")
    try:
        return _ENGINES.resolve(engine)
    except KeyError:
        hint = _SOFT_HINTS.get(engine.strip().lower())
        if hint is not None:
            raise KeyError(
                f"engine {engine!r} is not available in this environment: {hint}"
            ) from None
        raise
