"""Generic name+alias registry shared by the pluggable subsystems.

The sweep-engine registry (:mod:`repro.engines.registry`) and the
local-solver registry (:mod:`repro.solvers.registry`) grew the same
mechanics independently: case-insensitive canonical names, an alias table
resolving to canonical names, conflict validation that never leaves a
partial registration behind, and listing helpers for the CLI.  This module
extracts those mechanics into one :class:`Registry` both subsystems (and
future ones -- numba/GPU engines, new solver families) build on, so a new
registry is one instantiation rather than a hundred duplicated lines.

A :class:`Registry` stores arbitrary objects; the thin subsystem modules
keep their domain-specific validation (protocol checks, decorator sugar)
and public function names.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

__all__ = ["Registry"]

T = TypeVar("T")


def _normalise(name: str) -> str:
    return name.strip().lower()


class Registry(Generic[T]):
    """A case-insensitive name+alias registry of named objects.

    Parameters
    ----------
    kind:
        Human-readable noun used in error messages (``"engine"``,
        ``"solver"``, ...).
    describe:
        Optional callable mapping a registered object to its one-line
        description; defaults to reading an ``obj.description`` attribute.
    """

    def __init__(self, kind: str, describe: Callable[[T], str] | None = None):
        self.kind = kind
        self._describe = describe if describe is not None else self._default_describe
        self._items: dict[str, T] = {}
        self._aliases: dict[str, str] = {}

    @staticmethod
    def _default_describe(obj: T) -> str:
        return getattr(obj, "description", "")

    # ------------------------------------------------------------ mutation
    def add(
        self,
        name: str,
        obj: T,
        *,
        aliases: tuple[str, ...] = (),
        overwrite: bool = False,
    ) -> T:
        """Register ``obj`` under ``name`` plus any ``aliases``.

        All keys are validated before anything is stored, so a duplicate
        name or alias raises ``ValueError`` without leaving a partial
        registration behind.  With ``overwrite=True`` an existing canonical
        registration of the *same* name is replaced (its old aliases are
        dropped first); overwriting through another object's alias is
        rejected so a plugin cannot silently knock out a different
        registration.
        """
        key = _normalise(name)
        alias_keys = [_normalise(alias) for alias in aliases]
        if overwrite:
            if key in self._aliases:
                raise ValueError(
                    f"{self.kind} name {key!r} is an alias of "
                    f"{self._aliases[key]!r}; unregister that first"
                )
            if key in self._items:
                self.remove(key)
            # The replaced registration's aliases are gone now, so any
            # remaining collision belongs to a *different* registration.
            for k in alias_keys:
                if k in self._items or k in self._aliases:
                    raise ValueError(f"{self.kind} name {k!r} is already registered")
        else:
            for k in (key, *alias_keys):
                if k in self._items or k in self._aliases:
                    raise ValueError(f"{self.kind} name {k!r} is already registered")
        self._items[key] = obj
        for alias_key in alias_keys:
            self._aliases[alias_key] = key
        return obj

    def remove(self, name: str) -> None:
        """Remove a registration (and its aliases); unknown names are a no-op."""
        key = self.canonical(name)
        self._items.pop(key, None)
        for alias in [a for a, target in self._aliases.items() if target == key]:
            del self._aliases[alias]

    # ------------------------------------------------------------- lookup
    def canonical(self, name: str) -> str:
        """Resolve a name or alias to its canonical registry key."""
        key = _normalise(name)
        return self._aliases.get(key, key)

    def resolve(self, name: str) -> T:
        """Look up an object by canonical name or alias (case-insensitive)."""
        try:
            return self._items[self.canonical(name)]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; available: {self.available()}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return self.canonical(name) in self._items

    def __iter__(self) -> Iterator[str]:
        return iter(self.available())

    def __len__(self) -> int:
        return len(self._items)

    # ------------------------------------------------------------ listing
    def available(self) -> list[str]:
        """Sorted canonical names (aliases excluded)."""
        return sorted(self._items)

    def aliases_of(self, name: str) -> list[str]:
        """Sorted aliases registered for the given name."""
        key = self.canonical(name)
        return sorted(a for a, target in self._aliases.items() if target == key)

    def descriptions(self) -> list[tuple[str, str]]:
        """``(name, description)`` pairs for every registered object."""
        return [(name, self._describe(self._items[name])) for name in self.available()]

    def listing(self) -> list[tuple[str, str, str]]:
        """``(name, comma-joined aliases, description)`` rows for CLI tables."""
        return [
            (name, ", ".join(self.aliases_of(name)), self._describe(self._items[name]))
            for name in self.available()
        ]
