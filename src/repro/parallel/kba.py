"""Analytic pipeline model of the classical KBA sweep schedule.

SNAP's global schedule is the Koch-Baker-Alcouffe (KBA) wavefront: the 2-D
processor grid is pipelined, so a processor must wait for its upwind
neighbours before it can start an octant, and the pipeline fill/drain time
grows with the processor-grid diameter.  The paper's block-Jacobi schedule
trades that idle time for a degraded convergence rate.

This module provides a small analytic model of both schedules' *per-sweep*
parallel efficiency so the trade-off can be quantified next to the measured
block-Jacobi convergence histories.  It is a modelling substrate (the paper
discusses, but does not implement, the KBA alternative for UnSNAP).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KBAPipelineModel"]


@dataclass(frozen=True)
class KBAPipelineModel:
    """Idle-time model of a KBA pipelined sweep on a 2-D processor grid.

    Parameters
    ----------
    npex, npey:
        Processor grid dimensions.
    num_planes:
        Number of pipeline stages of work each processor performs per octant
        (for a structured grid this is the number of cell-planes along the
        sweep direction owned by one rank, possibly blocked in k).
    num_octants:
        Number of octants swept in turn (8 in 3-D).
    """

    npex: int
    npey: int
    num_planes: int
    num_octants: int = 8

    def __post_init__(self) -> None:
        if self.npex < 1 or self.npey < 1:
            raise ValueError("processor grid dimensions must be >= 1")
        if self.num_planes < 1:
            raise ValueError("num_planes must be >= 1")
        if self.num_octants < 1:
            raise ValueError("num_octants must be >= 1")

    @property
    def pipeline_depth(self) -> int:
        """Stages before the farthest processor receives its first work."""
        return (self.npex - 1) + (self.npey - 1)

    def stages_per_octant(self) -> int:
        """Total pipeline stages to complete one octant."""
        return self.num_planes + self.pipeline_depth

    def parallel_efficiency(self) -> float:
        """Fraction of the sweep during which a processor is busy.

        With perfect load balance each rank performs ``num_planes`` stages of
        work out of ``num_planes + pipeline_depth`` stages of elapsed time
        (per octant; sweeping opposing octants back-to-back re-uses the full
        pipeline, which is why the classic KBA analysis applies the fill cost
        once per octant pair -- we model the conservative per-octant case).
        """
        return self.num_planes / self.stages_per_octant()

    def idle_fraction(self) -> float:
        return 1.0 - self.parallel_efficiency()

    def relative_sweep_time(self) -> float:
        """Sweep time relative to an ideal (no-idle) schedule of the same work."""
        return self.stages_per_octant() / self.num_planes

    @staticmethod
    def block_jacobi_efficiency() -> float:
        """The block-Jacobi schedule has no inter-rank idle time per sweep.

        Its cost appears instead as extra iterations (a degraded convergence
        rate), which :class:`repro.parallel.block_jacobi.BlockJacobiDriver`
        measures directly.
        """
        return 1.0
