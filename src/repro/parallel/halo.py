"""Halo exchange of outgoing angular-flux traces between subdomains.

"A parallel block Jacobi schedule is chosen for processor-to-processor
coupling.  This results in a halo exchange every iteration in order to share
the outgoing data between processor domains."  (Section III-A.1.)

Each rank's sweep produces, for every rank-boundary face it owns and every
angle for which that face is an *outflow* face, the nodal angular flux of the
owning element.  The exchanger packs these traces into one message per
neighbouring rank, ships them through the simulated communicator, and unpacks
the received traces into the :class:`BoundaryValues` container the next
sweep's inflow faces read from.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..core.sweep import BoundaryValues
from ..mesh.partition import Subdomain
from .comm import SimComm

__all__ = ["HaloExchanger"]

#: Message tag used for halo traffic.
HALO_TAG = 71


class HaloExchanger:
    """Packs, exchanges and unpacks halo traces for one subdomain.

    Parameters
    ----------
    subdomain:
        The rank's subdomain (supplies the halo-face table).
    comm:
        The rank's simulated communicator.
    """

    def __init__(self, subdomain: Subdomain, comm: SimComm):
        self.subdomain = subdomain
        self.comm = comm
        # Map (remote_rank) -> list of (local_cell, face, remote_local_cell)
        self._by_partner: dict[int, list[tuple[int, int, int]]] = defaultdict(list)
        for local_cell, face, remote_rank, remote_cell in subdomain.halo_faces.tolist():
            self._by_partner[int(remote_rank)].append(
                (int(local_cell), int(face), int(remote_cell))
            )

    @property
    def partners(self) -> list[int]:
        return sorted(self._by_partner)

    # ------------------------------------------------------------------ send
    def post_outgoing(self, outgoing: dict[tuple[int, int, int], np.ndarray]) -> int:
        """Send this rank's outgoing traces to each neighbouring rank.

        ``outgoing`` is the :attr:`SweepResult.outgoing_halo` mapping keyed by
        ``(local_cell, face, angle)``.  Returns the number of messages posted.
        """
        posted = 0
        for partner, faces in self._by_partner.items():
            message: dict[tuple[int, int, int], np.ndarray] = {}
            face_set = {(cell, face) for cell, face, _remote in faces}
            for (cell, face, angle), trace in outgoing.items():
                if (cell, face) in face_set:
                    # Key by *global-ish* coordinates the receiver understands:
                    # its own local cell id and the face seen from its side.
                    remote_cell = next(
                        rc for c, f, rc in faces if c == cell and f == face
                    )
                    message[(remote_cell, face ^ 1, angle)] = trace
            self.comm.send(message, dest=partner, tag=HALO_TAG)
            posted += 1
        return posted

    # --------------------------------------------------------------- receive
    def collect_incoming(self, boundary_values: BoundaryValues | None = None) -> BoundaryValues:
        """Receive one halo message from every partner and update the lag store."""
        if boundary_values is None:
            boundary_values = BoundaryValues()
        for partner in self.partners:
            message = self.comm.recv(source=partner, tag=HALO_TAG)
            for (cell, face, angle), trace in message.items():
                boundary_values.put(cell, face, angle, trace)
        return boundary_values

    # ------------------------------------------------------------ diagnostics
    def halo_volume_bytes(self, num_groups: int, num_nodes: int, num_angles: int) -> int:
        """Upper bound on the bytes exchanged per iteration by this rank.

        Each halo face sends a ``(G, N)`` FP64 trace for roughly half of the
        angles (those for which the face is an outflow face).
        """
        faces = sum(len(v) for v in self._by_partner.values())
        return faces * num_groups * num_nodes * 8 * (num_angles // 2)
