"""The parallel block-Jacobi driver over a KBA-style 2-D decomposition.

Every (simulated) MPI rank owns one column of the KBA decomposition, sweeps
it concurrently with the other ranks using lagged incoming angular flux at
rank boundaries, and exchanges halos after every inner iteration.  "Note that
each process can begin computation on its own subdomain concurrently, unlike
with the KBA schedule in the SNAP mini-app where processors must wait to
begin work" -- the price is a convergence rate that degrades with the number
of Jacobi blocks, which is exactly what
:func:`repro.analysis.figures.block_jacobi_convergence_series` measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..angular.quadrature import AngularQuadrature, snap_dummy_quadrature
from ..config import ProblemSpec
from ..core.assembly import AssemblyTimings, ElementMatrices
from ..core.balance import BalanceReport, particle_balance
from ..core.convergence import max_relative_difference
from ..core.flux import node_integration_weights
from ..core.source import build_outer_source, build_total_source
from ..core.sweep import BoundaryValues, SweepExecutor
from ..fem.element import HexElementFactors
from ..fem.reference import ReferenceElement
from ..materials.cross_sections import MaterialLibrary
from ..materials.library import snap_option1_library
from ..materials.source_terms import FixedSource, uniform_source
from ..mesh.builder import StructuredGridSpec, build_snap_mesh
from ..mesh.partition import KBADecomposition, partition_kba
from ..sweepsched.schedule import build_sweep_schedule
from ..telemetry import active, phase
from .comm import SimCommWorld
from .halo import HaloExchanger

__all__ = ["BlockJacobiDriver", "BlockJacobiResult"]


@dataclass
class BlockJacobiResult:
    """Result of a multi-rank block-Jacobi solve.

    Attributes
    ----------
    scalar_flux:
        ``(E_global, G, N)`` nodal scalar flux in global cell ordering.
    inner_errors:
        Global maximum relative change of the scalar flux per inner iteration
        (the block-Jacobi convergence history).
    leakage:
        ``(G,)`` net domain-boundary leakage of the final sweep.
    balance:
        Domain-level particle balance of the final iterate.
    timings:
        Accumulated assemble/solve split over all ranks and sweeps.
    num_ranks:
        Number of simulated MPI ranks.
    messages, bytes_exchanged:
        Halo-exchange traffic statistics of the whole solve.
    wall_seconds:
        Wall-clock time of the iteration loop.
    outer_errors, inners_per_outer:
        Per-outer convergence record (mirrors
        :class:`~repro.core.iteration.IterationHistory`).
    cell_average_flux:
        ``(E_global, G)`` volume-averaged scalar flux per cell.
    """

    scalar_flux: np.ndarray
    inner_errors: list[float]
    leakage: np.ndarray
    balance: BalanceReport
    timings: AssemblyTimings
    num_ranks: int
    messages: int
    bytes_exchanged: int
    wall_seconds: float
    per_rank_cells: list[int] = field(default_factory=list)
    outer_errors: list[float] = field(default_factory=list)
    inners_per_outer: list[int] = field(default_factory=list)
    cell_average_flux: np.ndarray | None = None

    @property
    def total_inners(self) -> int:
        return len(self.inner_errors)


class BlockJacobiDriver:
    """Build and run a multi-rank block-Jacobi UnSNAP solve.

    Parameters
    ----------
    spec:
        Problem specification; ``spec.npex x spec.npey`` gives the rank grid.
    materials, fixed_source, quadrature:
        Optional overrides of the SNAP option-1 defaults (given in *global*
        cell ordering; they are restricted to each subdomain automatically).
    engine:
        Sweep-engine override (name or instance); defaults to ``spec.engine``.
    num_threads:
        Worker threads per rank (octant-level with ``octant_parallel``,
        otherwise the ``reference`` engine's bucket loop).
    octant_parallel:
        Octant-parallel sweep override; defaults to ``spec.octant_parallel``.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` instrument shared by all
        rank executors (per-rank ``sweep`` phases accumulate onto the same
        paths) and fed the halo-traffic counters; ``None`` keeps every path
        uninstrumented.
    """

    def __init__(
        self,
        spec: ProblemSpec,
        materials: MaterialLibrary | None = None,
        fixed_source: FixedSource | None = None,
        quadrature: AngularQuadrature | None = None,
        engine=None,
        num_threads: int = 1,
        octant_parallel: bool | None = None,
        telemetry=None,
    ):
        self.spec = spec
        self.telemetry = telemetry
        self.global_mesh = build_snap_mesh(
            StructuredGridSpec(spec.nx, spec.ny, spec.nz, spec.lx, spec.ly, spec.lz),
            max_twist=spec.max_twist,
            twist_axis=spec.twist_axis,
        )
        self.decomposition: KBADecomposition = partition_kba(
            self.global_mesh, spec.npex, spec.npey
        )
        self.quadrature = (
            quadrature if quadrature is not None else snap_dummy_quadrature(spec.angles_per_octant)
        )
        global_materials = (
            materials
            if materials is not None
            else snap_option1_library(spec.num_groups, spec.scattering_ratio)
        ).for_cells(self.global_mesh.num_cells)
        global_source = (
            fixed_source
            if fixed_source is not None
            else uniform_source(
                self.global_mesh.num_cells, global_materials.num_groups, spec.source_strength
            )
        )
        self.global_materials = global_materials
        self.global_source = global_source

        self.ref = ReferenceElement(spec.order)
        self.world = SimCommWorld(self.decomposition.num_ranks)

        self.rank_materials: list[MaterialLibrary] = []
        self.rank_sources: list[FixedSource] = []
        self.executors: list[SweepExecutor] = []
        self.exchangers: list[HaloExchanger] = []
        self.node_weights: list[np.ndarray] = []
        self.factors: list[HexElementFactors] = []

        for sub in self.decomposition.subdomains:
            factors = HexElementFactors.build(sub.mesh.cell_vertices(), self.ref)
            matrices = ElementMatrices.build(factors, self.ref)
            schedule = build_sweep_schedule(sub.mesh, factors, self.quadrature)
            rank_materials = MaterialLibrary(
                materials=global_materials.materials,
                cell_material=global_materials.cell_material[sub.global_cell_ids],
            )
            rank_source = FixedSource(density=global_source.density[sub.global_cell_ids])
            executor = SweepExecutor(
                mesh=sub.mesh,
                factors=factors,
                ref=self.ref,
                matrices=matrices,
                schedule=schedule,
                quadrature=self.quadrature,
                materials=rank_materials,
                boundary=spec.boundary,
                solver=spec.solver,
                engine=engine if engine is not None else spec.engine,
                num_threads=num_threads,
                octant_parallel=(
                    spec.octant_parallel if octant_parallel is None else bool(octant_parallel)
                ),
                halo_faces=sub.halo_faces,
                telemetry=telemetry,
                factor_cache_budget_bytes=spec.factor_cache_budget_bytes,
            )
            self.factors.append(factors)
            self.rank_materials.append(rank_materials)
            self.rank_sources.append(rank_source)
            self.executors.append(executor)
            self.exchangers.append(HaloExchanger(sub, self.world.comm(sub.rank)))
            self.node_weights.append(node_integration_weights(factors, self.ref))

    @property
    def num_ranks(self) -> int:
        return self.decomposition.num_ranks

    # ---------------------------------------------------- factor-cache hooks
    def update_materials(self, materials: MaterialLibrary) -> None:
        """Swap the cross sections mid-run on every rank.

        The global library is restricted to each subdomain and every rank's
        factor cache is invalidated, so the next sweep re-factorises; see
        the factor-cache lifecycle notes in :mod:`repro.engines.base`.
        """
        global_materials = materials.for_cells(self.global_mesh.num_cells)
        self.global_materials = global_materials
        self.rank_materials = []
        for r, sub in enumerate(self.decomposition.subdomains):
            rank_materials = MaterialLibrary(
                materials=global_materials.materials,
                cell_material=global_materials.cell_material[sub.global_cell_ids],
            )
            self.rank_materials.append(rank_materials)
            self.executors[r].update_materials(rank_materials)

    def invalidate_factor_caches(self) -> None:
        """Drop every rank executor's engine-memoised state (LU factors etc.)."""
        for executor in self.executors:
            executor.invalidate_factor_cache()

    # -------------------------------------------------------------------- solve
    def solve(self) -> BlockJacobiResult:
        """Run the outer/inner iteration with a halo exchange every inner."""
        spec = self.spec
        num_groups = self.global_materials.num_groups
        num_nodes = self.ref.num_nodes
        subs = self.decomposition.subdomains

        scalar = [
            np.zeros((sub.num_cells, num_groups, num_nodes), dtype=float) for sub in subs
        ]
        boundary_values = [BoundaryValues() for _ in subs]
        inner_errors: list[float] = []
        outer_errors: list[float] = []
        inners_per_outer: list[int] = []
        timings = AssemblyTimings()
        last_results = [None] * len(subs)
        tel = active(self.telemetry)
        halo_messages0 = self.world.message_count
        halo_bytes0 = self.world.bytes_sent

        t0 = time.perf_counter()
        for _outer in range(spec.num_outers):
            outer_flux = [s.copy() for s in scalar]
            with phase(tel, "source"):
                outer_source = [
                    build_outer_source(
                        self.rank_sources[r], self.rank_materials[r], outer_flux[r], num_nodes
                    )
                    for r in range(len(subs))
                ]
            inners_done = 0
            for _inner in range(spec.num_inners):
                new_scalar = []
                # --- concurrent subdomain sweeps (executed sequentially here)
                for r, executor in enumerate(self.executors):
                    with phase(tel, "source"):
                        total_source = build_total_source(
                            outer_source[r], self.rank_materials[r], scalar[r]
                        )
                    result = executor.sweep(total_source, boundary_values=boundary_values[r])
                    timings = timings.merge(result.timings)
                    last_results[r] = result
                    new_scalar.append(result.scalar_flux)
                # --- halo exchange (every iteration)
                with phase(tel, "halo"):
                    for r, exchanger in enumerate(self.exchangers):
                        exchanger.post_outgoing(last_results[r].outgoing_halo)
                    for r, exchanger in enumerate(self.exchangers):
                        boundary_values[r] = exchanger.collect_incoming(boundary_values[r])
                # --- global convergence measure
                with phase(tel, "convergence"):
                    error = max(
                        max_relative_difference(new_scalar[r], scalar[r])
                        for r in range(len(subs))
                    )
                inner_errors.append(error)
                scalar = new_scalar
                inners_done += 1
                if spec.inner_tolerance > 0.0 and error <= spec.inner_tolerance:
                    break
            inners_per_outer.append(inners_done)
            with phase(tel, "convergence"):
                outer_error = max(
                    max_relative_difference(scalar[r], outer_flux[r]) for r in range(len(subs))
                )
            outer_errors.append(outer_error)
            if spec.outer_tolerance > 0.0 and outer_error <= spec.outer_tolerance:
                break
        wall_seconds = time.perf_counter() - t0
        if tel is not None:
            tel.incr("halo_messages", self.world.message_count - halo_messages0)
            tel.incr("halo_bytes", self.world.bytes_sent - halo_bytes0)
            tel.gauge("ranks", self.num_ranks)

        # ----------------------------------------------------- gather to global
        global_flux = np.zeros((self.global_mesh.num_cells, num_groups, num_nodes), dtype=float)
        global_weights = np.zeros((self.global_mesh.num_cells, num_nodes), dtype=float)
        leakage = np.zeros(num_groups, dtype=float)
        for r, sub in enumerate(subs):
            global_flux[sub.global_cell_ids] = scalar[r]
            global_weights[sub.global_cell_ids] = self.node_weights[r]
            leakage += last_results[r].leakage

        global_volumes = np.zeros(self.global_mesh.num_cells, dtype=float)
        for r, sub in enumerate(subs):
            global_volumes[sub.global_cell_ids] = self.factors[r].volumes

        balance = particle_balance(
            scalar_flux=global_flux,
            node_weights=global_weights,
            materials=self.global_materials,
            fixed=self.global_source,
            leakage=leakage,
            volumes=global_volumes,
        )
        cell_average = (
            np.einsum("egn,en->eg", global_flux, global_weights) / global_volumes[:, None]
        )
        return BlockJacobiResult(
            scalar_flux=global_flux,
            inner_errors=inner_errors,
            leakage=leakage,
            balance=balance,
            timings=timings,
            num_ranks=self.num_ranks,
            messages=self.world.message_count,
            bytes_exchanged=self.world.bytes_sent,
            wall_seconds=wall_seconds,
            per_rank_cells=[sub.num_cells for sub in subs],
            outer_errors=outer_errors,
            inners_per_outer=inners_per_outer,
            cell_average_flux=cell_average,
        )
