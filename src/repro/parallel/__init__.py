"""Parallel substrate: simulated MPI, halo exchange and the block-Jacobi driver.

The paper distributes the spatial mesh between MPI processors with SNAP's
KBA-style 2-D decomposition and couples the subdomains with a *parallel block
Jacobi* schedule: every rank sweeps its own subdomain concurrently using
lagged incoming angular flux at rank boundaries, and a halo exchange after
every (inner) iteration shares the outgoing data.

Real MPI is not available in this reproduction environment, so the substrate
is an in-process simulation:

* :mod:`repro.parallel.comm` -- a deterministic, mpi4py-flavoured simulated
  communicator (ranks, tagged point-to-point messages, reductions).
* :mod:`repro.parallel.halo` -- packing/unpacking of outgoing face traces
  into per-neighbour messages and back into :class:`BoundaryValues`.
* :mod:`repro.parallel.block_jacobi` -- the multi-rank driver that reproduces
  the convergence/behaviour of the paper's global schedule.
* :mod:`repro.parallel.kba` -- an analytic pipeline model of the classical
  KBA schedule used for the idle-time comparison discussed in Section III.
"""

from .comm import SimCommWorld, SimComm
from .halo import HaloExchanger
from .block_jacobi import BlockJacobiDriver, BlockJacobiResult
from .kba import KBAPipelineModel

__all__ = [
    "SimCommWorld",
    "SimComm",
    "HaloExchanger",
    "BlockJacobiDriver",
    "BlockJacobiResult",
    "KBAPipelineModel",
]
