"""A deterministic in-process simulation of a small MPI world.

The interface follows mpi4py's lower-case (pickle-based) conventions --
``send``/``recv``/``isend`` with tags, ``bcast``, ``allreduce``, ``barrier``
-- but everything happens inside one Python process: messages are appended to
per-destination mailboxes and consumed in FIFO order per (source, tag).  This
keeps the halo-exchange and reduction logic of the block-Jacobi driver
identical in shape to a real MPI implementation while remaining fully
deterministic and testable without ``mpiexec``.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

__all__ = ["SimCommWorld", "SimComm"]


def _payload_nbytes(payload: Any) -> int:
    """Array bytes carried by a message payload (arrays, or containers of them).

    Halo-exchange messages are dicts of ``(G, N)`` traces, so the byte
    accounting must recurse into containers to report meaningful traffic
    statistics.
    """
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, dict):
        return sum(_payload_nbytes(v) for v in payload.values())
    if isinstance(payload, (list, tuple, set)):
        return sum(_payload_nbytes(v) for v in payload)
    return 0


@dataclass
class _Mailbox:
    """Per-destination store of pending messages keyed by (source, tag)."""

    queues: dict[tuple[int, int], deque] = field(default_factory=lambda: defaultdict(deque))

    def push(self, source: int, tag: int, payload: Any) -> None:
        self.queues[(source, tag)].append(payload)

    def pop(self, source: int, tag: int) -> Any:
        queue = self.queues.get((source, tag))
        if not queue:
            raise RuntimeError(f"no pending message from rank {source} with tag {tag}")
        return queue.popleft()

    def pending(self) -> int:
        return sum(len(q) for q in self.queues.values())


class SimCommWorld:
    """A simulated MPI world of ``size`` ranks sharing in-memory mailboxes."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = int(size)
        self._mailboxes = [_Mailbox() for _ in range(self.size)]
        self.message_count = 0
        self.bytes_sent = 0

    def comm(self, rank: int) -> "SimComm":
        if not 0 <= rank < self.size:
            raise ValueError(f"rank must be in 0..{self.size - 1}, got {rank}")
        return SimComm(world=self, rank=rank)

    def comms(self) -> list["SimComm"]:
        """One communicator handle per rank."""
        return [self.comm(r) for r in range(self.size)]

    def pending_messages(self) -> int:
        """Total messages sent but not yet received (should be 0 after a phase)."""
        return sum(m.pending() for m in self._mailboxes)

    # ------------------------------------------------------------- internals
    def _post(self, source: int, dest: int, tag: int, payload: Any) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"destination rank {dest} out of range")
        self._mailboxes[dest].push(source, tag, payload)
        self.message_count += 1
        self.bytes_sent += _payload_nbytes(payload)


@dataclass
class SimComm:
    """A single rank's handle on the simulated world (mpi4py-flavoured API)."""

    world: SimCommWorld
    rank: int

    # --------------------------------------------------------------- queries
    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.world.size

    # ------------------------------------------------------------ point-to-point
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Post a message; the simulated network has unlimited buffering."""
        self.world._post(self.rank, dest, tag, obj)

    #: Non-blocking send is identical under unlimited buffering.
    isend = send

    def recv(self, source: int, tag: int = 0) -> Any:
        """Receive the oldest pending message from ``source`` with ``tag``."""
        return self.world._mailboxes[self.rank].pop(source, tag)

    # ------------------------------------------------------------- collectives
    def barrier(self) -> None:
        """No-op: ranks are executed sequentially by the drivers."""

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Trivial broadcast: the caller already holds the root's object."""
        return obj

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        """Reduce a per-rank contribution registered with the world.

        The sequential drivers gather per-rank values themselves; this method
        exists so rank-local code can be written in the mpi4py style.  With a
        single rank it simply returns the value.
        """
        if self.world.size == 1:
            return value
        raise RuntimeError(
            "allreduce on a multi-rank SimComm must be orchestrated by the "
            "driver (use SimCommWorld reductions); rank-local calls are only "
            "valid for a world of size 1"
        )
