"""Tabulated reference-element data shared by every element of a mesh.

Assembling the DG transport operator requires, at every volume quadrature
point, the value and reference gradient of every basis function, and at every
face quadrature point the trace of the element's own basis and of the
neighbouring element's basis.  These arrays depend only on the element order
and the quadrature rule, so they are computed once per solve and reused for
all elements, angles and groups -- this is the "pre-computed integration of
basis function pairs" reuse pattern that Section III-C of the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from .lagrange import FACE_NORMAL_AXIS, FACE_NORMAL_SIGN, LagrangeHexBasis
from .quadrature import QuadratureRule, face_quadrature, volume_quadrature

__all__ = ["ReferenceElement", "opposite_face"]


def opposite_face(face: int) -> int:
    """The face of a conforming neighbour that abuts the given face.

    With the face numbering 0:-x, 1:+x, 2:-y, 3:+y, 4:-z, 5:+z the opposite
    face is obtained by flipping the lowest bit.
    """
    if not 0 <= face < 6:
        raise ValueError(f"face index must be in 0..5, got {face}")
    return face ^ 1


@dataclass
class ReferenceElement:
    """Per-order tabulated basis data on the reference hexahedron.

    Attributes
    ----------
    order:
        Lagrange element order.
    basis:
        The :class:`LagrangeHexBasis` instance.
    volume_rule, face_rule:
        Quadrature rules used for volume and face integrals.
    phi_vol:
        Basis values at volume quadrature points, shape ``(nq, N)``.
    dphi_vol:
        Reference gradients at volume quadrature points, shape ``(nq, N, 3)``.
    phi_face:
        Basis traces at face quadrature points of each face, shape
        ``(6, nqf, N)``.
    phi_face_neighbor:
        Trace of the *neighbour's* basis at the same physical quadrature
        points, i.e. the own basis evaluated on the opposite face, shape
        ``(6, nqf, N)``.  Entry ``[f]`` corresponds to the neighbour across
        face ``f`` of the current element.
    face_ref_points:
        3-D reference coordinates of the face quadrature points on each face,
        shape ``(6, nqf, 3)``.
    """

    order: int
    basis: LagrangeHexBasis = field(init=False)
    volume_rule: QuadratureRule = field(init=False)
    face_rule: QuadratureRule = field(init=False)
    phi_vol: np.ndarray = field(init=False)
    dphi_vol: np.ndarray = field(init=False)
    phi_face: np.ndarray = field(init=False)
    phi_face_neighbor: np.ndarray = field(init=False)
    face_ref_points: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.basis = LagrangeHexBasis(self.order)
        self.volume_rule = volume_quadrature(self.order)
        self.face_rule = face_quadrature(self.order)

        self.phi_vol = self.basis.evaluate(self.volume_rule.points)
        self.dphi_vol = self.basis.gradient(self.volume_rule.points)

        nqf = self.face_rule.num_points
        n = self.basis.num_nodes
        self.phi_face = np.empty((6, nqf, n), dtype=float)
        self.phi_face_neighbor = np.empty((6, nqf, n), dtype=float)
        self.face_ref_points = np.empty((6, nqf, 3), dtype=float)
        for f in range(6):
            ref_pts = self.basis.face_reference_points(f, self.face_rule.points)
            self.face_ref_points[f] = ref_pts
            self.phi_face[f] = self.basis.evaluate(ref_pts)
            # The neighbour across face f touches us through its opposite
            # face; because the mesh preserves axis orientation the in-face
            # coordinates of matching physical points are identical.
            nbr_pts = self.basis.face_reference_points(opposite_face(f), self.face_rule.points)
            self.phi_face_neighbor[f] = self.basis.evaluate(nbr_pts)

    # ------------------------------------------------------------------ sizes
    @property
    def num_nodes(self) -> int:
        return self.basis.num_nodes

    @property
    def num_volume_points(self) -> int:
        return self.volume_rule.num_points

    @property
    def num_face_points(self) -> int:
        return self.face_rule.num_points

    # ------------------------------------------------------- reference matrices
    def reference_mass_matrix(self) -> np.ndarray:
        """Mass matrix on the un-deformed reference hexahedron (volume 8)."""
        w = self.volume_rule.weights
        return np.einsum("q,qi,qj->ij", w, self.phi_vol, self.phi_vol)

    def reference_gradient_matrices(self) -> np.ndarray:
        """Reference gradient matrices ``G[d, i, j] = int phi_j d(phi_i)/d(xi_d)``."""
        w = self.volume_rule.weights
        return np.einsum("q,qid,qj->dij", w, self.dphi_vol, self.phi_vol)

    @staticmethod
    def face_axis(face: int) -> int:
        return FACE_NORMAL_AXIS[face]

    @staticmethod
    def face_sign(face: int) -> int:
        return FACE_NORMAL_SIGN[face]


@lru_cache(maxsize=16)
def get_reference_element(order: int) -> ReferenceElement:
    """Cached accessor: reference data is immutable and shared per order."""
    return ReferenceElement(order)
