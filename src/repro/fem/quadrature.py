"""Gauss-Legendre quadrature rules on the reference hexahedron.

UnSNAP integrates the DG weak form of the transport equation over each
(possibly twisted) hexahedral element.  The integrands are products of
Lagrange basis functions of order ``p`` with a non-constant Jacobian, so a
Gauss-Legendre rule with ``p + 2`` points per direction (exact for
polynomials of degree ``2p + 3``) is used by default and is always at least
as accurate as required for the mass, gradient and face matrices.

All rules are expressed on the reference interval ``[-1, 1]`` and the
reference hexahedron ``[-1, 1]^3`` used throughout :mod:`repro.fem`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "GaussLegendre1D",
    "QuadratureRule",
    "volume_quadrature",
    "face_quadrature",
    "default_num_points",
]


def default_num_points(order: int) -> int:
    """Number of 1-D Gauss points used by default for elements of ``order``.

    ``order + 2`` points integrate polynomials of degree ``2*order + 3``
    exactly, which covers the mass matrix (degree ``2*order``) times the
    trilinear Jacobian determinant with margin.
    """
    if order < 1:
        raise ValueError(f"element order must be >= 1, got {order}")
    return order + 2


@dataclass(frozen=True)
class GaussLegendre1D:
    """One-dimensional Gauss-Legendre rule on ``[-1, 1]``.

    Attributes
    ----------
    points:
        Quadrature abscissae, shape ``(n,)``, sorted ascending.
    weights:
        Quadrature weights, shape ``(n,)``; they sum to 2 (the measure of
        ``[-1, 1]``).
    """

    points: np.ndarray
    weights: np.ndarray

    @classmethod
    def with_points(cls, n: int) -> "GaussLegendre1D":
        """Build the ``n``-point rule (exact for polynomials of degree ``2n-1``)."""
        if n < 1:
            raise ValueError(f"need at least one quadrature point, got {n}")
        x, w = np.polynomial.legendre.leggauss(n)
        return cls(points=np.asarray(x, dtype=float), weights=np.asarray(w, dtype=float))

    @property
    def num_points(self) -> int:
        return self.points.shape[0]

    def integrate(self, f) -> float:
        """Integrate a callable ``f`` over ``[-1, 1]``."""
        return float(np.dot(self.weights, f(self.points)))


@dataclass(frozen=True)
class QuadratureRule:
    """A tensor-product quadrature rule in ``d`` dimensions.

    Attributes
    ----------
    points:
        Array of shape ``(nq, d)`` with the quadrature points.
    weights:
        Array of shape ``(nq,)`` with the corresponding weights.
    """

    points: np.ndarray
    weights: np.ndarray
    dim: int = field(default=3)

    def __post_init__(self) -> None:
        if self.points.ndim != 2 or self.points.shape[1] != self.dim:
            raise ValueError(
                f"points must have shape (nq, {self.dim}), got {self.points.shape}"
            )
        if self.weights.shape != (self.points.shape[0],):
            raise ValueError("weights must have shape (nq,) matching points")

    @property
    def num_points(self) -> int:
        return self.points.shape[0]

    def integrate(self, values: np.ndarray) -> float:
        """Integrate function values sampled at the quadrature points."""
        values = np.asarray(values, dtype=float)
        if values.shape[0] != self.num_points:
            raise ValueError("values must be sampled at the quadrature points")
        return float(np.tensordot(self.weights, values, axes=(0, 0)))


def _tensor_product(rule: GaussLegendre1D, dim: int) -> QuadratureRule:
    """Form the ``dim``-dimensional tensor product of a 1-D rule.

    The fastest-varying coordinate is the first one, matching the node
    ordering used by :class:`repro.fem.lagrange.LagrangeHexBasis`.
    """
    grids = np.meshgrid(*([rule.points] * dim), indexing="ij")
    # indexing="ij" makes axis 0 the first coordinate; we want the first
    # coordinate fastest so transpose the flattening order.
    pts = np.stack([g.reshape(-1, order="F") for g in grids], axis=-1)
    wgrids = np.meshgrid(*([rule.weights] * dim), indexing="ij")
    w = np.ones(pts.shape[0], dtype=float)
    for g in wgrids:
        w = w * g.reshape(-1, order="F")
    return QuadratureRule(points=pts, weights=w, dim=dim)


def volume_quadrature(order: int, num_points: int | None = None) -> QuadratureRule:
    """Volume quadrature on the reference hexahedron for elements of ``order``."""
    n = default_num_points(order) if num_points is None else num_points
    return _tensor_product(GaussLegendre1D.with_points(n), dim=3)


def face_quadrature(order: int, num_points: int | None = None) -> QuadratureRule:
    """Face quadrature on the reference square for elements of ``order``."""
    n = default_num_points(order) if num_points is None else num_points
    return _tensor_product(GaussLegendre1D.with_points(n), dim=2)
