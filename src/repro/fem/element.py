"""Geometric mapping and per-element integration factors for hexahedra.

Each cell of the unstructured mesh is a (possibly twisted) hexahedron defined
by its 8 corner vertices.  The geometric mapping from the reference cube
``[-1, 1]^3`` is trilinear (sub-parametric for orders > 1), which is exactly
how UnSNAP forms its mesh: the structured SNAP grid is stored in unstructured
form and each cell is then twisted slightly along one axis so that it is "no
longer a perfect cube".

Two interfaces are provided:

* :class:`ElementGeometry` -- a single element, convenient for tests and for
  evaluating the mapping at arbitrary reference points.
* :class:`HexElementFactors` -- vectorised precomputation of everything the
  assembly kernel needs (physical basis gradients, volume weights, face
  normals and surface weights) for *all* elements of a mesh at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .lagrange import FACE_NORMAL_AXIS, FACE_NORMAL_SIGN, LagrangeHexBasis
from .reference import ReferenceElement

__all__ = [
    "ElementGeometry",
    "HexElementFactors",
    "corner_reference_coords",
    "trilinear_shape",
]

#: Reference coordinates of the 8 hexahedron corners in lexicographic order
#: (x fastest): corner v = i + 2j + 4k sits at (+-1, +-1, +-1).
_CORNER_COORDS = np.array(
    [
        [-1.0, -1.0, -1.0],
        [+1.0, -1.0, -1.0],
        [-1.0, +1.0, -1.0],
        [+1.0, +1.0, -1.0],
        [-1.0, -1.0, +1.0],
        [+1.0, -1.0, +1.0],
        [-1.0, +1.0, +1.0],
        [+1.0, +1.0, +1.0],
    ]
)


def corner_reference_coords() -> np.ndarray:
    """Reference coordinates of the 8 corners (copy; callers may mutate)."""
    return _CORNER_COORDS.copy()


def _trilinear_shape(points: np.ndarray) -> np.ndarray:
    """Trilinear shape functions of the 8 corners at reference points.

    Returns an array of shape ``(nq, 8)``.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    x, y, z = points[:, 0:1], points[:, 1:2], points[:, 2:3]
    cx, cy, cz = _CORNER_COORDS[:, 0], _CORNER_COORDS[:, 1], _CORNER_COORDS[:, 2]
    return 0.125 * (1.0 + x * cx) * (1.0 + y * cy) * (1.0 + z * cz)


#: Public alias: the geometric (corner) basis is also what external callers
#: -- e.g. the MMS verification (:mod:`repro.verify.mms`) -- use to map
#: reference points of a cell to physical coordinates.
trilinear_shape = _trilinear_shape


def _trilinear_shape_grad(points: np.ndarray) -> np.ndarray:
    """Reference gradients of the trilinear shape functions, shape ``(nq, 8, 3)``."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    x, y, z = points[:, 0:1], points[:, 1:2], points[:, 2:3]
    cx, cy, cz = _CORNER_COORDS[:, 0], _CORNER_COORDS[:, 1], _CORNER_COORDS[:, 2]
    g = np.empty((points.shape[0], 8, 3), dtype=float)
    g[:, :, 0] = 0.125 * cx * (1.0 + y * cy) * (1.0 + z * cz)
    g[:, :, 1] = 0.125 * (1.0 + x * cx) * cy * (1.0 + z * cz)
    g[:, :, 2] = 0.125 * (1.0 + x * cx) * (1.0 + y * cy) * cz
    return g


class ElementGeometry:
    """Trilinear geometric mapping of a single hexahedral element.

    Parameters
    ----------
    vertices:
        Physical coordinates of the 8 corners, shape ``(8, 3)``, ordered
        lexicographically (x fastest) to match :func:`corner_reference_coords`.
    """

    def __init__(self, vertices: np.ndarray):
        vertices = np.asarray(vertices, dtype=float)
        if vertices.shape != (8, 3):
            raise ValueError(f"vertices must have shape (8, 3), got {vertices.shape}")
        self.vertices = vertices

    def map_points(self, ref_points: np.ndarray) -> np.ndarray:
        """Map reference points to physical space, shape ``(nq, 3)``."""
        return _trilinear_shape(ref_points) @ self.vertices

    def jacobian(self, ref_points: np.ndarray) -> np.ndarray:
        """Jacobian ``J[q, a, b] = d x_a / d xi_b`` at reference points."""
        g = _trilinear_shape_grad(ref_points)  # (nq, 8, 3)
        return np.einsum("qvb,va->qab", g, self.vertices)

    def jacobian_determinant(self, ref_points: np.ndarray) -> np.ndarray:
        return np.linalg.det(self.jacobian(ref_points))

    def volume(self, ref: ReferenceElement) -> float:
        """Physical volume by quadrature."""
        detj = self.jacobian_determinant(ref.volume_rule.points)
        return float(np.dot(ref.volume_rule.weights, detj))

    def centroid(self) -> np.ndarray:
        return self.vertices.mean(axis=0)

    def node_positions(self, basis: LagrangeHexBasis) -> np.ndarray:
        """Physical coordinates of the element's Lagrange nodes, ``(N, 3)``."""
        return self.map_points(basis.node_coords)

    def face_normal_and_area(
        self, face: int, ref: ReferenceElement
    ) -> tuple[np.ndarray, np.ndarray]:
        """Outward unit normals and surface weights at the face quadrature points.

        Returns ``(normals, surface_weights)`` with shapes ``(nqf, 3)`` and
        ``(nqf,)``; ``surface_weights`` already includes the face quadrature
        weights so that ``sum(surface_weights)`` is the face area.
        """
        pts = ref.face_ref_points[face]
        jac = self.jacobian(pts)  # (nqf, 3, 3)
        axis = FACE_NORMAL_AXIS[face]
        sign = FACE_NORMAL_SIGN[face]
        other = [a for a in range(3) if a != axis]
        t_u = jac[:, :, other[0]]
        t_v = jac[:, :, other[1]]
        raw = np.cross(t_u, t_v)
        surf_j = np.linalg.norm(raw, axis=1)
        # Outward physical direction is approximately sign * (column `axis` of J).
        outward = sign * jac[:, :, axis]
        orient = np.sign(np.einsum("qa,qa->q", raw, outward))
        orient[orient == 0.0] = 1.0
        normals = raw * (orient / np.maximum(surf_j, 1e-300))[:, None]
        weights = ref.face_rule.weights * surf_j
        return normals, weights


@dataclass
class HexElementFactors:
    """Vectorised per-element integration factors for a whole mesh.

    All arrays are indexed by element in their leading dimension:

    Attributes
    ----------
    vol_weights:
        ``(E, nq)`` -- quadrature weight times Jacobian determinant.
    grad_phys:
        ``(E, nq, N, 3)`` -- physical gradients of the basis functions.
    face_normals:
        ``(E, 6, nqf, 3)`` -- outward unit normals at face quadrature points.
    face_weights:
        ``(E, 6, nqf)`` -- face quadrature weight times surface Jacobian.
    volumes:
        ``(E,)`` -- element volumes.
    node_positions:
        ``(E, N, 3)`` -- physical positions of the element Lagrange nodes.
    """

    vol_weights: np.ndarray
    grad_phys: np.ndarray
    face_normals: np.ndarray
    face_weights: np.ndarray
    volumes: np.ndarray
    node_positions: np.ndarray

    @classmethod
    def build(cls, vertices: np.ndarray, ref: ReferenceElement) -> "HexElementFactors":
        """Compute factors for all elements.

        Parameters
        ----------
        vertices:
            ``(E, 8, 3)`` corner coordinates of every element.
        ref:
            Shared reference-element tabulation for the chosen order.
        """
        vertices = np.asarray(vertices, dtype=float)
        if vertices.ndim != 3 or vertices.shape[1:] != (8, 3):
            raise ValueError(f"vertices must have shape (E, 8, 3), got {vertices.shape}")
        num_elements = vertices.shape[0]
        nq = ref.num_volume_points
        nqf = ref.num_face_points
        n = ref.num_nodes

        # ----------------------------------------------------------- volume part
        gshape = _trilinear_shape_grad(ref.volume_rule.points)  # (nq, 8, 3)
        # J[e, q, a, b] = sum_v gshape[q, v, b] * vertices[e, v, a]
        jac = np.einsum("qvb,eva->eqab", gshape, vertices)
        detj = np.linalg.det(jac)
        if np.any(detj <= 0.0):
            bad = int(np.sum(detj <= 0.0))
            raise ValueError(
                f"{bad} volume quadrature points have non-positive Jacobian "
                "determinant; the mesh twist is too large or an element is inverted"
            )
        inv_jac_t = np.linalg.inv(jac).transpose(0, 1, 3, 2)  # (E, nq, 3, 3) = J^{-T}
        grad_phys = np.einsum("eqab,qnb->eqna", inv_jac_t, ref.dphi_vol)
        vol_weights = ref.volume_rule.weights[None, :] * detj
        volumes = vol_weights.sum(axis=1)

        # ------------------------------------------------------------- face part
        face_normals = np.empty((num_elements, 6, nqf, 3), dtype=float)
        face_weights = np.empty((num_elements, 6, nqf), dtype=float)
        for face in range(6):
            pts = ref.face_ref_points[face]
            gface = _trilinear_shape_grad(pts)  # (nqf, 8, 3)
            jf = np.einsum("qvb,eva->eqab", gface, vertices)
            axis = FACE_NORMAL_AXIS[face]
            sign = FACE_NORMAL_SIGN[face]
            other = [a for a in range(3) if a != axis]
            t_u = jf[:, :, :, other[0]]
            t_v = jf[:, :, :, other[1]]
            raw = np.cross(t_u, t_v)
            surf_j = np.linalg.norm(raw, axis=-1)
            outward = sign * jf[:, :, :, axis]
            orient = np.sign(np.einsum("eqa,eqa->eq", raw, outward))
            orient[orient == 0.0] = 1.0
            face_normals[:, face] = raw * (orient / np.maximum(surf_j, 1e-300))[:, :, None]
            face_weights[:, face] = ref.face_rule.weights[None, :] * surf_j

        # ------------------------------------------------------ node coordinates
        shape_at_nodes = _trilinear_shape(ref.basis.node_coords)  # (N, 8)
        node_positions = np.einsum("nv,eva->ena", shape_at_nodes, vertices)

        return cls(
            vol_weights=vol_weights,
            grad_phys=grad_phys,
            face_normals=face_normals,
            face_weights=face_weights,
            volumes=volumes,
            node_positions=node_positions,
        )

    @property
    def num_elements(self) -> int:
        return self.vol_weights.shape[0]

    def memory_footprint_bytes(self) -> int:
        """Total bytes held by the precomputed factor arrays."""
        return sum(
            a.nbytes
            for a in (
                self.vol_weights,
                self.grad_phys,
                self.face_normals,
                self.face_weights,
                self.volumes,
                self.node_positions,
            )
        )
