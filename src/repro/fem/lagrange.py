"""Arbitrary-order Lagrange bases on the reference hexahedron.

UnSNAP supports arbitrarily high-order Lagrange elements (the paper reports
orders 1 through 5, Table I).  The trial space on each hexahedral element is
the tensor product of 1-D Lagrange polynomials on equispaced nodes of the
reference interval ``[-1, 1]``, giving ``(p + 1)^3`` nodes per element for
order ``p``.

The node numbering is lexicographic with the x (first) coordinate fastest:

``n = i + (p + 1) * j + (p + 1)**2 * k`` for node ``(xi_i, eta_j, zeta_k)``.

Because the discretisation is *discontinuous* Galerkin, nodes that share a
physical location on a face between two elements are distinct unknowns; the
mesh never merges them (Figure 1b in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = [
    "nodes_per_element",
    "matrix_footprint_bytes",
    "LagrangeBasis1D",
    "LagrangeHexBasis",
    "FACE_NORMAL_AXIS",
    "FACE_NORMAL_SIGN",
]


#: For face index ``f`` (0:-x, 1:+x, 2:-y, 3:+y, 4:-z, 5:+z): the reference
#: axis the face is orthogonal to.
FACE_NORMAL_AXIS = (0, 0, 1, 1, 2, 2)

#: For face index ``f``: the sign of the outward reference normal along that axis.
FACE_NORMAL_SIGN = (-1, +1, -1, +1, -1, +1)


def nodes_per_element(order: int) -> int:
    """Number of Lagrange nodes of a hexahedral element of the given order.

    This is the local matrix dimension N of Table I: ``(order + 1)**3``.
    """
    if order < 1:
        raise ValueError(f"element order must be >= 1, got {order}")
    return (order + 1) ** 3


def matrix_footprint_bytes(order: int, dtype_bytes: int = 8) -> int:
    """Storage footprint of one local ``N x N`` matrix (Table I, FP64 column)."""
    n = nodes_per_element(order)
    return n * n * dtype_bytes


@dataclass(frozen=True)
class LagrangeBasis1D:
    """One-dimensional Lagrange basis on equispaced nodes of ``[-1, 1]``.

    Attributes
    ----------
    order:
        Polynomial order ``p``; there are ``p + 1`` nodes.
    nodes:
        Node coordinates, shape ``(p + 1,)``.
    """

    order: int
    nodes: np.ndarray

    @classmethod
    def equispaced(cls, order: int) -> "LagrangeBasis1D":
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        return cls(order=order, nodes=np.linspace(-1.0, 1.0, order + 1))

    @property
    def num_nodes(self) -> int:
        return self.order + 1

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Evaluate all basis polynomials at points ``x``.

        Returns an array of shape ``(len(x), p + 1)`` where column ``j`` holds
        the j-th cardinal polynomial (1 at node j, 0 at the other nodes).
        """
        x = np.atleast_1d(np.asarray(x, dtype=float))
        n = self.num_nodes
        vals = np.ones((x.shape[0], n), dtype=float)
        for j in range(n):
            for m in range(n):
                if m == j:
                    continue
                vals[:, j] *= (x - self.nodes[m]) / (self.nodes[j] - self.nodes[m])
        return vals

    def derivative(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the first derivatives of all basis polynomials at ``x``.

        Returns an array of shape ``(len(x), p + 1)``.
        """
        x = np.atleast_1d(np.asarray(x, dtype=float))
        n = self.num_nodes
        out = np.zeros((x.shape[0], n), dtype=float)
        for j in range(n):
            denom = np.prod([self.nodes[j] - self.nodes[m] for m in range(n) if m != j])
            total = np.zeros_like(x)
            for k in range(n):
                if k == j:
                    continue
                term = np.ones_like(x)
                for m in range(n):
                    if m == j or m == k:
                        continue
                    term *= x - self.nodes[m]
                total += term
            out[:, j] = total / denom
        return out


@lru_cache(maxsize=32)
def _basis_1d(order: int) -> LagrangeBasis1D:
    return LagrangeBasis1D.equispaced(order)


class LagrangeHexBasis:
    """Tensor-product Lagrange basis on the reference hexahedron ``[-1, 1]^3``.

    Parameters
    ----------
    order:
        Polynomial order ``p >= 1``.  Order 1 gives the classical trilinear
        element with 8 vertex nodes; order 3 (cubic) gives 64 nodes, matching
        the configurations studied in the paper.
    """

    def __init__(self, order: int):
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        self.order = int(order)
        self._b1 = _basis_1d(self.order)
        n1 = self._b1.num_nodes
        # Reference coordinates of each tensor-product node, x fastest.
        i, j, k = np.meshgrid(np.arange(n1), np.arange(n1), np.arange(n1), indexing="ij")
        flat = lambda a: a.reshape(-1, order="F")  # noqa: E731 - local helper
        idx = np.stack([flat(i), flat(j), flat(k)], axis=-1)
        self.node_indices = idx  # (N, 3) integer tensor indices
        self.node_coords = self._b1.nodes[idx]  # (N, 3) reference coordinates

    # ------------------------------------------------------------------ sizes
    @property
    def num_nodes(self) -> int:
        """Total nodes per element, ``(p + 1)**3``."""
        return nodes_per_element(self.order)

    @property
    def nodes_per_direction(self) -> int:
        return self.order + 1

    # ------------------------------------------------------------- evaluation
    def evaluate(self, points: np.ndarray) -> np.ndarray:
        """Evaluate all basis functions at reference points.

        Parameters
        ----------
        points:
            Array of shape ``(nq, 3)`` of reference coordinates.

        Returns
        -------
        ndarray of shape ``(nq, N)`` with ``N = (p + 1)**3``.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        vx = self._b1.evaluate(points[:, 0])
        vy = self._b1.evaluate(points[:, 1])
        vz = self._b1.evaluate(points[:, 2])
        ii, jj, kk = self.node_indices[:, 0], self.node_indices[:, 1], self.node_indices[:, 2]
        return vx[:, ii] * vy[:, jj] * vz[:, kk]

    def gradient(self, points: np.ndarray) -> np.ndarray:
        """Evaluate reference-space gradients of all basis functions.

        Returns
        -------
        ndarray of shape ``(nq, N, 3)``.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        vx = self._b1.evaluate(points[:, 0])
        vy = self._b1.evaluate(points[:, 1])
        vz = self._b1.evaluate(points[:, 2])
        dx = self._b1.derivative(points[:, 0])
        dy = self._b1.derivative(points[:, 1])
        dz = self._b1.derivative(points[:, 2])
        ii, jj, kk = self.node_indices[:, 0], self.node_indices[:, 1], self.node_indices[:, 2]
        g = np.empty((points.shape[0], self.num_nodes, 3), dtype=float)
        g[:, :, 0] = dx[:, ii] * vy[:, jj] * vz[:, kk]
        g[:, :, 1] = vx[:, ii] * dy[:, jj] * vz[:, kk]
        g[:, :, 2] = vx[:, ii] * vy[:, jj] * dz[:, kk]
        return g

    def interpolate(self, nodal_values: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Interpolate nodal values at arbitrary reference points.

        ``nodal_values`` may have arbitrary trailing dimensions; the first
        axis must have length ``N``.
        """
        phi = self.evaluate(points)  # (nq, N)
        return np.tensordot(phi, np.asarray(nodal_values, dtype=float), axes=(1, 0))

    # ------------------------------------------------------------------ faces
    def face_node_indices(self, face: int) -> np.ndarray:
        """Indices of the nodes lying on the given reference face.

        Face numbering: 0:-x, 1:+x, 2:-y, 3:+y, 4:-z, 5:+z.  The nodes are
        returned in lexicographic order of the two in-face coordinates, which
        is the same ordering for the matching face of a conforming neighbour
        (the mesh builder preserves axis orientation), so corresponding
        entries refer to coincident physical points.
        """
        if not 0 <= face < 6:
            raise ValueError(f"face index must be in 0..5, got {face}")
        axis = FACE_NORMAL_AXIS[face]
        side = 0 if FACE_NORMAL_SIGN[face] < 0 else self.order
        mask = self.node_indices[:, axis] == side
        idx = np.nonzero(mask)[0]
        # Order by the two remaining axes (first remaining axis fastest).
        other = [a for a in range(3) if a != axis]
        key = (
            self.node_indices[idx, other[1]] * self.nodes_per_direction
            + self.node_indices[idx, other[0]]
        )
        return idx[np.argsort(key, kind="stable")]

    def face_reference_points(self, face: int, face_points: np.ndarray) -> np.ndarray:
        """Map 2-D face quadrature points into 3-D reference coordinates.

        ``face_points`` has shape ``(nq, 2)`` with coordinates in ``[-1, 1]^2``
        ordered as the two non-normal axes in increasing axis order.
        """
        face_points = np.atleast_2d(np.asarray(face_points, dtype=float))
        axis = FACE_NORMAL_AXIS[face]
        coord = -1.0 if FACE_NORMAL_SIGN[face] < 0 else 1.0
        pts = np.empty((face_points.shape[0], 3), dtype=float)
        other = [a for a in range(3) if a != axis]
        pts[:, axis] = coord
        pts[:, other[0]] = face_points[:, 0]
        pts[:, other[1]] = face_points[:, 1]
        return pts

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"LagrangeHexBasis(order={self.order}, num_nodes={self.num_nodes})"
