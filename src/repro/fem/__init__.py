"""Finite element substrate: Lagrange bases, quadrature, reference element and
per-element geometric factors for discontinuous Galerkin transport on
hexahedral elements.

The sub-package provides everything the assembly kernel in
:mod:`repro.core.assembly` needs:

* :mod:`repro.fem.quadrature` -- Gauss-Legendre rules in 1, 2 and 3 dimensions.
* :mod:`repro.fem.lagrange` -- arbitrary-order tensor-product Lagrange bases on
  the reference hexahedron ``[-1, 1]^3``.
* :mod:`repro.fem.reference` -- tabulated basis and gradient values at volume
  and face quadrature points (shared across all elements).
* :mod:`repro.fem.element` -- the trilinear geometric mapping, Jacobians, face
  normals and per-element precomputed integration factors.
"""

from .quadrature import GaussLegendre1D, QuadratureRule, face_quadrature, volume_quadrature
from .lagrange import LagrangeBasis1D, LagrangeHexBasis, nodes_per_element, matrix_footprint_bytes
from .reference import ReferenceElement
from .element import ElementGeometry, HexElementFactors

__all__ = [
    "GaussLegendre1D",
    "QuadratureRule",
    "face_quadrature",
    "volume_quadrature",
    "LagrangeBasis1D",
    "LagrangeHexBasis",
    "nodes_per_element",
    "matrix_footprint_bytes",
    "ReferenceElement",
    "ElementGeometry",
    "HexElementFactors",
]
