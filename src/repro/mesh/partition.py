"""KBA-style 2-D spatial decomposition of the 3-D unstructured mesh.

The paper keeps SNAP's approach to domain decomposition: "A 2D decomposition
of the 3D domain is performed, similar to the KBA style decomposition for a
structured grid, as this was shown to often be optimal for sweeping
unstructured meshes.  This decomposition occurs during the construction of
the mesh derived from the structured mesh, and so more complex mesh
partitioning could be avoided."

Accordingly, :func:`partition_kba` splits the cells into ``npex x npey``
columns by their structured (i, j) provenance, assigning every cell of a
column (all k) to the same rank.  Each rank's subdomain is returned as a
:class:`Subdomain` containing the local sub-mesh, the mapping back to global
cell ids, and the list of faces that cross rank boundaries (the halo faces
exchanged every block-Jacobi iteration).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .hexmesh import BOUNDARY, UnstructuredHexMesh

__all__ = ["Subdomain", "KBADecomposition", "partition_kba", "split_counts"]


def split_counts(n: int, parts: int) -> np.ndarray:
    """Split ``n`` items into ``parts`` nearly-equal contiguous chunks."""
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if parts > n:
        raise ValueError(f"cannot split {n} items into {parts} non-empty parts")
    base, extra = divmod(n, parts)
    return np.array([base + (1 if p < extra else 0) for p in range(parts)], dtype=np.int64)


@dataclass
class Subdomain:
    """One rank's share of the spatial domain.

    Attributes
    ----------
    rank:
        Linear rank index (``rank = px + npex * py``).
    coords:
        2-D processor coordinates ``(px, py)``.
    mesh:
        Local sub-mesh with local cell indices; faces whose neighbour lives
        on another rank appear as boundary faces of this mesh.
    global_cell_ids:
        ``(E_local,)`` map from local to global cell ids.
    halo_faces:
        ``(n_halo, 4)`` array of ``(local_cell, face, remote_rank,
        remote_local_cell)`` describing every face whose neighbour is owned by
        a different rank.  These are the faces whose outgoing angular flux is
        exchanged each block-Jacobi iteration.
    """

    rank: int
    coords: tuple[int, int]
    mesh: UnstructuredHexMesh
    global_cell_ids: np.ndarray
    halo_faces: np.ndarray

    @property
    def num_cells(self) -> int:
        return self.mesh.num_cells

    def halo_partners(self) -> np.ndarray:
        """Sorted unique ranks this subdomain exchanges halos with."""
        if self.halo_faces.size == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(self.halo_faces[:, 2])


@dataclass
class KBADecomposition:
    """The complete decomposition of a mesh over a ``npex x npey`` rank grid."""

    npex: int
    npey: int
    subdomains: list[Subdomain] = field(default_factory=list)
    cell_owner: np.ndarray | None = None

    @property
    def num_ranks(self) -> int:
        return self.npex * self.npey

    def subdomain(self, rank: int) -> Subdomain:
        return self.subdomains[rank]

    def total_halo_faces(self) -> int:
        return int(sum(s.halo_faces.shape[0] for s in self.subdomains))


def partition_kba(mesh: UnstructuredHexMesh, npex: int, npey: int) -> KBADecomposition:
    """Partition a structured-provenance mesh into a 2-D KBA rank grid.

    Parameters
    ----------
    mesh:
        Mesh built by :func:`repro.mesh.builder.build_snap_mesh` (it must
        carry ``structured_index``; genuinely external meshes would need a
        graph partitioner, which the paper explicitly avoids).
    npex, npey:
        Number of ranks along x and y.
    """
    if mesh.structured_index is None:
        raise ValueError("partition_kba requires a mesh with structured provenance")
    nx, ny, _nz = mesh.metadata.get("grid_shape", (None, None, None))
    if nx is None:
        ijk = mesh.structured_index
        nx = int(ijk[:, 0].max()) + 1
        ny = int(ijk[:, 1].max()) + 1

    counts_x = split_counts(nx, npex)
    counts_y = split_counts(ny, npey)
    starts_x = np.concatenate([[0], np.cumsum(counts_x)])
    starts_y = np.concatenate([[0], np.cumsum(counts_y)])

    i = mesh.structured_index[:, 0]
    j = mesh.structured_index[:, 1]
    px = np.searchsorted(starts_x[1:], i, side="right")
    py = np.searchsorted(starts_y[1:], j, side="right")
    owner = (px + npex * py).astype(np.int64)

    # Local index of each global cell within its owner (order of appearance).
    local_index = np.zeros(mesh.num_cells, dtype=np.int64)
    subdomains: list[Subdomain] = []
    rank_cells: list[np.ndarray] = []
    for rank in range(npex * npey):
        cells = np.nonzero(owner == rank)[0]
        rank_cells.append(cells)
        local_index[cells] = np.arange(cells.shape[0])

    for rank in range(npex * npey):
        cells = rank_cells[rank]
        sub_mesh = mesh.extract_cells(cells)
        halo_rows: list[tuple[int, int, int, int]] = []
        for local_cell, global_cell in enumerate(cells):
            for face in range(6):
                nbr = mesh.face_neighbors[global_cell, face]
                if nbr == BOUNDARY or owner[nbr] == rank:
                    continue
                halo_rows.append((local_cell, face, int(owner[nbr]), int(local_index[nbr])))
        halo = (
            np.asarray(halo_rows, dtype=np.int64)
            if halo_rows
            else np.empty((0, 4), dtype=np.int64)
        )
        coords = (rank % npex, rank // npex)
        subdomains.append(
            Subdomain(
                rank=rank,
                coords=coords,
                mesh=sub_mesh,
                global_cell_ids=cells,
                halo_faces=halo,
            )
        )

    return KBADecomposition(npex=npex, npey=npey, subdomains=subdomains, cell_owner=owner)
