"""Unstructured hexahedral mesh substrate.

UnSNAP forms its unstructured mesh by first constructing the original SNAP
structured grid, storing it in an unstructured format (explicit cell-to-cell
connectivity lists), and then optionally twisting it slightly along one axis
so that cells are no longer perfect cubes.  This sub-package reproduces that
pipeline:

* :mod:`repro.mesh.hexmesh` -- the mesh data structure with explicit
  neighbour lists (the "key differentiator" from a structured grid).
* :mod:`repro.mesh.builder` -- construction from SNAP-style structured
  parameters, including the axis twist.
* :mod:`repro.mesh.connectivity` -- generic face-matching connectivity and
  validation utilities.
* :mod:`repro.mesh.partition` -- KBA-style 2-D spatial decomposition of the
  3-D domain between (simulated) MPI ranks.
"""

from .hexmesh import UnstructuredHexMesh, BOUNDARY
from .builder import StructuredGridSpec, build_snap_mesh, twist_vertices
from .connectivity import build_connectivity_from_faces, validate_connectivity
from .partition import KBADecomposition, Subdomain, partition_kba

__all__ = [
    "UnstructuredHexMesh",
    "BOUNDARY",
    "StructuredGridSpec",
    "build_snap_mesh",
    "twist_vertices",
    "build_connectivity_from_faces",
    "validate_connectivity",
    "KBADecomposition",
    "Subdomain",
    "partition_kba",
]
